/**
 * @file
 * The interconnect: an 8-bit-wide crossbar clocked at half the
 * processor frequency (Section 5.1). In processor cycles, an 8-byte
 * request message occupies its path for 16 cycles and a message
 * carrying a 128-byte memory block for 272 cycles.
 *
 * Contention is modelled with per-port next-free-time reservations:
 * a message holds the sender's output port and the receiver's input
 * port for its transfer time; a crossbar imposes no further internal
 * conflicts. This is the same style of occupancy-based timing used by
 * the simulation environment the paper builds on (Moga et al. [20]).
 */

#ifndef VCOMA_NET_NETWORK_HH
#define VCOMA_NET_NETWORK_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace vcoma
{

/** A time-shared resource with a next-free-time reservation. */
class Resource
{
  public:
    /**
     * Reserve the resource at or after @p t for @p occupancy cycles.
     * @return the tick at which the reservation starts.
     */
    Tick
    acquire(Tick t, Cycles occupancy)
    {
        const Tick start = std::max(t, freeAt_);
        // Saturate: a wrapped freeAt_ would place the reservation in
        // the distant past and grant every later acquire for free.
        freeAt_ = saturatingAdd(start, occupancy);
        return start;
    }

    Tick freeAt() const { return freeAt_; }
    void reset() { freeAt_ = 0; }

  private:
    Tick freeAt_ = 0;
};

/** Message payload classes with distinct transfer times. */
enum class MsgSize : std::uint8_t
{
    Request,  ///< 8-byte request / control message (16 cycles)
    Block,    ///< message carrying a memory block (272 cycles)
};

/** The crossbar. */
class Network
{
  public:
    Network(unsigned numNodes, const TimingConfig &timing);

    /**
     * Transfer a message from @p src to @p dst, first eligible at
     * tick @p t.
     * @return the delivery tick at the destination.
     */
    Tick send(NodeId src, NodeId dst, MsgSize size, Tick t);

    /** Transfer time of a message class in processor cycles. */
    Cycles transferTime(MsgSize size) const;

    /** Forget all reservations (new run). */
    void reset();

    /** @{ @name Statistics */
    Counter requestMessages;
    Counter blockMessages;
    Counter localMessages;  ///< src == dst (no network traversal)
    Distribution queueing;  ///< cycles spent waiting for ports
    /** @} */

    /** Register the counters/distribution on @p g. */
    void
    addStats(StatGroup &g) const
    {
        g.addCounter("requestMessages", requestMessages);
        g.addCounter("blockMessages", blockMessages);
        g.addCounter("localMessages", localMessages);
        g.addDistribution("queueing", queueing);
    }

  private:
    TimingConfig timing_;
    std::vector<Resource> outPorts_;
    std::vector<Resource> inPorts_;
};

} // namespace vcoma

#endif // VCOMA_NET_NETWORK_HH
