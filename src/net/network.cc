#include "net/network.hh"

#include "common/logging.hh"

namespace vcoma
{

Network::Network(unsigned numNodes, const TimingConfig &timing)
    : timing_(timing), outPorts_(numNodes), inPorts_(numNodes)
{
    if (numNodes == 0)
        fatal("network needs at least one node");
}

Cycles
Network::transferTime(MsgSize size) const
{
    return size == MsgSize::Request ? timing_.requestMsg
                                    : timing_.blockMsg;
}

Tick
Network::send(NodeId src, NodeId dst, MsgSize size, Tick t)
{
    // Validate up front: indexing the port vectors with a bad id
    // would otherwise surface as a context-free std::out_of_range.
    const std::size_t numNodes = outPorts_.size();
    if (src >= numNodes || dst >= numNodes) {
        panic("misrouted message from node ", src, " to node ", dst,
              " in a ", numNodes, "-node machine");
    }

    if (size == MsgSize::Request)
        ++requestMessages;
    else
        ++blockMessages;

    if (src == dst) {
        // Loopback: the protocol engine talks to itself; no crossbar
        // traversal and no port occupancy.
        ++localMessages;
        return t;
    }

    const Cycles time = transferTime(size);
    // The sender's output port streams the message; the receiver's
    // input port drains it. On an otherwise idle path the message
    // arrives after one transfer time.
    const Tick start = outPorts_[src].acquire(t, time);
    const Tick arrive = inPorts_[dst].acquire(start + time, 0);
    queueing.sample(static_cast<double>(arrive - t - time));
    return arrive;
}

void
Network::reset()
{
    for (auto &p : outPorts_)
        p.reset();
    for (auto &p : inPorts_)
        p.reset();
}

} // namespace vcoma
