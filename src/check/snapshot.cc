#include "check/snapshot.hh"

#include <sstream>

#include "coma/directory.hh"
#include "core/vaddr_layout.hh"
#include "vm/page_table.hh"

namespace vcoma
{

namespace
{

std::string
hexVa(VAddr va)
{
    std::ostringstream os;
    os << "0x" << std::hex << va;
    return os.str();
}

std::string
describeRef(const MemRef &ref)
{
    std::ostringstream os;
    switch (ref.kind) {
      case MemRef::Kind::Mem:
        os << (ref.type == RefType::Read ? "R " : "W ")
           << hexVa(ref.vaddr);
        break;
      case MemRef::Kind::Barrier:
        os << "barrier " << ref.syncId;
        break;
      case MemRef::Kind::LockAcquire:
        os << "lock " << ref.syncId << " acquire";
        break;
      case MemRef::Kind::LockRelease:
        os << "lock " << ref.syncId << " release";
        break;
    }
    return os.str();
}

} // namespace

std::string
MachineSnapshot::format() const
{
    std::ostringstream os;
    os << "machine snapshot at tick " << now
       << " (last memory reference retired at " << lastRetire << "; "
       << live << " live, " << parked << " parked)";
    for (const CpuDiagnostic &c : cpus) {
        os << "\n  cpu " << c.cpu << ": readyAt=" << c.readyAt
           << " refs=" << c.refs;
        if (c.done)
            os << " finished";
        else if (c.hasLastRef)
            os << " last=" << describeRef(c.lastRef);
        else
            os << " not started";
    }
    for (const auto &w : waiters) {
        os << "\n  cpu " << w.cpu << " parked on "
           << (w.kind == SyncManager::ParkedWaiter::Kind::Barrier
                   ? "barrier "
                   : "lock ")
           << w.id << " since tick " << w.since;
    }
    for (const BlockDiagnostic &b : blocks) {
        os << "\n  block " << hexVa(b.blockVa) << ": ";
        if (!b.known) {
            os << "no page-table entry";
            continue;
        }
        os << "home=" << b.home;
        if (!b.pageResident) {
            os << " page swapped out";
            continue;
        }
        os << " owner=";
        if (b.owner == invalidNode)
            os << "none";
        else
            os << b.owner;
        os << " copyset=" << hexVa(b.copyset)
           << " exclusive=" << (b.exclusive ? 1 : 0)
           << " version=" << b.version;
    }
    return os.str();
}

BlockDiagnostic
describeBlock(const VAddrLayout &layout, const PageTable &pageTable,
              Directory &directory, VAddr va)
{
    BlockDiagnostic d;
    d.blockVa = layout.blockAlign(va);
    const PageInfo *page = pageTable.find(layout.vpn(va));
    if (!page)
        return d;
    d.known = true;
    d.home = page->home;
    d.pageResident = page->resident;
    DirectoryPage *dirPage = directory.findPage(page->vpn);
    if (!dirPage)
        return d;
    const DirectoryEntry &e = dirPage->entry(layout.dirEntryIndex(va));
    d.copyset = e.copyset;
    d.owner = e.owner;
    d.exclusive = e.exclusive;
    d.version = e.version;
    return d;
}

WatchdogError::WatchdogError(const std::string &what,
                             MachineSnapshot snapshot)
    : std::runtime_error(what + "\n" + snapshot.format()),
      snap_(std::move(snapshot))
{
}

} // namespace vcoma
