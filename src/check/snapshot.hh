/**
 * @file
 * Structured diagnostic snapshots for stuck simulations. When the
 * forward-progress watchdog trips, or the kernel detects a deadlock
 * at end of run, the machine captures the execution state of every
 * processor, the parked synchronisation waiters, and the directory
 * ("protocol") entry of each block a stalled processor last touched,
 * and renders it as a multi-line report instead of panicking bare.
 */

#ifndef VCOMA_CHECK_SNAPSHOT_HH
#define VCOMA_CHECK_SNAPSHOT_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/memref.hh"
#include "sim/sync.hh"

namespace vcoma
{

class Directory;
class PageTable;
class VAddrLayout;

/** Execution state of one simulated processor at snapshot time. */
struct CpuDiagnostic
{
    CpuId cpu = 0;
    Tick readyAt = 0;
    bool done = false;
    /** Memory references retired so far. */
    std::uint64_t refs = 0;
    /** Whether the processor has issued any reference yet. */
    bool hasLastRef = false;
    /** The last reference issued (kind, type, address or sync id). */
    MemRef lastRef{};
};

/** Directory ("protocol") state of one block of interest. */
struct BlockDiagnostic
{
    VAddr blockVa = 0;
    /** Page-table and directory state were found for the block. */
    bool known = false;
    bool pageResident = false;
    NodeId home = invalidNode;
    std::uint64_t copyset = 0;
    NodeId owner = invalidNode;
    bool exclusive = false;
    std::uint32_t version = 0;
};

/** Machine state dumped by the watchdog and deadlock paths. */
struct MachineSnapshot
{
    /** Simulated time at which the snapshot was taken. */
    Tick now = 0;
    /** Tick of the last retired memory reference. */
    Tick lastRetire = 0;
    /** Processors whose programs have not finished. */
    unsigned live = 0;
    /** Processors parked on a barrier or lock. */
    unsigned parked = 0;
    std::vector<CpuDiagnostic> cpus;
    std::vector<SyncManager::ParkedWaiter> waiters;
    std::vector<BlockDiagnostic> blocks;

    /** Render as a multi-line human-readable report. */
    std::string format() const;
};

/** Look up the directory state of the block containing @p va. */
BlockDiagnostic describeBlock(const VAddrLayout &layout,
                              const PageTable &pageTable,
                              Directory &directory, VAddr va);

/**
 * Thrown by Machine::run when the forward-progress watchdog trips:
 * no processor retired a memory reference for the configured number
 * of simulated cycles while sync traffic kept time advancing
 * (livelock). what() includes the formatted snapshot.
 */
class WatchdogError : public std::runtime_error
{
  public:
    WatchdogError(const std::string &what, MachineSnapshot snapshot);

    const MachineSnapshot &snapshot() const { return snap_; }

  private:
    MachineSnapshot snap_;
};

} // namespace vcoma

#endif // VCOMA_CHECK_SNAPSHOT_HH
