#include "check/fault_injector.hh"

#include <algorithm>
#include <sstream>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "sim/machine.hh"

namespace vcoma
{

namespace
{

std::string
hexVa(VAddr va)
{
    std::ostringstream os;
    os << "0x" << std::hex << va;
    return os.str();
}

} // namespace

const char *
faultClassName(FaultClass c)
{
    switch (c) {
      case FaultClass::CorruptAmState: return "corrupt-am-state";
      case FaultClass::CorruptAmVersion: return "corrupt-am-version";
      case FaultClass::DropDirectoryEntry: return "drop-directory-entry";
      case FaultClass::MisversionDirectory: return "misversion-directory";
      case FaultClass::StaleTranslation: return "stale-translation";
      case FaultClass::SkewPressure: return "skew-pressure";
    }
    return "?";
}

const std::vector<FaultClass> &
allFaultClasses()
{
    static const std::vector<FaultClass> classes{
        FaultClass::CorruptAmState,    FaultClass::CorruptAmVersion,
        FaultClass::DropDirectoryEntry, FaultClass::MisversionDirectory,
        FaultClass::StaleTranslation,  FaultClass::SkewPressure,
    };
    return classes;
}

FaultInjector::FaultInjector(Machine &machine, std::uint64_t seed)
    : m_(machine), rng_(seed ^ 0xfa017u)
{
}

std::optional<std::string>
FaultInjector::inject(FaultClass c)
{
    std::optional<std::string> desc;
    switch (c) {
      case FaultClass::CorruptAmState: desc = corruptAmState(); break;
      case FaultClass::CorruptAmVersion: desc = corruptAmVersion(); break;
      case FaultClass::DropDirectoryEntry:
        desc = dropDirectoryEntry();
        break;
      case FaultClass::MisversionDirectory:
        desc = misversionDirectory();
        break;
      case FaultClass::StaleTranslation: desc = staleTranslation(); break;
      case FaultClass::SkewPressure: desc = skewPressure(); break;
    }
    if (desc)
        ++injected_;
    return desc;
}

std::vector<std::pair<NodeId, std::size_t>>
FaultInjector::validLines() const
{
    std::vector<std::pair<NodeId, std::size_t>> lines;
    for (NodeId n = 0; n < m_.numNodes(); ++n) {
        const AttractionMemory &am = m_.node(n).am;
        for (std::size_t i = 0; i < am.numLines(); ++i) {
            if (am.line(i).valid())
                lines.emplace_back(n, i);
        }
    }
    return lines;
}

std::vector<std::pair<PageNum, std::uint64_t>>
FaultInjector::residentEntries() const
{
    std::vector<std::pair<PageNum, std::uint64_t>> entries;
    for (const auto &[vpn, dirPage] : m_.directory().pages()) {
        for (std::uint64_t i = 0; i < dirPage.size(); ++i) {
            if (dirPage.entry(i).resident())
                entries.emplace_back(vpn, i);
        }
    }
    // The directory map iterates in hash order; sort so the seeded
    // pick is stable across library implementations.
    std::sort(entries.begin(), entries.end());
    return entries;
}

std::optional<std::string>
FaultInjector::corruptAmState()
{
    const auto lines = validLines();
    if (lines.empty())
        return std::nullopt;
    const auto [node, idx] = lines[rng_.below(lines.size())];
    AmLine &line = m_.node(node).am.line(idx);
    const AmState before = line.state;
    // Demoting an owner orphans the block (zero owners); promoting a
    // Shared copy forges a second owner. Both break single-owner.
    line.state = isOwnerState(before) ? AmState::Shared
                                      : AmState::Exclusive;
    return "node " + std::to_string(node) + " line (key " +
           hexVa(line.key) + ") state " + amStateName(before) + " -> " +
           amStateName(line.state);
}

std::optional<std::string>
FaultInjector::corruptAmVersion()
{
    const auto lines = validLines();
    if (lines.empty())
        return std::nullopt;
    const auto [node, idx] = lines[rng_.below(lines.size())];
    AmLine &line = m_.node(node).am.line(idx);
    ++line.version;
    return "node " + std::to_string(node) + " line (key " +
           hexVa(line.key) + ") version bumped to " +
           std::to_string(line.version);
}

std::optional<std::string>
FaultInjector::dropDirectoryEntry()
{
    const auto entries = residentEntries();
    if (entries.empty())
        return std::nullopt;
    const auto [vpn, idx] = entries[rng_.below(entries.size())];
    DirectoryEntry &e = m_.directory().entryFor(vpn, idx);
    const std::uint64_t copyset = e.copyset;
    e.copyset = 0;
    e.owner = invalidNode;
    e.exclusive = false;
    return "directory entry " + std::to_string(idx) + " of vpn " +
           hexVa(vpn) + " dropped (copyset was " + hexVa(copyset) + ")";
}

std::optional<std::string>
FaultInjector::misversionDirectory()
{
    const auto entries = residentEntries();
    if (entries.empty())
        return std::nullopt;
    const auto [vpn, idx] = entries[rng_.below(entries.size())];
    DirectoryEntry &e = m_.directory().entryFor(vpn, idx);
    ++e.version;
    return "directory entry " + std::to_string(idx) + " of vpn " +
           hexVa(vpn) + " version bumped to " + std::to_string(e.version);
}

std::optional<std::string>
FaultInjector::staleTranslation()
{
    // A vpn the page table has never seen: any cached entry for it is
    // stale by construction.
    PageNum bogus = (PageNum{1} << 52) | rng_.below(1u << 16);
    while (m_.pageTable().find(bogus))
        ++bogus;
    for (NodeId n = 0; n < m_.numNodes(); ++n) {
        Node &node = m_.node(n);
        if (node.dlb) {
            node.dlb->tlb().access(bogus, StreamClass::Demand);
            return "DLB at node " + std::to_string(n) +
                   " seeded with unmapped vpn " + hexVa(bogus);
        }
        if (node.tlb) {
            node.tlb->access(bogus, StreamClass::Demand);
            return "TLB at node " + std::to_string(n) +
                   " seeded with unmapped vpn " + hexVa(bogus);
        }
    }
    return std::nullopt;
}

std::optional<std::string>
FaultInjector::skewPressure()
{
    PressureTracker &pressure = m_.pressure();
    if (pressure.numSets() == 0)
        return std::nullopt;
    const std::uint64_t colour = rng_.below(pressure.numSets());
    pressure.pageIn(colour);
    return "pressure count of colour " + std::to_string(colour) +
           " inflated to " + std::to_string(pressure.occupied(colour));
}

} // namespace vcoma
