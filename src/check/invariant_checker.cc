#include "check/invariant_checker.hh"

#include <algorithm>
#include <sstream>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "sim/machine.hh"

namespace vcoma
{

namespace
{

std::string
hexVa(VAddr va)
{
    std::ostringstream os;
    os << "0x" << std::hex << va;
    return os.str();
}

void
report(std::vector<Violation> &out, const char *invariant,
       std::string detail)
{
    out.push_back({invariant, std::move(detail)});
}

} // namespace

VAddr
InvariantChecker::amKeyOf(const PageInfo &page, VAddr blockVa) const
{
    if (m_.traits().amVirtual)
        return blockVa;
    const unsigned pageBits = m_.layout().pageBits();
    return (page.frame << pageBits) | (blockVa & mask(pageBits));
}

std::vector<Violation>
InvariantChecker::checkAll() const
{
    ++sweeps_;
    std::vector<Violation> out;
    checkDirectory(out);
    checkOrphanLines(out);
    checkPressure(out);
    checkTranslationResidency(out);
    // The engine's hit-filter entries must agree with the structures
    // they shadow (panics internally on a stale pointer; a filter bug
    // shows up as a crash here rather than as silent divergence).
    m_.engine().verifyFastFilter();
    return out;
}

void
InvariantChecker::enforce() const
{
    const std::vector<Violation> violations = checkAll();
    if (violations.empty())
        return;
    std::ostringstream os;
    os << "coherence sanitizer: " << violations.size()
       << " invariant violation(s)";
    const std::size_t shown = std::min<std::size_t>(violations.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
        os << "\n  [" << violations[i].invariant << "] "
           << violations[i].detail;
    }
    if (shown < violations.size())
        os << "\n  ... " << (violations.size() - shown) << " more";
    panic(os.str());
}

void
InvariantChecker::checkDirectory(std::vector<Violation> &out) const
{
    const unsigned pageBits = m_.layout().pageBits();
    const unsigned blockBytes = m_.config().am.blockBytes;
    const unsigned numNodes = m_.numNodes();

    for (const auto &[vpn, dirPage] : m_.directory().pages()) {
        const PageInfo *page = m_.pageTable().find(vpn);
        if (!page) {
            report(out, "dir-page-orphan",
                   "directory page for vpn " + hexVa(vpn) +
                       " has no page-table entry");
            continue;
        }
        if (!page->resident) {
            report(out, "dir-page-orphan",
                   "swapped-out vpn " + hexVa(vpn) +
                       " still holds a directory page");
            continue;
        }
        for (std::uint64_t i = 0; i < dirPage.size(); ++i) {
            const DirectoryEntry &e = dirPage.entry(i);
            const VAddr blockVa =
                (static_cast<VAddr>(vpn) << pageBits) + i * blockBytes;
            if (!e.resident()) {
                // The block was never touched or was dropped whole;
                // either way no node may still hold a copy.
                if (e.copyset != 0) {
                    report(out, "lost-last-copy",
                           "block " + hexVa(blockVa) + " has copyset " +
                               hexVa(e.copyset) + " but no owner");
                }
                continue;
            }
            const VAddr amKey = amKeyOf(*page, blockVa);
            unsigned owners = 0;
            for (NodeId n = 0; n < numNodes; ++n) {
                const AmLine *line = m_.node(n).am.find(amKey);
                const bool hasCopy = line != nullptr && line->valid();
                if (hasCopy != e.holds(n)) {
                    report(out, "copyset-agreement",
                           "block " + hexVa(blockVa) + ": node " +
                               std::to_string(n) +
                               (hasCopy ? " holds a copy missing from"
                                        : " is in") +
                               " copyset " + hexVa(e.copyset));
                }
                if (!hasCopy)
                    continue;
                if (line->version != e.version) {
                    report(out, "version-agreement",
                           "block " + hexVa(blockVa) + ": node " +
                               std::to_string(n) + " holds version " +
                               std::to_string(line->version) +
                               ", directory says " +
                               std::to_string(e.version));
                }
                if (isOwnerState(line->state)) {
                    ++owners;
                    if (e.owner != n) {
                        report(out, "single-owner",
                               "block " + hexVa(blockVa) + ": node " +
                                   std::to_string(n) + " is " +
                                   amStateName(line->state) +
                                   " but the directory owner is " +
                                   std::to_string(e.owner));
                    }
                    if ((line->state == AmState::Exclusive) !=
                        e.exclusive) {
                        report(out, "exclusive-state",
                               "block " + hexVa(blockVa) +
                                   ": owner state " +
                                   amStateName(line->state) +
                                   " disagrees with directory "
                                   "exclusive=" +
                                   std::to_string(e.exclusive));
                    }
                } else if (e.owner == n) {
                    report(out, "single-owner",
                           "block " + hexVa(blockVa) +
                               ": directory owner " + std::to_string(n) +
                               " holds state " +
                               amStateName(line->state));
                }
            }
            if (owners != 1) {
                report(out, "single-owner",
                       "block " + hexVa(blockVa) + " has " +
                           std::to_string(owners) +
                           " master/owner copies (want exactly 1)");
            }
            if (e.exclusive && e.copies() != 1) {
                report(out, "exclusive-state",
                       "block " + hexVa(blockVa) + " is exclusive with " +
                           std::to_string(e.copies()) + " copies");
            }
        }
    }

    // The other direction of "no lost last copy": every block of a
    // resident page that any node caches must have directory state.
    // (Covered by checkOrphanLines via copyset membership.)
}

void
InvariantChecker::checkOrphanLines(std::vector<Violation> &out) const
{
    const unsigned numNodes = m_.numNodes();
    const bool amVirtual = m_.traits().amVirtual;
    const unsigned pageBits = m_.layout().pageBits();

    for (NodeId n = 0; n < numNodes; ++n) {
        const AttractionMemory &am = m_.node(n).am;
        for (std::size_t i = 0; i < am.numLines(); ++i) {
            const AmLine &line = am.line(i);
            if (!line.valid())
                continue;
            const PageInfo *page = nullptr;
            if (amVirtual) {
                page = m_.pageTable().find(line.key >> pageBits);
            } else {
                page = m_.pageTable().pageOfFrame(line.key >> pageBits);
            }
            if (!page || !page->resident) {
                report(out, "orphan-line",
                       "node " + std::to_string(n) +
                           " holds a valid line (key " + hexVa(line.key) +
                           ", state " + amStateName(line.state) +
                           ") of a non-resident page");
                continue;
            }
            DirectoryPage *dirPage = m_.directory().findPage(page->vpn);
            const std::uint64_t idx =
                (line.key & mask(pageBits)) /
                m_.config().am.blockBytes;
            if (!dirPage || !dirPage->entry(idx).holds(n)) {
                report(out, "orphan-line",
                       "node " + std::to_string(n) +
                           " holds a valid line (key " + hexVa(line.key) +
                           ") absent from the directory copyset");
            }
        }
    }
}

void
InvariantChecker::checkPressure(std::vector<Violation> &out) const
{
    const PressureTracker &pressure = m_.pressure();
    std::vector<std::uint64_t> counts(pressure.numSets(), 0);
    for (const auto &[vpn, page] : m_.pageTable().entries()) {
        if (!page.resident)
            continue;
        if (page.colour >= counts.size()) {
            report(out, "pressure-accounting",
                   "vpn " + hexVa(vpn) + " has colour " +
                       std::to_string(page.colour) + " but only " +
                       std::to_string(counts.size()) +
                       " global page sets exist");
            continue;
        }
        ++counts[page.colour];
    }
    for (std::uint64_t c = 0; c < counts.size(); ++c) {
        if (pressure.occupied(c) != counts[c]) {
            report(out, "pressure-accounting",
                   "colour " + std::to_string(c) + " tracks " +
                       std::to_string(pressure.occupied(c)) +
                       " resident pages but the page table has " +
                       std::to_string(counts[c]));
        }
    }
}

void
InvariantChecker::checkTranslationResidency(
    std::vector<Violation> &out) const
{
    // Shadow banks are observers that deliberately survive page
    // purges, so only the configured TLBs/DLBs are held to this.
    const unsigned numNodes = m_.numNodes();
    for (NodeId n = 0; n < numNodes; ++n) {
        const Node &node = m_.node(n);
        auto check = [&](const Tlb &tlb, bool isDlb) {
            tlb.forEachEntry([&](PageNum vpn) {
                const PageInfo *page = m_.pageTable().find(vpn);
                if (!page || !page->resident) {
                    report(out, "stale-translation",
                           std::string(isDlb ? "DLB" : "TLB") +
                               " at node " + std::to_string(n) +
                               " caches vpn " + hexVa(vpn) +
                               " of a non-resident page");
                    return;
                }
                if (isDlb && page->home != n) {
                    report(out, "stale-translation",
                           "DLB at node " + std::to_string(n) +
                               " caches vpn " + hexVa(vpn) +
                               " homed at node " +
                               std::to_string(page->home));
                }
            });
        };
        if (node.tlb)
            check(*node.tlb, /*isDlb=*/false);
        // VICTIMA's spill structure holds real translations too:
        // purgePage must shoot them down like any TLB entry.
        if (node.tlbSpill)
            check(*node.tlbSpill, /*isDlb=*/false);
        if (node.dlb)
            check(node.dlb->tlb(), /*isDlb=*/true);
    }
}

} // namespace vcoma
