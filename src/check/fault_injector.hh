/**
 * @file
 * Deterministic, seeded fault injection for the coherence sanitizer.
 * Each fault class corrupts one piece of protocol/translation state
 * the way a real bug (or a flipped bit) would; the tests prove that
 * the InvariantChecker detects every class. The target is chosen by
 * a seeded Rng over a deterministic enumeration of candidates, so a
 * given (machine state, seed) pair always corrupts the same entry.
 */

#ifndef VCOMA_CHECK_FAULT_INJECTOR_HH
#define VCOMA_CHECK_FAULT_INJECTOR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace vcoma
{

class Machine;

/** The kinds of corruption the injector can apply. */
enum class FaultClass : std::uint8_t
{
    /** Flip a valid AM line's protocol state (owner <-> shared). */
    CorruptAmState,
    /** Bump a valid AM line's write version past the directory's. */
    CorruptAmVersion,
    /** Forget a resident block's directory entry (owner + copyset). */
    DropDirectoryEntry,
    /** Advance a directory entry's version past every cached copy. */
    MisversionDirectory,
    /** Plant a TLB/DLB entry for a page that was never mapped. */
    StaleTranslation,
    /** Inflate one colour's memory-pressure count. */
    SkewPressure,
};

/** Short fault-class name for test output. */
const char *faultClassName(FaultClass c);

/** Every injectable fault class (test iteration). */
const std::vector<FaultClass> &allFaultClasses();

/** Applies one seeded fault at a time to a machine. */
class FaultInjector
{
  public:
    FaultInjector(Machine &machine, std::uint64_t seed);

    /**
     * Corrupt one deterministically chosen target of class @p c.
     * @return a description of what was corrupted, or nullopt when
     *         the machine holds no suitable target (e.g. no valid
     *         lines before the first run).
     */
    std::optional<std::string> inject(FaultClass c);

    /** Faults applied so far. */
    unsigned injected() const { return injected_; }

  private:
    std::optional<std::string> corruptAmState();
    std::optional<std::string> corruptAmVersion();
    std::optional<std::string> dropDirectoryEntry();
    std::optional<std::string> misversionDirectory();
    std::optional<std::string> staleTranslation();
    std::optional<std::string> skewPressure();

    /** (node, line index) of every valid AM line, node order. */
    std::vector<std::pair<NodeId, std::size_t>> validLines() const;
    /** (vpn, entry index) of every resident directory entry. */
    std::vector<std::pair<PageNum, std::uint64_t>>
    residentEntries() const;

    Machine &m_;
    Rng rng_;
    unsigned injected_ = 0;
};

} // namespace vcoma

#endif // VCOMA_CHECK_FAULT_INJECTOR_HH
