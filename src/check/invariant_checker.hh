/**
 * @file
 * The coherence sanitizer: a read-only walker over the directory, the
 * attraction memories, the translation structures and the pressure
 * accounting that verifies the paper's protocol invariants — exactly
 * one master/owner copy per resident block, directory/AM agreement in
 * both membership and write version, no lost last copy, translation
 * entries only for resident pages, and per-colour pressure counts
 * matching the page table.
 *
 * Enabled per-run via MachineConfig::invariantCheckInterval or the
 * VCOMA_CHECK environment variable; the Machine then sweeps at the
 * configured interval, after protocol transitions, and once at the
 * end of every run. The checker never mutates simulation state, so an
 * enabled run produces bit-identical results to a disabled one (it
 * either passes silently or panics).
 */

#ifndef VCOMA_CHECK_INVARIANT_CHECKER_HH
#define VCOMA_CHECK_INVARIANT_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vcoma
{

class Machine;
struct PageInfo;

/** One violated invariant with enough context to debug it. */
struct Violation
{
    /** Short invariant id, e.g. "single-owner". */
    std::string invariant;
    /** Full description: block, nodes, observed vs expected state. */
    std::string detail;
};

/** Walks machine state and reports every violated invariant. */
class InvariantChecker
{
  public:
    explicit InvariantChecker(Machine &machine) : m_(machine) {}

    /** Full sweep; returns every violation found (read-only). */
    std::vector<Violation> checkAll() const;

    /** Full sweep; panics with a summary if anything is violated. */
    void enforce() const;

    /** Sweeps performed so far. */
    std::uint64_t sweeps() const { return sweeps_; }

  private:
    /** Directory-driven checks: ownership, membership, versions. */
    void checkDirectory(std::vector<Violation> &out) const;
    /** AM-driven checks: no valid line without directory backing. */
    void checkOrphanLines(std::vector<Violation> &out) const;
    /** Pressure counters match resident page-table entries. */
    void checkPressure(std::vector<Violation> &out) const;
    /** TLB/DLB entries only cache resident pages (right home). */
    void checkTranslationResidency(std::vector<Violation> &out) const;

    /** AM indexing key of @p blockVa on @p page (VA or PA schemes). */
    VAddr amKeyOf(const PageInfo &page, VAddr blockVa) const;

    Machine &m_;
    mutable std::uint64_t sweeps_ = 0;
};

} // namespace vcoma

#endif // VCOMA_CHECK_INVARIANT_CHECKER_HH
