/**
 * @file
 * The translation-structure model shared by all five schemes: a TLB
 * when private to a node (L0..L3) and a DLB (Directory Lookaside
 * Buffer) when placed at the home node inside the coherence protocol
 * (V-COMA, Section 4.2).
 *
 * The paper uses random replacement for fully associative TLB/DLBs
 * (Section 5.1) and also evaluates direct-mapped organisations
 * (Figure 9); both are supported, as is the general set-associative
 * case with random victim selection within a set.
 *
 * The structure maps virtual page numbers; the payload (physical page
 * number vs directory-page base address) is irrelevant to miss
 * behaviour, so the model tracks presence only.
 */

#ifndef VCOMA_TLB_TLB_HH
#define VCOMA_TLB_TLB_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace vcoma
{

/**
 * TLB/DLB presence model with per-stream-class miss accounting.
 */
class Tlb
{
  public:
    /**
     * @param entries total entry count; 0 models software-managed
     *                translation (every access misses/traps)
     * @param assoc   associativity; 0 = fully associative
     * @param seed    seed for the random-replacement stream
     * @param indexShift low vpn bits to skip when selecting the set.
     *        A DLB at a V-COMA home only ever sees pages whose low p
     *        vpn bits equal the home id (Figure 6), so the set index
     *        must come from the bits above them.
     */
    Tlb(unsigned entries, unsigned assoc, std::uint64_t seed,
        unsigned indexShift = 0);

    /**
     * Look up @p vpn, fill on miss.
     * @param cls whether this is a demand access or a write-back /
     *            injection access (Section 2.2.2's poor-locality
     *            stream).
     * @param evictedOut when non-null, receives the vpn the fill
     *            displaced (or noVpn when nothing was evicted), so
     *            callers holding per-entry metadata can retire it.
     * @return true on hit.
     */
    bool access(PageNum vpn, StreamClass cls = StreamClass::Demand,
                PageNum *evictedOut = nullptr);

    /** Presence probe without statistics or replacement effects. */
    bool contains(PageNum vpn) const;

    /**
     * Invalidate the entry mapping @p vpn (TLB shoot-down, page
     * demap).
     * @return true if an entry was dropped.
     */
    bool invalidate(PageNum vpn);

    /** Drop all entries (context switch / full shoot-down). */
    void flush();

    /**
     * Visit the vpn of every cached entry (invariant checking).
     * Order is unspecified; the structure is not modified.
     */
    void forEachEntry(const std::function<void(PageNum)> &fn) const;

    unsigned entries() const { return entries_; }
    unsigned assoc() const { return assoc_; }
    bool fullyAssociative() const { return assoc_ == 0; }

    /** "FA", "DM" or "<k>way" as used in figure labels. */
    std::string organisation() const;

    /** @{ @name Statistics */
    Counter demandAccesses;
    Counter demandMisses;
    Counter writebackAccesses;
    Counter writebackMisses;
    /** @} */

    std::uint64_t
    accesses() const
    {
        return demandAccesses.value() + writebackAccesses.value();
    }

    std::uint64_t
    misses() const
    {
        return demandMisses.value() + writebackMisses.value();
    }

    /** Register the counters on @p g as <prefix>demandAccesses etc. */
    void addStats(StatGroup &g, const std::string &prefix) const;

    /** Sentinel "no page" value (also the empty-slot tag). */
    static constexpr PageNum noVpn = ~PageNum{0};

  private:
    unsigned entries_;
    unsigned assoc_;
    unsigned indexShift_;
    Rng rng_;

    // Fully associative implementation: O(1) hash lookup plus a slot
    // vector for random victim selection.
    std::unordered_map<PageNum, unsigned> faMap_;
    std::vector<PageNum> faSlots_;
    std::vector<unsigned> faFree_;

    // Set-associative implementation: sets_ x assoc_ tag array.
    std::vector<PageNum> saTags_;
    unsigned numSets_ = 0;

    bool lookupAndFill(PageNum vpn, PageNum *evictedOut);
};

} // namespace vcoma

#endif // VCOMA_TLB_TLB_HH
