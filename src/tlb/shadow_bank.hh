/**
 * @file
 * Shadow TLB banks: observer TLBs of many sizes and organisations fed
 * with the same reference stream as the configured translation
 * structure.
 *
 * Translation-structure *contents* never change which references the
 * processor issues (only their timing), so one simulation pass can
 * measure the entire size sweep of Figure 8 and the direct-mapped
 * comparison of Figure 9 simultaneously. The banks have no timing
 * effect; Table 4 / Figure 10 use a dedicated configured TLB instead.
 */

#ifndef VCOMA_TLB_SHADOW_BANK_HH
#define VCOMA_TLB_SHADOW_BANK_HH

#include <cstdint>
#include <vector>

#include "tlb/tlb.hh"

namespace vcoma
{

/** The TLB/DLB sizes swept by the paper's Figure 8. */
const std::vector<unsigned> &shadowSizes();

/**
 * One node's (or one home's) collection of shadow TLBs: every size in
 * shadowSizes(), each in fully associative and direct-mapped flavours.
 */
class ShadowBank
{
  public:
    /**
     * @param seed base seed (each member derives its own stream)
     * @param sizes entry counts to instantiate; defaults to
     *              shadowSizes()
     */
    explicit ShadowBank(std::uint64_t seed,
                        const std::vector<unsigned> &sizes = shadowSizes(),
                        unsigned indexShift = 0);

    /** Feed one reference to every member TLB. */
    void access(PageNum vpn, StreamClass cls = StreamClass::Demand);

    /** Find the member with @p entries and associativity @p assoc. */
    const Tlb *find(unsigned entries, unsigned assoc) const;

    const std::vector<Tlb> &members() const { return members_; }

  private:
    /**
     * Flat member storage: every access() touches every member, so
     * keeping the Tlbs contiguous (rather than behind one pointer
     * indirection each) matters on the per-reference shadow path.
     */
    std::vector<Tlb> members_;
};

/**
 * Aggregated view over the per-node banks of one translation point:
 * total misses/accesses for a given (size, organisation) across all
 * nodes.
 */
struct ShadowTotals
{
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t writebackAccesses = 0;
    std::uint64_t writebackMisses = 0;

    std::uint64_t
    misses() const
    {
        return demandMisses + writebackMisses;
    }

    std::uint64_t
    accesses() const
    {
        return demandAccesses + writebackAccesses;
    }
};

/** Sum the counters of every bank's member matching (entries, assoc). */
ShadowTotals sumShadow(const std::vector<ShadowBank> &banks,
                       unsigned entries, unsigned assoc);

} // namespace vcoma

#endif // VCOMA_TLB_SHADOW_BANK_HH
