#include "tlb/tlb.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace vcoma
{

Tlb::Tlb(unsigned entries, unsigned assoc, std::uint64_t seed,
         unsigned indexShift)
    : entries_(entries), assoc_(assoc), indexShift_(indexShift),
      rng_(seed)
{
    if (entries_ == 0) {
        // A 0-entry TLB models software-managed translation: every
        // access traps (the paper's reading of Jacob & Mudge [15] as
        // "an L2-TLB scheme which has 0 entries", Section 3.3).
        return;
    }
    if (assoc_ == 0) {
        faSlots_.assign(entries_, noVpn);
        faMap_.reserve(entries_ * 2);
        faFree_.reserve(entries_);
        for (unsigned i = 0; i < entries_; ++i)
            faFree_.push_back(entries_ - 1 - i);
    } else {
        if (entries_ % assoc_ != 0)
            fatal("TLB entries (", entries_, ") not divisible by assoc (",
                  assoc_, ")");
        numSets_ = entries_ / assoc_;
        if (!isPowerOf2(numSets_))
            fatal("TLB set count must be a power of two");
        saTags_.assign(entries_, noVpn);
    }
}

std::string
Tlb::organisation() const
{
    if (assoc_ == 0)
        return "FA";
    if (assoc_ == 1)
        return "DM";
    return std::to_string(assoc_) + "way";
}

bool
Tlb::lookupAndFill(PageNum vpn, PageNum *evictedOut)
{
    if (evictedOut)
        *evictedOut = noVpn;
    if (entries_ == 0)
        return false;
    if (assoc_ == 0) {
        auto it = faMap_.find(vpn);
        if (it != faMap_.end())
            return true;
        // Fill: an empty slot if one exists, else random replacement
        // (paper Section 5.1).
        unsigned slot;
        if (!faFree_.empty()) {
            slot = faFree_.back();
            faFree_.pop_back();
        } else {
            slot = static_cast<unsigned>(rng_.below(entries_));
            if (evictedOut)
                *evictedOut = faSlots_[slot];
            faMap_.erase(faSlots_[slot]);
        }
        faSlots_[slot] = vpn;
        faMap_[vpn] = slot;
        return false;
    }

    const unsigned set = static_cast<unsigned>(
        (vpn >> indexShift_) & (numSets_ - 1));
    PageNum *base = &saTags_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w] == vpn)
            return true;
    }
    // Fill an empty way if available, else a random victim.
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w] == noVpn) {
            base[w] = vpn;
            return false;
        }
    }
    const unsigned victim = static_cast<unsigned>(rng_.below(assoc_));
    if (evictedOut)
        *evictedOut = base[victim];
    base[victim] = vpn;
    return false;
}

bool
Tlb::access(PageNum vpn, StreamClass cls, PageNum *evictedOut)
{
    const bool hit = lookupAndFill(vpn, evictedOut);
    if (cls == StreamClass::Demand) {
        ++demandAccesses;
        if (!hit)
            ++demandMisses;
    } else {
        ++writebackAccesses;
        if (!hit)
            ++writebackMisses;
    }
    return hit;
}

bool
Tlb::contains(PageNum vpn) const
{
    if (entries_ == 0)
        return false;
    if (assoc_ == 0)
        return faMap_.count(vpn) != 0;
    const unsigned set = static_cast<unsigned>(
        (vpn >> indexShift_) & (numSets_ - 1));
    const PageNum *base = &saTags_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w] == vpn)
            return true;
    }
    return false;
}

bool
Tlb::invalidate(PageNum vpn)
{
    if (entries_ == 0)
        return false;
    if (assoc_ == 0) {
        auto it = faMap_.find(vpn);
        if (it == faMap_.end())
            return false;
        faFree_.push_back(it->second);
        faSlots_[it->second] = noVpn;
        faMap_.erase(it);
        return true;
    }
    const unsigned set = static_cast<unsigned>(
        (vpn >> indexShift_) & (numSets_ - 1));
    PageNum *base = &saTags_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w] == vpn) {
            base[w] = noVpn;
            return true;
        }
    }
    return false;
}

void
Tlb::forEachEntry(const std::function<void(PageNum)> &fn) const
{
    if (entries_ == 0)
        return;
    if (assoc_ == 0) {
        for (PageNum vpn : faSlots_) {
            if (vpn != noVpn)
                fn(vpn);
        }
        return;
    }
    for (PageNum vpn : saTags_) {
        if (vpn != noVpn)
            fn(vpn);
    }
}

void
Tlb::addStats(StatGroup &g, const std::string &prefix) const
{
    g.addCounter(prefix + "demandAccesses", demandAccesses);
    g.addCounter(prefix + "demandMisses", demandMisses);
    g.addCounter(prefix + "writebackAccesses", writebackAccesses);
    g.addCounter(prefix + "writebackMisses", writebackMisses);
}

void
Tlb::flush()
{
    if (entries_ == 0)
        return;
    if (assoc_ == 0) {
        faMap_.clear();
        std::fill(faSlots_.begin(), faSlots_.end(), noVpn);
        faFree_.clear();
        for (unsigned i = 0; i < entries_; ++i)
            faFree_.push_back(entries_ - 1 - i);
    } else {
        std::fill(saTags_.begin(), saTags_.end(), noVpn);
    }
}

} // namespace vcoma
