#include "tlb/shadow_bank.hh"

#include "common/logging.hh"

namespace vcoma
{

const std::vector<unsigned> &
shadowSizes()
{
    static const std::vector<unsigned> sizes{8, 16, 32, 64, 128, 256, 512};
    return sizes;
}

ShadowBank::ShadowBank(std::uint64_t seed,
                       const std::vector<unsigned> &sizes,
                       unsigned indexShift)
{
    std::uint64_t n = 0;
    members_.reserve(sizes.size() * 2);
    for (unsigned entries : sizes) {
        members_.emplace_back(entries, /*assoc=*/0, seed + 31 * ++n,
                              indexShift);
        members_.emplace_back(entries, /*assoc=*/1, seed + 31 * ++n,
                              indexShift);
    }
}

void
ShadowBank::access(PageNum vpn, StreamClass cls)
{
    for (auto &tlb : members_)
        tlb.access(vpn, cls);
}

const Tlb *
ShadowBank::find(unsigned entries, unsigned assoc) const
{
    for (const auto &tlb : members_) {
        if (tlb.entries() == entries && tlb.assoc() == assoc)
            return &tlb;
    }
    return nullptr;
}

ShadowTotals
sumShadow(const std::vector<ShadowBank> &banks, unsigned entries,
          unsigned assoc)
{
    ShadowTotals totals;
    for (const auto &bank : banks) {
        const Tlb *tlb = bank.find(entries, assoc);
        if (!tlb)
            panic("shadow bank has no member with ", entries,
                  " entries, assoc ", assoc);
        totals.demandAccesses += tlb->demandAccesses.value();
        totals.demandMisses += tlb->demandMisses.value();
        totals.writebackAccesses += tlb->writebackAccesses.value();
        totals.writebackMisses += tlb->writebackMisses.value();
    }
    return totals;
}

} // namespace vcoma
