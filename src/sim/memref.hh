/**
 * @file
 * The event vocabulary emitted by workload threads: shared-memory
 * references, synchronisation events and interleaved busy time.
 *
 * Following the paper's methodology (Section 5.1) only *shared* data
 * accesses are simulated; instruction fetches and private accesses
 * appear as busy cycles attached to the next event.
 */

#ifndef VCOMA_SIM_MEMREF_HH
#define VCOMA_SIM_MEMREF_HH

#include <cstdint>

#include "common/types.hh"

namespace vcoma
{

/** One event in a simulated thread's execution stream. */
struct MemRef
{
    /** What kind of event this is. */
    enum class Kind : std::uint8_t
    {
        Mem,          ///< shared-memory read or write at @ref vaddr
        Barrier,      ///< global barrier identified by @ref syncId
        LockAcquire,  ///< acquire lock @ref syncId
        LockRelease,  ///< release lock @ref syncId
    };

    Kind kind = Kind::Mem;
    /** Read or write (Kind::Mem only). */
    RefType type = RefType::Read;
    /** Virtual address of the access (Kind::Mem only). */
    VAddr vaddr = 0;
    /** Busy (compute) cycles preceding this event. */
    std::uint32_t work = 0;
    /** Barrier or lock identifier (synchronisation kinds only). */
    std::uint32_t syncId = 0;

    /** Convenience constructors. */
    static MemRef
    read(VAddr a, std::uint32_t work = 1)
    {
        return {Kind::Mem, RefType::Read, a, work, 0};
    }

    static MemRef
    write(VAddr a, std::uint32_t work = 1)
    {
        return {Kind::Mem, RefType::Write, a, work, 0};
    }

    static MemRef
    barrier(std::uint32_t id, std::uint32_t work = 0)
    {
        return {Kind::Barrier, RefType::Read, 0, work, id};
    }

    static MemRef
    lock(std::uint32_t id, std::uint32_t work = 0)
    {
        return {Kind::LockAcquire, RefType::Read, 0, work, id};
    }

    static MemRef
    unlock(std::uint32_t id, std::uint32_t work = 0)
    {
        return {Kind::LockRelease, RefType::Read, 0, work, id};
    }
};

} // namespace vcoma

#endif // VCOMA_SIM_MEMREF_HH
