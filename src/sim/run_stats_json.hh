/**
 * @file
 * Structured (JSON) export of a run's statistics sheet. Two entry
 * points:
 *
 *  - writeRunStatsJson() serialises one RunStats as a single JSON
 *    object (one line, no trailing newline) — every counter, the
 *    per-CPU cycle buckets, the shadow sweep, the pressure profile,
 *    the DLB effect counters and the latency distribution summaries.
 *
 *  - exportRunStatsJsonFromEnv() appends that object as one JSONL
 *    line to the file named by $VCOMA_STATS_JSON, if set. Appending
 *    (not truncating) makes a whole bench sweep land in one file;
 *    a process-wide lock keeps lines whole when Runner::runAll
 *    finishes several simulations concurrently.
 *
 * The output parses with tools/check_stats_json.py and with the
 * in-tree vcoma::JsonValue parser (see tests/test_stats_json.cc).
 */

#ifndef VCOMA_SIM_RUN_STATS_JSON_HH
#define VCOMA_SIM_RUN_STATS_JSON_HH

#include <ostream>

namespace vcoma
{

struct RunStats;

/** Environment variable naming the JSONL stats file. */
inline constexpr const char *statsJsonEnvVar = "VCOMA_STATS_JSON";

/** Serialise @p stats as one JSON object (no trailing newline). */
void writeRunStatsJson(std::ostream &os, const RunStats &stats);

/**
 * Append one JSONL line for @p stats to $VCOMA_STATS_JSON.
 * @return true when a line was written (the variable was set and the
 *         file was writable).
 */
bool exportRunStatsJsonFromEnv(const RunStats &stats);

} // namespace vcoma

#endif // VCOMA_SIM_RUN_STATS_JSON_HH
