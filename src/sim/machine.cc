#include "sim/machine.hh"

#include <algorithm>
#include <ostream>
#include <queue>

#include "common/stats.hh"

#include "check/invariant_checker.hh"
#include "check/snapshot.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "sim/event_trace.hh"
#include "sim/run_stats_json.hh"
#include "sim/sync.hh"
#include "translation/system_builder.hh"

namespace vcoma
{

Machine::Machine(const MachineConfig &cfg)
    : cfg_(validated(cfg)),
      traits_(schemeTraits(cfg_.translation.scheme)),
      layout_(cfg_),
      pressure_(cfg_.numGlobalPageSets(), cfg_.globalPageSetCapacity()),
      allocator_(makeAllocator(traits_, layout_, pressure_, cfg_.numNodes)),
      pageTable_(layout_.pageBits(), *allocator_),
      directory_(static_cast<unsigned>(layout_.entriesPerDirPage())),
      network_(cfg_.numNodes, cfg_.timing),
      nodes_(makeNodes(cfg_, traits_)),
      engine_(cfg_, traits_, layout_, pageTable_, directory_, network_,
              nodes_),
      protection_(cfg_, layout_, pageTable_, directory_, network_, nodes_)
{
    if (cfg_.numNodes > 64)
        fatal("copysets are 64-bit masks: at most 64 nodes");

    // Preload pages at their home as they are first touched, and let
    // the page daemon keep every global set below the pressure
    // threshold (Section 4.3).
    pageTable_.onPageResident([this](PageInfo &page) {
        engine_.preloadPage(page);
        while (pressure_.pressure(page.colour) > cfg_.pressureThreshold) {
            const PageNum victim =
                pickSwapVictim(page.colour, page.vpn);
            if (victim == CoherenceEngine::noPage)
                break;
            engine_.purgePage(victim);
            pageTable_.swapOut(victim);
        }
    });

    engine_.onSwapNeeded([this](std::uint64_t colour, PageNum protect) {
        return pickSwapVictim(colour, protect);
    });

    // Robustness knobs: the config wins; otherwise VCOMA_CHECK /
    // VCOMA_WATCHDOG enable the feature (a bare truthy value picks
    // the default, a number > 1 tunes it). Both default to off so
    // unchecked runs stay byte-identical.
    constexpr std::uint64_t defaultCheckInterval = 4096;
    constexpr Cycles defaultWatchdogCycles = 50'000'000;
    checkInterval_ = cfg_.invariantCheckInterval
                         ? cfg_.invariantCheckInterval
                         : envScaledFlag("VCOMA_CHECK",
                                         defaultCheckInterval);
    watchdogCycles_ = cfg_.watchdogCycles
                          ? cfg_.watchdogCycles
                          : envScaledFlag("VCOMA_WATCHDOG",
                                          defaultWatchdogCycles);
    if (checkInterval_ != 0) {
        checker_ = std::make_unique<InvariantChecker>(*this);
        // Protocol transitions are where invariants break, so they
        // weigh much more than plain references in the sweep budget.
        engine_.onTransition([this] { creditInvariantSweep(64); });
    }

    // Observability: off (and free) unless $VCOMA_TRACE_EVENTS names
    // an output file.
    tracer_ = EventTracer::fromEnv();
    engine_.setTracer(tracer_.get());
}

Machine::~Machine() = default;

void
Machine::creditInvariantSweep(std::uint64_t weight)
{
    checkCredit_ += weight;
    if (checkCredit_ < checkInterval_)
        return;
    checkCredit_ = 0;
    checker_->enforce();
}

PageNum
Machine::pickSwapVictim(std::uint64_t colour, PageNum protect)
{
    // Prefer an unreferenced resident page of the colour (a cheap
    // clock-style approximation); fall back to any resident page
    // other than the protected one.
    PageNum fallback = CoherenceEngine::noPage;
    for (const auto &[vpn, page] : pageTable_.entries()) {
        if (!page.resident || page.colour != colour || vpn == protect ||
            engine_.isPinned(vpn))
            continue;
        if (!page.referenced)
            return vpn;
        if (fallback == CoherenceEngine::noPage)
            fallback = vpn;
    }
    return fallback;
}

AccessResult
Machine::access(CpuId cpu, RefType type, VAddr va, Tick now)
{
    return engine_.access(cpu, type, va, now);
}

RunStats
Machine::run(Workload &workload)
{
    const unsigned numCpus = workload.numThreads();
    if (numCpus != cfg_.numNodes) {
        fatal("workload has ", numCpus, " threads but the machine has ",
              cfg_.numNodes, " nodes");
    }

    struct Proc
    {
        Generator<MemRef> program;
        /**
         * Materialised-stream cursor (replay): when the workload
         * serves its threads as arrays, the kernel walks [cur, end)
         * instead of resuming a coroutine per reference.
         */
        const MemRef *cur = nullptr;
        const MemRef *end = nullptr;
        Tick readyAt = 0;
        bool done = false;
        CpuStats stats;
        /**
         * Last event issued, for diagnostic snapshots. Points into
         * the coroutine frame's current slot (which outlives every
         * use here: the generator is destroyed with the Proc) or,
         * when replaying, into the materialised stream.
         */
        const MemRef *lastRef = nullptr;
    };

    const bool materialised = workload.materialised();
    std::vector<Proc> procs(numCpus);
    for (unsigned i = 0; i < numCpus; ++i) {
        if (materialised) {
            const std::span<const MemRef> s = workload.stream(i);
            procs[i].cur = s.data();
            procs[i].end = s.data() + s.size();
        } else {
            procs[i].program = workload.thread(i);
        }
    }

    SyncManager sync(numCpus, cfg_.timing);

    // Forward-progress accounting for the watchdog and the deadlock
    // report: the tick of the last retired memory reference.
    Tick lastRetire = 0;

    auto snapshot = [&](Tick now) {
        MachineSnapshot snap;
        snap.now = now;
        snap.lastRetire = lastRetire;
        snap.parked = sync.parked();
        for (unsigned i = 0; i < numCpus; ++i) {
            const Proc &p = procs[i];
            if (!p.done)
                ++snap.live;
            CpuDiagnostic d;
            d.cpu = i;
            d.readyAt = p.readyAt;
            d.done = p.done;
            d.refs = p.stats.refs;
            d.hasLastRef = p.lastRef != nullptr;
            if (p.lastRef)
                d.lastRef = *p.lastRef;
            snap.cpus.push_back(d);
        }
        snap.waiters = sync.parkedWaiters();
        // The directory ("protocol") entry of each distinct block a
        // stalled processor last touched: the stuck block(s) of a
        // livelocked machine.
        std::vector<VAddr> seen;
        for (const Proc &p : procs) {
            if (p.done || !p.lastRef ||
                p.lastRef->kind != MemRef::Kind::Mem) {
                continue;
            }
            const VAddr blockVa = layout_.blockAlign(p.lastRef->vaddr);
            if (std::find(seen.begin(), seen.end(), blockVa) !=
                seen.end()) {
                continue;
            }
            seen.push_back(blockVa);
            snap.blocks.push_back(describeBlock(layout_, pageTable_,
                                                directory_, blockVa));
            if (snap.blocks.size() >= 8)
                break;
        }
        return snap;
    };

    // Min-heap ordered by (readyAt, cpu) for determinism.
    using Entry = std::pair<Tick, CpuId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
    for (unsigned i = 0; i < numCpus; ++i)
        ready.emplace(0, i);

    unsigned live = numCpus;

    // Batching layer of the core speedups: drain consecutive events
    // of one CPU without heap churn. Provably order-identical, but
    // gated with the rest of the fast-path machinery so
    // $VCOMA_FASTPATH=0 measures the pristine event loop.
    const bool batchEvents = engine_.fastPathConfigured();

    // Replay turbo (materialised streams only): per-CPU drain
    // contexts with the fast filter's loop invariants pre-resolved.
    // Disabled under the invariant checker, which must be credited
    // per reference.
    const bool drainable = materialised && batchEvents &&
                           !checker_ && engine_.fastPathEnabled();
    std::vector<CoherenceEngine::FastDrainCtx> drainCtxs =
        drainable ? engine_.makeFastDrainCtxs()
                  : std::vector<CoherenceEngine::FastDrainCtx>{};
    // CPUs checked out of the ready heap by the replay drain below.
    std::vector<CpuId> drainSet;
    drainSet.reserve(numCpus);

    // Loop-invariant loads the optimiser cannot hoist itself because
    // engine_.access may alias the members through `this`.
    const Tick watchdogCycles = watchdogCycles_;
    const Cycles busyScale = cfg_.busyScale;
    InvariantChecker *const checker = checker_.get();

    // Reference-bit decay daemon (Section 4.1): the protocol engines
    // periodically clear the page reference bits so the page daemon's
    // victim choice approximates LRU.
    const Cycles decayPeriod = cfg_.refBitDecayPeriod;
    Tick nextDecay = decayPeriod ? decayPeriod : ~Tick{0};

    while (!ready.empty()) {
        auto [when, cpu] = ready.top();
        ready.pop();
        Proc &proc = procs[cpu];

        // Drain consecutive events of this CPU without re-entering
        // the heap while it provably stays the globally next one
        // ((readyAt, cpu) below the heap top in the heap's own
        // lexicographic order). Memory references keep draining; sync
        // events and completion leave the inner loop.
        bool draining = true;
        while (draining) {
            draining = false;

            if (watchdogCycles != 0 &&
                when > lastRetire + watchdogCycles) {
                throw WatchdogError(
                    detail::concat("watchdog: no memory reference "
                                   "retired in the last ",
                                   when - lastRetire, " cycles"),
                    snapshot(when));
            }

            if (when >= nextDecay) {
                // Catch up over a long busy gap in O(1): no reference
                // bit is set between two decay points with no
                // intervening accesses, so the skipped sweeps would
                // find the bits already clear. One sweep, counted
                // once per gap crossing.
                pageTable_.clearReferenceBits();
                ++refBitDecays_;
                nextDecay +=
                    ((when - nextDecay) / decayPeriod + 1) * decayPeriod;
            }
            VCOMA_ASSERT(!proc.done);
            VCOMA_ASSERT(when == proc.readyAt);

            if (drainable && proc.cur != proc.end) {
                // Replay turbo: CPUs are checked out of the event
                // heap as they become the globally next event and
                // drained in rotation, each run handed to the engine
                // in one call with its loop invariants hoisted. The
                // per-run bound keeps every drained dispatch below
                // the runner-up event (checked-out or heap top) and
                // below the next reference-bit decay point, so the
                // dispatch order is exactly the heap's (readyAt, cpu)
                // order; heap churn and loop-top bookkeeping are paid
                // per blocking event, not per run.
                drainSet.clear();
                drainSet.push_back(cpu);
                bool fellThrough = false;
                for (;;) {
                    // The next checked-out dispatch, in the heap's
                    // lexicographic order.
                    std::size_t m = 0;
                    for (std::size_t i = 1; i < drainSet.size(); ++i) {
                        if (std::make_pair(procs[drainSet[i]].readyAt,
                                           drainSet[i]) <
                            std::make_pair(procs[drainSet[m]].readyAt,
                                           drainSet[m])) {
                            m = i;
                        }
                    }
                    const CpuId c = drainSet[m];
                    Proc &pc = procs[c];
                    // The globally next event might still be in the
                    // heap: a drainable one joins the rotation,
                    // anything else ends the session.
                    if (!ready.empty() &&
                        ready.top() < std::make_pair(pc.readyAt, c)) {
                        const auto [topWhen, topCpu] = ready.top();
                        if (topWhen >= nextDecay ||
                            procs[topCpu].cur == procs[topCpu].end) {
                            break;
                        }
                        ready.pop();
                        drainSet.push_back(topCpu);
                        continue;
                    }
                    if (pc.readyAt >= nextDecay)
                        break;
                    Tick limit = nextDecay - 1;
                    for (std::size_t i = 0; i < drainSet.size(); ++i) {
                        if (i == m)
                            continue;
                        const CpuId d = drainSet[i];
                        const Tick td = procs[d].readyAt;
                        limit = std::min(limit, c < d ? td : td - 1);
                    }
                    if (!ready.empty()) {
                        const auto [topWhen, topCpu] = ready.top();
                        limit = std::min(limit, c < topCpu ? topWhen
                                                           : topWhen - 1);
                    }
                    const std::uint64_t n =
                        engine_.fastDrainMaterialised(
                            drainCtxs[c], c, pc.cur, pc.end,
                            pc.readyAt, limit, busyScale,
                            pc.stats.reads, pc.stats.writes,
                            pc.stats.busy, pc.stats.locStall);
                    if (n == 0) {
                        // c's event cannot be fast-resolved. The
                        // dispatched CPU's own blocker falls through
                        // to the ordinary path right away; any other
                        // CPU's goes back through the heap (it pops
                        // first: it is the global minimum).
                        fellThrough = c == cpu;
                        break;
                    }
                    pc.stats.refs += n;
                    pc.lastRef = pc.cur - 1;
                    lastRetire = std::max(lastRetire, pc.readyAt);
                }
                for (const CpuId d : drainSet) {
                    if (!(fellThrough && d == cpu))
                        ready.emplace(procs[d].readyAt, d);
                }
                if (!fellThrough)
                    break;
            }

            const MemRef *next;
            if (materialised) {
                if (proc.cur != proc.end) {
                    next = proc.cur++;
                    // The replay payload is sequential and mmapped:
                    // ask for the block a few lines ahead so the
                    // decode never waits on a page-cache read.
#if defined(__GNUC__) || defined(__clang__)
                    __builtin_prefetch(proc.cur + 10);
#endif
                } else {
                    next = nullptr;
                }
            } else {
                next = proc.program.nextPtr();
            }
            if (!next) {
                proc.done = true;
                proc.stats.finish = proc.readyAt;
                --live;
                break;
            }

            const MemRef &ref = *next;
            proc.lastRef = next;
            const Cycles work = ref.work * busyScale;
            Tick t = proc.readyAt + work;
            proc.stats.busy += work;

            switch (ref.kind) {
              case MemRef::Kind::Mem: {
                AccessResult res;
                if (!engine_.fastAccess(cpu, ref.type, ref.vaddr, t,
                                        res)) {
                    res = engine_.access(cpu, ref.type, ref.vaddr, t);
                }
                proc.stats.locStall += res.local;
                proc.stats.remStall += res.remote;
                proc.stats.xlatStall += res.xlat;
                ++proc.stats.refs;
                if (ref.type == RefType::Read)
                    ++proc.stats.reads;
                else
                    ++proc.stats.writes;
                proc.readyAt = res.done;
                lastRetire = std::max(lastRetire, res.done);
                if (checker)
                    creditInvariantSweep(1);
                if (batchEvents &&
                    (ready.empty() ||
                     std::make_pair(proc.readyAt, cpu) < ready.top())) {
                    when = proc.readyAt;
                    draining = true;
                } else {
                    ready.emplace(proc.readyAt, cpu);
                }
                break;
              }
              case MemRef::Kind::Barrier: {
                auto release = sync.arriveBarrier(ref.syncId, cpu, t);
                if (release) {
                    for (const auto &[waiter, arrived] :
                         release->waiters) {
                        Proc &wp = procs[waiter];
                        wp.stats.sync += release->releaseAt - arrived;
                        wp.readyAt = release->releaseAt;
                        ready.emplace(wp.readyAt, waiter);
                    }
                }
                break;
              }
              case MemRef::Kind::LockAcquire: {
                auto grant = sync.acquireLock(ref.syncId, cpu, t);
                if (grant) {
                    proc.stats.sync += *grant - t;
                    proc.readyAt = *grant;
                    ready.emplace(proc.readyAt, cpu);
                }
                break;
              }
              case MemRef::Kind::LockRelease: {
                auto grant = sync.releaseLock(ref.syncId, cpu, t);
                proc.readyAt = t;
                ready.emplace(proc.readyAt, cpu);
                if (grant) {
                    Proc &wp = procs[grant->cpu];
                    wp.stats.sync += grant->grantedAt - grant->arrivedAt;
                    wp.readyAt = grant->grantedAt;
                    ready.emplace(wp.readyAt, grant->cpu);
                }
                break;
              }
            }
        }
    }

    if (sync.parked() != 0 || live != 0) {
        Tick endOfTime = lastRetire;
        for (const Proc &p : procs)
            endOfTime = std::max(endOfTime, p.readyAt);
        panic("deadlock: run ended with ", sync.parked(), " parked and ",
              live, " live processors\n", snapshot(endOfTime).format());
    }

    // One final full sweep so a run whose last transition corrupted
    // state still fails loudly.
    if (checker_)
        checker_->enforce();

    Tick execTime = 0;
    std::vector<CpuStats> cpus;
    cpus.reserve(numCpus);
    for (auto &proc : procs) {
        execTime = std::max(execTime, proc.stats.finish);
        cpus.push_back(proc.stats);
    }
    RunStats stats = collect(workload, std::move(cpus), execTime);

    // Observability exports, both env-gated: one JSONL line per run
    // ($VCOMA_STATS_JSON) and the Chrome trace ($VCOMA_TRACE_EVENTS).
    exportRunStatsJsonFromEnv(stats);
    if (tracer_)
        tracer_->flush(cfg_.numNodes);
    return stats;
}

void
Machine::dumpStats(std::ostream &os) const
{
    StatGroup root("machine");

    // Each component registers its own counters; this function only
    // assembles the hierarchy. Everything registered here lives in
    // this Machine, satisfying StatGroup's lifetime contract for the
    // dump below.
    StatGroup protocol("protocol");
    engine_.addStats(protocol);
    root.addChild(protocol);

    StatGroup net("network");
    network_.addStats(net);
    root.addChild(net);

    StatGroup vm("vm");
    vm.addCounter("pageFaults", pageTable_.pageFaults);
    vm.addCounter("pageReloads", pageTable_.pageReloads);
    vm.addCounter("swapOuts", pageTable_.swapOuts);
    pressure_.addStats(vm);
    vm.addCounter("refBitDecays", refBitDecays_);
    root.addChild(vm);

    std::vector<StatGroup> nodeGroups;
    nodeGroups.reserve(nodes_.size());
    for (const auto &nodePtr : nodes_) {
        const Node &n = *nodePtr;
        StatGroup group("node" + std::to_string(n.id));
        n.flc.addStats(group, "flc.");
        n.slc.addStats(group, "slc.");
        n.am.addStats(group, "am.");
        group.addCounter("upgradesIssued", n.upgradesIssued);
        group.addCounter("injectionsIssued", n.injectionsIssued);
        group.addCounter("injectionsAccepted", n.injectionsAccepted);
        group.addCounter("invalsReceived", n.invalsReceived);
        if (n.tlb)
            n.tlb->addStats(group, "tlb.");
        if (n.tlbSpill)
            n.tlbSpill->addStats(group, "tlbSpill.");
        if (n.dlb)
            n.dlb->addStats(group, "dlb.");
        nodeGroups.push_back(std::move(group));
    }
    // addChild only after every move: the vector's elements now have
    // their final addresses (see the StatGroup lifetime contract).
    for (const auto &group : nodeGroups)
        root.addChild(group);

    root.dump(os);
}

RunStats
Machine::collect(Workload &workload, std::vector<CpuStats> cpus,
                 Tick execTime)
{
    RunStats stats;
    stats.workload = workload.name();
    stats.parameters = workload.parameters();
    stats.scheme = cfg_.translation.scheme;
    stats.numNodes = cfg_.numNodes;
    stats.sharedBytes = workload.sharedBytes();
    stats.cpus = std::move(cpus);
    stats.execTime = execTime;

    // Aggregate the shadow banks across nodes.
    for (unsigned entries : shadowSizes()) {
        for (unsigned assoc : {0u, 1u}) {
            ShadowPoint point;
            point.entries = entries;
            point.assoc = assoc;
            for (const auto &nodePtr : nodes_) {
                const Tlb *tlb = nodePtr->shadow.find(entries, assoc);
                VCOMA_ASSERT(tlb != nullptr);
                point.demandAccesses += tlb->demandAccesses.value();
                point.demandMisses += tlb->demandMisses.value();
                point.writebackAccesses += tlb->writebackAccesses.value();
                point.writebackMisses += tlb->writebackMisses.value();
            }
            stats.shadow.push_back(point);
        }
    }

    for (const auto &nodePtr : nodes_) {
        const Node &n = *nodePtr;
        stats.flcAccesses += n.flc.accesses();
        stats.flcMisses += n.flc.misses();
        stats.slcAccesses += n.slc.accesses();
        stats.slcMisses += n.slc.misses();
        stats.amHits += n.am.hits.value();
        stats.amMisses += n.am.misses.value();
        if (n.tlb) {
            stats.tlbAccesses += n.tlb->demandAccesses.value();
            stats.tlbMisses += n.tlb->demandMisses.value();
            stats.tlbWritebackAccesses += n.tlb->writebackAccesses.value();
            stats.tlbWritebackMisses += n.tlb->writebackMisses.value();
        }
        if (n.dlb) {
            stats.tlbAccesses += n.dlb->tlb().demandAccesses.value();
            stats.tlbMisses += n.dlb->tlb().demandMisses.value();
            stats.tlbWritebackAccesses +=
                n.dlb->tlb().writebackAccesses.value();
            stats.tlbWritebackMisses +=
                n.dlb->tlb().writebackMisses.value();
            // Sample the requester spread of the still-live DLB
            // entries (retired ones were sampled as they left), then
            // fold this home node into the machine-wide DLB-effect
            // counters (Section 5.2: sharing and prefetching).
            n.dlb->finalizeEntryStats();
            stats.dlbSharedHits += n.dlb->sharedHits.value();
            stats.dlbPrefetchedFills += n.dlb->prefetchedFills.value();
            stats.dlbRequestersPerEntry.merge(
                DistSummary::of(n.dlb->requestersPerEntry));
        }
    }

    stats.pressureProfile = pressure_.profile();

    stats.remoteReads = engine_.remoteReads.value();
    stats.remoteWrites = engine_.remoteWrites.value();
    stats.upgrades = engine_.upgrades.value();
    stats.invalidations = engine_.invalidationsSent.value();
    stats.injections = engine_.injections.value();
    stats.injectionHops = engine_.injectionHops.value();
    stats.sharedDrops = engine_.sharedDrops.value();
    stats.pageFaults = pageTable_.pageFaults.value();
    stats.swapOuts = pageTable_.swapOuts.value();
    stats.tlbShootdowns = engine_.tlbShootdowns.value();

    stats.requestMessages = network_.requestMessages.value();
    stats.blockMessages = network_.blockMessages.value();

    stats.dlbFilteredRefs = engine_.dlbFilteredRefs.value();
    stats.tlbSpillProbes = engine_.tlbSpillProbes.value();
    stats.tlbSpillHits = engine_.tlbSpillHits.value();
    stats.tlbSpillFills = engine_.tlbSpillFills.value();
    stats.remoteReadLatency = DistSummary::of(engine_.remoteReadLatency);
    stats.remoteWriteLatency = DistSummary::of(engine_.remoteWriteLatency);
    stats.dlbFillLatency = DistSummary::of(engine_.dlbFillLatency);
    return stats;
}

} // namespace vcoma
