/**
 * @file
 * The simulated COMA multiprocessor and its execution kernel.
 *
 * Processors are blocking (the paper uses sequential consistency), so
 * the kernel keeps one coroutine per processor and always advances
 * the processor with the smallest local clock; each reference
 * executes atomically against global coherence state at its
 * timestamp. This yields a deterministic, causally consistent
 * interleaving without a general event queue; queueing at shared
 * resources (protocol engines, AM ports, network ports) is captured
 * by next-free-time reservations.
 */

#ifndef VCOMA_SIM_MACHINE_HH
#define VCOMA_SIM_MACHINE_HH

#include <memory>
#include <vector>

#include "coma/directory.hh"
#include "coma/node.hh"
#include "coma/protocol.hh"
#include "common/config.hh"
#include "core/protection.hh"
#include "core/vaddr_layout.hh"
#include "net/network.hh"
#include "sim/run_stats.hh"
#include "translation/scheme.hh"
#include "vm/page_allocator.hh"
#include "vm/page_table.hh"
#include "vm/pressure.hh"
#include "workloads/workload.hh"

namespace vcoma
{

class InvariantChecker;
class EventTracer;

/** A fully assembled machine for one translation scheme. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine();

    /** Run @p workload to completion and collect the stats sheet. */
    RunStats run(Workload &workload);

    /**
     * Execute a single reference directly (unit tests and examples
     * that drive the machine by hand rather than via a workload).
     */
    AccessResult access(CpuId cpu, RefType type, VAddr va, Tick now);

    /**
     * Dump every component's statistics as a gem5-style hierarchy
     * (nodes, caches, TLB/DLBs, protocol, network, VM).
     */
    void dumpStats(std::ostream &os) const;

    /** Reference-bit decay sweeps performed (Section 4.1 daemon). */
    std::uint64_t refBitDecays() const { return refBitDecays_.value(); }

    /** The coherence sanitizer, or nullptr when checking is off. */
    InvariantChecker *checker() { return checker_.get(); }

    /** The event tracer ($VCOMA_TRACE_EVENTS), or nullptr when off. */
    EventTracer *tracer() { return tracer_.get(); }

    /** Effective sanitizer interval (config or $VCOMA_CHECK); 0=off. */
    std::uint64_t invariantCheckInterval() const { return checkInterval_; }

    /**
     * Is the engine's hit fast path active for this machine (the
     * config/$VCOMA_FASTPATH knob after the structural scheme and
     * check-level gates)?
     */
    bool fastPathActive() const { return engine_.fastPathEnabled(); }

    /** Effective watchdog limit (config or $VCOMA_WATCHDOG); 0=off. */
    Cycles watchdogCycles() const { return watchdogCycles_; }

    /** @{ @name Component access */
    const MachineConfig &config() const { return cfg_; }
    const SchemeTraits &traits() const { return traits_; }
    const VAddrLayout &layout() const { return layout_; }
    PageTable &pageTable() { return pageTable_; }
    Directory &directory() { return directory_; }
    Network &network() { return network_; }
    CoherenceEngine &engine() { return engine_; }
    ProtectionManager &protection() { return protection_; }
    PressureTracker &pressure() { return pressure_; }
    Node &node(NodeId id) { return *nodes_.at(id); }
    unsigned numNodes() const { return cfg_.numNodes; }
    /** @} */

  private:
    /** Page-daemon victim: another resident page of @p colour. */
    PageNum pickSwapVictim(std::uint64_t colour, PageNum protect);

    /**
     * Add @p weight to the sanitizer's sweep budget and run a full
     * sweep once it reaches the configured interval.
     */
    void creditInvariantSweep(std::uint64_t weight);

    /** Gather the stats sheet after a run. */
    RunStats collect(Workload &workload, std::vector<CpuStats> cpus,
                     Tick execTime);

    MachineConfig cfg_;
    SchemeTraits traits_;
    VAddrLayout layout_;
    PressureTracker pressure_;
    std::unique_ptr<PageAllocator> allocator_;
    PageTable pageTable_;
    Directory directory_;
    Network network_;
    std::vector<std::unique_ptr<Node>> nodes_;
    CoherenceEngine engine_;
    ProtectionManager protection_;
    Counter refBitDecays_;
    /** Present only when $VCOMA_TRACE_EVENTS names an output file. */
    std::unique_ptr<EventTracer> tracer_;
    /** Present only when the sanitizer is enabled for this run. */
    std::unique_ptr<InvariantChecker> checker_;
    std::uint64_t checkInterval_ = 0;
    std::uint64_t checkCredit_ = 0;
    Cycles watchdogCycles_ = 0;
};

} // namespace vcoma

#endif // VCOMA_SIM_MACHINE_HH
