/**
 * @file
 * Conversion and inspection helpers behind the `vcoma_trace` CLI:
 * the bridge between the human-readable text trace grammar
 * (sim/trace.hh, "vcoma-trace-v1") and the packed binary format
 * (sim/memref_pack.hh) that ReplayWorkload — and therefore any
 * "TRACE:<path>" workload spelling — consumes. Captured or
 * hand-written streams become first-class grid scenarios without
 * recompiling anything.
 */

#ifndef VCOMA_SIM_TRACE_CONVERT_HH
#define VCOMA_SIM_TRACE_CONVERT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vcoma
{

/** Header facts of one packed trace, for inspect/validate. */
struct PackedTraceSummary
{
    unsigned threads = 0;
    std::uint64_t totalEvents = 0;
    std::uint64_t sharedBytes = 0;
    std::string key;
    std::string workloadName;
    std::string parameters;
    /** Events per thread, in tid order. */
    std::vector<std::uint64_t> perThreadEvents;
};

/**
 * Map and fully validate the packed trace at @p path (checksum,
 * version, index — everything the replay path would check).
 * @throws TraceFormatError on any defect.
 */
PackedTraceSummary summarizePackedTrace(const std::string &path);

/**
 * Convert a text trace (the sim/trace.hh grammar) read from @p in
 * into a packed trace published atomically at @p outPath. @p name
 * and @p key are stored in the header: the name becomes the replayed
 * workload's name in stats sheets; the key is free-form provenance
 * (external traces are not tied to an experiment cache key).
 * fatal() on malformed text input (with the offending line number);
 * @throws std::runtime_error when publishing fails.
 * @return total events written.
 */
std::uint64_t convertTextTraceToPacked(std::istream &in,
                                       const std::string &outPath,
                                       const std::string &name = "TRACE",
                                       const std::string &key =
                                           "external");

/**
 * Write the packed trace at @p path back out as text, one thread at
 * a time in tid order (a valid, if unexciting, interleaving of the
 * same grammar — converting the dump again yields identical
 * per-thread streams). @throws TraceFormatError on a bad trace.
 */
void dumpPackedTraceAsText(const std::string &path, std::ostream &os);

} // namespace vcoma

#endif // VCOMA_SIM_TRACE_CONVERT_HH
