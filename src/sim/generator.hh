/**
 * @file
 * A minimal C++20 coroutine generator.
 *
 * Workload threads are written as ordinary sequential algorithms that
 * co_yield a MemRef for every shared-memory access; the simulation
 * kernel pulls from one generator per simulated processor. This keeps
 * the benchmark kernels readable (they look like the original SPLASH-2
 * loops) without materialising full traces in memory.
 */

#ifndef VCOMA_SIM_GENERATOR_HH
#define VCOMA_SIM_GENERATOR_HH

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace vcoma
{

/** Lazily-evaluated stream of T values produced by a coroutine. */
template <typename T>
class Generator
{
  public:
    struct promise_type
    {
        T current{};
        std::exception_ptr exception;

        Generator
        get_return_object()
        {
            return Generator{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }

        std::suspend_always
        yield_value(T value) noexcept
        {
            current = std::move(value);
            return {};
        }

        void return_void() noexcept {}
        void unhandled_exception() { exception = std::current_exception(); }
    };

    Generator() = default;

    explicit Generator(std::coroutine_handle<promise_type> h) : handle_(h) {}

    Generator(Generator &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    Generator &
    operator=(Generator &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Generator(const Generator &) = delete;
    Generator &operator=(const Generator &) = delete;

    ~Generator() { destroy(); }

    /**
     * Advance the coroutine and return the next value, or nullopt if
     * the stream is exhausted. Rethrows exceptions escaping the
     * coroutine body.
     */
    std::optional<T>
    next()
    {
        if (!handle_ || handle_.done())
            return std::nullopt;
        handle_.resume();
        if (handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
        if (handle_.done())
            return std::nullopt;
        return handle_.promise().current;
    }

    /**
     * Advance the coroutine and return a pointer to the next value,
     * or nullptr when the stream is exhausted. The pointee lives in
     * the coroutine frame and is overwritten by the following
     * advance; the per-reference simulation loop uses this to avoid
     * two value copies per event.
     */
    const T *
    nextPtr()
    {
        if (!handle_ || handle_.done())
            return nullptr;
        handle_.resume();
        if (handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
        if (handle_.done())
            return nullptr;
        return &handle_.promise().current;
    }

    /** True if the coroutine can still produce values. */
    bool alive() const { return handle_ && !handle_.done(); }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

} // namespace vcoma

#endif // VCOMA_SIM_GENERATOR_HH
