#include "sim/trace_convert.hh"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/logging.hh"
#include "sim/memref_pack.hh"
#include "sim/trace.hh"

namespace vcoma
{

PackedTraceSummary
summarizePackedTrace(const std::string &path)
{
    const PackedTrace trace(path);
    PackedTraceSummary s;
    s.threads = trace.threads();
    s.totalEvents = trace.totalEvents();
    s.sharedBytes = trace.sharedBytes();
    s.key = trace.key();
    s.workloadName = trace.workloadName();
    s.parameters = trace.parameters();
    s.perThreadEvents.reserve(s.threads);
    for (unsigned t = 0; t < s.threads; ++t)
        s.perThreadEvents.push_back(trace.stream(t).size());
    return s;
}

std::uint64_t
convertTextTraceToPacked(std::istream &in, const std::string &outPath,
                         const std::string &name,
                         const std::string &key)
{
    // The text parser owns the grammar (and its line-numbered
    // diagnostics); the workload it yields carries the per-thread
    // streams and the footprint of every touched address.
    TraceWorkload text(in, name);
    PackedTraceWriter writer(outPath, text.numThreads(), key,
                             text.name(), text.parameters(),
                             text.sharedBytes());
    std::uint64_t events = 0;
    for (unsigned t = 0; t < text.numThreads(); ++t) {
        for (const MemRef &ref : text.events(t)) {
            writer.append(t, ref);
            ++events;
        }
    }
    std::string error;
    if (!writer.finalize(&error))
        throw std::runtime_error("cannot publish '" + outPath +
                                 "': " + error);
    return events;
}

void
dumpPackedTraceAsText(const std::string &path, std::ostream &os)
{
    const PackedTrace trace(path);
    os << "vcoma-trace-v1\n";
    os << "threads " << trace.threads() << "\n";
    for (unsigned t = 0; t < trace.threads(); ++t) {
        for (const MemRef &ref : trace.stream(t)) {
            os << t << " ";
            switch (ref.kind) {
              case MemRef::Kind::Mem:
                os << (ref.type == RefType::Read ? 'R' : 'W') << " "
                   << ref.vaddr << " " << ref.work;
                break;
              case MemRef::Kind::Barrier:
                os << "B " << ref.syncId;
                break;
              case MemRef::Kind::LockAcquire:
                os << "L " << ref.syncId;
                break;
              case MemRef::Kind::LockRelease:
                os << "U " << ref.syncId;
                break;
            }
            os << "\n";
        }
    }
}

} // namespace vcoma
