/**
 * @file
 * Synchronisation for the simulated multiprocessor: global barriers
 * and queued locks. The simulation kernel parks processors that must
 * wait and wakes them with the grant/release times computed here; the
 * wait shows up as the "sync" component of Figure 10.
 */

#ifndef VCOMA_SIM_SYNC_HH
#define VCOMA_SIM_SYNC_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace vcoma
{

/** Barrier and lock state for one run. */
class SyncManager
{
  public:
    SyncManager(unsigned numCpus, const TimingConfig &timing);

    /** All processors released by a completed barrier episode. */
    struct BarrierRelease
    {
        Tick releaseAt = 0;
        /** (cpu, arrival tick) pairs, including the last arriver. */
        std::vector<std::pair<CpuId, Tick>> waiters;
    };

    /**
     * Processor @p cpu reaches barrier @p id at @p now. Returns the
     * release set if this arrival completes the episode; otherwise
     * the processor is parked.
     */
    std::optional<BarrierRelease> arriveBarrier(std::uint32_t id,
                                                CpuId cpu, Tick now);

    /**
     * Try to acquire lock @p id. Returns the grant tick if the lock
     * was free; otherwise the processor is parked in the lock's FIFO
     * queue until releaseLock() hands it over.
     */
    std::optional<Tick> acquireLock(std::uint32_t id, CpuId cpu, Tick now);

    /**
     * Release lock @p id at @p now. If a processor was queued, it is
     * granted the lock; returns (cpu, arrival tick, grant tick).
     */
    struct LockGrant
    {
        CpuId cpu = 0;
        Tick arrivedAt = 0;
        Tick grantedAt = 0;
    };
    std::optional<LockGrant> releaseLock(std::uint32_t id, CpuId cpu,
                                         Tick now);

    /** Processors currently parked (deadlock detection). */
    unsigned parked() const { return parked_; }

    /** What one parked processor is waiting on (diagnostics). */
    struct ParkedWaiter
    {
        enum class Kind : std::uint8_t { Barrier, Lock };

        CpuId cpu = 0;
        Kind kind = Kind::Barrier;
        /** Barrier or lock identifier. */
        std::uint32_t id = 0;
        /** Tick at which the processor parked. */
        Tick since = 0;
    };

    /**
     * Every currently parked processor with the barrier or lock it
     * waits on, sorted by cpu id (deadlock/watchdog dumps).
     */
    std::vector<ParkedWaiter> parkedWaiters() const;

    Counter barrierEpisodes;
    Counter lockAcquires;
    Counter lockContended;

  private:
    struct Barrier
    {
        std::vector<std::pair<CpuId, Tick>> arrived;
    };

    struct Lock
    {
        bool held = false;
        CpuId holder = 0;
        std::deque<std::pair<CpuId, Tick>> queue;
    };

    unsigned numCpus_;
    TimingConfig timing_;
    unsigned parked_ = 0;
    std::unordered_map<std::uint32_t, Barrier> barriers_;
    std::unordered_map<std::uint32_t, Lock> locks_;
};

} // namespace vcoma

#endif // VCOMA_SIM_SYNC_HH
