/**
 * @file
 * Binary record/replay of reference streams: the packed memref trace
 * format.
 *
 * A packed trace stores the per-thread MemRef streams a workload fed
 * the simulation kernel, so subsequent runs of the same experiment
 * replay the recorded bytes instead of re-executing the workload
 * algorithm. The format is little-endian throughout and fixed-width,
 * so a trace can be mmapped and — on little-endian hosts, where the
 * record layout provably matches MemRef (static_asserts below) —
 * consumed in place with no per-record decode at all.
 *
 * File layout (version 1):
 *
 *     offset  size  field
 *     ------  ----  -----------------------------------------
 *          0     8  magic "VCMTRC1\n"
 *          8     4  u32 version            (1)
 *         12     4  u32 recordBytes        (24)
 *         16     4  u32 threads            (> 0)
 *         20     4  u32 flags              (bit 0: little-endian payload)
 *         24     8  u64 totalEvents        (sum of per-thread counts)
 *         32     8  u64 sharedBytes        (workload footprint)
 *         40     8  u64 payloadChecksum    (FNV-1a/64 over payload words)
 *         48     4  u32 keyBytes           |
 *         52     4  u32 nameBytes          | string-section lengths
 *         56     4  u32 paramsBytes        |
 *         60     4  u32 reserved           (0)
 *         64     -  key, name, params      (raw bytes, padded to 8)
 *          -     -  index: threads x { u64 payloadOffset, u64 count }
 *          -     -  payload: per-thread record arrays, 8-aligned,
 *                   ascending, exactly filling the rest of the file
 *
 * Record layout (24 bytes; byte offsets within one record):
 *
 *     offset  size  field
 *     ------  ----  --------------------------
 *          0     1  u8  kind    (MemRef::Kind, <= 3)
 *          1     1  u8  type    (RefType, <= 1)
 *          2     6  zero padding
 *          8     8  u64 vaddr
 *         16     4  u32 work
 *         20     4  u32 syncId
 *
 * Versioning/compat rules: the magic never changes; any change to the
 * record layout, header fields or index encoding bumps `version`, and
 * readers reject versions they do not know (there is no in-place
 * migration — a rejected trace is simply re-recorded). Every
 * structural check failure throws TraceFormatError with the offending
 * detail, never a crash and never a silent partial replay.
 */

#ifndef VCOMA_SIM_MEMREF_PACK_HH
#define VCOMA_SIM_MEMREF_PACK_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/memref.hh"

namespace vcoma
{

/** A trace file that cannot be used: corrupt, truncated, wrong
 * version, or simply not a packed memref trace. */
class TraceFormatError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Size of one packed record on disk. */
constexpr std::size_t packedRecordBytes = 24;

/** Size of the fixed file header (before the string section). */
constexpr std::size_t packedHeaderBytes = 64;

/**
 * Format version written by this build. v2 has the identical byte
 * layout as v1 but marks the unbiased Rng::below() era: traces
 * recorded before the modulo-bias fix carry pre-fix reference
 * streams and must re-record rather than silently replay into fresh
 * sweeps (the disk-cache magic made the same jump to vcoma-cache-v4).
 */
constexpr std::uint32_t packedTraceVersion = 2;

/** The 8-byte magic at offset 0. */
constexpr char packedTraceMagic[8] = {'V', 'C', 'M', 'T',
                                      'R', 'C', '1', '\n'};

// The zero-copy replay path reinterprets the mmapped payload as an
// array of MemRef. That is only sound when MemRef's in-memory layout
// is exactly the documented record layout; pin every offset here so a
// drive-by edit to MemRef breaks the build, not the trace format.
static_assert(std::is_trivially_copyable_v<MemRef>);
static_assert(sizeof(MemRef) == packedRecordBytes);
static_assert(offsetof(MemRef, kind) == 0);
static_assert(offsetof(MemRef, type) == 1);
static_assert(offsetof(MemRef, vaddr) == 8);
static_assert(offsetof(MemRef, work) == 16);
static_assert(offsetof(MemRef, syncId) == 20);
static_assert(sizeof(MemRef::kind) == 1 && sizeof(MemRef::type) == 1);

/**
 * True when the mmapped payload can be consumed in place as MemRef[]
 * (little-endian host; the offsets are pinned above). Big-endian
 * hosts fall back to a per-record decode into owned memory.
 */
constexpr bool packedLayoutIsRaw =
    std::endian::native == std::endian::little;

/** Encode @p ref into exactly packedRecordBytes at @p out
 * (little-endian, padding zeroed — byte-deterministic). */
void packMemRef(const MemRef &ref, unsigned char *out);

/** Decode one packed record (little-endian) from @p in. */
MemRef unpackMemRef(const unsigned char *in);

/**
 * Streaming writer: stages append()ed records in a single temp file
 * next to @p finalPath and publishes the assembled trace with an
 * atomic rename in finalize(). A writer that is destroyed without a
 * successful finalize() leaves no trace behind (the staging file is
 * removed), so a failed or aborted run can never publish a partial
 * trace.
 */
class PackedTraceWriter
{
  public:
    /**
     * @param finalPath path the finished trace is published at
     * @param threads   thread count of the recorded workload
     * @param key       experiment cache key the trace belongs to
     * @param name      Workload::name() of the recorded workload
     * @param params    Workload::parameters() of the workload
     * @param sharedBytes Workload::sharedBytes() of the workload
     */
    PackedTraceWriter(std::string finalPath, unsigned threads,
                      std::string key, std::string name,
                      std::string params, std::uint64_t sharedBytes);
    ~PackedTraceWriter();

    PackedTraceWriter(const PackedTraceWriter &) = delete;
    PackedTraceWriter &operator=(const PackedTraceWriter &) = delete;

    /** Record one event of thread @p tid (program order per thread). */
    void
    append(unsigned tid, const MemRef &ref)
    {
        Buffer &b = buffers_[tid];
        packMemRef(ref, b.bytes.data() + b.used);
        b.used += packedRecordBytes;
        ++counts_[tid];
        if (b.used == b.bytes.size())
            flush(tid);
    }

    /**
     * Assemble the final trace and publish it atomically. Returns
     * false (with @p error filled) on any I/O failure; the partial
     * staging data is discarded either way.
     */
    bool finalize(std::string *error = nullptr);

    /** Events recorded so far. */
    std::uint64_t totalEvents() const;

    /** True once finalize() succeeded. */
    bool finalized() const { return finalized_; }

  private:
    struct Buffer
    {
        std::vector<unsigned char> bytes;
        std::size_t used = 0;
    };

    void flush(unsigned tid);
    void discardStaging();

    std::string finalPath_;
    std::string stagingPath_;
    std::string key_;
    std::string name_;
    std::string params_;
    std::uint64_t sharedBytes_;
    unsigned threads_;
    std::ofstream staging_;
    bool ioFailed_ = false;
    bool finalized_ = false;
    std::vector<Buffer> buffers_;
    std::vector<std::uint64_t> counts_;
};

/**
 * A validated, memory-mapped packed trace. open() performs the full
 * structural check (header, index, payload bounds) plus an O(n)
 * payload scan (checksum and kind/type range), so a stream() span is
 * guaranteed to contain only well-formed MemRefs — the replay hot
 * loop never re-validates.
 */
class PackedTrace
{
  public:
    /** Map and validate @p path. @throws TraceFormatError */
    explicit PackedTrace(const std::string &path);
    ~PackedTrace();

    PackedTrace(PackedTrace &&other) noexcept;
    PackedTrace &operator=(PackedTrace &&) = delete;
    PackedTrace(const PackedTrace &) = delete;
    PackedTrace &operator=(const PackedTrace &) = delete;

    unsigned threads() const { return threads_; }
    std::uint64_t totalEvents() const { return totalEvents_; }
    std::uint64_t sharedBytes() const { return sharedBytes_; }
    /** Experiment cache key recorded at write time. */
    const std::string &key() const { return key_; }
    /** Workload::name() of the recorded workload. */
    const std::string &workloadName() const { return name_; }
    /** Workload::parameters() of the recorded workload. */
    const std::string &parameters() const { return params_; }

    /** The recorded stream of thread @p tid, ready to replay. */
    std::span<const MemRef>
    stream(unsigned tid) const
    {
        return streams_.at(tid);
    }

  private:
    void unmap();

    /** mmap base (or nullptr when the decoded fallback is in use). */
    void *map_ = nullptr;
    std::size_t mapBytes_ = 0;
    /** Owned decoded records (big-endian hosts only). */
    std::vector<std::vector<MemRef>> decoded_;
    std::vector<std::span<const MemRef>> streams_;
    unsigned threads_ = 0;
    std::uint64_t totalEvents_ = 0;
    std::uint64_t sharedBytes_ = 0;
    std::string key_;
    std::string name_;
    std::string params_;
};

} // namespace vcoma

#endif // VCOMA_SIM_MEMREF_PACK_HH
