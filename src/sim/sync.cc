#include "sim/sync.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vcoma
{

SyncManager::SyncManager(unsigned numCpus, const TimingConfig &timing)
    : numCpus_(numCpus), timing_(timing)
{
}

std::vector<SyncManager::ParkedWaiter>
SyncManager::parkedWaiters() const
{
    std::vector<ParkedWaiter> waiters;
    // Every processor recorded in an incomplete barrier episode is
    // parked (the completing arrival clears the episode), as is every
    // processor queued on a held lock.
    for (const auto &[id, barrier] : barriers_) {
        for (const auto &[cpu, since] : barrier.arrived)
            waiters.push_back({cpu, ParkedWaiter::Kind::Barrier, id, since});
    }
    for (const auto &[id, lock] : locks_) {
        for (const auto &[cpu, since] : lock.queue)
            waiters.push_back({cpu, ParkedWaiter::Kind::Lock, id, since});
    }
    std::sort(waiters.begin(), waiters.end(),
              [](const ParkedWaiter &a, const ParkedWaiter &b) {
                  return a.cpu < b.cpu;
              });
    VCOMA_ASSERT(waiters.size() == parked_);
    return waiters;
}

std::optional<SyncManager::BarrierRelease>
SyncManager::arriveBarrier(std::uint32_t id, CpuId cpu, Tick now)
{
    Barrier &barrier = barriers_[id];
    for (const auto &[c, t] : barrier.arrived) {
        if (c == cpu)
            panic("cpu ", cpu, " arrived twice at barrier ", id);
    }
    barrier.arrived.emplace_back(cpu, now);

    if (barrier.arrived.size() < numCpus_) {
        ++parked_;
        return std::nullopt;
    }

    // Last arriver: release everyone.
    Tick latest = 0;
    for (const auto &[c, t] : barrier.arrived)
        latest = std::max(latest, t);
    BarrierRelease release;
    release.releaseAt = latest + timing_.barrierRelease;
    release.waiters = std::move(barrier.arrived);
    parked_ -= static_cast<unsigned>(release.waiters.size() - 1);
    barriers_.erase(id);
    ++barrierEpisodes;
    return release;
}

std::optional<Tick>
SyncManager::acquireLock(std::uint32_t id, CpuId cpu, Tick now)
{
    Lock &lock = locks_[id];
    ++lockAcquires;
    if (!lock.held) {
        lock.held = true;
        lock.holder = cpu;
        return now + timing_.lockTransfer;
    }
    ++lockContended;
    ++parked_;
    lock.queue.emplace_back(cpu, now);
    return std::nullopt;
}

std::optional<SyncManager::LockGrant>
SyncManager::releaseLock(std::uint32_t id, CpuId cpu, Tick now)
{
    auto it = locks_.find(id);
    if (it == locks_.end() || !it->second.held)
        panic("release of a free lock ", id);
    Lock &lock = it->second;
    if (lock.holder != cpu)
        panic("cpu ", cpu, " released lock ", id, " held by ",
              lock.holder);

    if (lock.queue.empty()) {
        lock.held = false;
        return std::nullopt;
    }

    const auto [next, arrived] = lock.queue.front();
    lock.queue.pop_front();
    --parked_;
    lock.holder = next;
    return LockGrant{next, arrived, now + timing_.lockTransfer};
}

} // namespace vcoma
