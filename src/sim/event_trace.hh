/**
 * @file
 * Protocol event tracer emitting Chrome trace-event JSON (the format
 * chrome://tracing and Perfetto open directly). One trace "process"
 * per node; within a node, separate tracks for coherence
 * transactions, translation (TLB/DLB) fills and invalidations.
 *
 * Tracing is off unless VCOMA_TRACE_EVENTS=<path> is set, in which
 * case every Machine buffers its events in memory and writes the file
 * when the run finishes. Events are buffered rather than streamed so
 * the writer can sort them by timestamp: the execution kernel visits
 * processors in heap order, not time order, and trace viewers expect
 * per-track monotonic timestamps.
 *
 * When several simulations run concurrently (Runner::runAll) they
 * each flush the whole file under a process-wide lock; the last
 * finisher wins. Point the variable at a fresh path and run a single
 * config when a specific trace is wanted.
 */

#ifndef VCOMA_SIM_EVENT_TRACE_HH
#define VCOMA_SIM_EVENT_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vcoma
{

class EventTracer
{
  public:
    /** Track ids within one node's process row. */
    enum Track : unsigned {
        TrackCoherence = 0,
        TrackTranslation = 1,
        TrackInvalidation = 2,
    };

    /** Environment variable naming the output file. */
    static constexpr const char *envVar = "VCOMA_TRACE_EVENTS";

    /** Tracer from $VCOMA_TRACE_EVENTS, or nullptr when unset/empty. */
    static std::unique_ptr<EventTracer> fromEnv();

    explicit EventTracer(std::string path) : path_(std::move(path)) {}
    ~EventTracer();

    EventTracer(const EventTracer &) = delete;
    EventTracer &operator=(const EventTracer &) = delete;

    /**
     * Record a duration ("complete") event on @p node's @p track
     * spanning [start, end] cycles, tagged with the virtual address
     * it concerns.
     */
    void
    complete(const char *name, unsigned track, NodeId node, Tick start,
             Tick end, std::uint64_t va)
    {
        events_.push_back(
            {name, start, end >= start ? end - start : 0, va, node,
             track, true});
    }

    /** Record a point-in-time ("instant") event. */
    void
    instant(const char *name, unsigned track, NodeId node, Tick ts,
            std::uint64_t va)
    {
        events_.push_back({name, ts, 0, va, node, track, false});
    }

    /** Sort and write the trace file; subsequent calls are no-ops. */
    void flush(unsigned numNodes);

    const std::string &path() const { return path_; }
    std::size_t pending() const { return events_.size(); }

  private:
    struct Event
    {
        const char *name;  ///< static string literal
        Tick ts;
        Tick dur;
        std::uint64_t va;
        NodeId node;
        unsigned track;
        bool complete;
    };

    std::string path_;
    std::vector<Event> events_;
    bool flushed_ = false;
};

} // namespace vcoma

#endif // VCOMA_SIM_EVENT_TRACE_HH
