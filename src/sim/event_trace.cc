#include "sim/event_trace.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "common/json.hh"
#include "common/logging.hh"

namespace vcoma
{

namespace
{

/// Serialises concurrent flushes from parallel Runner workers.
std::mutex traceFileMutex;

const char *
trackName(unsigned track)
{
    switch (track) {
      case EventTracer::TrackCoherence: return "coherence";
      case EventTracer::TrackTranslation: return "translation";
      case EventTracer::TrackInvalidation: return "invalidation";
      default: return "other";
    }
}

} // namespace

std::unique_ptr<EventTracer>
EventTracer::fromEnv()
{
    const char *path = std::getenv(envVar);
    if (!path || !*path)
        return nullptr;
    return std::make_unique<EventTracer>(path);
}

EventTracer::~EventTracer()
{
    if (!flushed_ && !events_.empty()) {
        // Machine::run flushes with the real node count; this path
        // only triggers when a run aborts part-way.
        NodeId maxNode = 0;
        for (const Event &e : events_)
            maxNode = std::max(maxNode, e.node);
        try {
            flush(maxNode + 1);
        } catch (...) {
            // Never throw from a destructor; the trace is best-effort.
        }
    }
}

void
EventTracer::flush(unsigned numNodes)
{
    if (flushed_)
        return;
    flushed_ = true;

    // Viewers want per-track monotonic timestamps; the simulation
    // kernel emits events in heap order, so sort before writing.
    // stable_sort keeps same-tick events in emission (causal) order.
    std::stable_sort(events_.begin(), events_.end(),
                     [](const Event &a, const Event &b) {
                         if (a.node != b.node)
                             return a.node < b.node;
                         if (a.track != b.track)
                             return a.track < b.track;
                         return a.ts < b.ts;
                     });

    std::lock_guard<std::mutex> lock(traceFileMutex);
    std::ofstream os(path_, std::ios::trunc);
    if (!os) {
        warn("event trace: cannot open ", path_, "; trace dropped");
        return;
    }

    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    const auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Metadata rows: name each node's process and each used track.
    for (unsigned n = 0; n < numNodes; ++n) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << n
           << ",\"tid\":0,\"args\":{\"name\":\"node" << n << "\"}}";
        for (unsigned t = TrackCoherence; t <= TrackInvalidation; ++t) {
            sep();
            os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << n
               << ",\"tid\":" << t << ",\"args\":{\"name\":\""
               << trackName(t) << "\"}}";
        }
    }

    for (const Event &e : events_) {
        sep();
        os << "{\"ph\":\"" << (e.complete ? 'X' : 'i') << "\",\"name\":\""
           << jsonEscape(e.name) << "\",\"cat\":\"" << trackName(e.track)
           << "\",\"pid\":" << e.node << ",\"tid\":" << e.track
           << ",\"ts\":" << e.ts;
        if (e.complete)
            os << ",\"dur\":" << e.dur;
        else
            os << ",\"s\":\"t\"";
        os << ",\"args\":{\"va\":" << e.va << "}}";
    }
    os << "]}\n";
    if (!os)
        warn("event trace: write to ", path_, " failed");
    events_.clear();
    events_.shrink_to_fit();
}

} // namespace vcoma
