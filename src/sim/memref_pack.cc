#include "sim/memref_pack.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <utility>

#include "common/logging.hh"

namespace vcoma
{

namespace
{

/** Per-thread staging buffer: 4096 records (96 KB) between flushes. */
constexpr std::size_t stagingRecords = 4096;

inline void
putU32(unsigned char *out, std::uint32_t v)
{
    out[0] = static_cast<unsigned char>(v);
    out[1] = static_cast<unsigned char>(v >> 8);
    out[2] = static_cast<unsigned char>(v >> 16);
    out[3] = static_cast<unsigned char>(v >> 24);
}

inline void
putU64(unsigned char *out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
    putU32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint32_t
getU32(const unsigned char *in)
{
    return static_cast<std::uint32_t>(in[0]) |
           static_cast<std::uint32_t>(in[1]) << 8 |
           static_cast<std::uint32_t>(in[2]) << 16 |
           static_cast<std::uint32_t>(in[3]) << 24;
}

inline std::uint64_t
getU64(const unsigned char *in)
{
    return static_cast<std::uint64_t>(getU32(in)) |
           static_cast<std::uint64_t>(getU32(in + 4)) << 32;
}

/** Round @p n up to the next multiple of 8 (string-section padding). */
constexpr std::uint64_t
pad8(std::uint64_t n)
{
    return (n + 7) & ~std::uint64_t{7};
}

/**
 * FNV-1a over the payload, mixed 8 bytes at a time (the payload is a
 * multiple of 24 and therefore of 8). Word-at-a-time keeps the open()
 * validation pass cheap even for multi-GB traces.
 */
std::uint64_t
payloadChecksum(const unsigned char *p, std::size_t bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    constexpr std::uint64_t prime = 0x100000001b3ULL;
    for (std::size_t i = 0; i + 8 <= bytes; i += 8)
        hash = (hash ^ getU64(p + i)) * prime;
    return hash;
}

[[noreturn]] void
reject(const std::string &path, const std::string &why)
{
    throw TraceFormatError("packed trace '" + path + "': " + why);
}

} // namespace

void
packMemRef(const MemRef &ref, unsigned char *out)
{
    out[0] = static_cast<unsigned char>(ref.kind);
    out[1] = static_cast<unsigned char>(ref.type);
    std::memset(out + 2, 0, 6);
    putU64(out + 8, ref.vaddr);
    putU32(out + 16, ref.work);
    putU32(out + 20, ref.syncId);
}

MemRef
unpackMemRef(const unsigned char *in)
{
    MemRef ref;
    ref.kind = static_cast<MemRef::Kind>(in[0]);
    ref.type = static_cast<RefType>(in[1]);
    ref.vaddr = getU64(in + 8);
    ref.work = getU32(in + 16);
    ref.syncId = getU32(in + 20);
    return ref;
}

// ---------------------------------------------------------------------
// PackedTraceWriter

PackedTraceWriter::PackedTraceWriter(std::string finalPath,
                                     unsigned threads, std::string key,
                                     std::string name, std::string params,
                                     std::uint64_t sharedBytes)
    : finalPath_(std::move(finalPath)),
      key_(std::move(key)),
      name_(std::move(name)),
      params_(std::move(params)),
      sharedBytes_(sharedBytes),
      threads_(threads),
      buffers_(threads),
      counts_(threads, 0)
{
    VCOMA_ASSERT(threads_ > 0);
    // Unique across processes (pid) and across writers within one
    // process (a shared counter), like the result cache's staging.
    static std::atomic<unsigned> seq{0};
    stagingPath_ = finalPath_ + ".tmp." + std::to_string(::getpid()) +
                   "." + std::to_string(seq.fetch_add(1));
    for (Buffer &b : buffers_)
        b.bytes.resize(stagingRecords * packedRecordBytes);
    staging_.open(stagingPath_, std::ios::binary | std::ios::trunc);
    if (!staging_) {
        warn("cannot create trace staging file '", stagingPath_,
             "': recording disabled for this run");
        ioFailed_ = true;
    }
}

PackedTraceWriter::~PackedTraceWriter()
{
    discardStaging();
}

std::uint64_t
PackedTraceWriter::totalEvents() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : counts_)
        total += c;
    return total;
}

void
PackedTraceWriter::flush(unsigned tid)
{
    Buffer &b = buffers_[tid];
    if (b.used == 0 || ioFailed_)
        return;
    // Staging chunk: u32 tid, u32 recordCount, then the raw records.
    // One sequential staging file keeps the recorder to a single fd
    // however many threads the workload has.
    unsigned char head[8];
    putU32(head, tid);
    putU32(head + 4, static_cast<std::uint32_t>(b.used /
                                                packedRecordBytes));
    staging_.write(reinterpret_cast<const char *>(head), sizeof(head));
    staging_.write(reinterpret_cast<const char *>(b.bytes.data()),
                   static_cast<std::streamsize>(b.used));
    if (!staging_)
        ioFailed_ = true;
    b.used = 0;
}

void
PackedTraceWriter::discardStaging()
{
    if (staging_.is_open())
        staging_.close();
    if (!stagingPath_.empty()) {
        std::error_code ec;
        std::filesystem::remove(stagingPath_, ec);
        stagingPath_.clear();
    }
}

bool
PackedTraceWriter::finalize(std::string *error)
{
    if (finalized_) {
        if (error)
            *error = "finalize() called twice";
        return false;
    }
    const std::string outPath = stagingPath_ + ".out";
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        std::error_code ec;
        std::filesystem::remove(outPath, ec);
        discardStaging();
        return false;
    };
    for (unsigned t = 0; t < threads_; ++t)
        flush(t);
    staging_.close();
    if (ioFailed_)
        return fail("I/O failure while staging '" + stagingPath_ + "'");

    // Compute the final layout from the per-thread totals.
    const std::uint64_t strings =
        pad8(key_.size() + name_.size() + params_.size());
    const std::uint64_t indexOffset = packedHeaderBytes + strings;
    const std::uint64_t payloadStart =
        indexOffset + std::uint64_t{threads_} * 16;
    std::vector<std::uint64_t> offsets(threads_);
    std::uint64_t at = payloadStart;
    for (unsigned t = 0; t < threads_; ++t) {
        offsets[t] = at;
        at += counts_[t] * packedRecordBytes;
    }
    const std::uint64_t fileBytes = at;

    // Stage the assembled trace next to the final path and publish
    // with an atomic rename, exactly like the result cache.
    {
        std::fstream out(outPath, std::ios::binary | std::ios::out |
                                      std::ios::trunc);
        if (!out)
            return fail("cannot create '" + outPath + "'");

        // Body first (so the checksum is known), header last.
        out.seekp(static_cast<std::streamoff>(packedHeaderBytes));
        out.write(key_.data(),
                  static_cast<std::streamsize>(key_.size()));
        out.write(name_.data(),
                  static_cast<std::streamsize>(name_.size()));
        out.write(params_.data(),
                  static_cast<std::streamsize>(params_.size()));
        const std::string zeros(
            strings - key_.size() - name_.size() - params_.size(), '\0');
        out.write(zeros.data(),
                  static_cast<std::streamsize>(zeros.size()));
        for (unsigned t = 0; t < threads_; ++t) {
            unsigned char entry[16];
            putU64(entry, offsets[t]);
            putU64(entry + 8, counts_[t]);
            out.write(reinterpret_cast<const char *>(entry),
                      sizeof(entry));
        }

        // Distribute the staged chunks to their per-thread payload
        // positions. Chunks of one thread were flushed in program
        // order, so a running cursor per thread is enough.
        std::ifstream in(stagingPath_, std::ios::binary);
        if (!in)
            return fail("cannot reopen staging '" + stagingPath_ + "'");
        std::vector<std::uint64_t> cursor = offsets;
        std::vector<char> chunk(stagingRecords * packedRecordBytes);
        unsigned char head[8];
        while (in.read(reinterpret_cast<char *>(head), sizeof(head))) {
            const std::uint32_t tid = getU32(head);
            const std::uint64_t bytes =
                std::uint64_t{getU32(head + 4)} * packedRecordBytes;
            if (tid >= threads_ || bytes > chunk.size())
                return fail("staging file corrupt");
            if (!in.read(chunk.data(),
                         static_cast<std::streamsize>(bytes)))
                return fail("staging file truncated");
            out.seekp(static_cast<std::streamoff>(cursor[tid]));
            out.write(chunk.data(), static_cast<std::streamsize>(bytes));
            cursor[tid] += bytes;
        }
        for (unsigned t = 0; t < threads_; ++t) {
            if (cursor[t] != offsets[t] + counts_[t] * packedRecordBytes)
                return fail("staging chunks do not add up");
        }

        // Re-read the payload region for the checksum. (The extra
        // pass reads what the page cache just absorbed; recording is
        // a one-time cost per config.)
        out.flush();
        if (!out)
            return fail("short write to '" + outPath + "'");
        std::ifstream re(outPath, std::ios::binary);
        re.seekg(static_cast<std::streamoff>(payloadStart));
        std::uint64_t hash = 0xcbf29ce484222325ULL;
        constexpr std::uint64_t prime = 0x100000001b3ULL;
        std::vector<unsigned char> block(1 << 20);
        std::uint64_t left = fileBytes - payloadStart;
        while (left > 0) {
            const std::uint64_t want =
                std::min<std::uint64_t>(left, block.size());
            if (!re.read(reinterpret_cast<char *>(block.data()),
                         static_cast<std::streamsize>(want)))
                return fail("cannot re-read '" + outPath + "'");
            for (std::uint64_t i = 0; i + 8 <= want; i += 8)
                hash = (hash ^ getU64(block.data() + i)) * prime;
            left -= want;
        }

        unsigned char header[packedHeaderBytes] = {};
        std::memcpy(header, packedTraceMagic, sizeof(packedTraceMagic));
        putU32(header + 8, packedTraceVersion);
        putU32(header + 12, packedRecordBytes);
        putU32(header + 16, threads_);
        putU32(header + 20, 1);  // flags: little-endian payload
        putU64(header + 24, totalEvents());
        putU64(header + 32, sharedBytes_);
        putU64(header + 40, hash);
        putU32(header + 48, static_cast<std::uint32_t>(key_.size()));
        putU32(header + 52, static_cast<std::uint32_t>(name_.size()));
        putU32(header + 56, static_cast<std::uint32_t>(params_.size()));
        out.seekp(0);
        out.write(reinterpret_cast<const char *>(header),
                  sizeof(header));
        out.close();
        if (!out)
            return fail("short write to '" + outPath + "'");
    }

    std::error_code ec;
    std::filesystem::rename(outPath, finalPath_, ec);
    if (ec) {
        std::filesystem::remove(outPath, ec);
        return fail("cannot publish '" + finalPath_ + "': " +
                    ec.message());
    }
    discardStaging();
    finalized_ = true;
    return true;
}

// ---------------------------------------------------------------------
// PackedTrace

PackedTrace::PackedTrace(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        reject(path, "cannot open");
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        reject(path, "cannot stat");
    }
    const std::uint64_t fileBytes = static_cast<std::uint64_t>(st.st_size);
    if (fileBytes < packedHeaderBytes) {
        ::close(fd);
        reject(path, "truncated: smaller than the fixed header");
    }
    map_ = ::mmap(nullptr, fileBytes, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map_ == MAP_FAILED) {
        map_ = nullptr;
        reject(path, "mmap failed");
    }
    mapBytes_ = fileBytes;
    const unsigned char *base = static_cast<const unsigned char *>(map_);

    // Header checks, most-diagnostic first.
    if (std::memcmp(base, packedTraceMagic, sizeof(packedTraceMagic)) !=
        0) {
        unmap();
        reject(path, "bad magic (not a packed memref trace)");
    }
    const std::uint32_t version = getU32(base + 8);
    if (version != packedTraceVersion) {
        unmap();
        reject(path, "version " + std::to_string(version) +
                         " unsupported (this build reads version " +
                         std::to_string(packedTraceVersion) + ")");
    }
    if (getU32(base + 12) != packedRecordBytes) {
        unmap();
        reject(path, "unexpected record size");
    }
    threads_ = getU32(base + 16);
    if (threads_ == 0) {
        unmap();
        reject(path, "zero threads");
    }
    if ((getU32(base + 20) & 1) == 0) {
        unmap();
        reject(path, "payload is not little-endian");
    }
    totalEvents_ = getU64(base + 24);
    sharedBytes_ = getU64(base + 32);
    const std::uint64_t checksum = getU64(base + 40);
    const std::uint64_t keyBytes = getU32(base + 48);
    const std::uint64_t nameBytes = getU32(base + 52);
    const std::uint64_t paramsBytes = getU32(base + 56);

    const std::uint64_t strings = pad8(keyBytes + nameBytes + paramsBytes);
    const std::uint64_t indexOffset = packedHeaderBytes + strings;
    const std::uint64_t payloadStart =
        indexOffset + std::uint64_t{threads_} * 16;
    if (payloadStart > fileBytes ||
        totalEvents_ >
            (fileBytes - payloadStart) / packedRecordBytes) {
        unmap();
        reject(path, "truncated: header promises more than the file "
                     "holds");
    }
    const char *stringsAt =
        reinterpret_cast<const char *>(base + packedHeaderBytes);
    key_.assign(stringsAt, keyBytes);
    name_.assign(stringsAt + keyBytes, nameBytes);
    params_.assign(stringsAt + keyBytes + nameBytes, paramsBytes);

    // Index checks: ascending, aligned, contiguous, exactly filling
    // the file — any truncation or stray growth is caught here.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> index(threads_);
    std::uint64_t expect = payloadStart;
    std::uint64_t events = 0;
    for (unsigned t = 0; t < threads_; ++t) {
        const unsigned char *e = base + indexOffset + std::uint64_t{t} * 16;
        index[t] = {getU64(e), getU64(e + 8)};
        if (index[t].first != expect || index[t].first % 8 != 0) {
            unmap();
            reject(path, "index entry " + std::to_string(t) +
                             " is not contiguous/aligned");
        }
        expect += index[t].second * packedRecordBytes;
        events += index[t].second;
    }
    if (expect != fileBytes) {
        unmap();
        reject(path, "payload does not fill the file (truncated or "
                     "grown)");
    }
    if (events != totalEvents_) {
        unmap();
        reject(path, "per-thread counts disagree with totalEvents");
    }

    // O(n) payload scan: checksum plus kind/type range, so replay can
    // trust every record without per-reference validation.
    const unsigned char *payload = base + payloadStart;
    const std::uint64_t payloadBytes = fileBytes - payloadStart;
    if (payloadChecksum(payload, payloadBytes) != checksum) {
        unmap();
        reject(path, "payload checksum mismatch (corrupt trace)");
    }
    for (std::uint64_t off = 0; off < payloadBytes;
         off += packedRecordBytes) {
        if (payload[off] >
                static_cast<unsigned char>(MemRef::Kind::LockRelease) ||
            payload[off + 1] >
                static_cast<unsigned char>(RefType::Write)) {
            unmap();
            reject(path, "record at payload offset " +
                             std::to_string(off) +
                             " has an invalid kind/type");
        }
    }

    streams_.reserve(threads_);
    if constexpr (packedLayoutIsRaw) {
        for (unsigned t = 0; t < threads_; ++t) {
            streams_.emplace_back(
                reinterpret_cast<const MemRef *>(base + index[t].first),
                index[t].second);
        }
    } else {
        decoded_.resize(threads_);
        for (unsigned t = 0; t < threads_; ++t) {
            decoded_[t].reserve(index[t].second);
            const unsigned char *p = base + index[t].first;
            for (std::uint64_t i = 0; i < index[t].second; ++i)
                decoded_[t].push_back(
                    unpackMemRef(p + i * packedRecordBytes));
            streams_.emplace_back(decoded_[t]);
        }
        unmap();
    }
}

PackedTrace::~PackedTrace()
{
    unmap();
}

PackedTrace::PackedTrace(PackedTrace &&other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      mapBytes_(std::exchange(other.mapBytes_, 0)),
      decoded_(std::move(other.decoded_)),
      streams_(std::move(other.streams_)),
      threads_(other.threads_),
      totalEvents_(other.totalEvents_),
      sharedBytes_(other.sharedBytes_),
      key_(std::move(other.key_)),
      name_(std::move(other.name_)),
      params_(std::move(other.params_))
{
}

void
PackedTrace::unmap()
{
    if (map_ != nullptr) {
        ::munmap(map_, mapBytes_);
        map_ = nullptr;
        mapBytes_ = 0;
    }
}

} // namespace vcoma
