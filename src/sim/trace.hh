/**
 * @file
 * Reference-trace recording and replay.
 *
 * The workload kernels are execution-driven, but a recorded trace is
 * often more convenient: it can be inspected, diffed, archived, or
 * replayed against many machine configurations without re-running the
 * algorithm. The text format is one event per line:
 *
 *     vcoma-trace-v1
 *     threads <N>
 *     <tid> R <vaddr> <work>      read
 *     <tid> W <vaddr> <work>      write
 *     <tid> B <id>                barrier
 *     <tid> L <id>                lock acquire
 *     <tid> U <id>                lock release
 *
 * Events of one thread appear in program order; threads may be
 * interleaved arbitrarily (the recorder interleaves them the way a
 * barrier-aware round-robin scheduler would). Addresses are decimal
 * or 0x-prefixed hex (never octal); blank lines and lines starting
 * with '#' are ignored, so hand-written and tool-exported traces can
 * carry comments.
 */

#ifndef VCOMA_SIM_TRACE_HH
#define VCOMA_SIM_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/memref.hh"
#include "workloads/workload.hh"

namespace vcoma
{

/**
 * Drain @p workload with a barrier-aware round-robin interleaver and
 * write its trace to @p os.
 * @return total events recorded.
 */
std::uint64_t recordTrace(Workload &workload, std::ostream &os);

/** A workload that replays a previously recorded trace. */
class TraceWorkload : public Workload
{
  public:
    /** Parse a trace from @p is; fatal() on malformed input. */
    explicit TraceWorkload(std::istream &is, std::string name = "TRACE");

    std::string name() const override { return name_; }
    std::string parameters() const override;
    unsigned numThreads() const override;
    Generator<MemRef> thread(unsigned tid) override;
    const AddressSpace &space() const override { return space_; }

    /** Events of one thread (tests). */
    const std::vector<MemRef> &
    events(unsigned tid) const
    {
        return perThread_.at(tid);
    }

  private:
    Generator<MemRef> replay(unsigned tid);

    std::string name_;
    AddressSpace space_;
    std::vector<std::vector<MemRef>> perThread_;
};

} // namespace vcoma

#endif // VCOMA_SIM_TRACE_HH
