#include "sim/run_stats_json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "common/json.hh"
#include "common/logging.hh"
#include "sim/run_stats.hh"
#include "translation/scheme.hh"

namespace vcoma
{

namespace
{

/// Keeps JSONL lines whole under Runner::runAll's worker threads.
std::mutex statsFileMutex;

/// Shortest representation that round-trips a double through JSON.
void
putNumber(std::ostream &os, double v)
{
    // RFC 8259 has no representation for inf/nan ("%.17g" would print
    // them bare and the in-tree parser rejects the line); null is the
    // conventional lossy stand-in.
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Prefer a shorter form when it round-trips exactly.
    char shorter[32];
    for (int prec = 1; prec < 17; ++prec) {
        std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
        if (std::strtod(shorter, nullptr) == v) {
            os << shorter;
            return;
        }
    }
    os << buf;
}

void
putDist(std::ostream &os, const DistSummary &d)
{
    os << "{\"count\":" << d.count << ",\"sum\":";
    putNumber(os, d.sum);
    os << ",\"min\":";
    putNumber(os, d.min);
    os << ",\"max\":";
    putNumber(os, d.max);
    os << ",\"mean\":";
    putNumber(os, d.mean());
    os << "}";
}

} // namespace

void
writeRunStatsJson(std::ostream &os, const RunStats &s)
{
    os << "{\"schema\":1";
    os << ",\"workload\":\"" << jsonEscape(s.workload) << "\"";
    os << ",\"parameters\":\"" << jsonEscape(s.parameters) << "\"";
    os << ",\"scheme\":\"" << jsonEscape(schemeName(s.scheme)) << "\"";
    os << ",\"numNodes\":" << s.numNodes;
    os << ",\"sharedBytes\":" << s.sharedBytes;
    os << ",\"execTime\":" << s.execTime;

    os << ",\"totals\":{\"refs\":" << s.totalRefs()
       << ",\"busy\":" << s.totalBusy() << ",\"sync\":" << s.totalSync()
       << ",\"locStall\":" << s.totalLocStall()
       << ",\"remStall\":" << s.totalRemStall()
       << ",\"xlatStall\":" << s.totalXlatStall() << "}";

    os << ",\"xlatOverTotalStallPct\":";
    putNumber(os, s.xlatOverTotalStallPct());

    os << ",\"cpus\":[";
    for (std::size_t i = 0; i < s.cpus.size(); ++i) {
        const CpuStats &c = s.cpus[i];
        if (i)
            os << ",";
        os << "{\"refs\":" << c.refs << ",\"reads\":" << c.reads
           << ",\"writes\":" << c.writes << ",\"busy\":" << c.busy
           << ",\"sync\":" << c.sync << ",\"locStall\":" << c.locStall
           << ",\"remStall\":" << c.remStall
           << ",\"xlatStall\":" << c.xlatStall
           << ",\"finish\":" << c.finish
           << ",\"accounted\":" << c.accounted() << "}";
    }
    os << "]";

    os << ",\"shadow\":[";
    for (std::size_t i = 0; i < s.shadow.size(); ++i) {
        const ShadowPoint &p = s.shadow[i];
        if (i)
            os << ",";
        os << "{\"entries\":" << p.entries << ",\"assoc\":" << p.assoc
           << ",\"demandAccesses\":" << p.demandAccesses
           << ",\"demandMisses\":" << p.demandMisses
           << ",\"writebackAccesses\":" << p.writebackAccesses
           << ",\"writebackMisses\":" << p.writebackMisses << "}";
    }
    os << "]";

    os << ",\"tlb\":{\"accesses\":" << s.tlbAccesses
       << ",\"misses\":" << s.tlbMisses
       << ",\"writebackAccesses\":" << s.tlbWritebackAccesses
       << ",\"writebackMisses\":" << s.tlbWritebackMisses << "}";

    os << ",\"pressureProfile\":[";
    for (std::size_t i = 0; i < s.pressureProfile.size(); ++i) {
        if (i)
            os << ",";
        putNumber(os, s.pressureProfile[i]);
    }
    os << "]";

    os << ",\"caches\":{\"flcAccesses\":" << s.flcAccesses
       << ",\"flcMisses\":" << s.flcMisses
       << ",\"slcAccesses\":" << s.slcAccesses
       << ",\"slcMisses\":" << s.slcMisses << ",\"amHits\":" << s.amHits
       << ",\"amMisses\":" << s.amMisses << "}";

    os << ",\"protocol\":{\"remoteReads\":" << s.remoteReads
       << ",\"remoteWrites\":" << s.remoteWrites
       << ",\"upgrades\":" << s.upgrades
       << ",\"invalidations\":" << s.invalidations
       << ",\"injections\":" << s.injections
       << ",\"injectionHops\":" << s.injectionHops
       << ",\"sharedDrops\":" << s.sharedDrops
       << ",\"pageFaults\":" << s.pageFaults
       << ",\"swapOuts\":" << s.swapOuts
       << ",\"tlbShootdowns\":" << s.tlbShootdowns << "}";

    os << ",\"network\":{\"requestMessages\":" << s.requestMessages
       << ",\"blockMessages\":" << s.blockMessages << "}";

    os << ",\"dlb\":{\"filteredRefs\":" << s.dlbFilteredRefs
       << ",\"sharedHits\":" << s.dlbSharedHits
       << ",\"prefetchedFills\":" << s.dlbPrefetchedFills
       << ",\"requestersPerEntry\":";
    putDist(os, s.dlbRequestersPerEntry);
    os << "}";

    // Only slcTlbSpill schemes (VICTIMA) produce spill traffic; the
    // key is omitted otherwise so legacy exports are unchanged.
    if (s.tlbSpillProbes || s.tlbSpillHits || s.tlbSpillFills) {
        os << ",\"tlbSpill\":{\"probes\":" << s.tlbSpillProbes
           << ",\"hits\":" << s.tlbSpillHits
           << ",\"fills\":" << s.tlbSpillFills << "}";
    }

    os << ",\"latency\":{\"remoteRead\":";
    putDist(os, s.remoteReadLatency);
    os << ",\"remoteWrite\":";
    putDist(os, s.remoteWriteLatency);
    os << ",\"dlbFill\":";
    putDist(os, s.dlbFillLatency);
    os << "}";

    os << "}";
}

bool
exportRunStatsJsonFromEnv(const RunStats &stats)
{
    const char *path = std::getenv(statsJsonEnvVar);
    if (!path || !*path)
        return false;

    std::lock_guard<std::mutex> lock(statsFileMutex);
    std::ofstream os(path, std::ios::app);
    if (!os) {
        warn("stats export: cannot open ", path, "; line dropped");
        return false;
    }
    writeRunStatsJson(os, stats);
    os << "\n";
    return static_cast<bool>(os);
}

} // namespace vcoma
