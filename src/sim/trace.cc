#include "sim/trace.hh"

#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace vcoma
{

namespace
{

constexpr const char *traceMagic = "vcoma-trace-v1";

char
kindChar(const MemRef &ref)
{
    switch (ref.kind) {
      case MemRef::Kind::Mem:
        return ref.type == RefType::Read ? 'R' : 'W';
      case MemRef::Kind::Barrier:
        return 'B';
      case MemRef::Kind::LockAcquire:
        return 'L';
      case MemRef::Kind::LockRelease:
        return 'U';
    }
    return '?';
}

} // namespace

std::uint64_t
recordTrace(Workload &workload, std::ostream &os)
{
    const unsigned P = workload.numThreads();
    os << traceMagic << "\n";
    os << "threads " << P << "\n";

    std::vector<Generator<MemRef>> gens;
    gens.reserve(P);
    for (unsigned t = 0; t < P; ++t)
        gens.push_back(workload.thread(t));

    std::vector<bool> done(P, false);
    std::vector<int> parkedAt(P, -1);
    unsigned live = P;
    std::uint64_t events = 0;

    while (live > 0) {
        bool progressed = false;
        for (unsigned t = 0; t < P; ++t) {
            if (done[t] || parkedAt[t] >= 0)
                continue;
            auto ref = gens[t].next();
            progressed = true;
            if (!ref) {
                done[t] = true;
                --live;
                continue;
            }
            ++events;
            os << t << " " << kindChar(*ref);
            switch (ref->kind) {
              case MemRef::Kind::Mem:
                os << " " << ref->vaddr << " " << ref->work;
                break;
              case MemRef::Kind::Barrier:
              case MemRef::Kind::LockAcquire:
              case MemRef::Kind::LockRelease:
                os << " " << ref->syncId;
                break;
            }
            os << "\n";

            if (ref->kind == MemRef::Kind::Barrier) {
                parkedAt[t] = static_cast<int>(ref->syncId);
                unsigned waiting = 0;
                for (unsigned u = 0; u < P; ++u) {
                    if (!done[u] && parkedAt[u] == parkedAt[t])
                        ++waiting;
                }
                if (waiting == live) {
                    for (unsigned u = 0; u < P; ++u)
                        parkedAt[u] = -1;
                }
            }
        }
        if (!progressed && live > 0)
            panic("recordTrace: barrier deadlock in workload '",
                  workload.name(), "'");
    }
    return events;
}

TraceWorkload::TraceWorkload(std::istream &is, std::string name)
    : name_(std::move(name))
{
    // Parse line-by-line so every diagnostic can carry a line number,
    // and so garbage between or after events is an error rather than a
    // silent end of parsing (operator>> would just stop).
    std::string line;
    std::uint64_t lineNo = 1;
    if (!std::getline(is, line) || line != traceMagic)
        fatal("trace: bad magic (expected '", traceMagic, "')");

    unsigned threads = 0;
    {
        ++lineNo;
        if (!std::getline(is, line))
            fatal("trace line ", lineNo, ": missing thread count");
        std::istringstream hs(line);
        std::string tag, extra;
        if (!(hs >> tag >> threads) || tag != "threads" || threads == 0)
            fatal("trace line ", lineNo, ": missing thread count");
        if (hs >> extra)
            fatal("trace line ", lineNo, ": trailing garbage '", extra,
                  "' after thread count");
    }
    perThread_.resize(threads);

    VAddr lo = std::numeric_limits<VAddr>::max();
    VAddr hi = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        const std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;  // blank lines stay tolerated
        if (line[first] == '#')
            continue;  // comment lines, for hand-written traces
        std::istringstream ls(line);
        unsigned tid = 0;
        char kind = 0;
        if (!(ls >> tid >> kind)) {
            std::istringstream rs(line);
            std::string word;
            rs >> word;
            if (word == "threads")
                fatal("trace line ", lineNo,
                      ": duplicate 'threads' header");
            fatal("trace line ", lineNo, ": malformed event '", line,
                  "'");
        }
        if (tid >= threads)
            fatal("trace line ", lineNo, ": thread id ", tid,
                  " out of range (trace declares ", threads,
                  " threads)");
        MemRef ref;
        switch (kind) {
          case 'R':
          case 'W': {
            ref.kind = MemRef::Kind::Mem;
            ref.type = kind == 'R' ? RefType::Read : RefType::Write;
            // External tools dump addresses in hex as often as in
            // decimal; accept an explicit 0x prefix (never octal —
            // a leading zero must not silently change the base).
            std::string vtok;
            if (!(ls >> vtok >> ref.work))
                fatal("trace line ", lineNo,
                      ": truncated memory event");
            const bool hex = vtok.size() > 2 && vtok[0] == '0' &&
                             (vtok[1] == 'x' || vtok[1] == 'X');
            char *end = nullptr;
            ref.vaddr = std::strtoull(vtok.c_str(), &end,
                                      hex ? 16 : 10);
            if (end == vtok.c_str() || *end != '\0')
                fatal("trace line ", lineNo, ": bad address '", vtok,
                      "'");
            lo = std::min(lo, ref.vaddr);
            hi = std::max(hi, ref.vaddr + 8);
            break;
          }
          case 'B':
            ref.kind = MemRef::Kind::Barrier;
            if (!(ls >> ref.syncId))
                fatal("trace line ", lineNo,
                      ": truncated barrier event");
            break;
          case 'L':
            ref.kind = MemRef::Kind::LockAcquire;
            if (!(ls >> ref.syncId))
                fatal("trace line ", lineNo,
                      ": truncated lock event");
            break;
          case 'U':
            ref.kind = MemRef::Kind::LockRelease;
            if (!(ls >> ref.syncId))
                fatal("trace line ", lineNo,
                      ": truncated unlock event");
            break;
          default:
            fatal("trace line ", lineNo, ": unknown event kind '",
                  kind, "'");
        }
        std::string extra;
        if (ls >> extra)
            fatal("trace line ", lineNo, ": trailing garbage '", extra,
                  "' after event");
        perThread_[tid].push_back(ref);
    }

    // One synthetic segment spanning every touched address, so
    // footprint reporting and bounds checks keep working.
    if (hi > lo) {
        space_ = AddressSpace(lo);
        space_.alloc("trace.data", hi - lo, 1);
    }
}

std::string
TraceWorkload::parameters() const
{
    std::uint64_t events = 0;
    for (const auto &v : perThread_)
        events += v.size();
    return std::to_string(events) + " events, " +
           std::to_string(perThread_.size()) + " threads";
}

unsigned
TraceWorkload::numThreads() const
{
    return static_cast<unsigned>(perThread_.size());
}

Generator<MemRef>
TraceWorkload::thread(unsigned tid)
{
    if (tid >= perThread_.size())
        fatal("trace replay: no thread ", tid);
    return replay(tid);
}

Generator<MemRef>
TraceWorkload::replay(unsigned tid)
{
    for (const MemRef &ref : perThread_[tid])
        co_yield ref;
}

} // namespace vcoma
