#include "sim/run_stats.hh"

#include "common/logging.hh"

namespace vcoma
{

std::uint64_t
RunStats::totalRefs() const
{
    std::uint64_t total = 0;
    for (const auto &c : cpus)
        total += c.refs;
    return total;
}

std::uint64_t
RunStats::totalBusy() const
{
    std::uint64_t total = 0;
    for (const auto &c : cpus)
        total += c.busy;
    return total;
}

std::uint64_t
RunStats::totalSync() const
{
    std::uint64_t total = 0;
    for (const auto &c : cpus)
        total += c.sync;
    return total;
}

std::uint64_t
RunStats::totalLocStall() const
{
    std::uint64_t total = 0;
    for (const auto &c : cpus)
        total += c.locStall;
    return total;
}

std::uint64_t
RunStats::totalRemStall() const
{
    std::uint64_t total = 0;
    for (const auto &c : cpus)
        total += c.remStall;
    return total;
}

std::uint64_t
RunStats::totalXlatStall() const
{
    std::uint64_t total = 0;
    for (const auto &c : cpus)
        total += c.xlatStall;
    return total;
}

const ShadowPoint &
RunStats::shadowPoint(unsigned entries, unsigned assoc) const
{
    for (const auto &p : shadow) {
        if (p.entries == entries && p.assoc == assoc)
            return p;
    }
    fatal("no shadow point for ", entries, " entries, assoc ", assoc,
          " in run of ", workload);
}

double
RunStats::missesPerNode(unsigned entries, unsigned assoc,
                        bool includeWritebacks) const
{
    const ShadowPoint &p = shadowPoint(entries, assoc);
    const std::uint64_t misses =
        p.demandMisses + (includeWritebacks ? p.writebackMisses : 0);
    // A default-constructed RunStats has numNodes == 0; report 0
    // rather than dividing into inf/NaN (missRatePct guards the same
    // way on totalRefs()).
    return numNodes ? static_cast<double>(misses) / numNodes : 0.0;
}

double
RunStats::missRatePct(unsigned entries, unsigned assoc,
                      bool includeWritebacks) const
{
    const ShadowPoint &p = shadowPoint(entries, assoc);
    const std::uint64_t misses =
        p.demandMisses + (includeWritebacks ? p.writebackMisses : 0);
    const std::uint64_t refs = totalRefs();
    return refs ? 100.0 * static_cast<double>(misses) / refs : 0.0;
}

double
RunStats::xlatOverTotalStallPct() const
{
    const std::uint64_t stall = totalLocStall() + totalRemStall();
    if (stall == 0)
        return 0.0;
    return 100.0 * static_cast<double>(totalXlatStall()) / stall;
}

} // namespace vcoma
