/**
 * @file
 * The statistics sheet produced by one simulation run: per-processor
 * execution-time breakdown (Figure 10's busy / sync / loc-stall /
 * rem-stall components plus translation overhead), the shadow TLB/DLB
 * sweep (Figures 8 and 9, Tables 2 and 3), the configured translation
 * structure's counts (Table 4), the global-set pressure profile
 * (Figure 11) and protocol/network event counters.
 */

#ifndef VCOMA_SIM_RUN_STATS_HH
#define VCOMA_SIM_RUN_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace vcoma
{

/** One processor's accounting. */
struct CpuStats
{
    std::uint64_t refs = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    /** @{ @name Cycle buckets (they partition finish time) */
    std::uint64_t busy = 0;
    std::uint64_t sync = 0;
    std::uint64_t locStall = 0;
    std::uint64_t remStall = 0;
    std::uint64_t xlatStall = 0;
    /** @} */
    Tick finish = 0;

    std::uint64_t
    accounted() const
    {
        return busy + sync + locStall + remStall + xlatStall;
    }
};

/** One (size, organisation) point of the shadow sweep, machine-wide. */
struct ShadowPoint
{
    unsigned entries = 0;
    unsigned assoc = 0;  ///< 0 = fully associative
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t writebackAccesses = 0;
    std::uint64_t writebackMisses = 0;

    std::uint64_t misses() const { return demandMisses + writebackMisses; }

    std::uint64_t
    accesses() const
    {
        return demandAccesses + writebackAccesses;
    }
};

/** Everything a run reports. */
struct RunStats
{
    std::string workload;
    std::string parameters;
    Scheme scheme = Scheme::L0;
    unsigned numNodes = 0;
    std::uint64_t sharedBytes = 0;

    std::vector<CpuStats> cpus;
    Tick execTime = 0;

    /** Shadow sweep at the scheme's translation point. */
    std::vector<ShadowPoint> shadow;

    /** Configured (timed) TLB/DLB totals across nodes. */
    std::uint64_t tlbAccesses = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t tlbWritebackAccesses = 0;
    std::uint64_t tlbWritebackMisses = 0;

    /** Global page-set pressure profile (Figure 11). */
    std::vector<double> pressureProfile;

    /** @{ @name Cache totals */
    std::uint64_t flcAccesses = 0;
    std::uint64_t flcMisses = 0;
    std::uint64_t slcAccesses = 0;
    std::uint64_t slcMisses = 0;
    std::uint64_t amHits = 0;
    std::uint64_t amMisses = 0;
    /** @} */

    /** @{ @name Protocol counters */
    std::uint64_t remoteReads = 0;
    std::uint64_t remoteWrites = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t injections = 0;
    std::uint64_t injectionHops = 0;
    std::uint64_t sharedDrops = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t swapOuts = 0;
    std::uint64_t tlbShootdowns = 0;
    /** @} */

    /** @{ @name Network counters */
    std::uint64_t requestMessages = 0;
    std::uint64_t blockMessages = 0;
    /** @} */

    /**
     * @{ @name DLB effect evidence (the paper's V-COMA advantages)
     *
     * The three reasons a home-node DLB beats per-node TLBs:
     * filtering (most references are satisfied by local caches/AM and
     * never reach the home DLB), sharing (one DLB entry serves
     * requests from several nodes) and prefetching (the fill done for
     * one requester is already there for the next). Zero for the
     * per-node-TLB schemes.
     */
    /** References satisfied below the home DLB (absorbed locally). */
    std::uint64_t dlbFilteredRefs = 0;
    /** DLB hits by a node other than the one whose miss filled it. */
    std::uint64_t dlbSharedHits = 0;
    /** DLB fills that later served at least one other node. */
    std::uint64_t dlbPrefetchedFills = 0;
    /** Distinct requester nodes per retired DLB entry. */
    DistSummary dlbRequestersPerEntry;
    /** @} */

    /**
     * @{ @name VICTIMA spill evidence
     *
     * Under slcTlbSpill schemes, TLB victims spill into SLC frames
     * and each TLB miss probes them before paying the walk: probes,
     * probe hits (walks avoided), and victims spilled. Zero for every
     * other scheme.
     */
    std::uint64_t tlbSpillProbes = 0;
    std::uint64_t tlbSpillHits = 0;
    std::uint64_t tlbSpillFills = 0;
    /** @} */

    /** @{ @name Latency distributions (cycles) */
    DistSummary remoteReadLatency;   ///< network round-trip, remote reads
    DistSummary remoteWriteLatency;  ///< round-trip, remote writes/upgrades
    DistSummary dlbFillLatency;      ///< translation penalty per DLB fill
    /** @} */

    /** @{ @name Aggregates */
    std::uint64_t totalRefs() const;
    std::uint64_t totalBusy() const;
    std::uint64_t totalSync() const;
    std::uint64_t totalLocStall() const;
    std::uint64_t totalRemStall() const;
    std::uint64_t totalXlatStall() const;
    /** @} */

    /** Find the shadow point for (entries, assoc); fatal if absent. */
    const ShadowPoint &shadowPoint(unsigned entries, unsigned assoc) const;

    /**
     * Translation misses per node (the y-axis of Figure 8).
     * @param includeWritebacks include the write-back stream
     */
    double missesPerNode(unsigned entries, unsigned assoc,
                         bool includeWritebacks) const;

    /**
     * Miss rate per processor reference in percent (Table 2);
     * the write-back stream is included for the schemes where
     * write-backs consult the TLB.
     */
    double missRatePct(unsigned entries, unsigned assoc,
                       bool includeWritebacks) const;

    /**
     * Table 4's metric: translation stall as a percentage of the
     * memory stall (loc + rem) time.
     */
    double xlatOverTotalStallPct() const;
};

} // namespace vcoma

#endif // VCOMA_SIM_RUN_STATS_HH
