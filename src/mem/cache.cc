#include "mem/cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace vcoma
{

Cache::Cache(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), cfg_(cfg)
{
    cfg_.validate(name_.c_str());
    blockBits_ = exactLog2(cfg_.blockBytes);
    setBits_ = exactLog2(cfg_.numSets());
    lines_.resize(cfg_.numSets() * cfg_.assoc);
}

std::uint64_t
Cache::setIndex(VAddr addr) const
{
    return bits(addr, blockBits_, setBits_);
}

VAddr
Cache::tagOf(VAddr addr) const
{
    return addr >> (blockBits_ + setBits_);
}

Cache::Line *
Cache::findLine(VAddr addr)
{
    const auto set = setIndex(addr);
    const auto tag = tagOf(addr);
    Line *base = &lines_[set * cfg_.assoc];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(VAddr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

VAddr
Cache::lineAddr(std::uint64_t set, const Line &line) const
{
    return (line.tag << (blockBits_ + setBits_)) | (set << blockBits_);
}

CacheAccess
Cache::access(VAddr addr, RefType type)
{
    CacheAccess result;
    Line *line = findLine(addr);

    if (line) {
        result.hit = true;
        line->lastUse = ++useClock_;
        if (type == RefType::Read) {
            ++readHits;
        } else {
            ++writeHits;
            if (!cfg_.writeThrough)
                line->dirty = true;
        }
        return result;
    }

    // Miss.
    if (type == RefType::Read)
        ++readMisses;
    else
        ++writeMisses;

    const bool allocate =
        type == RefType::Read || cfg_.writeAllocate;
    if (!allocate)
        return result;

    // Choose a victim: an invalid way if one exists, else LRU.
    const auto set = setIndex(addr);
    Line *base = &lines_[set * cfg_.assoc];
    Line *victim = &base[0];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }

    if (victim->valid) {
        result.victim = lineAddr(set, *victim);
        result.victimDirty = victim->dirty;
        if (victim->dirty)
            ++writebacks;
    }

    victim->tag = tagOf(addr);
    victim->valid = true;
    victim->dirty = type == RefType::Write && !cfg_.writeThrough;
    victim->lastUse = ++useClock_;
    result.allocated = true;
    return result;
}

bool
Cache::contains(VAddr addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::invalidateBlock(VAddr addr, bool &wasDirty)
{
    Line *line = findLine(addr);
    if (!line)
        return false;
    wasDirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    ++invalidations;
    return true;
}

unsigned
Cache::invalidateRange(VAddr addr, std::uint64_t bytes,
                       unsigned &dirtyVictims)
{
    unsigned count = 0;
    const VAddr first = blockAlign(addr);
    const VAddr last = addr + bytes;
    for (VAddr a = first; a < last; a += cfg_.blockBytes) {
        bool dirty = false;
        if (invalidateBlock(a, dirty)) {
            ++count;
            if (dirty)
                ++dirtyVictims;
        }
    }
    return count;
}

void
Cache::flush()
{
    for (auto &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
    useClock_ = 0;
}

} // namespace vcoma
