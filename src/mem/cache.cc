#include "mem/cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace vcoma
{

Cache::Cache(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), cfg_(cfg)
{
    cfg_.validate(name_.c_str());
    blockBits_ = exactLog2(cfg_.blockBytes);
    setBits_ = exactLog2(cfg_.numSets());
    setMask_ = cfg_.numSets() - 1;
    const std::size_t n = cfg_.numSets() * cfg_.assoc;
    tags_.resize(n, 0);
    state_.resize(n, 0);
    lastUse_.resize(n, 0);
}

CacheAccess
Cache::access(VAddr addr, RefType type)
{
    CacheAccess result;
    const std::uint32_t idx = lookup(addr);

    if (idx != npos) {
        result.hit = true;
        if (type == RefType::Read)
            commitReadHit(idx);
        else
            commitWriteHit(idx);
        return result;
    }

    // Miss.
    if (type == RefType::Read)
        ++readMisses;
    else
        ++writeMisses;

    const bool allocate =
        type == RefType::Read || cfg_.writeAllocate;
    if (!allocate)
        return result;

    // Choose a victim: an invalid way if one exists, else LRU.
    const std::uint64_t set = setIndex(addr);
    const std::size_t base = set * cfg_.assoc;
    std::size_t victim = base;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        const std::size_t i = base + w;
        if (!(state_[i] & stValid)) {
            victim = i;
            break;
        }
        if (lastUse_[i] < lastUse_[victim])
            victim = i;
    }

    if (state_[victim] & stValid) {
        result.hasVictim = true;
        result.victim = lineAddr(set, tags_[victim]);
        result.victimDirty = (state_[victim] & stDirty) != 0;
        if (result.victimDirty)
            ++writebacks;
    }

    tags_[victim] = tagOf(addr);
    state_[victim] = stValid;
    if (type == RefType::Write && !cfg_.writeThrough)
        state_[victim] |= stDirty;
    lastUse_[victim] = ++useClock_;
    result.allocated = true;
    return result;
}

bool
Cache::invalidateBlock(VAddr addr, bool &wasDirty)
{
    const std::uint32_t idx = lookup(addr);
    if (idx == npos)
        return false;
    wasDirty = (state_[idx] & stDirty) != 0;
    state_[idx] = 0;
    ++invalidations;
    return true;
}

unsigned
Cache::invalidateRange(VAddr addr, std::uint64_t bytes,
                       unsigned &dirtyVictims)
{
    unsigned count = 0;
    const VAddr first = blockAlign(addr);
    const VAddr last = addr + bytes;
    for (VAddr a = first; a < last; a += cfg_.blockBytes) {
        bool dirty = false;
        if (invalidateBlock(a, dirty)) {
            ++count;
            if (dirty)
                ++dirtyVictims;
        }
    }
    return count;
}

void
Cache::flush()
{
    for (auto &st : state_)
        st = 0;
    useClock_ = 0;
}

} // namespace vcoma
