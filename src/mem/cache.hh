/**
 * @file
 * A generic set-associative cache model used for the FLC and SLC.
 *
 * The model is address-space agnostic: callers feed it whichever
 * address the cache is indexed/tagged with (virtual for the virtual
 * caches of the L1/L2/L3/V-COMA schemes, physical otherwise). It
 * tracks presence and dirtiness only — data values live in the
 * workloads — and reports evictions so the hierarchy can propagate
 * write-backs and maintain inclusion.
 */

#ifndef VCOMA_MEM_CACHE_HH
#define VCOMA_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace vcoma
{

/** Result of a cache access. */
struct CacheAccess
{
    /** Did the access hit? */
    bool hit = false;
    /**
     * Was a block allocated for this access (read miss, or write miss
     * with write-allocate)?
     */
    bool allocated = false;
    /** Block-aligned address of an evicted valid victim, if any. */
    std::optional<VAddr> victim;
    /** The victim was dirty: it must be written back below. */
    bool victimDirty = false;
};

/**
 * Set-associative cache with LRU replacement, configurable write
 * policy (write-through vs write-back) and write-allocation.
 */
class Cache
{
  public:
    /**
     * @param name  diagnostic name
     * @param cfg   geometry and policies
     */
    Cache(std::string name, const CacheConfig &cfg);

    /**
     * Perform a read or write at @p addr.
     *
     * Write-through caches never mark blocks dirty (the store is
     * propagated below by the caller on every write). Write-back
     * caches mark on write hit and on allocated write miss.
     */
    CacheAccess access(VAddr addr, RefType type);

    /** Presence check without LRU update or allocation. */
    bool contains(VAddr addr) const;

    /**
     * Invalidate the block containing @p addr if present.
     * @param wasDirty set to true if the invalidated block was dirty.
     * @return true if a block was invalidated.
     */
    bool invalidateBlock(VAddr addr, bool &wasDirty);

    /**
     * Invalidate every block of this cache that falls inside
     * [@p addr, @p addr + @p bytes). Used to maintain inclusion when a
     * larger block is removed from the level below.
     * @param dirtyVictims incremented per dirty block invalidated.
     * @return number of blocks invalidated.
     */
    unsigned invalidateRange(VAddr addr, std::uint64_t bytes,
                             unsigned &dirtyVictims);

    /** Drop all contents and reset LRU state (stats preserved). */
    void flush();

    /**
     * Visit every valid block: fn(blockAddr, dirty). Used by the
     * coherence-invariant checkers in the test suite.
     */
    template <typename Fn>
    void
    forEachValid(Fn fn) const
    {
        for (std::size_t i = 0; i < lines_.size(); ++i) {
            const Line &line = lines_[i];
            if (line.valid)
                fn(lineAddr(i / cfg_.assoc, line), line.dirty);
        }
    }

    /** Block-aligned address. */
    VAddr
    blockAlign(VAddr addr) const
    {
        return addr & ~static_cast<VAddr>(cfg_.blockBytes - 1);
    }

    const CacheConfig &config() const { return cfg_; }
    const std::string &name() const { return name_; }

    /** @{ @name Statistics */
    Counter readHits;
    Counter readMisses;
    Counter writeHits;
    Counter writeMisses;
    Counter writebacks;
    Counter invalidations;
    /** @} */

    /** Register the counters on @p g as <prefix>readHits etc. */
    void
    addStats(StatGroup &g, const std::string &prefix) const
    {
        g.addCounter(prefix + "readHits", readHits);
        g.addCounter(prefix + "readMisses", readMisses);
        g.addCounter(prefix + "writeHits", writeHits);
        g.addCounter(prefix + "writeMisses", writeMisses);
        g.addCounter(prefix + "writebacks", writebacks);
        g.addCounter(prefix + "invalidations", invalidations);
    }

    /** Total accesses. */
    std::uint64_t
    accesses() const
    {
        return readHits.value() + readMisses.value() + writeHits.value() +
               writeMisses.value();
    }

    /** Total misses. */
    std::uint64_t
    misses() const
    {
        return readMisses.value() + writeMisses.value();
    }

  private:
    struct Line
    {
        VAddr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setIndex(VAddr addr) const;
    VAddr tagOf(VAddr addr) const;

    /** Find the way holding @p addr in its set, or nullptr. */
    Line *findLine(VAddr addr);
    const Line *findLine(VAddr addr) const;

    /** Reconstruct a block address from a line's tag and set. */
    VAddr lineAddr(std::uint64_t set, const Line &line) const;

    std::string name_;
    CacheConfig cfg_;
    unsigned blockBits_;
    unsigned setBits_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;
};

} // namespace vcoma

#endif // VCOMA_MEM_CACHE_HH
