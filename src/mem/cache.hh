/**
 * @file
 * A generic set-associative cache model used for the FLC and SLC.
 *
 * The model is address-space agnostic: callers feed it whichever
 * address the cache is indexed/tagged with (virtual for the virtual
 * caches of the L1/L2/L3/V-COMA schemes, physical otherwise). It
 * tracks presence and dirtiness only — data values live in the
 * workloads — and reports evictions so the hierarchy can propagate
 * write-backs and maintain inclusion.
 *
 * Storage is structure-of-arrays (tags, state bits, LRU stamps in
 * three contiguous vectors) and the probe API is index-based: the
 * simulation fast path looks a block up once, keeps the index, and
 * commits the hit bookkeeping separately, so the common FLC-hit case
 * never constructs a CacheAccess or touches cold way metadata.
 */

#ifndef VCOMA_MEM_CACHE_HH
#define VCOMA_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace vcoma
{

/** Result of a cache access (plain aggregate; no optional plumbing). */
struct CacheAccess
{
    /** Did the access hit? */
    bool hit = false;
    /**
     * Was a block allocated for this access (read miss, or write miss
     * with write-allocate)?
     */
    bool allocated = false;
    /** A valid victim block was evicted; its address is in victim. */
    bool hasVictim = false;
    /** The victim was dirty: it must be written back below. */
    bool victimDirty = false;
    /** Block-aligned address of the evicted victim (if hasVictim). */
    VAddr victim = 0;
};

/**
 * Set-associative cache with LRU replacement, configurable write
 * policy (write-through vs write-back) and write-allocation.
 */
class Cache
{
  public:
    /** Sentinel returned by lookup() when the block is absent. */
    static constexpr std::uint32_t npos = ~std::uint32_t{0};

    /**
     * @param name  diagnostic name
     * @param cfg   geometry and policies
     */
    Cache(std::string name, const CacheConfig &cfg);

    /**
     * Perform a read or write at @p addr.
     *
     * Write-through caches never mark blocks dirty (the store is
     * propagated below by the caller on every write). Write-back
     * caches mark on write hit and on allocated write miss.
     */
    CacheAccess access(VAddr addr, RefType type);

    /**
     * Find the line holding @p addr: global line index (set * assoc +
     * way), or npos. Pure probe — no LRU update, no counters.
     */
    std::uint32_t
    lookup(VAddr addr) const
    {
        const std::uint64_t set = setIndex(addr);
        const VAddr tag = tagOf(addr);
        const std::size_t base = set * cfg_.assoc;
        for (unsigned w = 0; w < cfg_.assoc; ++w) {
            const std::size_t i = base + w;
            if ((state_[i] & stValid) && tags_[i] == tag)
                return static_cast<std::uint32_t>(i);
        }
        return npos;
    }

    /**
     * Commit the bookkeeping of a read hit on line @p idx (from
     * lookup): exactly the counter and LRU effects access() would
     * have had.
     */
    void
    commitReadHit(std::uint32_t idx)
    {
        ++readHits;
        lastUse_[idx] = ++useClock_;
    }

    /** Commit a write hit on line @p idx (counter, LRU, dirty bit). */
    void
    commitWriteHit(std::uint32_t idx)
    {
        ++writeHits;
        lastUse_[idx] = ++useClock_;
        if (!cfg_.writeThrough)
            state_[idx] |= stDirty;
    }

    /**
     * Commit a write miss that allocates nothing (no-write-allocate
     * policy): the counter is the only side effect access() has.
     */
    void commitWriteMissNoAllocate() { ++writeMisses; }

    /**
     * Hoisted probe context for tight replay loops: geometry, table
     * pointers and the LRU clock resolved into locals once, read-hit
     * commits accumulated and published in one flush. Byte-identical
     * to a lookup()+commitReadHit() sequence per hit. While a prober
     * holds unflushed commits the cache must not be touched through
     * any other path — flush() before such an access and resync()
     * after it (the line tables live in place, only the clock and the
     * hit counter are cached).
     */
    class ReadHitProber
    {
      public:
        ReadHitProber() = default;
        explicit ReadHitProber(Cache &c) { attach(c); }

        /**
         * Bind to @p c, hoisting its probe geometry. The table
         * pointers stay valid for the cache's lifetime (the line
         * arrays are sized once at construction), so an attached
         * prober may be kept across many drain episodes; only the
         * clock needs resync() per episode.
         */
        void
        attach(Cache &c)
        {
            c_ = &c;
            tags_ = c.tags_.data();
            state_ = c.state_.data();
            lastUse_ = c.lastUse_.data();
            assoc_ = c.cfg_.assoc;
            blockBits_ = c.blockBits_;
            setBits_ = c.setBits_;
            setMask_ = c.setMask_;
            useClock_ = c.useClock_;
        }

        /** lookup() + commitReadHit() in one probe; false on miss. */
        bool
        tryReadHit(VAddr addr)
        {
            const std::uint64_t set = (addr >> blockBits_) & setMask_;
            const VAddr tag = addr >> (blockBits_ + setBits_);
            const std::size_t base = set * assoc_;
            for (unsigned w = 0; w < assoc_; ++w) {
                const std::size_t i = base + w;
                if ((state_[i] & stValid) && tags_[i] == tag) {
                    lastUse_[i] = ++useClock_;
                    ++hits_;
                    return true;
                }
            }
            return false;
        }

        /** Publish the accumulated commits back into the cache. */
        void
        flush()
        {
            c_->useClock_ = useClock_;
            c_->readHits += hits_;
            hits_ = 0;
        }

        /** Re-hoist the clock after the cache was used directly. */
        void resync() { useClock_ = c_->useClock_; }

      private:
        Cache *c_ = nullptr;
        const VAddr *tags_ = nullptr;
        const std::uint8_t *state_ = nullptr;
        std::uint64_t *lastUse_ = nullptr;
        unsigned assoc_ = 0;
        unsigned blockBits_ = 0;
        unsigned setBits_ = 0;
        std::uint64_t setMask_ = 0;
        std::uint64_t useClock_ = 0;
        std::uint64_t hits_ = 0;
    };

    /** Is line @p idx dirty? */
    bool dirtyAt(std::uint32_t idx) const { return state_[idx] & stDirty; }

    /** Presence check without LRU update or allocation. */
    bool contains(VAddr addr) const { return lookup(addr) != npos; }

    /**
     * Invalidate the block containing @p addr if present.
     * @param wasDirty set to true if the invalidated block was dirty.
     * @return true if a block was invalidated.
     */
    bool invalidateBlock(VAddr addr, bool &wasDirty);

    /**
     * Invalidate every block of this cache that falls inside
     * [@p addr, @p addr + @p bytes). Used to maintain inclusion when a
     * larger block is removed from the level below.
     * @param dirtyVictims incremented per dirty block invalidated.
     * @return number of blocks invalidated.
     */
    unsigned invalidateRange(VAddr addr, std::uint64_t bytes,
                             unsigned &dirtyVictims);

    /** Drop all contents and reset LRU state (stats preserved). */
    void flush();

    /**
     * Visit every valid block: fn(blockAddr, dirty). Used by the
     * coherence-invariant checkers in the test suite.
     */
    template <typename Fn>
    void
    forEachValid(Fn fn) const
    {
        for (std::size_t i = 0; i < tags_.size(); ++i) {
            if (state_[i] & stValid)
                fn(lineAddr(i / cfg_.assoc, tags_[i]),
                   (state_[i] & stDirty) != 0);
        }
    }

    /** Block-aligned address. */
    VAddr
    blockAlign(VAddr addr) const
    {
        return addr & ~static_cast<VAddr>(cfg_.blockBytes - 1);
    }

    const CacheConfig &config() const { return cfg_; }
    const std::string &name() const { return name_; }

    /** @{ @name Statistics */
    Counter readHits;
    Counter readMisses;
    Counter writeHits;
    Counter writeMisses;
    Counter writebacks;
    Counter invalidations;
    /** @} */

    /** Register the counters on @p g as <prefix>readHits etc. */
    void
    addStats(StatGroup &g, const std::string &prefix) const
    {
        g.addCounter(prefix + "readHits", readHits);
        g.addCounter(prefix + "readMisses", readMisses);
        g.addCounter(prefix + "writeHits", writeHits);
        g.addCounter(prefix + "writeMisses", writeMisses);
        g.addCounter(prefix + "writebacks", writebacks);
        g.addCounter(prefix + "invalidations", invalidations);
    }

    /** Total accesses. */
    std::uint64_t
    accesses() const
    {
        return readHits.value() + readMisses.value() + writeHits.value() +
               writeMisses.value();
    }

    /** Total misses. */
    std::uint64_t
    misses() const
    {
        return readMisses.value() + writeMisses.value();
    }

  private:
    static constexpr std::uint8_t stValid = 1;
    static constexpr std::uint8_t stDirty = 2;

    std::uint64_t
    setIndex(VAddr addr) const
    {
        return (addr >> blockBits_) & setMask_;
    }

    VAddr tagOf(VAddr addr) const { return addr >> (blockBits_ + setBits_); }

    /** Reconstruct a block address from a line's tag and set. */
    VAddr
    lineAddr(std::uint64_t set, VAddr tag) const
    {
        return (tag << (blockBits_ + setBits_)) | (set << blockBits_);
    }

    std::string name_;
    CacheConfig cfg_;
    unsigned blockBits_;
    unsigned setBits_;
    /** numSets() - 1, precomputed: setIndex is on the per-probe path. */
    std::uint64_t setMask_;
    /** @{ Parallel per-line arrays (structure-of-arrays layout). */
    std::vector<VAddr> tags_;
    std::vector<std::uint8_t> state_;
    std::vector<std::uint64_t> lastUse_;
    /** @} */
    std::uint64_t useClock_ = 0;
};

} // namespace vcoma

#endif // VCOMA_MEM_CACHE_HH
