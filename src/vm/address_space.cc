#include "vm/address_space.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace vcoma
{

VAddr
AddressSpace::alloc(std::string name, std::uint64_t bytes,
                    std::uint64_t align)
{
    if (bytes == 0)
        fatal("segment '", name, "': zero-size allocation");
    if (!isPowerOf2(align))
        fatal("segment '", name, "': alignment must be a power of two");
    const VAddr base = alignUp(next_, align);
    next_ = base + bytes;
    segments_.push_back(Segment{std::move(name), base, bytes, align});
    return base;
}

std::uint64_t
AddressSpace::totalBytes() const
{
    std::uint64_t total = 0;
    for (const auto &seg : segments_)
        total += seg.bytes;
    return total;
}

} // namespace vcoma
