/**
 * @file
 * The single global segmented virtual address space.
 *
 * The paper assumes a PowerPC-like segmented memory system in which
 * synonyms are neither needed nor allowed (Section 2.2.1): all
 * processes share one global virtual space and sharing happens at
 * segment granularity. Workloads allocate named segments here; the
 * segment records also drive the Table 1 footprint report and let the
 * RAYTRACE experiment control the alignment of its per-processor
 * ray-tree stacks (the DLB/8/V2 layout variant of Figure 10).
 */

#ifndef VCOMA_VM_ADDRESS_SPACE_HH
#define VCOMA_VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vcoma
{

/** One named allocation in the global virtual space. */
struct Segment
{
    std::string name;
    VAddr base = 0;
    std::uint64_t bytes = 0;
    std::uint64_t align = 0;

    VAddr end() const { return base + bytes; }
};

/**
 * Bump allocator over the global virtual space. Deallocation is not
 * supported: the paper's runs preload all data and simulate no paging
 * activity, and each experiment constructs a fresh space.
 */
class AddressSpace
{
  public:
    /** @param base first allocatable virtual address. */
    explicit AddressSpace(VAddr base = 0x10000000ULL) : next_(base) {}

    /**
     * Allocate @p bytes aligned to @p align (power of two).
     * @return base address of the new segment.
     */
    VAddr alloc(std::string name, std::uint64_t bytes,
                std::uint64_t align = 64);

    /** All segments allocated so far, in allocation order. */
    const std::vector<Segment> &segments() const { return segments_; }

    /** Total bytes allocated (the "Shared Memory" column of Table 1). */
    std::uint64_t totalBytes() const;

    /** One past the highest allocated address. */
    VAddr highWater() const { return next_; }

  private:
    VAddr next_;
    std::vector<Segment> segments_;
};

} // namespace vcoma

#endif // VCOMA_VM_ADDRESS_SPACE_HH
