/**
 * @file
 * The global page table: virtual page -> {home node, physical frame
 * or directory page, colour, protection, reference/modify bits}.
 *
 * One table serves the whole machine (the address space is global and
 * synonym-free). In the physical schemes it is the classical page
 * table whose entries TLBs cache; in V-COMA it is the per-home-node
 * set-associative table of Figure 6 whose entries the DLB caches —
 * the geometry difference is captured by the allocator strategy, not
 * by the lookup structure of this model.
 */

#ifndef VCOMA_VM_PAGE_TABLE_HH
#define VCOMA_VM_PAGE_TABLE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace vcoma
{

class PageAllocator;

/** Page-level protection bits (Section 4.3). */
enum ProtBits : std::uint8_t
{
    ProtRead = 1,
    ProtWrite = 2,
    ProtExec = 4,
    ProtRW = ProtRead | ProtWrite,
};

/** One page-table entry. */
struct PageInfo
{
    PageNum vpn = 0;
    /** Home node for the coherence protocol. */
    NodeId home = invalidNode;
    /** Physical frame index; unused (=noFrame) in V-COMA. */
    std::uint64_t frame = noFrame;
    /** Directory-page index at the home node (V-COMA). */
    std::uint64_t dirPage = 0;
    /** Global page set the page belongs to. */
    std::uint64_t colour = 0;
    std::uint8_t protection = ProtRW;
    /** Reference bit (Section 4.3). */
    bool referenced = false;
    /** Modify bit (Section 4.3). */
    bool modified = false;
    /** Resident in (attraction) memory. */
    bool resident = false;

    static constexpr std::uint64_t noFrame = ~std::uint64_t{0};
};

/**
 * The page table plus the frame reverse map ("backpointers",
 * Section 2.2.2) physical caches need to reach the virtual caches
 * below them.
 */
class PageTable
{
  public:
    /**
     * @param pageBits log2(page size)
     * @param allocator strategy that assigns home/frame/dirPage on
     *                  first touch; not owned.
     */
    PageTable(unsigned pageBits, PageAllocator &allocator);

    /**
     * Get the entry for the page containing @p va, allocating and
     * making it resident on first touch (data sets are preloaded, so
     * first-touch allocation carries no timing in the simulations).
     * If the page was swapped out, reloads it (a page fault).
     */
    PageInfo &ensureResident(VAddr va);

    /** Find an existing entry or nullptr. */
    PageInfo *find(PageNum vpn);
    const PageInfo *find(PageNum vpn) const;

    /** Translate to a physical address; page must be resident. */
    PAddr translate(VAddr va) const;

    /** Reverse-translate a physical address (frame backpointers). */
    VAddr reverse(PAddr pa) const;

    /** Virtual page owning physical frame @p frame, or nullptr. */
    const PageInfo *pageOfFrame(std::uint64_t frame) const;

    /**
     * Mark @p vpn swapped out (page daemon victim). The caller is
     * responsible for purging cached copies and directory state.
     */
    void swapOut(PageNum vpn);

    /**
     * Clear every page's reference bit (the Section 4.1 decay daemon
     * run by the protocol engines).
     */
    void
    clearReferenceBits()
    {
        for (auto &[vpn, page] : pages_)
            page.referenced = false;
    }

    /** Hook invoked whenever a page becomes resident. */
    void
    onPageResident(std::function<void(PageInfo &)> fn)
    {
        onResident_ = std::move(fn);
    }

    /** All entries (iteration for stats / pressure reports). */
    const std::unordered_map<PageNum, PageInfo> &entries() const
    {
        return pages_;
    }

    unsigned pageBits() const { return pageBits_; }

    /** @{ @name Statistics */
    Counter pageFaults;    ///< first-touch loads + reloads
    Counter pageReloads;   ///< reloads after a swap-out only
    Counter swapOuts;
    /** @} */

  private:
    unsigned pageBits_;
    PageAllocator &allocator_;
    std::unordered_map<PageNum, PageInfo> pages_;
    std::unordered_map<std::uint64_t, PageNum> frameToVpn_;
    std::function<void(PageInfo &)> onResident_;
};

} // namespace vcoma

#endif // VCOMA_VM_PAGE_TABLE_HH
