#include "vm/pressure.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vcoma
{

PressureTracker::PressureTracker(std::uint64_t numSets,
                                 std::uint64_t capacity)
    : capacity_(capacity), counts_(numSets, 0)
{
    if (numSets == 0 || capacity == 0)
        fatal("pressure tracker needs non-zero sets and capacity");
}

void
PressureTracker::pageIn(std::uint64_t colour)
{
    auto &count = counts_.at(colour);
    ++count;
    if (count > capacity_)
        ++overflows;
}

void
PressureTracker::pageOut(std::uint64_t colour)
{
    auto &count = counts_.at(colour);
    if (count == 0)
        panic("pageOut on empty global page set ", colour);
    --count;
}

std::uint64_t
PressureTracker::occupied(std::uint64_t colour) const
{
    return counts_.at(colour);
}

double
PressureTracker::pressure(std::uint64_t colour) const
{
    return static_cast<double>(counts_.at(colour)) /
           static_cast<double>(capacity_);
}

std::vector<double>
PressureTracker::profile() const
{
    std::vector<double> result(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        result[i] = static_cast<double>(counts_[i]) /
                    static_cast<double>(capacity_);
    }
    return result;
}

double
PressureTracker::maxPressure() const
{
    std::uint64_t best = 0;
    for (auto c : counts_)
        best = std::max(best, c);
    return static_cast<double>(best) / static_cast<double>(capacity_);
}

double
PressureTracker::meanPressure() const
{
    std::uint64_t total = 0;
    for (auto c : counts_)
        total += c;
    return static_cast<double>(total) /
           (static_cast<double>(capacity_) * counts_.size());
}

bool
PressureTracker::wouldExceed(std::uint64_t colour, double threshold) const
{
    return (static_cast<double>(counts_.at(colour)) + 1.0) /
               static_cast<double>(capacity_) >
           threshold;
}

} // namespace vcoma
