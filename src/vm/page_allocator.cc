#include "vm/page_allocator.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace vcoma
{

void
PageAllocator::release(PageInfo &page)
{
    pressure_.pageOut(page.colour);
}

void
PageAllocator::reattach(PageInfo &page)
{
    pressure_.pageIn(page.colour);
}

void
RoundRobinAllocator::assign(PageInfo &page)
{
    const std::uint64_t frame = nextFrame_++;
    page.frame = frame;
    page.home = static_cast<NodeId>(frame % numNodes_);
    // The colour of the page is that of its *physical* frame: the
    // attraction memory is physically indexed in this machine.
    page.colour = frame & mask(layout_.colourBits());
    pressure_.pageIn(page.colour);
}

ColouredAllocator::ColouredAllocator(const VAddrLayout &layout,
                                     PressureTracker &pressure,
                                     unsigned numNodes)
    : PageAllocator(layout, pressure), numNodes_(numNodes),
      nextInColour_(layout.numColours(), 0)
{
}

void
ColouredAllocator::assign(PageInfo &page)
{
    // Page colouring (Figure 4): the frame's colour bits must equal
    // the virtual page's colour bits so that physical and virtual
    // indexing select the same attraction-memory sets.
    const std::uint64_t colour = layout_.colourOfVpn(page.vpn);
    const std::uint64_t ordinal = nextInColour_[colour]++;
    page.frame = (ordinal << layout_.colourBits()) | colour;
    // As in COMA-F, the home is the low bits of the frame number —
    // which for a coloured frame are the colour bits, so every page
    // of a global set shares a home, exactly as in V-COMA.
    page.home = static_cast<NodeId>(page.frame % numNodes_);
    page.colour = colour;
    pressure_.pageIn(colour);
}

VcomaAllocator::VcomaAllocator(const VAddrLayout &layout,
                               PressureTracker &pressure,
                               unsigned numNodes)
    : PageAllocator(layout, pressure),
      nextDirPage_(numNodes, 0)
{
}

void
VcomaAllocator::assign(PageInfo &page)
{
    // Section 4.2: the home node is given by the p least significant
    // bits of the virtual page number; a directory page (the
    // pageframe analogue, Section 4.3) is allocated at the home.
    page.home = layout_.homeNodeOfVpn(page.vpn);
    page.colour = layout_.colourOfVpn(page.vpn);
    page.frame = PageInfo::noFrame;
    page.dirPage = nextDirPage_[page.home]++;
    pressure_.pageIn(page.colour);
}

} // namespace vcoma
