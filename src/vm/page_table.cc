#include "vm/page_table.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "vm/page_allocator.hh"

namespace vcoma
{

PageTable::PageTable(unsigned pageBits, PageAllocator &allocator)
    : pageBits_(pageBits), allocator_(allocator)
{
}

PageInfo &
PageTable::ensureResident(VAddr va)
{
    const PageNum vpn = va >> pageBits_;
    auto [it, inserted] = pages_.try_emplace(vpn);
    PageInfo &page = it->second;
    if (inserted) {
        page.vpn = vpn;
        allocator_.assign(page);
        page.resident = true;
        ++pageFaults;
        if (page.frame != PageInfo::noFrame)
            frameToVpn_[page.frame] = vpn;
        if (onResident_)
            onResident_(page);
    } else if (!page.resident) {
        // Reload after a swap-out keeps the placement assigned at
        // first touch (the slot of a page within its global set),
        // but must re-register with the pressure tracker.
        allocator_.reattach(page);
        page.resident = true;
        ++pageFaults;
        ++pageReloads;
        if (onResident_)
            onResident_(page);
    }
    return page;
}

PageInfo *
PageTable::find(PageNum vpn)
{
    auto it = pages_.find(vpn);
    return it == pages_.end() ? nullptr : &it->second;
}

const PageInfo *
PageTable::find(PageNum vpn) const
{
    auto it = pages_.find(vpn);
    return it == pages_.end() ? nullptr : &it->second;
}

PAddr
PageTable::translate(VAddr va) const
{
    const PageNum vpn = va >> pageBits_;
    const PageInfo *page = find(vpn);
    if (!page || !page->resident)
        panic("translate of non-resident page, vpn=", vpn);
    if (page->frame == PageInfo::noFrame)
        panic("translate in a machine without physical addresses");
    return (page->frame << pageBits_) | (va & mask(pageBits_));
}

VAddr
PageTable::reverse(PAddr pa) const
{
    const std::uint64_t frame = pa >> pageBits_;
    auto it = frameToVpn_.find(frame);
    if (it == frameToVpn_.end())
        panic("reverse translation of unmapped frame ", frame);
    return (it->second << pageBits_) | (pa & mask(pageBits_));
}

const PageInfo *
PageTable::pageOfFrame(std::uint64_t frame) const
{
    auto it = frameToVpn_.find(frame);
    return it == frameToVpn_.end() ? nullptr : find(it->second);
}

void
PageTable::swapOut(PageNum vpn)
{
    PageInfo *page = find(vpn);
    if (!page || !page->resident)
        panic("swapOut of non-resident page, vpn=", vpn);
    page->resident = false;
    page->referenced = false;
    allocator_.release(*page);
    ++swapOuts;
}

} // namespace vcoma
