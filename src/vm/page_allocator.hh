/**
 * @file
 * Page-placement strategies for the five translation schemes.
 *
 *  - RoundRobinAllocator: the traditional physical COMA policy used
 *    by the paper for L0/L1/L2 ("physical addresses are assigned
 *    round robin", Section 5.3). The physical frame index determines
 *    both the home node and the AM sets the page's blocks index into.
 *  - ColouredAllocator: page colouring for the virtually-indexed
 *    attraction memory of L3-TLB (Section 3.4 / Figure 4): the
 *    physical page must share the virtual page's colour so virtual
 *    and physical indexing agree; homes rotate within each colour.
 *  - VcomaAllocator: no physical address at all (Section 4). The
 *    home is the p LSBs of the virtual page number and the entry
 *    points at a *directory page* allocated at the home.
 *
 * All strategies feed the PressureTracker that produces Figure 11's
 * global-page-set pressure profile and gates allocation against the
 * page-daemon threshold of Section 4.3.
 */

#ifndef VCOMA_VM_PAGE_ALLOCATOR_HH
#define VCOMA_VM_PAGE_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "core/vaddr_layout.hh"
#include "vm/page_table.hh"
#include "vm/pressure.hh"

namespace vcoma
{

/** Strategy interface: fill in placement fields of a fresh page. */
class PageAllocator
{
  public:
    explicit PageAllocator(const VAddrLayout &layout,
                           PressureTracker &pressure)
        : layout_(layout), pressure_(pressure)
    {
    }

    virtual ~PageAllocator() = default;

    /**
     * Assign home/frame/dirPage/colour for @p page (vpn already set).
     * Also registers the page with the pressure tracker.
     */
    virtual void assign(PageInfo &page) = 0;

    /** Release placement state when a page is swapped out. */
    virtual void release(PageInfo &page);

    /**
     * Re-register a previously swapped-out page that is reloaded
     * with its original placement (the slot of a page within its
     * global set is kept across swaps).
     */
    virtual void reattach(PageInfo &page);

  protected:
    const VAddrLayout &layout_;
    PressureTracker &pressure_;
};

/** Physical COMA: frames handed out round-robin across nodes. */
class RoundRobinAllocator : public PageAllocator
{
  public:
    RoundRobinAllocator(const VAddrLayout &layout,
                        PressureTracker &pressure, unsigned numNodes)
        : PageAllocator(layout, pressure), numNodes_(numNodes)
    {
    }

    void assign(PageInfo &page) override;

  private:
    unsigned numNodes_;
    std::uint64_t nextFrame_ = 0;
};

/** L3-TLB: page colouring; physical colour == virtual colour. */
class ColouredAllocator : public PageAllocator
{
  public:
    ColouredAllocator(const VAddrLayout &layout, PressureTracker &pressure,
                      unsigned numNodes);

    void assign(PageInfo &page) override;

  private:
    unsigned numNodes_;
    /** Next frame ordinal within each colour. */
    std::vector<std::uint64_t> nextInColour_;
};

/** V-COMA: no frames; home from the VPN; directory pages at home. */
class VcomaAllocator : public PageAllocator
{
  public:
    VcomaAllocator(const VAddrLayout &layout, PressureTracker &pressure,
                   unsigned numNodes);

    void assign(PageInfo &page) override;

  private:
    /** Next directory-page index per home node. */
    std::vector<std::uint64_t> nextDirPage_;
};

} // namespace vcoma

#endif // VCOMA_VM_PAGE_ALLOCATOR_HH
