/**
 * @file
 * Memory-pressure accounting per global page set (Sections 3.4, 4.3
 * and 6 of the paper; Figure 11).
 *
 * Pressure of a global page set = occupied page slots / capacity,
 * where capacity = P * K (number of nodes times attraction-memory
 * associativity). When the pressure of the set a new page maps to
 * exceeds the page-daemon threshold, a resident page of that set must
 * be swapped out even if other sets are underused — the cost of the
 * set-associative virtual-to-physical mapping the paper discusses.
 */

#ifndef VCOMA_VM_PRESSURE_HH
#define VCOMA_VM_PRESSURE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace vcoma
{

/** Tracks resident-page counts per global page set. */
class PressureTracker
{
  public:
    /**
     * @param numSets  number of global page sets (colours)
     * @param capacity page slots per global page set (P * K)
     */
    PressureTracker(std::uint64_t numSets, std::uint64_t capacity);

    /** A page of @p colour became resident. */
    void pageIn(std::uint64_t colour);

    /** A page of @p colour was swapped out. */
    void pageOut(std::uint64_t colour);

    /** Resident pages in @p colour. */
    std::uint64_t occupied(std::uint64_t colour) const;

    /** Pressure (occupied/capacity) of @p colour. */
    double pressure(std::uint64_t colour) const;

    /** Full profile across all colours (Figure 11). */
    std::vector<double> profile() const;

    /** Highest pressure across all colours. */
    double maxPressure() const;

    /** Mean pressure across all colours. */
    double meanPressure() const;

    /** True if adding a page to @p colour would exceed @p threshold. */
    bool wouldExceed(std::uint64_t colour, double threshold) const;

    std::uint64_t numSets() const { return counts_.size(); }
    std::uint64_t capacity() const { return capacity_; }

    /** Times a pageIn pushed a colour past full capacity. */
    Counter overflows;

    /** Register the counters on @p g under machine-level names. */
    void
    addStats(StatGroup &g) const
    {
        g.addCounter("pressureOverflows", overflows);
    }

  private:
    std::uint64_t capacity_;
    std::vector<std::uint64_t> counts_;
};

} // namespace vcoma

#endif // VCOMA_VM_PRESSURE_HH
