/**
 * @file
 * The flat COMA-F directory. Each data page has a directory page at
 * its home node; lookups are keyed by virtual page number (the
 * physical schemes could equivalently key by frame — the entry found
 * is the same because the mapping is one-to-one, and the timing
 * difference is what the DLB models capture).
 */

#ifndef VCOMA_COMA_DIRECTORY_HH
#define VCOMA_COMA_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>

#include "common/stats.hh"
#include "core/directory_page.hh"

namespace vcoma
{

/** Directory memory for the whole machine (logically per-home). */
class Directory
{
  public:
    /** @param entriesPerPage blocks per page. */
    explicit Directory(unsigned entriesPerPage)
        : entriesPerPage_(entriesPerPage)
    {
    }

    /** Directory page for @p vpn, created on first use. */
    DirectoryPage &
    pageFor(PageNum vpn)
    {
        auto [it, inserted] =
            pages_.try_emplace(vpn, entriesPerPage_);
        if (inserted)
            ++pagesAllocated;
        return it->second;
    }

    /** Directory page for @p vpn or nullptr if never created. */
    DirectoryPage *
    findPage(PageNum vpn)
    {
        auto it = pages_.find(vpn);
        return it == pages_.end() ? nullptr : &it->second;
    }

    /** Directory entry for block @p blockIdx of page @p vpn. */
    DirectoryEntry &
    entryFor(PageNum vpn, std::uint64_t blockIdx)
    {
        return pageFor(vpn).entry(blockIdx);
    }

    /** Drop the page's directory state (page reclaimed / swapped). */
    void
    reclaim(PageNum vpn)
    {
        pages_.erase(vpn);
        ++pagesReclaimed;
    }

    unsigned entriesPerPage() const { return entriesPerPage_; }

    /** All live directory pages (tests/invariant checkers). */
    const std::unordered_map<PageNum, DirectoryPage> &
    pages() const
    {
        return pages_;
    }

    Counter pagesAllocated;
    Counter pagesReclaimed;

  private:
    unsigned entriesPerPage_;
    std::unordered_map<PageNum, DirectoryPage> pages_;
};

} // namespace vcoma

#endif // VCOMA_COMA_DIRECTORY_HH
