#include "coma/protocol.hh"

#include <algorithm>
#include <cstdlib>

#include "common/bitops.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "sim/event_trace.hh"

namespace vcoma
{

CoherenceEngine::CoherenceEngine(const MachineConfig &cfg,
                                 const SchemeTraits &traits,
                                 const VAddrLayout &layout,
                                 PageTable &pageTable, Directory &directory,
                                 Network &network,
                                 std::vector<std::unique_ptr<Node>> &nodes)
    : cfg_(cfg), traits_(traits), layout_(layout), pageTable_(pageTable),
      directory_(directory), network_(network), nodes_(nodes),
      rng_(cfg.seed ^ 0xc0a1e5ce)
{
    pageMask_ = mask(layout_.pageBits());
    pageCtx_.resize(pageCtxSlots);

    // The fast filter is a pure simulator optimisation; results are
    // identical with it on or off. It is structurally excluded where
    // the slow path has per-reference side effects the filter cannot
    // replay: schemes charging a TLB before the FLC on every
    // reference (L0, VICTIMA) declare fastReadFilter = false, L1
    // additionally excludes stores (TLB charge on FLC write-through),
    // and checkLevel >= 2 wants the version self-check on every
    // cache hit.
    const char *fp = std::getenv("VCOMA_FASTPATH");
    fastConfigured_ = fp ? envTruthy("VCOMA_FASTPATH") : cfg_.fastPath;
    fastReads_ = fastConfigured_ && traits_.fastReadFilter &&
                 cfg_.checkLevel < 2;
    fastWrites_ = fastReads_ && traits_.fastWriteFilter;
    if (fastReads_) {
        fast_.resize(static_cast<std::size_t>(cfg_.numNodes) *
                     fastBlocksPerCpu);
        rawNodes_.reserve(nodes_.size());
        for (auto &n : nodes_)
            rawNodes_.push_back(n.get());
    }
}

PageInfo &
CoherenceEngine::residentPage(VAddr va, VAddr &paBase)
{
    const PageNum vpn = layout_.vpn(va);
    if (!fastConfigured_) {
        // Pristine reference path: page-table walk per reference,
        // for A/B comparison against the memoised core.
        PageInfo &page = pageTable_.ensureResident(va);
        paBase = traits_.hasPhysicalAddresses()
                     ? static_cast<VAddr>(page.frame) << layout_.pageBits()
                     : 0;
        return page;
    }
    PageCtx &ent = pageCtx_[vpn & (pageCtxSlots - 1)];
    if (ent.vpn == vpn && ent.epoch == xlatEpoch_ && ent.page->resident) {
        paBase = ent.paBase;
        return *ent.page;
    }
    PageInfo &page = pageTable_.ensureResident(va);
    // Fill after ensureResident: a fault can preload/swap pages and
    // bump the epoch, and the memo must carry the post-fault epoch.
    ent.vpn = vpn;
    ent.epoch = xlatEpoch_;
    ent.page = &page;
    ent.paBase =
        traits_.hasPhysicalAddresses()
            ? static_cast<VAddr>(page.frame) << layout_.pageBits()
            : 0;
    paBase = ent.paBase;
    return page;
}

PageInfo &
CoherenceEngine::pageFor(VAddr va, RefType type)
{
    VAddr paBase = 0;
    PageInfo &page = residentPage(va, paBase);
    const std::uint8_t need =
        type == RefType::Read ? ProtRead : ProtWrite;
    if (!(page.protection & need)) {
        ++protectionFaults;
        throw ProtectionFault(detail::concat(
            "protection fault: ",
            type == RefType::Read ? "read" : "write", " denied at va 0x",
            std::hex, va, std::dec, " (vpn 0x", std::hex, page.vpn,
            std::dec, ", home node ", page.home, ", protection bits ",
            unsigned(page.protection), ")"));
    }
    page.referenced = true;
    // Without a home-side DLB the modify bit is maintained by the
    // node-side translation/refill path; in V-COMA it is set at the
    // home when exclusive ownership is first requested (Section 4.3),
    // which the DLB handles in chargeDlb().
    if (type == RefType::Write && !traits_.hasDlb)
        page.modified = true;
    return page;
}

CoherenceEngine::BlockCtx
CoherenceEngine::resolve(VAddr va)
{
    BlockCtx ctx;
    VAddr paBase = 0;
    ctx.page = &residentPage(va, paBase);
    ctx.blockVa = layout_.blockAlign(va);
    ctx.blockIdx = layout_.dirEntryIndex(va);
    if (traits_.hasPhysicalAddresses()) {
        const PAddr pa = paBase | (va & pageMask_);
        const PAddr blockPa = pa & ~mask(layout_.blockBits());
        ctx.amKey = traits_.amVirtual ? ctx.blockVa : blockPa;
        ctx.flcKey = traits_.flcVirtual ? va : pa;
        ctx.slcKey = traits_.slcVirtual ? va : pa;
    } else {
        ctx.amKey = ctx.blockVa;
        ctx.flcKey = va;
        ctx.slcKey = va;
    }
    return ctx;
}

VAddr
CoherenceEngine::amKeyOf(VAddr blockVa)
{
    return traits_.amVirtual ? blockVa : pageTable_.translate(blockVa);
}

VAddr
CoherenceEngine::flcKeyOf(VAddr blockVa)
{
    return traits_.flcVirtual ? blockVa : pageTable_.translate(blockVa);
}

VAddr
CoherenceEngine::slcKeyOf(VAddr blockVa)
{
    return traits_.slcVirtual ? blockVa : pageTable_.translate(blockVa);
}

VAddr
CoherenceEngine::victimBlockVa(const AmLine &line) const
{
    return traits_.amVirtual ? line.key : pageTable_.reverse(line.key);
}

Cycles
CoherenceEngine::chargeTlb(Node &node, PageNum vpn, StreamClass cls, Tick t)
{
    if (!node.tlb)
        return 0;
    PageNum evicted = Tlb::noVpn;
    const bool hit =
        node.tlb->access(vpn, cls, node.tlbSpill ? &evicted : nullptr);
    if (node.tlbSpill && evicted != Tlb::noVpn) {
        // Victima: the displaced entry spills into an SLC frame
        // instead of being discarded.
        node.tlbSpill->access(evicted, StreamClass::Writeback);
        ++tlbSpillFills;
    }
    if (hit)
        return 0;
    if (node.tlbSpill) {
        // TLB miss: probe the spilled entries in the SLC (one SLC
        // access) before paying the walk; a hit migrates the entry
        // back into the TLB (the access() above already filled it).
        ++tlbSpillProbes;
        const Cycles probe = cfg_.timedTranslation ? cfg_.timing.slcHit : 0;
        if (node.tlbSpill->contains(vpn)) {
            node.tlbSpill->invalidate(vpn);
            ++tlbSpillHits;
            return probe;
        }
        if (tracer_) {
            tracer_->instant("tlbFill", EventTracer::TrackTranslation,
                             node.id, t, vpn << layout_.pageBits());
        }
        return probe +
               (cfg_.timedTranslation ? cfg_.timing.translationMiss : 0);
    }
    if (tracer_) {
        tracer_->instant("tlbFill", EventTracer::TrackTranslation, node.id,
                         t, vpn << layout_.pageBits());
    }
    return cfg_.timedTranslation ? cfg_.timing.translationMiss : 0;
}

Cycles
CoherenceEngine::chargeDlb(Node &home, PageInfo &page, NodeId requester,
                           bool exclusiveReq, StreamClass cls, Tick t)
{
    if (!home.dlb)
        return 0;
    const bool hit = home.dlb->access(page, requester, exclusiveReq, cls);
    if (hit)
        return 0;
    const Cycles penalty =
        cfg_.timedTranslation ? cfg_.timing.translationMiss : 0;
    dlbFillLatency.sample(static_cast<double>(penalty));
    if (tracer_) {
        tracer_->instant("dlbFill", EventTracer::TrackTranslation, home.id,
                         t, page.vpn << layout_.pageBits());
    }
    return penalty;
}

void
CoherenceEngine::checkVersion(const BlockCtx &ctx, const AmLine *line,
                              unsigned level)
{
    if (cfg_.checkLevel < level)
        return;
    const DirectoryEntry &e =
        directory_.entryFor(ctx.page->vpn, ctx.blockIdx);
    if (!line)
        panic("coherence check: cached data without an AM copy, va ",
              ctx.blockVa);
    if (line->version != e.version)
        panic("coherence check: stale copy observed, va ", ctx.blockVa,
              " line v", line->version, " dir v", e.version);
}

namespace
{

/** Purge one AM block's sub-blocks from a node's SLC and FLC. */
void
purgeCachesRaw(Node &node, VAddr slcBase, VAddr flcBase,
               unsigned blockBytes, Counter &merges)
{
    unsigned dirty = 0;
    node.slc.invalidateRange(slcBase, blockBytes, dirty);
    if (dirty > 0)
        ++merges;
    unsigned dirtyF = 0;
    node.flc.invalidateRange(flcBase, blockBytes, dirtyF);
}

} // namespace

void
CoherenceEngine::invalidateAt(NodeId m, const BlockCtx &ctx, Tick t)
{
    Node &node = *nodes_[m];
    const AmState prior = node.am.invalidate(ctx.amKey);
    if (prior == AmState::Invalid)
        panic("invalidation at node ", m, " found no copy, va ",
              ctx.blockVa);
    purgeCachesRaw(node, slcKeyOf(ctx.blockVa), flcKeyOf(ctx.blockVa),
                   cfg_.am.blockBytes, writebackMerges);
    ++node.invalsReceived;
    if (tracer_) {
        tracer_->instant("invalidate", EventTracer::TrackInvalidation, m, t,
                         ctx.blockVa);
    }
}

void
CoherenceEngine::dropSharedVictim(Node &node, VAddr blockVa, Tick t)
{
    const PageNum vpn = layout_.vpn(blockVa);
    PageInfo *page = pageTable_.find(vpn);
    if (!page || !page->resident)
        panic("shared victim of a non-resident page, va ", blockVa);
    DirectoryEntry &e =
        directory_.entryFor(vpn, layout_.dirEntryIndex(blockVa));
    if (!e.holds(node.id) || e.owner == node.id) {
        panic("dropSharedVictim: node ", node.id, " va ", blockVa,
              " copyset ", e.copyset, " owner ", e.owner, " excl ",
              e.exclusive, " version ", e.version, " resident ",
              page->resident, " home ", page->home);
    }
    e.dropCopy(node.id);
    ++sharedDrops;
    ++node.am.sharedDrops;

    // Replacement notice to the home so the copyset stays exact
    // (background control message).
    const Tick arrive =
        network_.send(node.id, page->home, MsgSize::Request, t);
    Node &home = *nodes_[page->home];
    home.pe.acquire(arrive, cfg_.timing.peOccupancy);
    if (traits_.homeTranslation) {
        home.shadow.access(vpn, StreamClass::Writeback);
        chargeDlb(home, *page, node.id, false, StreamClass::Writeback,
                  arrive);
    }

    purgeCachesRaw(node, slcKeyOf(blockVa), flcKeyOf(blockVa),
                   cfg_.am.blockBytes, writebackMerges);
}

void
CoherenceEngine::injectBlock(Node &from, VAddr blockVa, AmState st,
                             std::uint32_t version, Tick t)
{
    VCOMA_ASSERT(isOwnerState(st));
    ++injections;
    ++from.injectionsIssued;
    if (tracer_) {
        tracer_->instant("inject", EventTracer::TrackCoherence, from.id, t,
                         blockVa);
    }

    const PageNum vpn = layout_.vpn(blockVa);
    PageInfo *page = pageTable_.find(vpn);
    if (!page || !page->resident)
        panic("injection of a non-resident page's block, va ", blockVa);
    PagePin pin(*this, vpn);
    DirectoryEntry &e =
        directory_.entryFor(vpn, layout_.dirEntryIndex(blockVa));
    VCOMA_ASSERT(e.owner == from.id);
    e.dropCopy(from.id);
    e.owner = invalidNode;

    // Node-exit TLBs (L3): the outbound injection is a local-node
    // departure and needs a virtual-to-physical translation
    // (write-back stream).
    if (traits_.tlbPoint == TlbPoint::NodeExit) {
        from.shadow.access(vpn, StreamClass::Writeback);
        if (from.tlb)
            from.tlb->access(vpn, StreamClass::Writeback);
    }

    const VAddr key = amKeyOf(blockVa);
    const NodeId homeId = page->home;
    t = network_.send(from.id, homeId, MsgSize::Block, t);
    Node &home = *nodes_[homeId];
    const Tick s = home.pe.acquire(t, cfg_.timing.peOccupancy);
    t = s + cfg_.timing.directoryLookup;
    if (traits_.homeTranslation) {
        home.shadow.access(vpn, StreamClass::Writeback);
        t += chargeDlb(home, *page, from.id, false, StreamClass::Writeback,
                       s);
    }

    auto tryAccept = [&](Node &cand) -> bool {
        // If the candidate already holds a Shared copy of this very
        // block, the master copy merges into it — no frame needed.
        // (An Exclusive victim has no sharers, so st must be MS.)
        if (AmLine *existing = cand.am.find(key)) {
            VCOMA_ASSERT(existing->state == AmState::Shared);
            VCOMA_ASSERT(st == AmState::MasterShared);
            VCOMA_ASSERT(existing->version == version);
            existing->state = AmState::MasterShared;
            e.owner = cand.id;
            e.exclusive = false;
            ++cand.injectionsAccepted;
            return true;
        }
        VictimChoice v;
        if (!cand.am.chooseInjectionVictim(key, v))
            return false;
        AmLine &frame = cand.am.line(v.lineIndex);
        if (v.kind == VictimKind::Shared) {
            const VAddr sharedVa = victimBlockVa(frame);
            frame.state = AmState::Invalid;
            dropSharedVictim(cand, sharedVa, t);
        }
        cand.am.installAt(v.lineIndex, key, st, version);
        e.addCopy(cand.id);
        e.owner = cand.id;
        e.exclusive = (st == AmState::Exclusive);
        ++cand.injectionsAccepted;
        return true;
    };

    // The home absorbs the injection only into an Invalid frame of
    // the same set (Section 4.2); else forward to a random node which
    // may also consume a Shared frame. When the evicting node is
    // itself the home, its set is the one that just overflowed, so it
    // must forward immediately (and never re-absorb its own victim).
    if (homeId != from.id) {
        if (AmLine *existing = home.am.find(key)) {
            VCOMA_ASSERT(existing->state == AmState::Shared);
            VCOMA_ASSERT(st == AmState::MasterShared);
            existing->state = AmState::MasterShared;
            e.owner = home.id;
            e.exclusive = false;
            ++home.injectionsAccepted;
            return;
        }
        const VictimChoice choice = home.am.chooseVictim(key);
        if (choice.kind == VictimKind::Empty) {
            home.am.installAt(choice.lineIndex, key, st, version);
            e.addCopy(home.id);
            e.owner = home.id;
            e.exclusive = (st == AmState::Exclusive);
            ++home.injectionsAccepted;
            return;
        }
    }

    NodeId prev = homeId;
    const unsigned numNodes = cfg_.numNodes;
    const unsigned start = static_cast<unsigned>(rng_.below(numNodes));
    for (unsigned i = 0; i < numNodes; ++i) {
        const NodeId cand = static_cast<NodeId>((start + i) % numNodes);
        if (cand == from.id || cand == homeId)
            continue;
        t = network_.send(prev, cand, MsgSize::Block, t);
        ++injectionHops;
        prev = cand;
        Node &candNode = *nodes_[cand];
        candNode.pe.acquire(t, cfg_.timing.peOccupancy);
        if (tryAccept(candNode))
            return;
    }

    // Emergency: the whole global set is owned. The page daemon must
    // swap out resident pages of this colour until a frame frees up
    // (Section 4.3's pressure threshold normally prevents this).
    for (unsigned attempt = 0; attempt < 8; ++attempt) {
        if (!swapVictimPicker_)
            break;
        const PageNum victim = swapVictimPicker_(page->colour, vpn);
        if (victim == noPage)
            break;
        ++injectionSwaps;
        purgePage(victim);
        pageTable_.swapOut(victim);
        for (unsigned m = 0; m < numNodes; ++m) {
            if (m == from.id)
                continue;
            if (tryAccept(*nodes_[m]))
                return;
        }
    }
    panic("injection failed: global set exhausted for va ", blockVa);
}

void
CoherenceEngine::installBlock(Node &n, const BlockCtx &ctx, AmState st,
                              Tick t)
{
    DirectoryEntry &e = dirEntry(ctx);
    const VictimChoice v = n.am.chooseVictim(ctx.amKey);
    AmLine &frame = n.am.line(v.lineIndex);
    if (v.kind == VictimKind::Shared) {
        const VAddr victimVa = victimBlockVa(frame);
        frame.state = AmState::Invalid;
        dropSharedVictim(n, victimVa, t);
    } else if (v.kind == VictimKind::Owned) {
        const VAddr victimVa = victimBlockVa(frame);
        const AmState victimState = frame.state;
        const std::uint32_t victimVersion = frame.version;
        purgeCachesRaw(n, slcKeyOf(victimVa), flcKeyOf(victimVa),
                       cfg_.am.blockBytes, writebackMerges);
        frame.state = AmState::Invalid;
        injectBlock(n, victimVa, victimState, victimVersion, t);
    }
    n.am.installAt(v.lineIndex, ctx.amKey, st, e.version);
    e.addCopy(n.id);
}

Tick
CoherenceEngine::remoteRead(Node &n, const BlockCtx &ctx, Tick t,
                            Cycles &xlat)
{
    PageInfo &page = *ctx.page;
    Node &home = *nodes_[page.home];

    t = network_.send(n.id, page.home, MsgSize::Request, t);
    const Tick s = home.pe.acquire(t, cfg_.timing.peOccupancy);
    t = s + cfg_.timing.directoryLookup;

    if (traits_.homeTranslation) {
        home.shadow.access(page.vpn, StreamClass::Demand);
        const Cycles p =
            chargeDlb(home, page, n.id, false, StreamClass::Demand, s);
        xlat += p;
        t += p;
    }

    DirectoryEntry &e = dirEntry(ctx);
    if (!e.resident())
        panic("read request found a non-resident block, va ", ctx.blockVa);
    VCOMA_ASSERT(e.owner != n.id);

    const NodeId sup = e.owner;
    Node &supplier = *nodes_[sup];
    if (sup != page.home) {
        ++readForwards;
        t = network_.send(page.home, sup, MsgSize::Request, t);
        supplier.pe.acquire(t, cfg_.timing.peOccupancy);
    }

    t = supplier.amPort.acquire(t, cfg_.timing.amHit) + cfg_.timing.amHit;
    AmLine *supLine = supplier.am.find(ctx.amKey);
    if (!supLine || !isOwnerState(supLine->state))
        panic("directory owner has no owned copy, va ", ctx.blockVa);
    checkVersion(ctx, supLine, 1);
    supplier.am.touch(ctx.amKey);
    if (supLine->state == AmState::Exclusive) {
        supLine->state = AmState::MasterShared;
        e.exclusive = false;
    }

    t = network_.send(sup, n.id, MsgSize::Block, t);
    installBlock(n, ctx, AmState::Shared, t);
    return t;
}

Tick
CoherenceEngine::remoteWrite(Node &n, const BlockCtx &ctx, bool hasData,
                             Tick t, Cycles &xlat)
{
    PageInfo &page = *ctx.page;
    Node &home = *nodes_[page.home];

    t = network_.send(n.id, page.home, MsgSize::Request, t);
    const Tick s = home.pe.acquire(t, cfg_.timing.peOccupancy);
    t = s + cfg_.timing.directoryLookup;

    if (traits_.homeTranslation) {
        home.shadow.access(page.vpn, StreamClass::Demand);
        const Cycles p =
            chargeDlb(home, page, n.id, true, StreamClass::Demand, s);
        xlat += p;
        t += p;
    }

    DirectoryEntry &e = dirEntry(ctx);
    if (!e.resident())
        panic("write request found a non-resident block, va ", ctx.blockVa);
    if (!hasData)
        VCOMA_ASSERT(e.owner != n.id);

    const NodeId owner = e.owner;
    Tick dataArrive = t;
    Tick maxAck = t;

    for (unsigned m = 0; m < cfg_.numNodes; ++m) {
        if (m == n.id || !e.holds(m))
            continue;
        const Tick ti = network_.send(page.home, m, MsgSize::Request, t);
        Node &tm = *nodes_[m];
        const Tick sm = tm.pe.acquire(ti, cfg_.timing.peOccupancy);
        if (m == owner && !hasData) {
            // The owner forwards the block directly to the requester
            // before invalidating its own copy.
            const Tick sa =
                tm.amPort.acquire(sm, cfg_.timing.amHit) +
                cfg_.timing.amHit;
            AmLine *ownLine = tm.am.find(ctx.amKey);
            if (!ownLine || !isOwnerState(ownLine->state))
                panic("write: owner lacks owned copy, va ", ctx.blockVa);
            checkVersion(ctx, ownLine, 1);
            dataArrive = network_.send(m, n.id, MsgSize::Block, sa);
        }
        invalidateAt(m, ctx, sm);
        e.dropCopy(m);
        ++invalidationsSent;
        const Tick ack = network_.send(m, page.home, MsgSize::Request,
                                       sm + 4);
        maxAck = std::max(maxAck, ack);
    }

    const Tick grant =
        network_.send(page.home, n.id, MsgSize::Request, maxAck);
    Tick done = std::max(grant, dataArrive);

    ++e.version;
    e.copyset = 0;
    e.addCopy(n.id);
    e.owner = n.id;
    e.exclusive = true;

    if (hasData) {
        AmLine *line = n.am.find(ctx.amKey);
        if (!line || !line->valid())
            panic("upgrade without a local copy, va ", ctx.blockVa);
        line->state = AmState::Exclusive;
        line->version = e.version;
        n.am.touch(ctx.amKey);
    } else {
        installBlock(n, ctx, AmState::Exclusive, done);
    }
    return done;
}

AccessResult
CoherenceEngine::access(CpuId cpu, RefType type, VAddr va, Tick now)
{
    const AccessResult res = accessImpl(cpu, type, va, now);
    // Filtering effect: a reference served by the local hierarchy
    // never generated a home-directory (DLB) lookup.
    if (traits_.hasDlb && res.servedBy != ServedBy::Remote)
        ++dlbFilteredRefs;
    if (transitionHook_ && res.servedBy == ServedBy::Remote)
        transitionHook_();
    if (fastReads_)
        fillFastEntry(cpu, va);
    return res;
}

void
CoherenceEngine::fillFastEntry(CpuId cpu, VAddr va)
{
    const PageNum vpn = layout_.vpn(va);
    PageInfo *page = pageTable_.find(vpn);
    if (!page || !page->resident)
        return;
    DirectoryPage *dp = directory_.findPage(vpn);
    if (!dp)
        return;
    const VAddr blockVa = layout_.blockAlign(va);
    FastBlock &ent = fast_[fastSlot(cpu, blockVa)];
    ent.blockVa = blockVa;
    ent.epoch = xlatEpoch_;
    ent.page = page;
    ent.entry = &dp->entry(layout_.dirEntryIndex(va));
    ent.paBase =
        traits_.hasPhysicalAddresses()
            ? static_cast<VAddr>(page->frame) << layout_.pageBits()
            : 0;
    ent.amKey = traits_.amVirtual || !traits_.hasPhysicalAddresses()
                    ? blockVa
                    : ent.paBase | (blockVa & pageMask_);
    ent.amLine = nodes_[cpu]->am.find(ent.amKey);
}

bool
CoherenceEngine::fastWrite(CpuId cpu, VAddr va, Tick now, FastBlock &ent,
                           PageInfo &page, AccessResult &out)
{
    Node &node = *rawNodes_[cpu];
    const TimingConfig &tm = cfg_.timing;
    const VAddr pa = ent.paBase | (va & pageMask_);

    // Writes: only the silent store (block already Exclusive here)
    // with an SLC hit stays entirely local with flat timing.
    if (!fastWrites_)
        return false;
    if (!(page.protection & ProtWrite))
        return false;
    AmLine *line = ent.amLine;
    if (!line || line->key != ent.amKey ||
        line->state != AmState::Exclusive) {
        return false;
    }
    const VAddr slcKey = traits_.slcVirtual ? va : pa;
    const std::uint32_t sIdx = node.slc.lookup(slcKey);
    if (sIdx == Cache::npos)
        return false;
    DirectoryEntry &e = *ent.entry;
    VCOMA_ASSERT(e.owner == node.id && e.exclusive);

    // Commit: the FLC sees the write-through store exactly as in the
    // slow path (hit bookkeeping, or the configured miss behaviour).
    node.flc.access(traits_.flcVirtual ? va : pa, RefType::Write);
    node.slc.commitWriteHit(sIdx);
    ++e.version;
    line->version = e.version;
    node.am.touchLine(*line);
    page.referenced = true;
    if (!traits_.hasDlb)
        page.modified = true;
    out.done = now + tm.slcHit;
    out.local = tm.slcHit;
    out.remote = 0;
    out.xlat = 0;
    out.servedBy = ServedBy::Slc;
    if (traits_.hasDlb)
        ++dlbFilteredRefs;
    return true;
}

void
CoherenceEngine::verifyFastFilter() const
{
    for (std::size_t slot = 0; slot < fast_.size(); ++slot) {
        const std::size_t cpu = slot / fastBlocksPerCpu;
        const FastBlock &ent = fast_[slot];
        if (ent.blockVa == FastBlock::noBlock || ent.epoch != xlatEpoch_)
            continue;  // dead entry: fastAccess would reject it
        const PageNum vpn = layout_.vpn(ent.blockVa);
        const PageInfo *page = pageTable_.find(vpn);
        if (page != ent.page) {
            panic("fast filter: cpu ", cpu, " va ", ent.blockVa,
                  " caches a stale page pointer");
        }
        if (!page || !page->resident)
            continue;  // rejected live by fastAccess
        if (traits_.hasPhysicalAddresses() &&
            ent.paBase != (static_cast<VAddr>(page->frame)
                           << layout_.pageBits())) {
            panic("fast filter: cpu ", cpu, " va ", ent.blockVa,
                  " caches a stale translation");
        }
        DirectoryPage *dp = directory_.findPage(vpn);
        if (!dp ||
            ent.entry != &dp->entry(layout_.dirEntryIndex(ent.blockVa))) {
            panic("fast filter: cpu ", cpu, " va ", ent.blockVa,
                  " caches a stale directory entry");
        }
        // The AM pointer is only trusted when its key still matches;
        // when it does, it must be the authoritative line for that
        // key.
        if (ent.amLine && ent.amLine->key == ent.amKey &&
            ent.amLine->valid() &&
            ent.amLine != nodes_[cpu]->am.find(ent.amKey)) {
            panic("fast filter: cpu ", cpu, " va ", ent.blockVa,
                  " caches a stale AM line");
        }
    }
}

void
CoherenceEngine::addStats(StatGroup &g) const
{
    g.addCounter("remoteReads", remoteReads);
    g.addCounter("remoteWrites", remoteWrites);
    g.addCounter("upgrades", upgrades);
    g.addCounter("readForwards", readForwards);
    g.addCounter("invalidationsSent", invalidationsSent);
    g.addCounter("injections", injections);
    g.addCounter("injectionHops", injectionHops);
    g.addCounter("injectionSwaps", injectionSwaps);
    g.addCounter("sharedDrops", sharedDrops);
    g.addCounter("writebackMerges", writebackMerges);
    g.addCounter("tlbShootdowns", tlbShootdowns);
    g.addCounter("protectionFaults", protectionFaults);
    g.addCounter("dlbFilteredRefs", dlbFilteredRefs);
    // Spill counters only exist under slcTlbSpill schemes; keep the
    // legacy stat dump unchanged by registering them conditionally.
    if (traits_.slcTlbSpill) {
        g.addCounter("tlbSpillProbes", tlbSpillProbes);
        g.addCounter("tlbSpillHits", tlbSpillHits);
        g.addCounter("tlbSpillFills", tlbSpillFills);
    }
    g.addDistribution("remoteReadLatency", remoteReadLatency);
    g.addDistribution("remoteWriteLatency", remoteWriteLatency);
    g.addDistribution("dlbFillLatency", dlbFillLatency);
}

AccessResult
CoherenceEngine::accessImpl(CpuId cpu, RefType type, VAddr va, Tick now)
{
    Node &node = *nodes_[cpu];
    PageInfo &page = pageFor(va, type);
    // Directory references to this page live across the rest of the
    // access: it must not be swapped out by a nested emergency.
    PagePin pin(*this, page.vpn);
    BlockCtx ctx = resolve(va);
    ctx.page = &page;
    const PageNum vpn = page.vpn;
    const TimingConfig &tm = cfg_.timing;

    AccessResult res;
    Tick t = now;

    // ----- PreFlc (L0, VICTIMA): translation before the FLC -----
    if (traits_.tlbPoint == TlbPoint::PreFlc) {
        node.shadow.access(vpn, StreamClass::Demand);
        const Cycles p = chargeTlb(node, vpn, StreamClass::Demand, t);
        res.xlat += p;
        t += p;
    }

    // ----- FLC -----
    const CacheAccess flcRes = node.flc.access(ctx.flcKey, type);
    if (type == RefType::Read && flcRes.hit) {
        if (cfg_.checkLevel >= 2)
            checkVersion(ctx, node.am.find(ctx.amKey), 2);
        t += tm.flcHit;
        res.done = t;
        res.local = (t - now) - res.xlat;
        res.servedBy = ServedBy::Flc;
        return res;
    }

    // ----- FLC -> SLC transit: read miss fill or write-through store
    if (traits_.tlbPoint == TlbPoint::FlcToSlc) {
        node.shadow.access(vpn, StreamClass::Demand);
        const Cycles p = chargeTlb(node, vpn, StreamClass::Demand, t);
        res.xlat += p;
        t += p;
    }

    const CacheAccess slcRes = node.slc.access(ctx.slcKey, type);
    if (slcRes.hasVictim) {
        // SLC eviction: keep the FLC included and push dirty data
        // down (the write-back stream of Section 2.2.2).
        const VAddr victimKey = slcRes.victim;
        const VAddr victimVa =
            traits_.slcVirtual ? victimKey : pageTable_.reverse(victimKey);
        const VAddr victimFlcBase =
            traits_.flcVirtual ? victimVa : victimKey;
        unsigned dirtyF = 0;
        node.flc.invalidateRange(victimFlcBase, cfg_.slc.blockBytes,
                                 dirtyF);
        if (slcRes.victimDirty)
            handleSlcWriteback(node, victimVa, t);
    }

    // ----- local AM state -----
    AmLine *line = node.am.find(ctx.amKey);
    const AmState st = line ? line->state : AmState::Invalid;

    // Does this reference cross the SLC -> AM boundary?
    const bool crossesToAm =
        (type == RefType::Read && !slcRes.hit) ||
        (type == RefType::Write &&
         (!slcRes.hit || st != AmState::Exclusive));
    if (traits_.tlbPoint == TlbPoint::SlcToAm && crossesToAm) {
        node.shadow.access(vpn, StreamClass::Demand);
        const Cycles p = chargeTlb(node, vpn, StreamClass::Demand, t);
        res.xlat += p;
        t += p;
    }

    // Does it leave the local node entirely?
    const bool crossesNode =
        (type == RefType::Read && !line) ||
        (type == RefType::Write && st != AmState::Exclusive);
    if (traits_.tlbPoint == TlbPoint::NodeExit && crossesNode) {
        node.shadow.access(vpn, StreamClass::Demand);
        const Cycles p = chargeTlb(node, vpn, StreamClass::Demand, t);
        res.xlat += p;
        t += p;
    }

    if (type == RefType::Read) {
        if (slcRes.hit) {
            if (cfg_.checkLevel >= 2)
                checkVersion(ctx, line, 2);
            t += tm.slcHit;
            res.done = t;
            res.local = (t - now) - res.xlat;
            res.servedBy = ServedBy::Slc;
            return res;
        }
        if (line) {
            // Local attraction-memory hit.
            checkVersion(ctx, line, 1);
            node.am.touch(ctx.amKey);
            ++node.am.hits;
            t = node.amPort.acquire(t, tm.amHit) + tm.amHit;
            res.done = t;
            res.local = (t - now) - res.xlat;
            res.servedBy = ServedBy::LocalAm;
            return res;
        }
        ++node.am.misses;
        ++remoteReads;
        const Tick start = t;
        const Cycles xlatBefore = res.xlat;
        t = remoteRead(node, ctx, t + tm.amTagCheck, res.xlat);
        res.remote = (t - start) - (res.xlat - xlatBefore);
        remoteReadLatency.sample(static_cast<double>(res.remote));
        if (tracer_) {
            tracer_->complete("remoteRead", EventTracer::TrackCoherence,
                              cpu, start, t, ctx.blockVa);
        }
        res.done = t;
        res.local = (t - now) - res.remote - res.xlat;
        res.servedBy = ServedBy::Remote;
        return res;
    }

    // ----- write path -----
    if (st == AmState::Exclusive) {
        // Silent store: ownership already held.
        DirectoryEntry &e = dirEntry(ctx);
        VCOMA_ASSERT(e.owner == node.id && e.exclusive);
        ++e.version;
        line->version = e.version;
        node.am.touch(ctx.amKey);
        if (slcRes.hit) {
            t += tm.slcHit;
            res.servedBy = ServedBy::Slc;
        } else {
            // Fill the SLC from the local AM.
            ++node.am.hits;
            t = node.amPort.acquire(t, tm.amHit) + tm.amHit;
            res.servedBy = ServedBy::LocalAm;
        }
        res.done = t;
        res.local = (t - now) - res.xlat;
        return res;
    }

    const bool hasData = line != nullptr;
    if (!hasData)
        ++node.am.misses;
    if (hasData)
        ++upgrades;
    else
        ++remoteWrites;
    if (hasData)
        ++node.upgradesIssued;

    const Tick start = t;
    const Cycles xlatBefore = res.xlat;
    const Cycles tagCheck = hasData ? 0 : tm.amTagCheck;
    t = remoteWrite(node, ctx, hasData, t + tagCheck, res.xlat);
    res.remote = (t - start) - (res.xlat - xlatBefore);
    remoteWriteLatency.sample(static_cast<double>(res.remote));
    if (tracer_) {
        tracer_->complete(hasData ? "upgrade" : "remoteWrite",
                          EventTracer::TrackCoherence, cpu, start, t,
                          ctx.blockVa);
    }
    res.done = t;
    res.local = (t - now) - res.remote - res.xlat;
    res.servedBy = ServedBy::Remote;
    return res;
}

void
CoherenceEngine::handleSlcWriteback(Node &node, VAddr victimVa, Tick t)
{
    const PageNum vpn = layout_.vpn(victimVa);
    // SlcToAm TLBs (L2): the write-back leaves the (virtual) SLC
    // toward the physical AM and needs a translation, unless the
    // design keeps physical pointers in the SLC (no_wback variant).
    if (traits_.tlbPoint == TlbPoint::SlcToAm) {
        node.shadow.access(vpn, StreamClass::Writeback);
        if (node.tlb && cfg_.translation.writebacksAccessTlb)
            node.tlb->access(vpn, StreamClass::Writeback);
    }

    // The data folds into the node's AM copy; the version was already
    // advanced at store time, so this is pure occupancy.
    node.amPort.acquire(t, cfg_.timing.amHit);
    const VAddr blockVa = layout_.blockAlign(victimVa);
    const AmLine *line = node.am.find(amKeyOf(blockVa));
    if (!line)
        panic("SLC write-back without an AM copy, va ", victimVa);
}

void
CoherenceEngine::preloadPage(PageInfo &page)
{
    // The faulting page must not become an emergency swap victim of
    // its own block installs (its blocks share the colour that is
    // overflowing).
    PagePin pin(*this, page.vpn);
    Node &home = *nodes_[page.home];
    const unsigned blockBytes = cfg_.am.blockBytes;
    const VAddr base = page.vpn << layout_.pageBits();
    for (std::uint64_t i = 0; i < layout_.entriesPerDirPage(); ++i) {
        const VAddr blockVa = base + i * blockBytes;
        DirectoryEntry &e = directory_.entryFor(page.vpn, i);
        VCOMA_ASSERT(!e.resident());
        const VAddr key = amKeyOf(blockVa);
        const VictimChoice v = home.am.chooseVictim(key);
        AmLine &frame = home.am.line(v.lineIndex);
        if (v.kind == VictimKind::Shared) {
            const VAddr victimVa = victimBlockVa(frame);
            frame.state = AmState::Invalid;
            dropSharedVictim(home, victimVa, 0);
        } else if (v.kind == VictimKind::Owned) {
            const VAddr victimVa = victimBlockVa(frame);
            const AmState victimState = frame.state;
            const std::uint32_t victimVersion = frame.version;
            purgeCachesRaw(home, slcKeyOf(victimVa), flcKeyOf(victimVa),
                           blockBytes, writebackMerges);
            frame.state = AmState::Invalid;
            injectBlock(home, victimVa, victimState, victimVersion, 0);
        }
        home.am.installAt(v.lineIndex, key, AmState::MasterShared,
                          e.version);
        e.copyset = 0;
        e.addCopy(page.home);
        e.owner = page.home;
        e.exclusive = false;
    }
}

void
CoherenceEngine::purgePage(PageNum vpn)
{
    // Purging reclaims the directory page (dangling entry pointers)
    // and precedes any unmapping: advancing the epoch kills every
    // fast-filter and page-memo entry filled before this point.
    ++xlatEpoch_;
    PageInfo *page = pageTable_.find(vpn);
    if (!page || !page->resident)
        panic("purge of a non-resident page, vpn ", vpn);
    DirectoryPage *dp = directory_.findPage(vpn);
    const VAddr base = vpn << layout_.pageBits();
    if (dp) {
        for (std::uint64_t i = 0; i < dp->size(); ++i) {
            DirectoryEntry &e = dp->entry(i);
            const VAddr blockVa = base + i * cfg_.am.blockBytes;
            for (unsigned m = 0; m < cfg_.numNodes; ++m) {
                if (!e.holds(m))
                    continue;
                Node &nm = *nodes_[m];
                nm.am.invalidate(amKeyOf(blockVa));
                purgeCachesRaw(nm, slcKeyOf(blockVa), flcKeyOf(blockVa),
                               cfg_.am.blockBytes, writebackMerges);
            }
            e.copyset = 0;
            e.owner = invalidNode;
            e.exclusive = false;
        }
    }
    if (cfg_.checkLevel >= 1) {
        // Post-condition: no node retains any block of the page.
        for (std::uint64_t i = 0; i < layout_.entriesPerDirPage();
             ++i) {
            const VAddr blockVa = base + i * cfg_.am.blockBytes;
            for (auto &nodePtr : nodes_) {
                if (nodePtr->am.find(amKeyOf(blockVa))) {
                    panic("purge left a zombie copy of va ", blockVa,
                          " at node ", nodePtr->id);
                }
            }
        }
    }
    directory_.reclaim(vpn);

    // TLB consistency: private TLB entries for the demapped page must
    // be shot down everywhere (Section 2.2.1); in V-COMA only the
    // home's DLB holds a mapping.
    for (auto &nodePtr : nodes_) {
        if (nodePtr->tlb && nodePtr->tlb->invalidate(vpn))
            ++tlbShootdowns;
        if (nodePtr->tlbSpill && nodePtr->tlbSpill->invalidate(vpn))
            ++tlbShootdowns;
        if (nodePtr->dlb && nodePtr->dlb->invalidate(vpn))
            ++tlbShootdowns;
    }
}

} // namespace vcoma
