/**
 * @file
 * One processing node: processor-side caches, attraction memory, the
 * configured translation structure (a private TLB for L0..L3, or the
 * home-side DLB for V-COMA, Figure 5), shadow observer banks, and
 * the node's time-shared resources (protocol engine, AM port).
 */

#ifndef VCOMA_COMA_NODE_HH
#define VCOMA_COMA_NODE_HH

#include <memory>

#include "coma/attraction_memory.hh"
#include "common/config.hh"
#include "core/dlb.hh"
#include "mem/cache.hh"
#include "net/network.hh"
#include "tlb/shadow_bank.hh"
#include "translation/scheme.hh"

namespace vcoma
{

/** Per-node hardware. */
class Node
{
  public:
    Node(NodeId id, const MachineConfig &cfg, const SchemeTraits &traits);

    NodeId id;
    Cache flc;
    Cache slc;
    AttractionMemory am;
    /** Protocol engine occupancy (the PE of Figure 5). */
    Resource pe;
    /** Attraction-memory DRAM port occupancy. */
    Resource amPort;
    /** Configured private TLB (per-node-TLB schemes). */
    std::unique_ptr<Tlb> tlb;
    /** Configured home-side DLB (V-COMA). NMT configures neither. */
    std::unique_ptr<Dlb> dlb;
    /**
     * VICTIMA's spill structure: one translation entry per SLC frame,
     * SLC-associative. TLB victims land here; TLB misses probe it at
     * SLC-hit cost before paying the walk.
     */
    std::unique_ptr<Tlb> tlbSpill;
    /**
     * Shadow observer bank at this node's translation point (fed at
     * the scheme's TLB point for L0..L3, at the home's directory
     * lookup for V-COMA).
     */
    ShadowBank shadow;

    /** @{ @name Node-level event counters */
    Counter upgradesIssued;      ///< S/MS -> E transitions requested
    Counter injectionsIssued;    ///< owned victims sent away
    Counter injectionsAccepted;  ///< injected blocks this node absorbed
    Counter invalsReceived;      ///< invalidations applied here
    /** @} */
};

} // namespace vcoma

#endif // VCOMA_COMA_NODE_HH
