/**
 * @file
 * The attraction memory: the COMA "main memory" that behaves as a
 * large set-associative cache (4 MB, 4-way, 128 B blocks in the
 * baseline). Blocks migrate and replicate among nodes under the
 * COMA-F protocol; each resident block carries one of the four stable
 * states of Section 4.2.
 *
 * Like the Cache model this structure is address-space agnostic: the
 * physical schemes index it with physical addresses, L3-TLB and
 * V-COMA with virtual addresses (page colouring makes both index to
 * the same sets in L3, Figure 4).
 */

#ifndef VCOMA_COMA_ATTRACTION_MEMORY_HH
#define VCOMA_COMA_ATTRACTION_MEMORY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace vcoma
{

/** Stable block states of the COMA-F write-invalidate protocol. */
enum class AmState : std::uint8_t
{
    Invalid,
    Shared,        ///< read-only copy; another node is master
    MasterShared,  ///< the distinguished (last-copy) read-only copy
    Exclusive,     ///< sole, writable copy
};

/** True for the states whose copy must never be silently dropped. */
inline bool
isOwnerState(AmState s)
{
    return s == AmState::MasterShared || s == AmState::Exclusive;
}

/** Short state name for traces. */
const char *amStateName(AmState s);

/** One attraction-memory block frame. */
struct AmLine
{
    /** Block-aligned address in this AM's indexing space. */
    VAddr key = 0;
    AmState state = AmState::Invalid;
    /** Write version for coherence self-checking. */
    std::uint32_t version = 0;
    /** LRU stamp. */
    std::uint64_t lastUse = 0;

    bool valid() const { return state != AmState::Invalid; }
};

/** What kind of frame a victim search found. */
enum class VictimKind : std::uint8_t
{
    Empty,   ///< an Invalid frame: free to use
    Shared,  ///< a Shared (non-master) copy: droppable with notice
    Owned,   ///< MasterShared/Exclusive: must be injected elsewhere
};

/** Result of a victim search in one set. */
struct VictimChoice
{
    VictimKind kind = VictimKind::Empty;
    /** Global line index (set * assoc + way). */
    std::size_t lineIndex = 0;
};

/** Per-node attraction memory. */
class AttractionMemory
{
  public:
    AttractionMemory(std::string name, const CacheConfig &cfg);

    /** Find the line holding block @p addr, or nullptr. */
    AmLine *find(VAddr addr);
    const AmLine *find(VAddr addr) const;

    /** State of block @p addr (Invalid if absent). */
    AmState state(VAddr addr) const;

    /** Update LRU for @p addr (must be present). */
    void touch(VAddr addr);

    /**
     * Update LRU for a line the caller already resolved (the fast
     * path keeps the pointer): identical effect to touch(line.key)
     * without the set scan.
     */
    void touchLine(AmLine &line) { line.lastUse = ++useClock_; }

    /**
     * Pick a victim frame in the set of @p addr, preferring Invalid
     * frames, then the LRU Shared copy, then the LRU owned copy.
     */
    VictimChoice chooseVictim(VAddr addr) const;

    /**
     * Like chooseVictim but never selects an owned frame: returns
     * false if the set holds only owned blocks. Used by the injection
     * protocol, which may only consume Invalid or Shared frames.
     */
    bool chooseInjectionVictim(VAddr addr, VictimChoice &out) const;

    /**
     * Install block @p addr into frame @p lineIndex (which the caller
     * has victimised via chooseVictim and resolved).
     */
    AmLine &installAt(std::size_t lineIndex, VAddr addr, AmState st,
                      std::uint32_t version);

    /** Invalidate block @p addr if present. @return prior state. */
    AmState invalidate(VAddr addr);

    /** Access a line by global index. */
    AmLine &line(std::size_t index) { return lines_.at(index); }
    const AmLine &line(std::size_t index) const { return lines_.at(index); }

    /** Total line frames (sets * assoc). */
    std::size_t numLines() const { return lines_.size(); }

    /** Set index of @p addr. */
    std::uint64_t setOf(VAddr addr) const;

    /** Block-aligned address. */
    VAddr
    blockAlign(VAddr addr) const
    {
        return addr & ~static_cast<VAddr>(cfg_.blockBytes - 1);
    }

    const CacheConfig &config() const { return cfg_; }

    /** Number of valid lines (occupancy; replication included). */
    std::uint64_t validLines() const;

    /** @{ @name Statistics */
    Counter hits;
    Counter misses;
    Counter installs;
    Counter invalidations;
    Counter sharedDrops;   ///< Shared victims silently replaced
    /** @} */

    /** Register the counters on @p g as <prefix>hits etc. */
    void
    addStats(StatGroup &g, const std::string &prefix) const
    {
        g.addCounter(prefix + "hits", hits);
        g.addCounter(prefix + "misses", misses);
        g.addCounter(prefix + "installs", installs);
        g.addCounter(prefix + "invalidations", invalidations);
        g.addCounter(prefix + "sharedDrops", sharedDrops);
    }

  private:
    std::string name_;
    CacheConfig cfg_;
    unsigned blockBits_;
    unsigned setBits_;
    std::vector<AmLine> lines_;
    std::uint64_t useClock_ = 0;
};

} // namespace vcoma

#endif // VCOMA_COMA_ATTRACTION_MEMORY_HH
