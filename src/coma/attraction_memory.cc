#include "coma/attraction_memory.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace vcoma
{

const char *
amStateName(AmState s)
{
    switch (s) {
      case AmState::Invalid: return "I";
      case AmState::Shared: return "S";
      case AmState::MasterShared: return "MS";
      case AmState::Exclusive: return "E";
    }
    return "?";
}

AttractionMemory::AttractionMemory(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), cfg_(cfg)
{
    cfg_.validate(name_.c_str());
    blockBits_ = exactLog2(cfg_.blockBytes);
    setBits_ = exactLog2(cfg_.numSets());
    lines_.resize(cfg_.numSets() * cfg_.assoc);
}

std::uint64_t
AttractionMemory::setOf(VAddr addr) const
{
    return bits(addr, blockBits_, setBits_);
}

AmLine *
AttractionMemory::find(VAddr addr)
{
    const VAddr key = blockAlign(addr);
    AmLine *base = &lines_[setOf(addr) * cfg_.assoc];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (base[w].valid() && base[w].key == key)
            return &base[w];
    }
    return nullptr;
}

const AmLine *
AttractionMemory::find(VAddr addr) const
{
    return const_cast<AttractionMemory *>(this)->find(addr);
}

AmState
AttractionMemory::state(VAddr addr) const
{
    const AmLine *line = find(addr);
    return line ? line->state : AmState::Invalid;
}

void
AttractionMemory::touch(VAddr addr)
{
    AmLine *line = find(addr);
    if (!line)
        panic(name_, ": touch of absent block");
    line->lastUse = ++useClock_;
}

VictimChoice
AttractionMemory::chooseVictim(VAddr addr) const
{
    const std::size_t base = setOf(addr) * cfg_.assoc;
    const AmLine *bestShared = nullptr;
    std::size_t bestSharedIdx = 0;
    const AmLine *bestOwned = nullptr;
    std::size_t bestOwnedIdx = 0;

    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        const AmLine &line = lines_[base + w];
        if (!line.valid())
            return {VictimKind::Empty, base + w};
        if (line.state == AmState::Shared) {
            if (!bestShared || line.lastUse < bestShared->lastUse) {
                bestShared = &line;
                bestSharedIdx = base + w;
            }
        } else if (!bestOwned || line.lastUse < bestOwned->lastUse) {
            bestOwned = &line;
            bestOwnedIdx = base + w;
        }
    }
    if (bestShared)
        return {VictimKind::Shared, bestSharedIdx};
    return {VictimKind::Owned, bestOwnedIdx};
}

bool
AttractionMemory::chooseInjectionVictim(VAddr addr, VictimChoice &out) const
{
    const VictimChoice choice = chooseVictim(addr);
    if (choice.kind == VictimKind::Owned)
        return false;
    out = choice;
    return true;
}

AmLine &
AttractionMemory::installAt(std::size_t lineIndex, VAddr addr, AmState st,
                            std::uint32_t version)
{
    VCOMA_ASSERT(st != AmState::Invalid);
    AmLine &line = lines_.at(lineIndex);
    VCOMA_ASSERT(!line.valid());
    line.key = blockAlign(addr);
    VCOMA_ASSERT(setOf(line.key) * cfg_.assoc <= lineIndex &&
                 lineIndex < (setOf(line.key) + 1) * cfg_.assoc);
    line.state = st;
    line.version = version;
    line.lastUse = ++useClock_;
    ++installs;
    return line;
}

AmState
AttractionMemory::invalidate(VAddr addr)
{
    AmLine *line = find(addr);
    if (!line)
        return AmState::Invalid;
    const AmState prior = line->state;
    line->state = AmState::Invalid;
    ++invalidations;
    return prior;
}

std::uint64_t
AttractionMemory::validLines() const
{
    std::uint64_t count = 0;
    for (const auto &line : lines_) {
        if (line.valid())
            ++count;
    }
    return count;
}

} // namespace vcoma
