#include "coma/node.hh"

#include <string>

#include "common/bitops.hh"

namespace vcoma
{

namespace
{

std::string
nodeName(const char *unit, NodeId id)
{
    return std::string(unit) + std::to_string(id);
}

} // namespace

Node::Node(NodeId nodeId, const MachineConfig &cfg,
           const SchemeTraits &traits)
    : id(nodeId),
      flc(nodeName("flc", nodeId), cfg.flc),
      slc(nodeName("slc", nodeId), cfg.slc),
      am(nodeName("am", nodeId), cfg.am),
      shadow(cfg.seed + 0x5bd1e995ULL * (nodeId + 1), shadowSizes(),
             traits.perNodeTlb ? 0 : exactLog2(cfg.numNodes))
{
    const auto &tc = cfg.translation;
    if (traits.perNodeTlb) {
        tlb = std::make_unique<Tlb>(tc.entries, tc.assoc,
                                    cfg.seed + 77 * (nodeId + 1));
        if (traits.slcTlbSpill) {
            // One spilled translation entry per SLC frame, at the
            // SLC's associativity: the Victima model of PTEs living
            // in otherwise-underused SLC ways.
            tlbSpill = std::make_unique<Tlb>(
                static_cast<unsigned>(cfg.slc.numBlocks()), cfg.slc.assoc,
                cfg.seed + 55 * (nodeId + 1));
        }
    } else if (traits.hasDlb) {
        // A home's DLB only sees pages whose low vpn bits equal the
        // home id: index with the bits above them (Figure 6).
        dlb = std::make_unique<Dlb>(tc.entries, tc.assoc,
                                    cfg.seed + 99 * (nodeId + 1),
                                    exactLog2(cfg.numNodes));
    }
    // NMT: neither — translation is computed at the home node.
}

} // namespace vcoma
