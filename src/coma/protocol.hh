/**
 * @file
 * The COMA-F write-invalidate coherence protocol (Section 4.2) with
 * the translation mechanism of the configured scheme folded into the
 * access path at the right place:
 *
 *   L0     before the FLC, on every processor reference
 *   L1     on FLC->SLC traffic (read misses and, because the FLC is
 *          write-through, every store)
 *   L2     on SLC->AM traffic (demand misses, upgrades, and dirty
 *          evictions unless write-backs carry physical pointers)
 *   L3     on local-node misses (AM misses, upgrades, injections)
 *   V-COMA at the home node's directory lookup (the DLB)
 *
 * Block states are Invalid / Shared / Master-Shared / Exclusive.
 * Replacements of owned copies are *injected*: sent to the home,
 * which absorbs them into an Invalid frame of the same set or
 * forwards them around a random ring of nodes that may consume an
 * Invalid or Shared frame (Section 4.2).
 *
 * The engine also self-checks coherence: every store bumps a
 * per-block version in the directory, and every read asserts the
 * supplier's copy carries the current version.
 */

#ifndef VCOMA_COMA_PROTOCOL_HH
#define VCOMA_COMA_PROTOCOL_HH

#include <functional>
#include <memory>
#include <vector>

#include "coma/directory.hh"
#include "coma/node.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "core/vaddr_layout.hh"
#include "net/network.hh"
#include "sim/memref.hh"
#include "translation/scheme.hh"
#include "vm/page_table.hh"

namespace vcoma
{

class EventTracer;

/** Thrown when an access violates the page's protection bits. */
class ProtectionFault : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Where a processor reference was satisfied. */
enum class ServedBy : std::uint8_t
{
    Flc,
    Slc,
    LocalAm,
    Remote,
};

/** Timing/attribution outcome of one processor reference. */
struct AccessResult
{
    /** Completion tick. */
    Tick done = 0;
    /** Cycles stalled on the local hierarchy (loc-stall). */
    Cycles local = 0;
    /** Cycles stalled on the remote transaction (rem-stall). */
    Cycles remote = 0;
    /** Cycles of translation penalty on the critical path. */
    Cycles xlat = 0;
    ServedBy servedBy = ServedBy::Flc;
};

/**
 * The coherence engine: executes one processor reference at a time,
 * atomically against global state, in the global-time order imposed
 * by the simulation kernel.
 */
class CoherenceEngine
{
  public:
    CoherenceEngine(const MachineConfig &cfg, const SchemeTraits &traits,
                    const VAddrLayout &layout, PageTable &pageTable,
                    Directory &directory, Network &network,
                    std::vector<std::unique_ptr<Node>> &nodes);

    /**
     * Execute a read or write by the processor of node @p cpu at
     * tick @p now.
     */
    AccessResult access(CpuId cpu, RefType type, VAddr va, Tick now);

    /**
     * Try to resolve the reference through the per-CPU fast filter
     * without the full protocol walk: FLC read hits, and silent
     * stores that hit the SLC while the node already holds the block
     * Exclusive. On success fills @p out with exactly the result (and
     * exactly the state/counter side effects) access() would have
     * produced and returns true; on any doubt returns false with no
     * state touched, and the caller falls back to access().
     */
    bool
    fastAccess(CpuId cpu, RefType type, VAddr va, Tick now,
               AccessResult &out)
    {
        // Inline so the kernel's per-reference loop absorbs the
        // common FLC-read-hit probe without a cross-TU call.
        if (!fastReads_)
            return false;
        const VAddr blockVa = layout_.blockAlign(va);
        FastBlock &ent = fast_[fastSlot(cpu, blockVa)];
        if (ent.blockVa != blockVa || ent.epoch != xlatEpoch_)
            return false;
        PageInfo &page = *ent.page;
        if (!page.resident)
            return false;
        if (type != RefType::Read)
            return fastWrite(cpu, va, now, ent, page, out);
        if (!(page.protection & ProtRead))
            return false;  // the slow path raises the fault
        Node &node = *rawNodes_[cpu];
        const VAddr flcKey =
            traits_.flcVirtual ? va : ent.paBase | (va & pageMask_);
        const std::uint32_t idx = node.flc.lookup(flcKey);
        if (idx == Cache::npos)
            return false;
        // Commit: exactly the slow path's FLC-read-hit effects.
        node.flc.commitReadHit(idx);
        page.referenced = true;
        const Cycles lat = cfg_.timing.flcHit;
        out.done = now + lat;
        out.local = lat;
        out.remote = 0;
        out.xlat = 0;
        out.servedBy = ServedBy::Flc;
        if (traits_.hasDlb)
            ++dlbFilteredRefs;
        return true;
    }

    /** Is the fast filter active for this machine (config+env gate)? */
    bool fastPathEnabled() const { return fastReads_; }

    /**
     * Is the core-speedup machinery configured on at all (config/env,
     * before the structural scheme and check-level gates)? Controls
     * the result-identical memoisation and batching layers that apply
     * even where the hit filter itself cannot (e.g. L0).
     */
    bool fastPathConfigured() const { return fastConfigured_; }

    /**
     * Invariant sweep over the fast filter: every entry that the next
     * fastAccess would trust must agree with the authoritative page
     * table, directory and attraction memory. Panics on violation.
     */
    void verifyFastFilter() const;

    /**
     * Hook fired after a remote protocol transaction commits (the
     * coherence sanitizer's on-transition trigger). It runs only at
     * the outermost access boundary: nested steps (injections,
     * purges, preloads) leave transient states that are not
     * meaningful to check mid-flight.
     */
    void
    onTransition(std::function<void()> fn)
    {
        transitionHook_ = std::move(fn);
    }

    /**
     * Preload a freshly resident page: every block installed at the
     * home node in MasterShared state (data sets are preloaded,
     * Section 5.1). Untimed.
     */
    void preloadPage(PageInfo &page);

    /**
     * Evict a whole page from the machine: drop every cached copy,
     * reclaim the directory page, shoot down TLB/DLB entries. The
     * page-table residency bit is the caller's to clear.
     */
    void purgePage(PageNum vpn);

    /**
     * Install the swap-victim picker used when an injection finds the
     * whole global set owned, or a page-in exceeds the pressure
     * threshold. Receives (colour, vpn-to-protect); returns the vpn
     * to swap out, or noPage to decline.
     */
    static constexpr PageNum noPage = ~PageNum{0};
    void
    onSwapNeeded(std::function<PageNum(std::uint64_t, PageNum)> fn)
    {
        swapVictimPicker_ = std::move(fn);
    }

    const SchemeTraits &traits() const { return traits_; }

    /**
     * Attach an event tracer (nullptr detaches). Not owned; must
     * outlive the engine's last access.
     */
    void setTracer(EventTracer *tracer) { tracer_ = tracer; }

    /** Register every engine counter/distribution on @p g. */
    void addStats(StatGroup &g) const;

    /** @{ @name Protocol statistics */
    Counter remoteReads;        ///< read misses served remotely
    Counter remoteWrites;       ///< write misses served remotely
    Counter upgrades;           ///< ownership-only transactions
    Counter readForwards;       ///< reads forwarded owner != home
    Counter invalidationsSent;
    Counter injections;
    Counter injectionHops;      ///< forwarding hops beyond the home
    Counter injectionSwaps;     ///< emergencies resolved by page-out
    Counter sharedDrops;        ///< Shared victims replaced silently
    Counter writebackMerges;    ///< dirty SLC data folded into AM ops
    Counter tlbShootdowns;      ///< TLB invalidations on page purges
    Counter protectionFaults;
    /**
     * The filtering effect (Section 5.2): references satisfied by the
     * local hierarchy that therefore never reach the home DLB. Only
     * counted under V-COMA; together with the DLBs' demand accesses
     * it partitions the processor references.
     */
    Counter dlbFilteredRefs;
    /**
     * VICTIMA's SLC spill structure (only non-zero under schemes with
     * slcTlbSpill): probes on TLB miss, hits that skip the walk, and
     * victim entries spilled into SLC frames.
     */
    Counter tlbSpillProbes;
    Counter tlbSpillHits;
    Counter tlbSpillFills;
    /** @} */

    /** @{ @name Latency distributions (cycles) */
    Distribution remoteReadLatency;   ///< round-trip of remote reads
    Distribution remoteWriteLatency;  ///< round-trip, writes/upgrades
    Distribution dlbFillLatency;      ///< penalty charged per DLB fill
    /** @} */

  private:
    /** Fast per-page context resolved once per access. */
    struct BlockCtx
    {
        PageInfo *page = nullptr;
        VAddr blockVa = 0;      ///< AM-block-aligned virtual address
        VAddr amKey = 0;        ///< AM indexing key (VA or PA based)
        VAddr flcKey = 0;       ///< full reference address, FLC space
        VAddr slcKey = 0;       ///< full reference address, SLC space
        std::uint64_t blockIdx = 0;  ///< directory entry index
    };

    /**
     * One fast-filter entry: the pointers needed to replay an FLC/SLC
     * hit without any hash lookup. Entries are never eagerly
     * invalidated; they self-validate on use instead — the epoch
     * guards everything a page purge can tear down (directory pages
     * are erased, translations unmapped), and the cache/AM probes are
     * live, so a stale entry can only miss, never lie.
     */
    struct FastBlock
    {
        static constexpr VAddr noBlock = ~VAddr{0};
        VAddr blockVa = noBlock;  ///< AM-block-aligned VA (the key)
        std::uint64_t epoch = 0;  ///< xlatEpoch_ at fill time
        PageInfo *page = nullptr;
        DirectoryEntry *entry = nullptr;
        AmLine *amLine = nullptr; ///< this CPU's AM line, if any
        VAddr amKey = 0;
        VAddr paBase = 0;         ///< frame << pageBits (physical only)
    };

    /** Memoized per-page translation context for resolve()/pageFor(). */
    struct PageCtx
    {
        static constexpr PageNum noVpn = ~PageNum{0};
        PageNum vpn = noVpn;
        std::uint64_t epoch = 0;
        PageInfo *page = nullptr;
        VAddr paBase = 0;
    };

    static constexpr std::size_t fastBlocksPerCpu = 512;
    static constexpr std::size_t pageCtxSlots = 256;

    std::uint64_t
    fastIndex(VAddr blockVa) const
    {
        return (blockVa >> layout_.blockBits()) & (fastBlocksPerCpu - 1);
    }

    /** Slot of @p blockVa in @p cpu's stripe of the flat filter. */
    std::size_t
    fastSlot(CpuId cpu, VAddr blockVa) const
    {
        return static_cast<std::size_t>(cpu) * fastBlocksPerCpu +
               fastIndex(blockVa);
    }

    /**
     * Resident page of @p va through the per-page memo: one hash
     * lookup per page until the next purge instead of two per
     * reference. @p paBase receives frame << pageBits (0 when the
     * machine has no physical addresses).
     */
    PageInfo &residentPage(VAddr va, VAddr &paBase);

    /** (Re)fill the filter entry for @p va after a slow access. */
    void fillFastEntry(CpuId cpu, VAddr va);

    /**
     * The store half of fastAccess (out-of-line: silent stores are
     * the rarer case): commits an SLC hit on a block this node holds
     * Exclusive, replicating the slow path's side effects exactly.
     */
    bool fastWrite(CpuId cpu, VAddr va, Tick now, FastBlock &ent,
                   PageInfo &page, AccessResult &out);

    /** The access body; access() wraps it to fire transitionHook_. */
    AccessResult accessImpl(CpuId cpu, RefType type, VAddr va, Tick now);

    BlockCtx resolve(VAddr va);

    DirectoryEntry &
    dirEntry(const BlockCtx &ctx)
    {
        return directory_.entryFor(ctx.page->vpn, ctx.blockIdx);
    }

    /** AM indexing key of an arbitrary block-aligned VA. */
    VAddr amKeyOf(VAddr blockVa);
    /** FLC/SLC indexing base of an AM block. */
    VAddr flcKeyOf(VAddr blockVa);
    VAddr slcKeyOf(VAddr blockVa);

    /** Timed+counted access of the configured private TLB at @p t. */
    Cycles chargeTlb(Node &node, PageNum vpn, StreamClass cls, Tick t);
    /**
     * Timed+counted DLB access at the home node at @p t, on behalf of
     * @p requester (attribution of the sharing/prefetching effects).
     */
    Cycles chargeDlb(Node &home, PageInfo &page, NodeId requester,
                     bool exclusiveReq, StreamClass cls, Tick t);

    /** Version self-check at check level >= @p level. */
    void checkVersion(const BlockCtx &ctx, const AmLine *line,
                      unsigned level);

    /** Handle a dirty SLC victim (background write-back into the AM). */
    void handleSlcWriteback(Node &node, VAddr victimSlcKey, Tick t);

    /**
     * Make room and install block @p ctx at node @p n in state
     * @p st; owned victims are injected (background from @p t).
     */
    void installBlock(Node &n, const BlockCtx &ctx, AmState st, Tick t);

    /** Inject an owned victim starting at @p from (background). */
    void injectBlock(Node &from, VAddr victimBlockVa, AmState st,
                     std::uint32_t version, Tick t);

    /** Drop a Shared victim: clear its copyset bit, notify home. */
    void dropSharedVictim(Node &node, VAddr victimBlockVa, Tick t);

    /** Invalidate node @p m's copy of the block (AM + caches) at @p t. */
    void invalidateAt(NodeId m, const BlockCtx &ctx, Tick t);

    /** Remote read transaction. @return completion tick. */
    Tick remoteRead(Node &n, const BlockCtx &ctx, Tick t, Cycles &xlat);

    /**
     * Remote write transaction: upgrade if @p hasData, else
     * read-exclusive. @return completion tick.
     */
    Tick remoteWrite(Node &n, const BlockCtx &ctx, bool hasData, Tick t,
                     Cycles &xlat);

    /** Page context (ensureResident + protection + pressure gate). */
    PageInfo &pageFor(VAddr va, RefType type);

    /** Convert a victim line's AM key back to its block VA. */
    VAddr victimBlockVa(const AmLine &line) const;

    const MachineConfig &cfg_;
    SchemeTraits traits_;
    const VAddrLayout &layout_;
    PageTable &pageTable_;
    Directory &directory_;
    Network &network_;
    std::vector<std::unique_ptr<Node>> &nodes_;
    Rng rng_;
    /**
     * Translation epoch: bumped by purgePage(), the one operation
     * that invalidates directory-entry pointers and unmaps pages.
     * Filter/memo entries from an older epoch are dead.
     */
    std::uint64_t xlatEpoch_ = 0;
    /** Core speedups (memoisation, batching) configured on at all. */
    bool fastConfigured_ = false;
    /** Fast filter active for reads (config+env, scheme, checkLevel). */
    bool fastReads_ = false;
    /** ... and for writes (additionally excludes L1's per-store TLB). */
    bool fastWrites_ = false;
    VAddr pageMask_ = 0;
    /** Flat [cpu * fastBlocksPerCpu + slot]; one contiguous array
     *  keeps the per-reference probe to a single indirection. */
    std::vector<FastBlock> fast_;
    /** Raw per-node pointers (skips the unique_ptr hop per probe). */
    std::vector<Node *> rawNodes_;
    std::vector<PageCtx> pageCtx_;
    std::function<PageNum(std::uint64_t, PageNum)> swapVictimPicker_;
    std::function<void()> transitionHook_;
    EventTracer *tracer_ = nullptr;  ///< optional, not owned

    /**
     * Pages with live directory references somewhere up the call
     * stack (the page of an in-flight access, a page being preloaded,
     * a block being injected). An emergency swap must never purge
     * them: their directory pages would be freed under our feet.
     */
    std::vector<PageNum> pinned_;

    /** RAII pin for the duration of one stack frame. */
    class PagePin
    {
      public:
        PagePin(CoherenceEngine &engine, PageNum vpn)
            : engine_(engine)
        {
            engine_.pinned_.push_back(vpn);
        }
        ~PagePin() { engine_.pinned_.pop_back(); }
        PagePin(const PagePin &) = delete;
        PagePin &operator=(const PagePin &) = delete;

      private:
        CoherenceEngine &engine_;
    };

  public:
    /**
     * Persistent per-CPU context for fastDrainMaterialised(): the
     * loop invariants of the drain (filter stripe, node, FLC probe
     * geometry) resolved once per Machine::run instead of once per
     * drain episode — episodes are short (a handful of references
     * between event-heap turns), so per-episode hoisting would eat
     * the drained savings. Everything cached here is stable for the
     * engine's lifetime; the only mutable cached state, the FLC LRU
     * clock, is resynced at each episode boundary.
     */
    struct FastDrainCtx
    {
        Cache::ReadHitProber flc;
        FastBlock *slots = nullptr;
        Node *node = nullptr;
    };

    /** One drain context per CPU (empty when the filter is off). */
    std::vector<FastDrainCtx>
    makeFastDrainCtxs()
    {
        std::vector<FastDrainCtx> ctxs;
        if (!fastReads_)
            return ctxs;
        ctxs.resize(rawNodes_.size());
        for (std::size_t cpu = 0; cpu < rawNodes_.size(); ++cpu) {
            ctxs[cpu].flc.attach(rawNodes_[cpu]->flc);
            ctxs[cpu].slots =
                fast_.data() + cpu * fastBlocksPerCpu;
            ctxs[cpu].node = rawNodes_[cpu];
        }
        return ctxs;
    }

    /**
     * Batch-drain for materialised (replayed) reference streams:
     * consume a run of consecutive Kind::Mem references from
     * [cur, end), resolving each through the fast filter with every
     * loop invariant hoisted (via @p ctx and locals). The generic
     * per-reference loop reloads those members on every iteration
     * because the commit stores could alias them through `this`;
     * hoisting them out of the per-reference path is where the
     * replay speedup over the live fast path comes from.
     *
     * Stops *without consuming* at the first sync event or the first
     * reference the filter cannot resolve (the caller retries that
     * reference through the ordinary path), and stops *after*
     * consuming a reference once @p readyAt exceeds @p tickLimit —
     * the caller's dispatch bound (event-heap order and the next
     * reference-bit decay point), which makes the run provably
     * order-identical to per-reference execution.
     *
     * Per consumed reference the state and counter side effects are
     * exactly fastAccess()'s, and @p cur, @p readyAt and the four
     * stat accumulators advance by exactly the amounts the generic
     * path would have produced.
     *
     * @param ctx this CPU's context from makeFastDrainCtxs()
     * @return the number of references consumed.
     */
    std::uint64_t
    fastDrainMaterialised(FastDrainCtx &ctx, CpuId cpu,
                          const MemRef *&cur, const MemRef *end,
                          Tick &readyAt, Tick tickLimit,
                          Cycles busyScale, std::uint64_t &reads,
                          std::uint64_t &writes, std::uint64_t &busy,
                          std::uint64_t &locStall)
    {
        if (!fastReads_ || cur == end)
            return 0;
        const unsigned blockBits = layout_.blockBits();
        FastBlock *const slots = ctx.slots;
        const std::uint64_t epoch = xlatEpoch_;
        const bool flcVirtual = traits_.flcVirtual;
        const VAddr pageMask = pageMask_;
        const Cycles flcHit = cfg_.timing.flcHit;
        ctx.flc.resync();
        std::uint64_t nReads = 0, nWrites = 0;
        std::uint64_t busyAcc = 0, stallAcc = 0;
        Tick t = readyAt;
        const MemRef *p = cur;
        // Block/page validation memo: consecutive references usually
        // stay within one AM block (and nothing a fast commit does
        // can invalidate a filter entry mid-drain), so a repeated
        // block skips straight to the cache probe.
        std::uint64_t validBlockNum = ~std::uint64_t{0};
        FastBlock *ent = nullptr;
        PageInfo *page = nullptr;
        while (p != end) {
            const MemRef &ref = *p;
            if (ref.kind != MemRef::Kind::Mem)
                break;
            const VAddr va = ref.vaddr;
            const std::uint64_t blockNum = va >> blockBits;
            if (blockNum != validBlockNum) {
                FastBlock &cand =
                    slots[blockNum & (fastBlocksPerCpu - 1)];
                if (cand.blockVa != (blockNum << blockBits) ||
                    cand.epoch != epoch || !cand.page->resident) {
                    break;
                }
                ent = &cand;
                page = cand.page;
                validBlockNum = blockNum;
            }
            const Cycles work = ref.work * busyScale;
            const Tick at = t + work;
            if (ref.type == RefType::Read) {
                if (!(page->protection & ProtRead))
                    break;
                const VAddr flcKey =
                    flcVirtual ? va : ent->paBase | (va & pageMask);
                if (!ctx.flc.tryReadHit(flcKey))
                    break;
                page->referenced = true;
                t = at + flcHit;
                stallAcc += flcHit;
                ++nReads;
            } else {
                // fastWrite counts its own dlbFilteredRefs, and its
                // write-through store goes through the FLC's ordinary
                // access path — publish the prober's pending commits
                // around it so the LRU clock interleaves exactly as
                // in per-reference execution.
                ctx.flc.flush();
                AccessResult res;
                const bool ok =
                    fastWrite(cpu, va, at, *ent, *page, res);
                ctx.flc.resync();
                if (!ok)
                    break;
                t = res.done;
                stallAcc += res.local;
                ++nWrites;
            }
            busyAcc += work;
            ++p;
#if defined(__GNUC__) || defined(__clang__)
            // The replay payload is sequential and mmapped: touch a
            // few lines ahead so the walk never waits on memory.
            __builtin_prefetch(p + 16);
#endif
            if (t > tickLimit)
                break;
        }
        ctx.flc.flush();
        const std::uint64_t n = static_cast<std::uint64_t>(p - cur);
        if (n == 0)
            return 0;
        if (traits_.hasDlb)
            dlbFilteredRefs += nReads;
        reads += nReads;
        writes += nWrites;
        busy += busyAcc;
        locStall += stallAcc;
        readyAt = t;
        cur = p;
        return n;
    }

    /** True if @p vpn must not be swapped out right now. */
    bool
    isPinned(PageNum vpn) const
    {
        for (PageNum p : pinned_) {
            if (p == vpn)
                return true;
        }
        return false;
    }
};

} // namespace vcoma

#endif // VCOMA_COMA_PROTOCOL_HH
