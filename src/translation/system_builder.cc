#include "translation/system_builder.hh"

#include "common/logging.hh"

namespace vcoma
{

std::unique_ptr<PageAllocator>
makeAllocator(const SchemeTraits &traits, const VAddrLayout &layout,
              PressureTracker &pressure, unsigned numNodes)
{
    switch (traits.placement) {
      case PlacementPolicy::RoundRobin:
        return std::make_unique<RoundRobinAllocator>(layout, pressure,
                                                     numNodes);
      case PlacementPolicy::Coloured:
        return std::make_unique<ColouredAllocator>(layout, pressure,
                                                   numNodes);
      case PlacementPolicy::Vcoma:
        return std::make_unique<VcomaAllocator>(layout, pressure,
                                                numNodes);
    }
    panic("unknown placement policy");
}

std::vector<std::unique_ptr<Node>>
makeNodes(const MachineConfig &cfg, const SchemeTraits &traits)
{
    std::vector<std::unique_ptr<Node>> nodes;
    nodes.reserve(cfg.numNodes);
    for (NodeId id = 0; id < cfg.numNodes; ++id)
        nodes.push_back(std::make_unique<Node>(id, cfg, traits));
    return nodes;
}

MachineConfig
validated(MachineConfig cfg)
{
    cfg.validate();
    return cfg;
}

MachineConfig
baselineConfig(Scheme scheme, unsigned entries, unsigned assoc)
{
    MachineConfig cfg;  // defaults are the paper's baseline
    cfg.translation.scheme = scheme;
    cfg.translation.entries = entries;
    cfg.translation.assoc = assoc;
    return cfg;
}

MachineConfig
tinyConfig(Scheme scheme, unsigned entries, unsigned assoc)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.pageBytes = 1024;
    cfg.flc = CacheConfig{1024, 1, 32, /*writeThrough=*/true,
                          /*writeAllocate=*/false};
    cfg.slc = CacheConfig{4096, 4, 64, /*writeThrough=*/false,
                          /*writeAllocate=*/true};
    cfg.am = CacheConfig{64 * 1024, 4, 128, /*writeThrough=*/false,
                         /*writeAllocate=*/true};
    cfg.translation.scheme = scheme;
    cfg.translation.entries = entries;
    cfg.translation.assoc = assoc;
    return cfg;
}

} // namespace vcoma
