/**
 * @file
 * The translation-scheme registry: every scheme the simulator knows —
 * the paper's five 1998 placements (Section 3) and the modern
 * proposals grafted onto the same grid — is a self-describing
 * SchemeDescriptor (name, parse aliases, static traits, fastpath
 * eligibility). Engine, harness, service and CLI code consult the
 * descriptor instead of switching on the Scheme enum, so adding a
 * scheme means adding one registry entry here and nothing elsewhere.
 */

#ifndef VCOMA_TRANSLATION_SCHEME_HH
#define VCOMA_TRANSLATION_SCHEME_HH

#include <string>
#include <vector>

#include "common/config.hh"

namespace vcoma
{

/** Placement policy implied by the scheme. */
enum class PlacementPolicy : std::uint8_t
{
    RoundRobin,  ///< physical frames round-robin (L0/L1/L2)
    Coloured,    ///< page colouring (L3, Figure 4)
    Vcoma,       ///< no frames; home from the VPN (V-COMA)
};

/**
 * Where a per-node TLB is charged on the timed path. The engine keys
 * its charge points off this instead of the scheme identity, so a new
 * scheme picks one of the existing hooks (or None) declaratively.
 */
enum class TlbPoint : std::uint8_t
{
    PreFlc,    ///< before every FLC access (L0-style)
    FlcToSlc,  ///< on FLC miss, before the SLC (L1-style)
    SlcToAm,   ///< on SLC miss, before the AM (L2-style)
    NodeExit,  ///< on local-node (AM) miss (L3-style)
    None,      ///< no per-node TLB at all (V-COMA's DLB, NMT)
};

/** Derived static traits of a scheme. */
struct SchemeTraits
{
    Scheme scheme = Scheme::L0;
    /** FLC virtually indexed and tagged. */
    bool flcVirtual = false;
    /** SLC virtually indexed and tagged. */
    bool slcVirtual = false;
    /** Attraction memory virtually indexed and tagged. */
    bool amVirtual = false;
    /** Scheme has a per-node TLB (false for V-COMA's DLB and NMT). */
    bool perNodeTlb = true;
    PlacementPolicy placement = PlacementPolicy::RoundRobin;
    /** Where the per-node TLB (if any) is charged. */
    TlbPoint tlbPoint = TlbPoint::PreFlc;
    /** Home nodes run a DLB inside the protocol engine (V-COMA). */
    bool hasDlb = false;
    /**
     * Translation is performed (or observed) at the home node: home
     * shadow banks sample the reference stream and, with hasDlb, the
     * DLB is charged there. True for V-COMA and NMT.
     */
    bool homeTranslation = false;
    /**
     * TLB victims spill into SLC frames and misses probe the spill
     * structure before paying the walk (VICTIMA, arXiv:2310.04158).
     */
    bool slcTlbSpill = false;
    /**
     * The scheme's translation structure sits below a write-back
     * cache and therefore sees write-back traffic (L2/L3/V-COMA/NMT);
     * miss-rate denominators include that stream (Tables 2/3).
     */
    bool countsWritebacks = false;
    /**
     * Per-CPU fast read filter may resolve FLC/SLC hits without the
     * full walk. False when the scheme charges a TLB on *every*
     * processor reference (PreFlc), which the filter cannot replay.
     */
    bool fastReadFilter = true;
    /** Same for the write side (L1 charges its TLB on FLC write-through). */
    bool fastWriteFilter = true;

    /** The machine has a physical address space at all. */
    bool
    hasPhysicalAddresses() const
    {
        return placement != PlacementPolicy::Vcoma;
    }
};

/**
 * One registered translation scheme. @c name is the paper-table
 * spelling and the Runner cache-key token; @c aliases are the extra
 * tokens the parsers accept (the name itself always parses).
 */
struct SchemeDescriptor
{
    Scheme id = Scheme::L0;
    /** Canonical name: table columns, cache keys, wire configs. */
    const char *name = "";
    /**
     * Label of the translation structure in timed tables ("L0-TLB/8"
     * vs "DLB/8"): the paper labels V-COMA rows by the DLB itself.
     */
    const char *timedLabel = "";
    /** Additional accepted parse spellings. */
    std::vector<std::string> aliases;
    /** One-line description for --help output and docs. */
    const char *summary = "";
    SchemeTraits traits;
    /** One of the paper's five 1998 placements. */
    bool legacy = false;
};

/** The full registry, in enum order. */
const std::vector<SchemeDescriptor> &schemeRegistry();

/** Descriptor for @p scheme; fatal() on a value outside the registry. */
const SchemeDescriptor &schemeDescriptor(Scheme scheme);

/** True iff @p raw is the integer value of a registered scheme. */
bool isKnownScheme(unsigned raw);

/** Every registered scheme, in enum order. */
const std::vector<Scheme> &allRegisteredSchemes();

/** The paper's five 1998 schemes, in enum (paper-table) order. */
const std::vector<Scheme> &legacySchemes();

/** The modern schemes grafted onto the grid, in enum order. */
const std::vector<Scheme> &modernSchemes();

/**
 * Strict parse: accepts each scheme's canonical name or aliases
 * (exact spelling); returns false on anything else. The round-trip
 * tryParseScheme(schemeName(s)) == s holds for every registered
 * scheme, so names written into cache keys and wire configs always
 * parse back.
 */
bool tryParseScheme(const std::string &token, Scheme &out);

/** As tryParseScheme, but fatal() on an unknown token. */
Scheme parseScheme(const std::string &token);

/** Traits for @p scheme (from its descriptor). */
SchemeTraits schemeTraits(Scheme scheme);

/**
 * Extra tag memory implied by virtual tags (Section 6 discussion):
 * the virtual tag is @p extraTagBytes longer than a physical tag, so
 * the tag overhead grows by extraTagBytes/blockBytes of the data
 * capacity.
 * @return the overhead as a fraction of the tagged memory's capacity.
 */
double virtualTagOverhead(unsigned blockBytes, unsigned extraTagBytes);

} // namespace vcoma

#endif // VCOMA_TRANSLATION_SCHEME_HH
