/**
 * @file
 * Static properties of the five translation schemes (Section 3):
 * which levels of the hierarchy are virtually indexed/tagged, where
 * the TLB sits, and which page-placement policy the scheme uses.
 */

#ifndef VCOMA_TRANSLATION_SCHEME_HH
#define VCOMA_TRANSLATION_SCHEME_HH

#include "common/config.hh"

namespace vcoma
{

/** Placement policy implied by the scheme. */
enum class PlacementPolicy : std::uint8_t
{
    RoundRobin,  ///< physical frames round-robin (L0/L1/L2)
    Coloured,    ///< page colouring (L3, Figure 4)
    Vcoma,       ///< no frames; home from the VPN (V-COMA)
};

/** Derived static traits of a scheme. */
struct SchemeTraits
{
    Scheme scheme = Scheme::L0;
    /** FLC virtually indexed and tagged. */
    bool flcVirtual = false;
    /** SLC virtually indexed and tagged. */
    bool slcVirtual = false;
    /** Attraction memory virtually indexed and tagged. */
    bool amVirtual = false;
    /** Scheme has a per-node TLB (false only for V-COMA's DLB). */
    bool perNodeTlb = true;
    PlacementPolicy placement = PlacementPolicy::RoundRobin;

    /** The machine has a physical address space at all. */
    bool
    hasPhysicalAddresses() const
    {
        return placement != PlacementPolicy::Vcoma;
    }
};

/** Traits for @p scheme. */
SchemeTraits schemeTraits(Scheme scheme);

/**
 * Extra tag memory implied by virtual tags (Section 6 discussion):
 * the virtual tag is @p extraTagBytes longer than a physical tag, so
 * the tag overhead grows by extraTagBytes/blockBytes of the data
 * capacity.
 * @return the overhead as a fraction of the tagged memory's capacity.
 */
double virtualTagOverhead(unsigned blockBytes, unsigned extraTagBytes);

} // namespace vcoma

#endif // VCOMA_TRANSLATION_SCHEME_HH
