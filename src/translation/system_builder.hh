/**
 * @file
 * Helpers that assemble a Machine for a given translation scheme:
 * the page-placement allocator the scheme requires, the per-node
 * hardware, and convenience configuration builders used by the
 * examples, tests and benchmark harness.
 */

#ifndef VCOMA_TRANSLATION_SYSTEM_BUILDER_HH
#define VCOMA_TRANSLATION_SYSTEM_BUILDER_HH

#include <memory>
#include <vector>

#include "coma/node.hh"
#include "common/config.hh"
#include "core/vaddr_layout.hh"
#include "translation/scheme.hh"
#include "vm/page_allocator.hh"
#include "vm/pressure.hh"

namespace vcoma
{

/** Build the page allocator the scheme's placement policy requires. */
std::unique_ptr<PageAllocator> makeAllocator(const SchemeTraits &traits,
                                             const VAddrLayout &layout,
                                             PressureTracker &pressure,
                                             unsigned numNodes);

/** Build the per-node hardware. */
std::vector<std::unique_ptr<Node>> makeNodes(const MachineConfig &cfg,
                                             const SchemeTraits &traits);

/** Validate-and-return, for constructor initialiser lists. */
MachineConfig validated(MachineConfig cfg);

/**
 * The paper's baseline machine (Section 5.1) configured for
 * @p scheme with a TLB/DLB of @p entries entries (@p assoc 0 = fully
 * associative).
 */
MachineConfig baselineConfig(Scheme scheme, unsigned entries = 8,
                             unsigned assoc = 0);

/**
 * A scaled-down machine for unit tests and quick examples: 4 nodes,
 * small caches, small attraction memory, same structure.
 */
MachineConfig tinyConfig(Scheme scheme, unsigned entries = 8,
                         unsigned assoc = 0);

} // namespace vcoma

#endif // VCOMA_TRANSLATION_SYSTEM_BUILDER_HH
