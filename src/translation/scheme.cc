#include "translation/scheme.hh"

#include "common/logging.hh"

namespace vcoma
{

SchemeTraits
schemeTraits(Scheme scheme)
{
    SchemeTraits t;
    t.scheme = scheme;
    switch (scheme) {
      case Scheme::L0:
        // Classic TLB before the FLC; everything physical.
        break;
      case Scheme::L1:
        t.flcVirtual = true;
        break;
      case Scheme::L2:
        t.flcVirtual = true;
        t.slcVirtual = true;
        break;
      case Scheme::L3:
        t.flcVirtual = true;
        t.slcVirtual = true;
        t.amVirtual = true;
        t.placement = PlacementPolicy::Coloured;
        break;
      case Scheme::VCOMA:
        t.flcVirtual = true;
        t.slcVirtual = true;
        t.amVirtual = true;
        t.perNodeTlb = false;
        t.placement = PlacementPolicy::Vcoma;
        break;
    }
    return t;
}

double
virtualTagOverhead(unsigned blockBytes, unsigned extraTagBytes)
{
    if (blockBytes == 0)
        fatal("virtualTagOverhead: zero block size");
    return static_cast<double>(extraTagBytes) /
           static_cast<double>(blockBytes);
}

} // namespace vcoma
