#include "translation/scheme.hh"

#include "common/logging.hh"

namespace vcoma
{

namespace
{

SchemeTraits
makeTraits(Scheme s, bool flcV, bool slcV, bool amV, bool perNodeTlb,
           PlacementPolicy placement, TlbPoint point, bool hasDlb,
           bool homeXlat, bool spill, bool countsWb, bool fastR, bool fastW)
{
    SchemeTraits t;
    t.scheme = s;
    t.flcVirtual = flcV;
    t.slcVirtual = slcV;
    t.amVirtual = amV;
    t.perNodeTlb = perNodeTlb;
    t.placement = placement;
    t.tlbPoint = point;
    t.hasDlb = hasDlb;
    t.homeTranslation = homeXlat;
    t.slcTlbSpill = spill;
    t.countsWritebacks = countsWb;
    t.fastReadFilter = fastR;
    t.fastWriteFilter = fastW;
    return t;
}

std::vector<SchemeDescriptor>
buildRegistry()
{
    using P = PlacementPolicy;
    using T = TlbPoint;
    std::vector<SchemeDescriptor> r;

    r.push_back({Scheme::L0, "L0-TLB", "L0-TLB", {"L0"},
                 "classic TLB before the FLC; all levels physical",
                 makeTraits(Scheme::L0, false, false, false, true,
                            P::RoundRobin, T::PreFlc, false, false, false,
                            false, false, false),
                 /*legacy=*/true});

    r.push_back({Scheme::L1, "L1-TLB", "L1-TLB", {"L1"},
                 "TLB between virtual FLC and physical SLC",
                 makeTraits(Scheme::L1, true, false, false, true,
                            P::RoundRobin, T::FlcToSlc, false, false, false,
                            false, true, false),
                 /*legacy=*/true});

    r.push_back({Scheme::L2, "L2-TLB", "L2-TLB", {"L2"},
                 "TLB between virtual SLC and physical attraction memory",
                 makeTraits(Scheme::L2, true, true, false, true,
                            P::RoundRobin, T::SlcToAm, false, false, false,
                            true, true, true),
                 /*legacy=*/true});

    r.push_back({Scheme::L3, "L3-TLB", "L3-TLB", {"L3"},
                 "TLB on local-node (attraction memory) miss; "
                 "coloured placement",
                 makeTraits(Scheme::L3, true, true, true, true,
                            P::Coloured, T::NodeExit, false, false, false,
                            true, true, true),
                 /*legacy=*/true});

    r.push_back({Scheme::VCOMA, "V-COMA", "DLB", {"VCOMA"},
                 "no TLB; DLB at the home node inside the protocol",
                 makeTraits(Scheme::VCOMA, true, true, true, false,
                            P::Vcoma, T::None, true, true, false,
                            true, true, true),
                 /*legacy=*/true});

    r.push_back({Scheme::VICTIMA, "VICTIMA", "VICTIMA",
                 {"Victima", "VICTIMA-TLB"},
                 "L0-style TLB whose victims spill into SLC frames; "
                 "misses probe the spill before the walk "
                 "(Kanellopoulos et al., arXiv:2310.04158)",
                 makeTraits(Scheme::VICTIMA, false, false, false, true,
                            P::RoundRobin, T::PreFlc, false, false, true,
                            false, false, false),
                 /*legacy=*/false});

    r.push_back({Scheme::NMT, "NMT", "NMT",
                 {"NearMemory", "NEAR-MEMORY"},
                 "near-memory identity/range translation computed at the "
                 "home node; no per-node TLB, no lookup stall "
                 "(Picorel et al., arXiv:1612.00445)",
                 makeTraits(Scheme::NMT, true, true, true, false,
                            P::Vcoma, T::None, false, true, false,
                            true, true, true),
                 /*legacy=*/false});

    return r;
}

} // namespace

const std::vector<SchemeDescriptor> &
schemeRegistry()
{
    static const std::vector<SchemeDescriptor> registry = buildRegistry();
    return registry;
}

const SchemeDescriptor &
schemeDescriptor(Scheme scheme)
{
    const auto raw = static_cast<std::size_t>(scheme);
    const auto &registry = schemeRegistry();
    if (raw >= registry.size())
        fatal("unknown translation scheme value ", raw);
    const auto &d = registry[raw];
    if (d.id != scheme)
        fatal("scheme registry out of enum order at ", raw);
    return d;
}

bool
isKnownScheme(unsigned raw)
{
    return raw < schemeRegistry().size();
}

const std::vector<Scheme> &
allRegisteredSchemes()
{
    static const std::vector<Scheme> all = [] {
        std::vector<Scheme> v;
        for (const auto &d : schemeRegistry())
            v.push_back(d.id);
        return v;
    }();
    return all;
}

const std::vector<Scheme> &
legacySchemes()
{
    static const std::vector<Scheme> v = [] {
        std::vector<Scheme> out;
        for (const auto &d : schemeRegistry())
            if (d.legacy)
                out.push_back(d.id);
        return out;
    }();
    return v;
}

const std::vector<Scheme> &
modernSchemes()
{
    static const std::vector<Scheme> v = [] {
        std::vector<Scheme> out;
        for (const auto &d : schemeRegistry())
            if (!d.legacy)
                out.push_back(d.id);
        return out;
    }();
    return v;
}

bool
tryParseScheme(const std::string &token, Scheme &out)
{
    for (const auto &d : schemeRegistry()) {
        if (token == d.name) {
            out = d.id;
            return true;
        }
        for (const auto &alias : d.aliases) {
            if (token == alias) {
                out = d.id;
                return true;
            }
        }
    }
    return false;
}

Scheme
parseScheme(const std::string &token)
{
    Scheme s;
    if (!tryParseScheme(token, s))
        fatal("unknown translation scheme '", token, "'");
    return s;
}

SchemeTraits
schemeTraits(Scheme scheme)
{
    return schemeDescriptor(scheme).traits;
}

const char *
schemeName(Scheme s)
{
    return schemeDescriptor(s).name;
}

bool
schemeUsesVirtualAm(Scheme s)
{
    return schemeDescriptor(s).traits.amVirtual;
}

double
virtualTagOverhead(unsigned blockBytes, unsigned extraTagBytes)
{
    if (blockBytes == 0)
        fatal("virtualTagOverhead: zero block size");
    return static_cast<double>(extraTagBytes) /
           static_cast<double>(blockBytes);
}

} // namespace vcoma
