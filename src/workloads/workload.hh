/**
 * @file
 * Workload interface: a parallel program whose threads emit their
 * shared-memory reference streams as coroutines.
 *
 * The six SPLASH-2 benchmarks of the paper (Table 1) are implemented
 * as algorithmic kernels: they really execute their algorithm over
 * host data structures and yield a MemRef for every shared load and
 * store the real program would perform, with barrier and lock events
 * where the original synchronises. Private/stack accesses appear as
 * busy cycles on the next reference, matching the paper's
 * "we only simulate shared data accesses" methodology.
 */

#ifndef VCOMA_WORKLOADS_WORKLOAD_HH
#define VCOMA_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "sim/generator.hh"
#include "sim/memref.hh"
#include "vm/address_space.hh"

namespace vcoma
{

/** A shared array living in the simulated virtual address space. */
template <typename T>
class SharedArray
{
  public:
    SharedArray() = default;

    /** Allocate @p count elements in @p space. */
    SharedArray(AddressSpace &space, std::string name, std::uint64_t count,
                std::uint64_t align = 64)
        : base_(space.alloc(std::move(name), count * sizeof(T), align)),
          count_(count)
    {
    }

    /** Simulated address of element @p i. */
    VAddr
    addr(std::uint64_t i) const
    {
        return base_ + i * sizeof(T);
    }

    VAddr base() const { return base_; }
    std::uint64_t count() const { return count_; }
    std::uint64_t bytes() const { return count_ * sizeof(T); }

  private:
    VAddr base_ = 0;
    std::uint64_t count_ = 0;
};

/** Abstract parallel workload. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name as used in the paper's tables. */
    virtual std::string name() const = 0;

    /** Parameter string (the Table 1 "Parameters" column). */
    virtual std::string parameters() const = 0;

    /** Number of threads == number of simulated processors. */
    virtual unsigned numThreads() const = 0;

    /**
     * The reference stream of thread @p tid. Every thread must pass
     * every barrier the workload issues; all threads are created
     * before the run starts.
     */
    virtual Generator<MemRef> thread(unsigned tid) = 0;

    /** The workload's virtual address space (footprint, layout). */
    virtual const AddressSpace &space() const = 0;

    /**
     * True when the per-thread streams exist as materialised arrays
     * served by stream(). The simulation kernel then walks the array
     * directly — no coroutine per reference — which is what makes
     * trace replay fast. Execution-driven workloads return false.
     */
    virtual bool materialised() const { return false; }

    /**
     * Materialised stream of thread @p tid, valid for this object's
     * lifetime. Only meaningful when materialised() is true; the
     * default fatal()s.
     */
    virtual std::span<const MemRef> stream(unsigned tid);

    /** Total shared bytes (Table 1's "Shared Memory" column). */
    std::uint64_t sharedBytes() const { return space().totalBytes(); }
};

/** Scaling/seeding knobs shared by all workload factories. */
struct WorkloadParams
{
    unsigned threads = 32;
    /**
     * Problem-size scale: 1.0 is the repository default (fast);
     * larger values approach the paper's data-set sizes.
     */
    double scale = 1.0;
    std::uint64_t seed = 1;
    /**
     * RAYTRACE only: align the per-processor ray-tree stacks to one
     * page (the DLB/8/V2 layout of Figure 10) instead of the original
     * 32 KB padding.
     */
    bool raytraceV2Layout = false;
    /**
     * Datacenter kernels (KVLOOKUP/GRAPH/STREAMJOIN): Zipf exponent
     * of the key/hub popularity distribution. 0 is uniform, 0.99 the
     * YCSB default, > 1 concentrates traffic on a handful of ranks.
     */
    double skew = 0.99;
    /** Datacenter kernels: fraction of operations that only read. */
    double readRatio = 0.9;
    /**
     * Datacenter kernels: working-set multiplier applied on top of
     * scale (grows the table/graph without issuing more references).
     */
    double workingSet = 1.0;
};

/** Names accepted by makeWorkload(). */
const std::vector<std::string> &workloadNames();

/**
 * Does @p spelling name an external packed trace ("TRACE:<path>",
 * prefix case-insensitive)? Such workloads replay a recorded stream
 * and never re-record.
 */
bool isTraceSpelling(const std::string &spelling);

/**
 * Construct a workload by paper name (RADIX, FFT, FMM, OCEAN,
 * RAYTRACE, BARNES), by synthetic-generator name (UNIFORM, STRIDE,
 * HOTSPOT), by datacenter-kernel name (KVLOOKUP, GRAPH, STREAMJOIN),
 * or as "TRACE:<path>" to replay an external packed trace as a
 * first-class workload. Names are case-insensitive (a TRACE path's
 * case is preserved). The datacenter kernels accept inline knobs
 * appended to the name — "KVLOOKUP:skew=1.2,read=0.5,ws=2" —
 * overriding WorkloadParams::skew/readRatio/workingSet, so a knobbed
 * spelling flows through config keys, the CLI and the service wire
 * protocol unchanged. fatal() on unknown names or malformed knobs.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params);

} // namespace vcoma

#endif // VCOMA_WORKLOADS_WORKLOAD_HH
