/**
 * @file
 * Record/replay Workloads over the packed memref trace format.
 *
 * RecordingWorkload tees each per-thread Generator<MemRef> stream of
 * a live workload to a PackedTraceWriter while the simulation runs —
 * the recorded per-thread streams are exactly what the kernel
 * consumed. ReplayWorkload maps a finished trace back in and serves
 * the streams as materialised arrays, so a replaying Machine::run
 * skips both the workload algorithm and the coroutine machinery: the
 * hot loop walks an mmapped MemRef array with software prefetch.
 */

#ifndef VCOMA_WORKLOADS_REPLAY_HH
#define VCOMA_WORKLOADS_REPLAY_HH

#include <memory>
#include <string>

#include "sim/memref_pack.hh"
#include "workloads/workload.hh"

namespace vcoma
{

/**
 * Replays a packed trace recorded by RecordingWorkload. Construction
 * validates the whole file (@throws TraceFormatError on a corrupt,
 * truncated or version-mismatched trace — never a crash, never a
 * silent partial replay). name(), parameters() and sharedBytes() are
 * the recorded workload's, so a replayed run's stats sheet is
 * byte-identical to the live run's.
 */
class ReplayWorkload : public Workload
{
  public:
    explicit ReplayWorkload(const std::string &path);

    std::string name() const override { return trace_.workloadName(); }
    std::string parameters() const override { return trace_.parameters(); }
    unsigned numThreads() const override { return trace_.threads(); }
    const AddressSpace &space() const override { return space_; }

    bool materialised() const override { return true; }
    std::span<const MemRef>
    stream(unsigned tid) override
    {
        return trace_.stream(tid);
    }

    /** Coroutine view of the same stream (recordTrace() and tools). */
    Generator<MemRef> thread(unsigned tid) override;

    /** Experiment cache key the trace was recorded under. */
    const std::string &recordedKey() const { return trace_.key(); }
    std::uint64_t totalEvents() const { return trace_.totalEvents(); }

  private:
    Generator<MemRef> replay(unsigned tid);

    PackedTrace trace_;
    AddressSpace space_;
};

/**
 * Wraps a live workload and records every event each thread yields.
 * Drive it through a full Machine::run, then call finalize() — only a
 * run that drained every stream publishes a trace, so an aborted or
 * failed run never leaves a partial file behind.
 */
class RecordingWorkload : public Workload
{
  public:
    /**
     * @param inner the live workload (not owned; must outlive this)
     * @param tracePath where finalize() publishes the trace
     * @param key experiment cache key stored in the trace header
     */
    RecordingWorkload(Workload &inner, const std::string &tracePath,
                      const std::string &key);

    std::string name() const override { return inner_.name(); }
    std::string parameters() const override
    {
        return inner_.parameters();
    }
    unsigned numThreads() const override { return inner_.numThreads(); }
    const AddressSpace &space() const override { return inner_.space(); }

    /** Tee of the inner thread's stream. Each tid records once. */
    Generator<MemRef> thread(unsigned tid) override;

    /**
     * Publish the recorded trace. @return false (and warns) on I/O
     * trouble — recording is an optimisation, never a run failure.
     */
    bool finalize();

  private:
    Generator<MemRef> tee(unsigned tid);

    Workload &inner_;
    PackedTraceWriter writer_;
    std::vector<bool> recorded_;
};

} // namespace vcoma

#endif // VCOMA_WORKLOADS_REPLAY_HH
