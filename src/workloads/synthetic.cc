/**
 * @file
 * Synthetic reference generators used by tests and micro-benchmarks:
 * UNIFORM issues reads/writes uniformly over a shared region; STRIDE
 * sweeps it with a fixed stride. Both are barrier-phased so every
 * simulated processor participates.
 */

#include <string>

#include "common/rng.hh"
#include "workloads/factories.hh"
#include "workloads/workload.hh"

namespace vcoma
{

namespace
{

/** Uniform random traffic over one shared segment. */
class UniformWorkload : public Workload
{
  public:
    explicit UniformWorkload(const WorkloadParams &params)
        : params_(params),
          refsPerThread_(static_cast<std::uint64_t>(20000 * params.scale)),
          region_(space_, "uniform.data",
                  static_cast<std::uint64_t>(64 * 1024 * params.scale))
    {
    }

    std::string name() const override { return "UNIFORM"; }

    std::string
    parameters() const override
    {
        return "refs/thread=" + std::to_string(refsPerThread_) +
               " bytes=" + std::to_string(region_.count());
    }

    unsigned numThreads() const override { return params_.threads; }

    const AddressSpace &space() const override { return space_; }

    Generator<MemRef>
    thread(unsigned tid) override
    {
        return body(tid);
    }

  private:
    Generator<MemRef>
    body(unsigned tid)
    {
        Rng rng(params_.seed * 1315423911ULL + tid);
        const std::uint64_t words = region_.count() / 8;
        for (std::uint64_t i = 0; i < refsPerThread_; ++i) {
            const VAddr a = region_.base() + rng.below(words) * 8;
            if (rng.below(4) == 0)
                co_yield MemRef::write(a, 4);
            else
                co_yield MemRef::read(a, 4);
        }
        co_yield MemRef::barrier(0);
    }

    WorkloadParams params_;
    std::uint64_t refsPerThread_;
    AddressSpace space_;
    SharedArray<std::uint8_t> region_;
};

/** Strided sweeps over a shared segment, one stripe per thread. */
class StrideWorkload : public Workload
{
  public:
    explicit StrideWorkload(const WorkloadParams &params)
        : params_(params),
          sweeps_(4),
          region_(space_, "stride.data",
                  static_cast<std::uint64_t>(256 * 1024 * params.scale))
    {
    }

    std::string name() const override { return "STRIDE"; }

    std::string
    parameters() const override
    {
        return "sweeps=" + std::to_string(sweeps_) +
               " bytes=" + std::to_string(region_.count());
    }

    unsigned numThreads() const override { return params_.threads; }

    const AddressSpace &space() const override { return space_; }

    Generator<MemRef>
    thread(unsigned tid) override
    {
        return body(tid);
    }

  private:
    Generator<MemRef>
    body(unsigned tid)
    {
        const std::uint64_t bytes = region_.count();
        const std::uint64_t chunk = bytes / params_.threads;
        const VAddr base = region_.base() + tid * chunk;
        std::uint32_t bar = 0;
        for (unsigned sweep = 0; sweep < sweeps_; ++sweep) {
            for (std::uint64_t off = 0; off < chunk; off += 64) {
                co_yield MemRef::read(base + off, 2);
                co_yield MemRef::write(base + off, 2);
            }
            co_yield MemRef::barrier(bar++);
            // Read the next thread's stripe: migratory sharing.
            const unsigned next = (tid + 1) % params_.threads;
            const VAddr nbase = region_.base() + next * chunk;
            for (std::uint64_t off = 0; off < chunk; off += 64)
                co_yield MemRef::read(nbase + off, 2);
            co_yield MemRef::barrier(bar++);
        }
    }

    WorkloadParams params_;
    unsigned sweeps_;
    AddressSpace space_;
    SharedArray<std::uint8_t> region_;
};

/**
 * Adversarial virtual layout (Section 6's "danger"): every region is
 * aligned to numColours * pageSize bytes (1 MB with the baseline
 * geometry), so every page lands in the same global page set. The
 * pressure concentrates on one colour and, past the threshold, the
 * page daemon must swap even though the other sets are empty.
 */
class HotspotWorkload : public Workload
{
  public:
    explicit HotspotWorkload(const WorkloadParams &params)
        : params_(params),
          regions_(static_cast<unsigned>(192 * params.scale))
    {
        bases_.reserve(regions_);
        for (unsigned r = 0; r < regions_; ++r) {
            bases_.push_back(space_.alloc(
                "hotspot.region" + std::to_string(r), 4096,
                /*align=*/256 * 4096));
        }
    }

    std::string name() const override { return "HOTSPOT"; }

    std::string
    parameters() const override
    {
        return std::to_string(regions_) +
               " regions, all on one page colour";
    }

    unsigned numThreads() const override { return params_.threads; }
    const AddressSpace &space() const override { return space_; }

    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

  private:
    Generator<MemRef>
    body(unsigned tid)
    {
        const unsigned P = params_.threads;
        for (unsigned sweep = 0; sweep < 4; ++sweep) {
            for (unsigned r = tid; r < regions_; r += P) {
                for (unsigned off = 0; off < 4096; off += 128) {
                    co_yield MemRef::read(bases_[r] + off, 2);
                    if (off % 512 == 0)
                        co_yield MemRef::write(bases_[r] + off, 2);
                }
            }
            co_yield MemRef::barrier(sweep);
        }
    }

    WorkloadParams params_;
    unsigned regions_;
    AddressSpace space_;
    std::vector<VAddr> bases_;
};

} // namespace

std::unique_ptr<Workload>
makeUniform(const WorkloadParams &params)
{
    return std::make_unique<UniformWorkload>(params);
}

std::unique_ptr<Workload>
makeStride(const WorkloadParams &params)
{
    return std::make_unique<StrideWorkload>(params);
}

std::unique_ptr<Workload>
makeHotspot(const WorkloadParams &params)
{
    return std::make_unique<HotspotWorkload>(params);
}

} // namespace vcoma
