/**
 * @file
 * BARNES: the SPLASH-2 Barnes-Hut hierarchical n-body kernel.
 *
 * A real quadtree is built over host particle positions. Each
 * timestep the threads (1) insert their bodies into the shared tree
 * under per-cell locks, (2) compute cell centres of mass bottom-up,
 * (3) walk the tree per body with the theta opening criterion — the
 * irregular, heavily read-shared traversal that dominates the
 * benchmark — and (4) update their bodies.
 */

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/factories.hh"
#include "workloads/workload.hh"

namespace vcoma
{

namespace
{

/** Shared-space image of one tree cell (one AM block). */
struct CellImage
{
    unsigned char bytes[128];
};

/** Shared-space image of one body (one AM block, as in SPLASH-2). */
struct BodyImage
{
    unsigned char bytes[128];
};

class BarnesWorkload : public Workload
{
  public:
    explicit BarnesWorkload(const WorkloadParams &params)
        : params_(params),
          numBodies_(scaledBodies(params.scale)),
          timesteps_(2),
          theta_(0.7)
    {
        buildHostTree();
        bodies_ = SharedArray<BodyImage>(space_, "barnes.bodies",
                                         numBodies_);
        cells_ = SharedArray<CellImage>(space_, "barnes.cells",
                                        nodes_.size());
    }

    std::string name() const override { return "BARNES"; }

    std::string
    parameters() const override
    {
        return std::to_string(numBodies_) + " particles";
    }

    unsigned numThreads() const override { return params_.threads; }
    const AddressSpace &space() const override { return space_; }

    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

  private:
    struct QNode
    {
        double cx = 0.5, cy = 0.5, half = 0.5;
        int child[4] = {-1, -1, -1, -1};
        int bodyIdx = -1;
        bool leaf = true;
    };

    static std::uint64_t
    scaledBodies(double scale)
    {
        return std::max<std::uint64_t>(
            static_cast<std::uint64_t>(4096 * scale), 256);
    }

    unsigned
    quadrantOf(const QNode &node, double x, double y) const
    {
        return (x >= node.cx ? 1u : 0u) | (y >= node.cy ? 2u : 0u);
    }

    int
    makeChild(int parent, unsigned q)
    {
        QNode child;
        const QNode &p = nodes_[parent];
        child.half = p.half / 2;
        child.cx = p.cx + ((q & 1) ? child.half : -child.half);
        child.cy = p.cy + ((q & 2) ? child.half : -child.half);
        nodes_.push_back(child);
        const int idx = static_cast<int>(nodes_.size()) - 1;
        nodes_[parent].child[q] = idx;
        return idx;
    }

    void
    insertBody(std::uint64_t b)
    {
        const double x = posX_[b];
        const double y = posY_[b];
        int cur = 0;
        std::vector<int> path{0};
        while (true) {
            QNode &node = nodes_[cur];
            if (node.leaf && node.bodyIdx < 0) {
                node.bodyIdx = static_cast<int>(b);
                break;
            }
            if (node.leaf) {
                // Split: push the resident body down.
                const int other = node.bodyIdx;
                node.bodyIdx = -1;
                node.leaf = false;
                const unsigned oq =
                    quadrantOf(node, posX_[other], posY_[other]);
                const int oc = makeChild(cur, oq);
                nodes_[oc].bodyIdx = other;
            }
            QNode &inner = nodes_[cur];
            const unsigned q = quadrantOf(inner, x, y);
            int next = inner.child[q];
            if (next < 0)
                next = makeChild(cur, q);
            cur = next;
            path.push_back(cur);
        }
        insertPaths_[b] = std::move(path);
    }

    void
    renumberCellsDfs()
    {
        std::vector<int> order;
        order.reserve(nodes_.size());
        std::vector<int> stack{0};
        std::vector<int> newIndex(nodes_.size(), -1);
        while (!stack.empty()) {
            const int cur = stack.back();
            stack.pop_back();
            newIndex[cur] = static_cast<int>(order.size());
            order.push_back(cur);
            const QNode &node = nodes_[cur];
            for (int q = 3; q >= 0; --q) {
                if (node.child[q] >= 0)
                    stack.push_back(node.child[q]);
            }
        }
        std::vector<QNode> renumbered(nodes_.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            QNode node = nodes_[order[i]];
            for (int &c : node.child) {
                if (c >= 0)
                    c = newIndex[c];
            }
            renumbered[i] = node;
        }
        nodes_ = std::move(renumbered);
        for (auto &path : insertPaths_) {
            for (int &c : path)
                c = newIndex[c];
        }
    }

    void
    renumberBodiesSpatially()
    {
        std::vector<std::uint64_t> order(numBodies_);
        for (std::uint64_t b = 0; b < numBodies_; ++b)
            order[b] = b;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::uint64_t a, std::uint64_t b) {
                             return insertPaths_[a].back() <
                                    insertPaths_[b].back();
                         });
        std::vector<double> px(numBodies_), py(numBodies_);
        std::vector<std::vector<int>> paths(numBodies_);
        std::vector<std::uint64_t> newIndex(numBodies_);
        for (std::uint64_t i = 0; i < numBodies_; ++i) {
            const std::uint64_t old = order[i];
            px[i] = posX_[old];
            py[i] = posY_[old];
            paths[i] = std::move(insertPaths_[old]);
            newIndex[old] = i;
        }
        posX_ = std::move(px);
        posY_ = std::move(py);
        insertPaths_ = std::move(paths);
        for (auto &node : nodes_) {
            if (node.bodyIdx >= 0) {
                node.bodyIdx = static_cast<int>(
                    newIndex[static_cast<std::uint64_t>(node.bodyIdx)]);
            }
        }
    }

    void
    buildHostTree()
    {
        Rng rng(params_.seed * 0x2545f491ULL + 3);
        posX_.resize(numBodies_);
        posY_.resize(numBodies_);
        for (std::uint64_t b = 0; b < numBodies_; ++b) {
            // Plummer-ish clustering: mix a dense core with a halo.
            if (rng.below(4) != 0) {
                posX_[b] = 0.5 + (rng.uniform() - 0.5) * 0.3;
                posY_[b] = 0.5 + (rng.uniform() - 0.5) * 0.3;
            } else {
                posX_[b] = rng.uniform();
                posY_[b] = rng.uniform();
            }
        }
        nodes_.clear();
        nodes_.push_back(QNode{});
        insertPaths_.resize(numBodies_);
        for (std::uint64_t b = 0; b < numBodies_; ++b)
            insertBody(b);

        // Renumber cells in depth-first order: SPLASH-2 allocates
        // cells from per-processor pools as the tree is descended, so
        // a force walk touches nearly-consecutive cell records. The
        // breadth-first construction order above would scatter them.
        renumberCellsDfs();

        // Sort bodies spatially (by their leaf's depth-first index),
        // mirroring SPLASH-2's costzones partitioning: consecutive
        // bodies then walk overlapping subtrees, and each processor's
        // band is a spatial region.
        renumberBodiesSpatially();

        // Bottom-up ordering of internal cells for the COM pass.
        comOrder_.clear();
        std::vector<int> stack{0};
        std::vector<int> post;
        while (!stack.empty()) {
            const int cur = stack.back();
            stack.pop_back();
            post.push_back(cur);
            for (int c : nodes_[cur].child) {
                if (c >= 0)
                    stack.push_back(c);
            }
        }
        comOrder_.assign(post.rbegin(), post.rend());
    }

    /** Cells a body's force walk touches, via the theta criterion. */
    void
    forceWalk(std::uint64_t b, std::vector<int> &visited) const
    {
        visited.clear();
        std::vector<int> stack{0};
        while (!stack.empty()) {
            const int cur = stack.back();
            stack.pop_back();
            const QNode &node = nodes_[cur];
            visited.push_back(cur);
            if (node.leaf)
                continue;
            const double dx = node.cx - posX_[b];
            const double dy = node.cy - posY_[b];
            const double dist = std::sqrt(dx * dx + dy * dy) + 1e-9;
            if (2 * node.half / dist < theta_)
                continue;  // far enough: use the cell's expansion
            for (int c : node.child) {
                if (c >= 0)
                    stack.push_back(c);
            }
        }
    }

    Generator<MemRef>
    body(unsigned tid)
    {
        const unsigned P = params_.threads;
        const std::uint64_t perProc = (numBodies_ + P - 1) / P;
        const std::uint64_t lo = tid * perProc;
        const std::uint64_t hi = std::min<std::uint64_t>(lo + perProc,
                                                         numBodies_);
        const std::uint64_t numCells = nodes_.size();
        const std::uint64_t cellsPerProc = (numCells + P - 1) / P;
        std::uint32_t bar = 0;
        std::vector<int> visited;

        for (unsigned step = 0; step < timesteps_; ++step) {
            // Phase 1: tree construction. Each insertion walks the
            // shared tree and updates the destination cell under a
            // hashed per-cell lock.
            for (std::uint64_t b = lo; b < hi; ++b) {
                co_yield MemRef::read(bodies_.addr(b), 1);
                co_yield MemRef::read(bodies_.addr(b) + 32, 1);
                const auto &path = insertPaths_[b];
                for (int cell : path) {
                    co_yield MemRef::read(cells_.addr(cell), 1);
                    co_yield MemRef::read(cells_.addr(cell) + 64, 1);
                }
                const int leafCell = path.back();
                const std::uint32_t lockId =
                    64 + static_cast<std::uint32_t>(leafCell % 32);
                co_yield MemRef::lock(lockId);
                co_yield MemRef::write(cells_.addr(leafCell), 4);
                co_yield MemRef::unlock(lockId);
            }
            co_yield MemRef::barrier(bar++);

            // Phase 2: centres of mass, bottom-up, cells partitioned
            // across processors.
            for (std::uint64_t i = tid * cellsPerProc;
                 i < std::min<std::uint64_t>((tid + 1) * cellsPerProc,
                                             numCells);
                 ++i) {
                const int cell = comOrder_[i];
                for (int c : nodes_[cell].child) {
                    if (c >= 0) {
                        co_yield MemRef::read(cells_.addr(c), 1);
                        co_yield MemRef::read(cells_.addr(c) + 64, 1);
                    }
                }
                co_yield MemRef::write(cells_.addr(cell), 1);
                co_yield MemRef::write(cells_.addr(cell) + 64, 1);
            }
            co_yield MemRef::barrier(bar++);

            // Phase 3: force computation — the dominant, irregular,
            // read-shared tree walk.
            for (std::uint64_t b = lo; b < hi; ++b) {
                co_yield MemRef::read(bodies_.addr(b), 1);
                co_yield MemRef::read(bodies_.addr(b) + 32, 1);
                forceWalk(b, visited);
                for (int cell : visited) {
                    // subdivp reads the geometry, gravsub the mass,
                    // centre of mass and quadrupole moments: a stream
                    // of words from the cell record.
                    const VAddr ca = cells_.addr(cell);
                    co_yield MemRef::read(ca, 1);
                    co_yield MemRef::read(ca + 16, 1);
                    co_yield MemRef::read(ca + 32, 1);
                    co_yield MemRef::read(ca + 56, 1);
                    co_yield MemRef::read(ca + 80, 1);
                    co_yield MemRef::read(ca + 104, 1);
                }
                co_yield MemRef::write(bodies_.addr(b), 1);
                co_yield MemRef::write(bodies_.addr(b) + 64, 1);
            }
            co_yield MemRef::barrier(bar++);

            // Phase 4: position/velocity update of own bodies.
            for (std::uint64_t b = lo; b < hi; ++b) {
                co_yield MemRef::read(bodies_.addr(b), 1);
                co_yield MemRef::read(bodies_.addr(b) + 64, 1);
                co_yield MemRef::write(bodies_.addr(b), 1);
                co_yield MemRef::write(bodies_.addr(b) + 32, 1);
            }
            co_yield MemRef::barrier(bar++);
        }
    }

    WorkloadParams params_;
    std::uint64_t numBodies_;
    unsigned timesteps_;
    double theta_;

    AddressSpace space_;
    SharedArray<BodyImage> bodies_;
    SharedArray<CellImage> cells_;

    std::vector<double> posX_;
    std::vector<double> posY_;
    std::vector<QNode> nodes_;
    std::vector<std::vector<int>> insertPaths_;
    std::vector<int> comOrder_;
};

} // namespace

std::unique_ptr<Workload>
makeBarnes(const WorkloadParams &params)
{
    return std::make_unique<BarnesWorkload>(params);
}

} // namespace vcoma
