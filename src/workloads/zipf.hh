/**
 * @file
 * Zipfian rank sampler for the datacenter kernels.
 *
 * Millions-of-users traffic is skewed: a few keys (or graph hubs, or
 * join build tuples) absorb most of the accesses. The sampler draws a
 * popularity rank r in [0, n) with P(r) proportional to 1/(r+1)^theta.
 * theta = 0 is uniform, 0.99 is the YCSB default, and values above 1
 * concentrate almost all traffic on a handful of ranks.
 *
 * Implementation: an explicit cumulative-distribution table built at
 * setup and binary-searched per draw. O(n) setup and 8n bytes of host
 * memory buy exactness for any theta >= 0 (the closed-form YCSB
 * approximation is only valid for theta < 1) and determinism that
 * depends on nothing but the Rng stream — one uniform() per draw, no
 * rejection, so recorded streams replay byte-identically.
 */

#ifndef VCOMA_WORKLOADS_ZIPF_HH
#define VCOMA_WORKLOADS_ZIPF_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace vcoma
{

class ZipfGenerator
{
  public:
    /** Distribution over ranks [0, @p n) with exponent @p theta. */
    ZipfGenerator(std::uint64_t n, double theta)
        : cdf_(n)
    {
        double total = 0;
        for (std::uint64_t r = 0; r < n; ++r) {
            total += 1.0 /
                     std::pow(static_cast<double>(r + 1), theta);
            cdf_[r] = total;
        }
        for (double &c : cdf_)
            c /= total;
        // Guard against floating-point shortfall at the top end.
        cdf_.back() = 1.0;
    }

    /** Draw a rank; rank 0 is the most popular. */
    std::uint64_t
    next(Rng &rng)
    {
        const double u = rng.uniform();
        const auto it =
            std::upper_bound(cdf_.begin(), cdf_.end(), u);
        return static_cast<std::uint64_t>(it - cdf_.begin());
    }

    std::uint64_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace vcoma

#endif // VCOMA_WORKLOADS_ZIPF_HH
