/**
 * @file
 * Synthetic datacenter kernels: the paper's six SPLASH-2 benchmarks
 * are all scientific, but the DLB's filtering/sharing/prefetching
 * argument was never measured against the pointer-chasing, skewed-
 * sharing traffic that dominates modern servers. These kernels fill
 * that gap:
 *
 *  - KVLOOKUP: Zipfian keys over a chained hash table, each lookup a
 *    dependent pointer chase of one cache block per node.
 *  - GRAPH: seeded random walks over a CSR adjacency whose edge
 *    targets are Zipf-distributed, so a few hub vertices absorb most
 *    of the traffic.
 *  - STREAMJOIN: a streaming two-relation hash join probing a skewed
 *    build side, mixing sequential probe/output stripes with hot
 *    shared buckets.
 *
 * All three are barrier-phased, coroutine-driven and deterministic
 * from (seed, tid) alone, so they record and replay byte-identically
 * like the SPLASH-2 kernels. Skew (Zipf theta), read ratio and
 * working-set multiplier come from WorkloadParams and can be spelled
 * inline in the workload name ("KVLOOKUP:skew=1.2,read=0.5").
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "workloads/factories.hh"
#include "workloads/workload.hh"
#include "workloads/zipf.hh"

namespace vcoma
{

namespace
{

/** SplitMix64 finaliser: scatters keys over hash buckets. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::string
num2(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

/** One hash-table node: a full cache block, chased per chain hop. */
struct alignas(64) KvNode
{
    std::uint64_t payload[8];
};

/**
 * Chained hash table shared by KVLOOKUP and STREAMJOIN's build side:
 * keys [0, n) scattered over buckets by mix64, node storage permuted
 * by a seeded Fisher-Yates shuffle so chain hops are data-dependent
 * pointer chases, not strides.
 */
struct HashChains
{
    HashChains(std::uint64_t keys, std::uint64_t buckets,
               std::uint64_t seed)
        : perm(keys), keyBucket(keys), keyPos(keys), chains(buckets)
    {
        for (std::uint64_t k = 0; k < keys; ++k)
            perm[k] = static_cast<std::uint32_t>(k);
        Rng shuffle(seed);
        for (std::uint64_t k = keys - 1; k > 0; --k)
            std::swap(perm[k], perm[shuffle.below(k + 1)]);
        for (std::uint64_t k = 0; k < keys; ++k) {
            const std::uint64_t b = mix64(k) % buckets;
            keyBucket[k] = static_cast<std::uint32_t>(b);
            keyPos[k] = static_cast<std::uint32_t>(chains[b].size());
            chains[b].push_back(static_cast<std::uint32_t>(k));
        }
    }

    /** Node slot of key @p k in the permuted node array. */
    std::uint32_t slot(std::uint64_t k) const { return perm[k]; }

    std::vector<std::uint32_t> perm;
    std::vector<std::uint32_t> keyBucket;
    std::vector<std::uint32_t> keyPos;
    std::vector<std::vector<std::uint32_t>> chains;
};

constexpr unsigned kPhases = 4;

/** Zipfian point lookups over a chained hash table. */
class KvLookupWorkload : public Workload
{
  public:
    explicit KvLookupWorkload(const WorkloadParams &params)
        : params_(params),
          nKeys_(std::max<std::uint64_t>(
              64, static_cast<std::uint64_t>(
                      16384 * params.scale * params.workingSet))),
          nBuckets_(std::max<std::uint64_t>(16, nKeys_ / 4)),
          lookupsPerThread_(std::max<std::uint64_t>(
              48, static_cast<std::uint64_t>(2400 * params.scale))),
          buckets_(space_, "kv.buckets", nBuckets_),
          nodes_(space_, "kv.nodes", nKeys_),
          table_(nKeys_, nBuckets_, params.seed ^ 0x6b766c6fULL),
          zipf_(nKeys_, params.skew)
    {
    }

    std::string name() const override { return "KVLOOKUP"; }

    std::string
    parameters() const override
    {
        return "keys=" + std::to_string(nKeys_) +
               " buckets=" + std::to_string(nBuckets_) +
               " skew=" + num2(params_.skew) +
               " read=" + num2(params_.readRatio) +
               " lookups/thread=" +
               std::to_string(lookupsPerThread_ * kPhases);
    }

    unsigned numThreads() const override { return params_.threads; }
    const AddressSpace &space() const override { return space_; }
    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

  private:
    Generator<MemRef>
    body(unsigned tid)
    {
        Rng rng(params_.seed * 2654435761ULL + tid * 97 + 11);
        for (unsigned phase = 0; phase < kPhases; ++phase) {
            for (std::uint64_t i = 0; i < lookupsPerThread_; ++i) {
                const std::uint64_t key = zipf_.next(rng);
                const std::uint32_t b = table_.keyBucket[key];
                // Bucket head: the hash itself is busy work.
                co_yield MemRef::read(buckets_.addr(b), 4);
                // Dependent chase down the chain to the key's node.
                const auto &chain = table_.chains[b];
                const std::uint32_t pos = table_.keyPos[key];
                VAddr last = 0;
                for (std::uint32_t c = 0; c <= pos; ++c) {
                    last = nodes_.addr(table_.slot(chain[c]));
                    co_yield MemRef::read(last, 2);
                }
                if (rng.uniform() >= params_.readRatio)
                    co_yield MemRef::write(last, 2);
            }
            co_yield MemRef::barrier(phase);
        }
    }

    WorkloadParams params_;
    std::uint64_t nKeys_;
    std::uint64_t nBuckets_;
    std::uint64_t lookupsPerThread_;
    AddressSpace space_;
    SharedArray<std::uint64_t> buckets_;
    SharedArray<KvNode> nodes_;
    HashChains table_;
    ZipfGenerator zipf_;
};

/** Seeded random walks over a hub-skewed CSR adjacency. */
class GraphWorkload : public Workload
{
  public:
    explicit GraphWorkload(const WorkloadParams &params)
        : params_(params),
          nVerts_(std::max<std::uint64_t>(
              128, static_cast<std::uint64_t>(
                       4096 * params.scale * params.workingSet))),
          nEdges_(nVerts_ * kAvgDegree),
          stepsPerThread_(std::max<std::uint64_t>(
              48, static_cast<std::uint64_t>(2800 * params.scale))),
          rowPtr_(space_, "graph.rowptr", nVerts_ + 1),
          colIdx_(space_, "graph.colidx", nEdges_),
          vdata_(space_, "graph.vdata", nVerts_)
    {
        // Edge targets are Zipf ranks: rank 0 (vertex hash order) is
        // the hottest hub. Sources are uniform, so every row has
        // roughly kAvgDegree out-edges.
        ZipfGenerator targets(nVerts_, params.skew);
        Rng build(params.seed ^ 0x67726168ULL);
        std::vector<std::vector<std::uint32_t>> adj(nVerts_);
        for (std::uint64_t e = 0; e < nEdges_; ++e) {
            const std::uint64_t src = build.below(nVerts_);
            const std::uint64_t dst =
                mix64(targets.next(build)) % nVerts_;
            adj[src].push_back(static_cast<std::uint32_t>(dst));
        }
        rowStart_.resize(nVerts_ + 1);
        edgeTarget_.reserve(nEdges_);
        for (std::uint64_t v = 0; v < nVerts_; ++v) {
            rowStart_[v] = edgeTarget_.size();
            for (std::uint32_t t : adj[v])
                edgeTarget_.push_back(t);
        }
        rowStart_[nVerts_] = edgeTarget_.size();
    }

    std::string name() const override { return "GRAPH"; }

    std::string
    parameters() const override
    {
        return "vertices=" + std::to_string(nVerts_) +
               " edges=" + std::to_string(nEdges_) +
               " skew=" + num2(params_.skew) +
               " read=" + num2(params_.readRatio) +
               " steps/thread=" +
               std::to_string(stepsPerThread_ * kPhases);
    }

    unsigned numThreads() const override { return params_.threads; }
    const AddressSpace &space() const override { return space_; }
    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

  private:
    Generator<MemRef>
    body(unsigned tid)
    {
        Rng rng(params_.seed * 0x9e3779b1ULL + tid * 131 + 7);
        std::uint64_t v = rng.below(nVerts_);
        for (unsigned phase = 0; phase < kPhases; ++phase) {
            for (std::uint64_t i = 0; i < stepsPerThread_; ++i) {
                // Row bounds: two adjacent words of the CSR index.
                co_yield MemRef::read(rowPtr_.addr(v), 2);
                co_yield MemRef::read(rowPtr_.addr(v + 1), 1);
                const std::uint64_t deg =
                    rowStart_[v + 1] - rowStart_[v];
                if (deg == 0) {
                    v = rng.below(nVerts_);
                    continue;
                }
                const std::uint64_t e =
                    rowStart_[v] + rng.below(deg);
                co_yield MemRef::read(colIdx_.addr(e), 2);
                const std::uint64_t next = edgeTarget_[e];
                if (rng.uniform() < params_.readRatio)
                    co_yield MemRef::read(vdata_.addr(next), 2);
                else
                    co_yield MemRef::write(vdata_.addr(next), 2);
                // Occasional teleport keeps walks from trapping in
                // sink components.
                v = rng.below(16) == 0 ? rng.below(nVerts_) : next;
            }
            co_yield MemRef::barrier(phase);
        }
    }

    static constexpr std::uint64_t kAvgDegree = 8;

    WorkloadParams params_;
    std::uint64_t nVerts_;
    std::uint64_t nEdges_;
    std::uint64_t stepsPerThread_;
    AddressSpace space_;
    SharedArray<std::uint64_t> rowPtr_;
    SharedArray<std::uint32_t> colIdx_;
    SharedArray<std::uint64_t> vdata_;
    /** Host-side CSR mirror driving the walk. */
    std::vector<std::uint64_t> rowStart_;
    std::vector<std::uint32_t> edgeTarget_;
};

/** Streaming probe of a skewed build-side hash table. */
class StreamJoinWorkload : public Workload
{
  public:
    explicit StreamJoinWorkload(const WorkloadParams &params)
        : params_(params),
          nBuild_(std::max<std::uint64_t>(
              64, static_cast<std::uint64_t>(
                      4096 * params.scale * params.workingSet))),
          nBuckets_(std::max<std::uint64_t>(16, nBuild_ / 2)),
          probesPerThread_(std::max<std::uint64_t>(
              48, static_cast<std::uint64_t>(2400 * params.scale))),
          buckets_(space_, "join.buckets", nBuckets_),
          build_(space_, "join.build", nBuild_),
          probe_(space_, "join.probe",
                 static_cast<std::uint64_t>(params.threads) *
                     probesPerThread_ * kPhases),
          out_(space_, "join.out",
               static_cast<std::uint64_t>(params.threads) *
                   probesPerThread_ * kPhases),
          table_(nBuild_, nBuckets_, params.seed ^ 0x6a6f696eULL),
          zipf_(nBuild_, params.skew)
    {
    }

    std::string name() const override { return "STREAMJOIN"; }

    std::string
    parameters() const override
    {
        return "build=" + std::to_string(nBuild_) +
               " buckets=" + std::to_string(nBuckets_) +
               " skew=" + num2(params_.skew) +
               " read=" + num2(params_.readRatio) +
               " probes/thread=" +
               std::to_string(probesPerThread_ * kPhases);
    }

    unsigned numThreads() const override { return params_.threads; }
    const AddressSpace &space() const override { return space_; }
    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

  private:
    /** 32-byte build tuple: half a block, so chains share blocks. */
    struct JoinTuple
    {
        std::uint64_t w[4];
    };
    static_assert(sizeof(JoinTuple) == 32);

    Generator<MemRef>
    body(unsigned tid)
    {
        Rng rng(params_.seed * 0x85ebca6bULL + tid * 193 + 5);
        // Each thread streams its own stripe of the probe relation
        // and writes matches to its own output stripe: sequential
        // private traffic around hot shared buckets.
        std::uint64_t cursor =
            static_cast<std::uint64_t>(tid) * probesPerThread_ *
            kPhases;
        for (unsigned phase = 0; phase < kPhases; ++phase) {
            for (std::uint64_t i = 0; i < probesPerThread_; ++i) {
                co_yield MemRef::read(probe_.addr(cursor), 2);
                const std::uint64_t key = zipf_.next(rng);
                const std::uint32_t b = table_.keyBucket[key];
                co_yield MemRef::read(buckets_.addr(b), 4);
                const auto &chain = table_.chains[b];
                const std::uint32_t pos = table_.keyPos[key];
                for (std::uint32_t c = 0; c <= pos; ++c) {
                    co_yield MemRef::read(
                        build_.addr(table_.slot(chain[c])), 2);
                }
                if (rng.uniform() >= params_.readRatio)
                    co_yield MemRef::write(out_.addr(cursor), 2);
                ++cursor;
            }
            co_yield MemRef::barrier(phase);
        }
    }

    WorkloadParams params_;
    std::uint64_t nBuild_;
    std::uint64_t nBuckets_;
    std::uint64_t probesPerThread_;
    AddressSpace space_;
    SharedArray<std::uint64_t> buckets_;
    SharedArray<JoinTuple> build_;
    SharedArray<std::uint64_t> probe_;
    SharedArray<std::uint64_t> out_;
    HashChains table_;
    ZipfGenerator zipf_;
};

} // namespace

std::unique_ptr<Workload>
makeKvLookup(const WorkloadParams &params)
{
    return std::make_unique<KvLookupWorkload>(params);
}

std::unique_ptr<Workload>
makeGraph(const WorkloadParams &params)
{
    return std::make_unique<GraphWorkload>(params);
}

std::unique_ptr<Workload>
makeStreamJoin(const WorkloadParams &params)
{
    return std::make_unique<StreamJoinWorkload>(params);
}

} // namespace vcoma
