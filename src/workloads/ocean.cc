/**
 * @file
 * OCEAN: the SPLASH-2 ocean-current solver's access pattern — an
 * iterative 5-point stencil relaxation over several shared grids
 * partitioned in bands of rows, with nearest-neighbour sharing at
 * band boundaries, barrier-separated sweeps, and a lock-protected
 * global error reduction each iteration (the multigrid convergence
 * test).
 */

#include <string>
#include <vector>

#include "common/logging.hh"
#include "workloads/factories.hh"
#include "workloads/workload.hh"

namespace vcoma
{

namespace
{

class OceanWorkload : public Workload
{
  public:
    explicit OceanWorkload(const WorkloadParams &params)
        : params_(params),
          dim_(scaledDim(params.scale)),
          iterations_(8)
    {
        const std::uint64_t cells = (dim_ + 2) * (dim_ + 2);
        for (unsigned g = 0; g < numGrids_; ++g) {
            grids_.emplace_back(space_, "ocean.grid" + std::to_string(g),
                                cells);
        }
        error_ = SharedArray<double>(space_, "ocean.error", 8);
        if (dim_ % params.threads != 0)
            fatal("OCEAN: grid rows (", dim_,
                  ") not divisible by threads");
    }

    std::string name() const override { return "OCEAN"; }

    std::string
    parameters() const override
    {
        return std::to_string(dim_ + 2) + "*" + std::to_string(dim_ + 2);
    }

    unsigned numThreads() const override { return params_.threads; }
    const AddressSpace &space() const override { return space_; }

    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

  private:
    static std::uint64_t
    scaledDim(double scale)
    {
        // scale 1 -> 128x128 interior; paper's 258*258 is scale ~= 2.
        std::uint64_t d = 128;
        double s = scale;
        while (s >= 4.0) {
            d *= 2;
            s /= 4.0;
        }
        return d;
    }

    VAddr
    cell(const SharedArray<double> &g, std::uint64_t row,
         std::uint64_t col) const
    {
        return g.addr(row * (dim_ + 2) + col);
    }

    Generator<MemRef>
    body(unsigned tid)
    {
        const unsigned P = params_.threads;
        const std::uint64_t rowsPerProc = dim_ / P;
        const std::uint64_t lo = 1 + tid * rowsPerProc;
        const std::uint64_t hi = lo + rowsPerProc;
        std::uint32_t bar = 0;
        constexpr std::uint32_t errorLock = 1;

        for (unsigned iter = 0; iter < iterations_; ++iter) {
            // Each iteration relaxes one pair of grids (source ->
            // destination), cycling through the grid set the way the
            // real multigrid solver touches its many fields.
            const SharedArray<double> &src =
                grids_[(2 * iter) % numGrids_];
            const SharedArray<double> &dst =
                grids_[(2 * iter + 1) % numGrids_];

            // The real solver evaluates each point from several
            // fields at once (psi, gamma, q, ...): the 5-point
            // stencil on the source grid plus point reads from two
            // auxiliary grids, producing the destination grid.
            const SharedArray<double> &aux1 =
                grids_[(2 * iter + 2) % numGrids_];
            const SharedArray<double> &aux2 =
                grids_[(2 * iter + 3) % numGrids_];
            const SharedArray<double> &aux3 =
                grids_[(2 * iter + 4) % numGrids_];
            const SharedArray<double> &aux4 =
                grids_[(2 * iter + 5) % numGrids_];
            for (std::uint64_t r = lo; r < hi; ++r) {
                for (std::uint64_t c = 1; c <= dim_; ++c) {
                    co_yield MemRef::read(cell(src, r, c), 1);
                    co_yield MemRef::read(cell(src, r - 1, c), 1);
                    co_yield MemRef::read(cell(src, r + 1, c), 1);
                    co_yield MemRef::read(cell(src, r, c - 1), 1);
                    co_yield MemRef::read(cell(src, r, c + 1), 1);
                    co_yield MemRef::read(cell(aux1, r, c), 1);
                    co_yield MemRef::read(cell(aux2, r, c), 1);
                    co_yield MemRef::read(cell(aux3, r, c), 1);
                    co_yield MemRef::read(cell(aux4, r, c), 1);
                    co_yield MemRef::write(cell(dst, r, c), 3);
                }
            }

            // Column-direction solver sweep (the real program's
            // tridiagonal/relaxation passes also run down columns,
            // touching one page per few rows): threads take bands of
            // columns here.
            {
                const std::uint64_t colsPerProc = dim_ / P;
                const std::uint64_t cl = 1 + tid * colsPerProc;
                const std::uint64_t ch = cl + colsPerProc;
                const SharedArray<double> &g =
                    grids_[(iter + 6) % numGrids_];
                for (std::uint64_t c = cl; c < ch; ++c) {
                    for (std::uint64_t r = 1; r <= dim_; ++r) {
                        co_yield MemRef::read(cell(g, r - 1, c), 1);
                        co_yield MemRef::write(cell(g, r, c), 2);
                    }
                }
            }

            // Global error reduction under a lock (convergence test).
            co_yield MemRef::lock(errorLock);
            co_yield MemRef::read(error_.addr(0), 2);
            co_yield MemRef::write(error_.addr(0), 2);
            co_yield MemRef::unlock(errorLock);

            co_yield MemRef::barrier(bar++);
        }
    }

    WorkloadParams params_;
    std::uint64_t dim_;
    unsigned iterations_;
    static constexpr unsigned numGrids_ = 8;
    AddressSpace space_;
    std::vector<SharedArray<double>> grids_;
    SharedArray<double> error_;
};

} // namespace

std::unique_ptr<Workload>
makeOcean(const WorkloadParams &params)
{
    return std::make_unique<OceanWorkload>(params);
}

} // namespace vcoma
