/**
 * @file
 * RAYTRACE: the SPLASH-2 ray tracer's access pattern.
 *
 * Processors pull tiles of the image from a lock-protected central
 * work queue, trace the tile's rays through a large read-shared scene
 * structure, push/pop ray-tree records on their *per-processor
 * raystruct stack*, and write the frame buffer.
 *
 * The raystruct stacks reproduce the paper's layout experiment
 * (Section 5.3): the original code pads each processor's stack to a
 * 32 KB alignment to avoid false sharing. Under V-COMA the stack's
 * hot page then lands on a page colour that is a multiple of 8, so
 * all 32 stacks' hot pages are homed on only 4 of the 32 nodes and
 * crowd the same global page sets. The DLB/8/V2 variant
 * (raytraceV2Layout) aligns the padding to one page instead, which
 * spreads colours and homes and removes the conflicts.
 */

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/factories.hh"
#include "workloads/workload.hh"

namespace vcoma
{

namespace
{

/** One 128-byte scene block (BVH node / geometry record). */
struct SceneBlock
{
    unsigned char bytes[128];
};

class RaytraceWorkload : public Workload
{
  public:
    explicit RaytraceWorkload(const WorkloadParams &params)
        : params_(params),
          imageDim_(scaledImage(params.scale)),
          tileDim_(16),
          sceneBlocks_(scaledScene(params.scale)),
          scene_(space_, "raytrace.scene", sceneBlocks_),
          frame_(space_, "raytrace.frame",
                 std::uint64_t{imageDim_} * imageDim_),
          queue_(space_, "raytrace.queue", 16)
    {
        // The per-processor ray-tree stacks ("raystruct"): the
        // original layout pads to 32 KB boundaries; the V2 layout
        // aligns to one page (Figure 10's DLB/8/V2).
        const std::uint64_t align =
            params.raytraceV2Layout ? 4096 : 32768;
        stacks_.reserve(params.threads);
        for (unsigned p = 0; p < params.threads; ++p) {
            // 8 KB of stack per processor; the alignment (32 KB vs
            // one page) is the whole experiment.
            stacks_.emplace_back(
                space_, "raytrace.raystruct" + std::to_string(p),
                std::uint64_t{2048}, align);
        }
    }

    std::string name() const override { return "RAYTRACE"; }

    std::string
    parameters() const override
    {
        return std::string("car(synthetic) ") +
               std::to_string(imageDim_) + "x" +
               std::to_string(imageDim_) +
               (params_.raytraceV2Layout ? " V2-layout" : "");
    }

    unsigned numThreads() const override { return params_.threads; }
    const AddressSpace &space() const override { return space_; }

    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

  private:
    static unsigned
    scaledImage(double scale)
    {
        unsigned dim = 192;
        double s = scale;
        while (s >= 4.0) {
            dim *= 2;
            s /= 4.0;
        }
        return dim;
    }

    static std::uint64_t
    scaledScene(double scale)
    {
        // ~3 MB of scene at scale 1: large enough that replication
        // fills the attraction-memory colour stripes.
        return static_cast<std::uint64_t>(24576 * std::min(scale, 8.0));
    }

    static std::uint64_t
    mix(std::uint64_t v)
    {
        v ^= v >> 33;
        v *= 0xff51afd7ed558ccdULL;
        v ^= v >> 33;
        return v;
    }

    Generator<MemRef>
    body(unsigned tid)
    {
        const unsigned tilesPerRow = imageDim_ / tileDim_;
        const unsigned numTiles = tilesPerRow * tilesPerRow;
        constexpr std::uint32_t queueLock = 1;
        const SharedArray<std::uint32_t> &stack = stacks_[tid];
        const std::uint64_t stackEntries = stack.count() * 4 / 64;

        while (true) {
            // Pull the next tile from the central work queue.
            co_yield MemRef::lock(queueLock);
            co_yield MemRef::read(queue_.addr(0), 2);
            const unsigned tile = nextTile_++;
            co_yield MemRef::write(queue_.addr(0), 2);
            co_yield MemRef::unlock(queueLock);
            if (tile >= numTiles)
                break;

            const unsigned tx = tile % tilesPerRow;
            const unsigned ty = tile / tilesPerRow;
            // Rays of one tile share a neighbourhood of the scene.
            const std::uint64_t cluster =
                mix(params_.seed * 1000003ULL + tile) % sceneBlocks_;
            // Reflections within one tile hit a coherent secondary
            // region of the scene too.
            const std::uint64_t cluster2 =
                mix(params_.seed * 7368787ULL + tile) % sceneBlocks_;

            for (unsigned py = 0; py < tileDim_; ++py) {
                for (unsigned px = 0; px < tileDim_; ++px) {
                    const std::uint64_t pixel =
                        std::uint64_t(ty * tileDim_ + py) * imageDim_ +
                        (tx * tileDim_ + px);
                    std::uint64_t h =
                        mix(pixel * 0x9e3779b97f4a7c15ULL + 11);

                    // Every ray enters through the top of the BVH:
                    // a handful of hot root blocks shared by all.
                    for (unsigned v = 0; v < 2; ++v) {
                        co_yield MemRef::read(
                            scene_.addr((h >> v) % 8), 1);
                    }

                    // Primary + secondary rays: a short ray tree.
                    const unsigned depth = 2 + h % 3;
                    unsigned sp = 0;
                    for (unsigned level = 0; level < depth; ++level) {
                        // Push a ray record on the raystruct stack.
                        const VAddr rec =
                            stack.addr((sp % stackEntries) * 16);
                        co_yield MemRef::write(rec, 1);
                        co_yield MemRef::write(rec + 32, 1);
                        ++sp;
                        // Descend through the tile's neighbourhood of
                        // the scene: intersection tests read several
                        // words of each candidate block.
                        const unsigned visits = 3 + (h >> 8) % 3;
                        for (unsigned v = 0; v < visits; ++v) {
                            const std::uint64_t idx =
                                (cluster + v + 7 * level +
                                 ((h >> (2 * v)) & 3)) %
                                sceneBlocks_;
                            const VAddr blk = scene_.addr(idx);
                            co_yield MemRef::read(blk, 1);
                            co_yield MemRef::read(blk + 48, 1);
                            co_yield MemRef::read(blk + 96, 1);
                        }
                        // Shadow/reflection rays leave the primary
                        // neighbourhood but stay coherent within the
                        // tile; one ray in eight escapes completely.
                        h = mix(h + level);
                        const std::uint64_t fidx =
                            (h & 7) == 0
                                ? h % sceneBlocks_
                                : (cluster2 + (h & 15)) % sceneBlocks_;
                        const VAddr far = scene_.addr(fidx);
                        co_yield MemRef::read(far, 1);
                        co_yield MemRef::read(far + 64, 1);
                    }
                    // Unwind the ray tree.
                    while (sp > 0) {
                        --sp;
                        const VAddr rec =
                            stack.addr((sp % stackEntries) * 16);
                        co_yield MemRef::read(rec, 1);
                        co_yield MemRef::read(rec + 32, 1);
                    }
                    co_yield MemRef::write(frame_.addr(pixel), 2);
                }
            }
        }
        co_yield MemRef::barrier(0);
    }

    WorkloadParams params_;
    unsigned imageDim_;
    unsigned tileDim_;
    std::uint64_t sceneBlocks_;

    AddressSpace space_;
    SharedArray<SceneBlock> scene_;
    SharedArray<std::uint32_t> frame_;
    SharedArray<std::uint32_t> queue_;
    std::vector<SharedArray<std::uint32_t>> stacks_;

    unsigned nextTile_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeRaytrace(const WorkloadParams &params)
{
    return std::make_unique<RaytraceWorkload>(params);
}

} // namespace vcoma
