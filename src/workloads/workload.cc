#include "workloads/workload.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "workloads/factories.hh"

namespace vcoma
{

std::span<const MemRef>
Workload::stream(unsigned tid)
{
    fatal("workload '", name(), "' has no materialised stream for "
          "thread ", tid, " (materialised() is false)");
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names{
        "RADIX", "FFT", "FMM", "OCEAN", "RAYTRACE", "BARNES",
        "UNIFORM", "STRIDE", "HOTSPOT",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    std::string upper(name);
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (upper == "RADIX")
        return makeRadix(params);
    if (upper == "FFT")
        return makeFft(params);
    if (upper == "FMM")
        return makeFmm(params);
    if (upper == "OCEAN")
        return makeOcean(params);
    if (upper == "RAYTRACE")
        return makeRaytrace(params);
    if (upper == "BARNES")
        return makeBarnes(params);
    if (upper == "UNIFORM")
        return makeUniform(params);
    if (upper == "STRIDE")
        return makeStride(params);
    if (upper == "HOTSPOT")
        return makeHotspot(params);
    fatal("unknown workload '", name, "'");
}

} // namespace vcoma
