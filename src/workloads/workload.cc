#include "workloads/workload.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/logging.hh"
#include "workloads/factories.hh"
#include "workloads/replay.hh"

namespace vcoma
{

namespace
{

std::string
upperCased(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return s;
}

/**
 * Apply one inline knob list ("skew=1.2,read=0.5,ws=2") to @p params.
 * Knob names are case-insensitive; unknown names and malformed
 * numbers are fatal so a typoed sweep never silently runs with the
 * defaults.
 */
void
applyKnobs(const std::string &spelling, const std::string &knobs,
           WorkloadParams &params)
{
    std::size_t at = 0;
    while (at < knobs.size()) {
        std::size_t end = knobs.find(',', at);
        if (end == std::string::npos)
            end = knobs.size();
        const std::string item = knobs.substr(at, end - at);
        at = end + 1;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == item.size()) {
            fatal("workload '", spelling, "': knob '", item,
                  "' is not of the form name=value");
        }
        const std::string key = upperCased(item.substr(0, eq));
        const std::string value = item.substr(eq + 1);
        char *rest = nullptr;
        const double v = std::strtod(value.c_str(), &rest);
        if (rest == value.c_str() || *rest != '\0') {
            fatal("workload '", spelling, "': knob '", item,
                  "' has a malformed number");
        }
        if (key == "SKEW") {
            if (v < 0)
                fatal("workload '", spelling, "': skew must be >= 0");
            params.skew = v;
        } else if (key == "READ") {
            if (v < 0 || v > 1) {
                fatal("workload '", spelling,
                      "': read ratio must be in [0, 1]");
            }
            params.readRatio = v;
        } else if (key == "WS") {
            if (v <= 0)
                fatal("workload '", spelling, "': ws must be > 0");
            params.workingSet = v;
        } else {
            fatal("workload '", spelling, "': unknown knob '",
                  item.substr(0, eq), "' (expected skew/read/ws)");
        }
    }
}

} // namespace

std::span<const MemRef>
Workload::stream(unsigned tid)
{
    fatal("workload '", name(), "' has no materialised stream for "
          "thread ", tid, " (materialised() is false)");
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names{
        "RADIX", "FFT", "FMM", "OCEAN", "RAYTRACE", "BARNES",
        "UNIFORM", "STRIDE", "HOTSPOT",
        "KVLOOKUP", "GRAPH", "STREAMJOIN",
    };
    return names;
}

bool
isTraceSpelling(const std::string &spelling)
{
    constexpr const char *prefix = "TRACE:";
    constexpr std::size_t len = 6;
    if (spelling.size() <= len)
        return false;
    for (std::size_t i = 0; i < len; ++i) {
        if (std::toupper(static_cast<unsigned char>(spelling[i])) !=
            prefix[i]) {
            return false;
        }
    }
    return true;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    // External packed traces are first-class workloads: the path is
    // taken verbatim (case preserved), the trace supplies the thread
    // count, name, parameters and footprint. A corrupt or truncated
    // file throws TraceFormatError from the ReplayWorkload ctor.
    if (isTraceSpelling(name))
        return std::make_unique<ReplayWorkload>(name.substr(6));

    std::string base = name;
    WorkloadParams effective = params;
    if (const std::size_t colon = name.find(':');
        colon != std::string::npos) {
        base = name.substr(0, colon);
        applyKnobs(name, name.substr(colon + 1), effective);
    }

    const std::string upper = upperCased(base);
    if (upper == "RADIX")
        return makeRadix(effective);
    if (upper == "FFT")
        return makeFft(effective);
    if (upper == "FMM")
        return makeFmm(effective);
    if (upper == "OCEAN")
        return makeOcean(effective);
    if (upper == "RAYTRACE")
        return makeRaytrace(effective);
    if (upper == "BARNES")
        return makeBarnes(effective);
    if (upper == "UNIFORM")
        return makeUniform(effective);
    if (upper == "STRIDE")
        return makeStride(effective);
    if (upper == "HOTSPOT")
        return makeHotspot(effective);
    if (upper == "KVLOOKUP")
        return makeKvLookup(effective);
    if (upper == "GRAPH")
        return makeGraph(effective);
    if (upper == "STREAMJOIN")
        return makeStreamJoin(effective);
    fatal("unknown workload '", name, "'");
}

} // namespace vcoma
