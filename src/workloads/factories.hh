/**
 * @file
 * Internal factory functions, one per workload translation unit.
 * External code uses makeWorkload() from workload.hh.
 */

#ifndef VCOMA_WORKLOADS_FACTORIES_HH
#define VCOMA_WORKLOADS_FACTORIES_HH

#include <memory>

#include "workloads/workload.hh"

namespace vcoma
{

std::unique_ptr<Workload> makeRadix(const WorkloadParams &params);
std::unique_ptr<Workload> makeFft(const WorkloadParams &params);
std::unique_ptr<Workload> makeFmm(const WorkloadParams &params);
std::unique_ptr<Workload> makeOcean(const WorkloadParams &params);
std::unique_ptr<Workload> makeRaytrace(const WorkloadParams &params);
std::unique_ptr<Workload> makeBarnes(const WorkloadParams &params);
std::unique_ptr<Workload> makeUniform(const WorkloadParams &params);
std::unique_ptr<Workload> makeStride(const WorkloadParams &params);
std::unique_ptr<Workload> makeHotspot(const WorkloadParams &params);
std::unique_ptr<Workload> makeKvLookup(const WorkloadParams &params);
std::unique_ptr<Workload> makeGraph(const WorkloadParams &params);
std::unique_ptr<Workload> makeStreamJoin(const WorkloadParams &params);

} // namespace vcoma

#endif // VCOMA_WORKLOADS_FACTORIES_HH
