/**
 * @file
 * FMM: the access pattern of the SPLASH-2 adaptive fast multipole
 * method, realised as a uniform 2D FMM over a quadtree of cells:
 * P2M on the leaves, M2M up the tree, M2L across each cell's
 * interaction list (the read-shared phase that dominates
 * communication), L2L back down, and L2P plus direct P2P among
 * neighbouring leaves.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/factories.hh"
#include "workloads/workload.hh"

namespace vcoma
{

namespace
{

/** One cell's multipole + local expansion image (256 bytes). */
struct ExpansionImage
{
    unsigned char bytes[256];
};

/** One particle record (64 bytes: position, velocity, field). */
struct ParticleImage
{
    unsigned char bytes[64];
};

class FmmWorkload : public Workload
{
  public:
    explicit FmmWorkload(const WorkloadParams &params)
        : params_(params),
          numParticles_(scaledParticles(params.scale)),
          levels_(6),
          timesteps_(2)
    {
        buildHost();
        particles_ = SharedArray<ParticleImage>(space_, "fmm.particles",
                                                numParticles_);
        cells_ = SharedArray<ExpansionImage>(space_, "fmm.cells",
                                             totalCells());
    }

    std::string name() const override { return "FMM"; }

    std::string
    parameters() const override
    {
        return std::to_string(numParticles_) + " particles";
    }

    unsigned numThreads() const override { return params_.threads; }
    const AddressSpace &space() const override { return space_; }

    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

  private:
    static std::uint64_t
    scaledParticles(double scale)
    {
        return std::max<std::uint64_t>(
            static_cast<std::uint64_t>(16384 * scale), 512);
    }

    /** Cells above level l (prefix offset into the cell array). */
    std::uint64_t
    levelOffset(unsigned l) const
    {
        std::uint64_t off = 0;
        for (unsigned i = 0; i < l; ++i)
            off += std::uint64_t{1} << (2 * i);
        return off;
    }

    std::uint64_t
    totalCells() const
    {
        return levelOffset(levels_);
    }

    /** Flat cell index of (l, gx, gy). */
    std::uint64_t
    cellIndex(unsigned l, unsigned gx, unsigned gy) const
    {
        const unsigned side = 1u << l;
        return levelOffset(l) + std::uint64_t{gy} * side + gx;
    }

    void
    buildHost()
    {
        Rng rng(params_.seed * 0x41c64e6dULL + 7);
        const unsigned leafLevel = levels_ - 1;
        const unsigned side = 1u << leafLevel;
        leafParticles_.assign(std::uint64_t{side} * side, {});
        for (std::uint64_t p = 0; p < numParticles_; ++p) {
            const double x = rng.uniform();
            const double y = rng.uniform();
            const unsigned gx =
                std::min<unsigned>(static_cast<unsigned>(x * side),
                                   side - 1);
            const unsigned gy =
                std::min<unsigned>(static_cast<unsigned>(y * side),
                                   side - 1);
            leafParticles_[std::uint64_t{gy} * side + gx].push_back(p);
        }

        // The real FMM sorts particles into their boxes; renumber so
        // that each leaf's particles are contiguous in the shared
        // particle array (box-major order).
        std::uint64_t next = 0;
        for (auto &leaf : leafParticles_) {
            for (auto &p : leaf)
                p = next++;
        }
    }

    /**
     * The 2D interaction list of cell (l, gx, gy): children of the
     * parent's neighbours that are not adjacent to the cell itself
     * (up to 27 cells).
     */
    void
    interactionList(unsigned l, unsigned gx, unsigned gy,
                    std::vector<std::uint64_t> &out) const
    {
        out.clear();
        if (l < 2)
            return;
        const int side = 1 << l;
        const int px = static_cast<int>(gx) / 2;
        const int py = static_cast<int>(gy) / 2;
        for (int ny = py - 1; ny <= py + 1; ++ny) {
            for (int nx = px - 1; nx <= px + 1; ++nx) {
                if (nx < 0 || ny < 0 || nx >= side / 2 || ny >= side / 2)
                    continue;
                for (unsigned q = 0; q < 4; ++q) {
                    const int cx = 2 * nx + static_cast<int>(q & 1);
                    const int cy = 2 * ny + static_cast<int>(q >> 1);
                    if (std::abs(cx - static_cast<int>(gx)) <= 1 &&
                        std::abs(cy - static_cast<int>(gy)) <= 1)
                        continue;  // adjacent: handled by P2P/L2L
                    out.push_back(cellIndex(l, cx, cy));
                }
            }
        }
    }

    Generator<MemRef>
    body(unsigned tid)
    {
        const unsigned P = params_.threads;
        const unsigned leafLevel = levels_ - 1;
        const unsigned side = 1u << leafLevel;
        const std::uint64_t numLeaves = std::uint64_t{side} * side;
        std::uint32_t bar = 0;
        std::vector<std::uint64_t> ilist;

        // Leaves are partitioned contiguously (row-major bands).
        auto leafRange = [&](std::uint64_t &lo, std::uint64_t &hi) {
            const std::uint64_t per = (numLeaves + P - 1) / P;
            lo = tid * per;
            hi = std::min(lo + per, numLeaves);
        };

        for (unsigned step = 0; step < timesteps_; ++step) {
            std::uint64_t lo, hi;
            leafRange(lo, hi);

            // P2M: leaf multipoles from their particles.
            for (std::uint64_t leaf = lo; leaf < hi; ++leaf) {
                for (std::uint64_t p : leafParticles_[leaf]) {
                    co_yield MemRef::read(particles_.addr(p), 2);
                    co_yield MemRef::read(particles_.addr(p) + 32, 2);
                }
                const VAddr ma =
                    cells_.addr(levelOffset(leafLevel) + leaf);
                for (unsigned term = 0; term < 4; ++term)
                    co_yield MemRef::write(ma + term * 64, 2);
            }
            co_yield MemRef::barrier(bar++);

            // M2M: upward, level by level.
            for (unsigned l = leafLevel; l-- > 0;) {
                const unsigned lside = 1u << l;
                const std::uint64_t cellsHere =
                    std::uint64_t{lside} * lside;
                const std::uint64_t per = (cellsHere + P - 1) / P;
                const std::uint64_t clo = tid * per;
                const std::uint64_t chi =
                    std::min(clo + per, cellsHere);
                for (std::uint64_t i = clo; i < chi; ++i) {
                    const unsigned gx =
                        static_cast<unsigned>(i % lside);
                    const unsigned gy =
                        static_cast<unsigned>(i / lside);
                    for (unsigned q = 0; q < 4; ++q) {
                        const unsigned cx = 2 * gx + (q & 1);
                        const unsigned cy = 2 * gy + (q >> 1);
                        const VAddr ca =
                            cells_.addr(cellIndex(l + 1, cx, cy));
                        for (unsigned term = 0; term < 4; ++term)
                            co_yield MemRef::read(ca + term * 64, 1);
                    }
                    const VAddr pa = cells_.addr(cellIndex(l, gx, gy));
                    for (unsigned term = 0; term < 4; ++term)
                        co_yield MemRef::write(pa + term * 64, 2);
                }
                co_yield MemRef::barrier(bar++);
            }

            // M2L: every level's interaction lists — the heavily
            // read-shared phase.
            for (unsigned l = 2; l <= leafLevel; ++l) {
                const unsigned lside = 1u << l;
                const std::uint64_t cellsHere =
                    std::uint64_t{lside} * lside;
                const std::uint64_t per = (cellsHere + P - 1) / P;
                const std::uint64_t clo = tid * per;
                const std::uint64_t chi =
                    std::min(clo + per, cellsHere);
                for (std::uint64_t i = clo; i < chi; ++i) {
                    const unsigned gx =
                        static_cast<unsigned>(i % lside);
                    const unsigned gy =
                        static_cast<unsigned>(i / lside);
                    interactionList(l, gx, gy, ilist);
                    const VAddr la = cells_.addr(cellIndex(l, gx, gy));
                    for (std::uint64_t cell : ilist) {
                        // A multipole-to-local translation reads the
                        // whole expansion and accumulates into the
                        // whole local expansion.
                        const VAddr ca = cells_.addr(cell);
                        for (unsigned term = 0; term < 4; ++term)
                            co_yield MemRef::read(ca + term * 64, 2);
                        for (unsigned term = 0; term < 4; ++term)
                            co_yield MemRef::write(la + term * 64, 1);
                    }
                }
                co_yield MemRef::barrier(bar++);
            }

            // L2L: downward.
            for (unsigned l = 1; l <= leafLevel; ++l) {
                const unsigned lside = 1u << l;
                const std::uint64_t cellsHere =
                    std::uint64_t{lside} * lside;
                const std::uint64_t per = (cellsHere + P - 1) / P;
                const std::uint64_t clo = tid * per;
                const std::uint64_t chi =
                    std::min(clo + per, cellsHere);
                for (std::uint64_t i = clo; i < chi; ++i) {
                    const unsigned gx =
                        static_cast<unsigned>(i % lside);
                    const unsigned gy =
                        static_cast<unsigned>(i / lside);
                    const VAddr pa =
                        cells_.addr(cellIndex(l - 1, gx / 2, gy / 2));
                    const VAddr ca = cells_.addr(cellIndex(l, gx, gy));
                    for (unsigned term = 0; term < 4; ++term)
                        co_yield MemRef::read(pa + term * 64, 1);
                    for (unsigned term = 0; term < 4; ++term)
                        co_yield MemRef::write(ca + term * 64, 1);
                }
                co_yield MemRef::barrier(bar++);
            }

            // L2P + P2P: evaluate at own particles and interact with
            // neighbouring leaves' particles directly.
            for (std::uint64_t leaf = lo; leaf < hi; ++leaf) {
                const unsigned gx = static_cast<unsigned>(leaf % side);
                const unsigned gy = static_cast<unsigned>(leaf / side);
                co_yield MemRef::read(
                    cells_.addr(levelOffset(leafLevel) + leaf), 3);
                for (int ny = static_cast<int>(gy) - 1;
                     ny <= static_cast<int>(gy) + 1; ++ny) {
                    for (int nx = static_cast<int>(gx) - 1;
                         nx <= static_cast<int>(gx) + 1; ++nx) {
                        if (nx < 0 || ny < 0 ||
                            nx >= static_cast<int>(side) ||
                            ny >= static_cast<int>(side))
                            continue;
                        const std::uint64_t nleaf =
                            std::uint64_t(ny) * side + nx;
                        for (std::uint64_t p : leafParticles_[nleaf]) {
                            co_yield MemRef::read(particles_.addr(p),
                                                  2);
                            co_yield MemRef::read(
                                particles_.addr(p) + 32, 2);
                        }
                    }
                }
                for (std::uint64_t p : leafParticles_[leaf]) {
                    co_yield MemRef::write(particles_.addr(p), 2);
                    co_yield MemRef::write(particles_.addr(p) + 32, 2);
                }
            }
            co_yield MemRef::barrier(bar++);
        }
    }

    WorkloadParams params_;
    std::uint64_t numParticles_;
    unsigned levels_;
    unsigned timesteps_;

    AddressSpace space_;
    SharedArray<ParticleImage> particles_;
    SharedArray<ExpansionImage> cells_;

    std::vector<std::vector<std::uint64_t>> leafParticles_;
};

} // namespace

std::unique_ptr<Workload>
makeFmm(const WorkloadParams &params)
{
    return std::make_unique<FmmWorkload>(params);
}

} // namespace vcoma
