#include "workloads/replay.hh"

#include "common/logging.hh"

namespace vcoma
{

ReplayWorkload::ReplayWorkload(const std::string &path) : trace_(path)
{
    // One synthetic segment reproducing the recorded footprint, so
    // sharedBytes() (and with it the stats sheet) matches the live
    // workload byte for byte.
    if (trace_.sharedBytes() > 0)
        space_.alloc("replay.recorded", trace_.sharedBytes(), 1);
}

Generator<MemRef>
ReplayWorkload::thread(unsigned tid)
{
    if (tid >= trace_.threads())
        fatal("replay: no thread ", tid, " (trace has ",
              trace_.threads(), ")");
    return replay(tid);
}

Generator<MemRef>
ReplayWorkload::replay(unsigned tid)
{
    for (const MemRef &ref : trace_.stream(tid))
        co_yield ref;
}

RecordingWorkload::RecordingWorkload(Workload &inner,
                                     const std::string &tracePath,
                                     const std::string &key)
    : inner_(inner),
      writer_(tracePath, inner.numThreads(), key, inner.name(),
              inner.parameters(), inner.sharedBytes()),
      recorded_(inner.numThreads(), false)
{
}

Generator<MemRef>
RecordingWorkload::thread(unsigned tid)
{
    if (tid >= recorded_.size())
        fatal("recording: no thread ", tid);
    if (recorded_[tid])
        fatal("recording: thread ", tid,
              " requested twice; a RecordingWorkload records exactly "
              "one run");
    recorded_[tid] = true;
    return tee(tid);
}

Generator<MemRef>
RecordingWorkload::tee(unsigned tid)
{
    // The inner generator lives in this coroutine's frame: destroying
    // the tee (even half-drained) destroys it exactly once.
    auto inner = inner_.thread(tid);
    while (const MemRef *ref = inner.nextPtr()) {
        writer_.append(tid, *ref);
        co_yield *ref;
    }
}

bool
RecordingWorkload::finalize()
{
    for (unsigned t = 0; t < recorded_.size(); ++t) {
        if (!recorded_[t]) {
            warn("trace recording dropped: thread ", t,
                 " was never run");
            return false;
        }
    }
    std::string error;
    if (!writer_.finalize(&error)) {
        warn("trace recording failed: ", error);
        return false;
    }
    return true;
}

} // namespace vcoma
