/**
 * @file
 * RADIX: the SPLASH-2 parallel radix sort kernel.
 *
 * Each pass histograms one digit of the keys, computes global rank
 * offsets with a tree-structured parallel prefix, then permutes every
 * key into a large shared output array distributed over all nodes —
 * the scattered permutation writes are the coherence traffic the
 * paper highlights ("a key is written into a large output array
 * shared and distributed among all nodes", Section 5.2). The sort is
 * executed for real over host data, so the emitted destinations are
 * the true ranks.
 */

#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/factories.hh"
#include "workloads/workload.hh"

namespace vcoma
{

namespace
{

class RadixWorkload : public Workload
{
  public:
    explicit RadixWorkload(const WorkloadParams &params)
        : params_(params),
          numKeys_(scaledKeys(params.scale)),
          radixBits_(11),
          maxKeyBits_(22),
          keys0_(space_, "radix.keys0", numKeys_),
          keys1_(space_, "radix.keys1", numKeys_),
          histogram_(space_, "radix.histogram",
                     std::uint64_t{params.threads} << radixBits_),
          offsets_(space_, "radix.offsets", std::uint64_t{1} << radixBits_)
    {
        if (numKeys_ % params.threads != 0)
            fatal("RADIX: keys (", numKeys_, ") not divisible by threads");
        // Host keys: uniform random in [0, 2^maxKeyBits).
        Rng rng(params.seed * 0x9e3779b9ULL + 17);
        host_[0].resize(numKeys_);
        host_[1].assign(numKeys_, 0);
        for (auto &k : host_[0])
            k = static_cast<std::uint32_t>(rng.below(
                std::uint64_t{1} << maxKeyBits_));
        const unsigned passes =
            (maxKeyBits_ + radixBits_ - 1) / radixBits_;
        passes_ = passes;
        hist_.assign(params.threads,
                     std::vector<std::uint32_t>(radix(), 0));
        nextFree_.assign(params.threads,
                         std::vector<std::uint32_t>(radix(), 0));
    }

    std::string name() const override { return "RADIX"; }

    std::string
    parameters() const override
    {
        return "-n" + std::to_string(numKeys_) + " -r" +
               std::to_string(radix()) + " -m" +
               std::to_string(std::uint64_t{1} << maxKeyBits_);
    }

    unsigned numThreads() const override { return params_.threads; }
    const AddressSpace &space() const override { return space_; }

    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

    /** Host view of the (sorted, after a run) keys — for tests. */
    const std::vector<std::uint32_t> &
    hostKeys() const
    {
        return host_[passes_ % 2];
    }

  private:
    static std::uint64_t
    scaledKeys(double scale)
    {
        auto n = static_cast<std::uint64_t>(262144 * scale);
        // Keep divisible by any power-of-two thread count up to 64.
        return std::max<std::uint64_t>(alignUp(n, 4096), 4096);
    }

    std::uint32_t radix() const { return 1u << radixBits_; }

    std::uint32_t
    digit(std::uint32_t key, unsigned pass) const
    {
        return (key >> (pass * radixBits_)) & (radix() - 1);
    }

    Generator<MemRef>
    body(unsigned tid)
    {
        const unsigned P = params_.threads;
        const std::uint64_t perProc = numKeys_ / P;
        const std::uint64_t lo = tid * perProc;
        const std::uint64_t hi = lo + perProc;
        std::uint32_t bar = 0;

        for (unsigned pass = 0; pass < passes_; ++pass) {
            const SharedArray<std::uint32_t> &src =
                (pass % 2 == 0) ? keys0_ : keys1_;
            const SharedArray<std::uint32_t> &dst =
                (pass % 2 == 0) ? keys1_ : keys0_;
            const std::vector<std::uint32_t> &hostSrc = host_[pass % 2];
            std::vector<std::uint32_t> &hostDst = host_[1 - pass % 2];

            // Phase 1: local histogram over this processor's keys.
            auto &myHist = hist_[tid];
            std::fill(myHist.begin(), myHist.end(), 0);
            for (std::uint64_t i = lo; i < hi; ++i) {
                ++myHist[digit(hostSrc[i], pass)];
                co_yield MemRef::read(src.addr(i), 2);
            }
            for (std::uint32_t b = 0; b < radix(); ++b) {
                co_yield MemRef::write(
                    histogram_.addr(std::uint64_t{tid} * radix() + b), 1);
            }
            co_yield MemRef::barrier(bar++);

            // Phase 2: tree-structured parallel reduction of the
            // histograms (the SPLASH-2 prefix tree), then processor 0
            // publishes the global bucket offsets.
            for (unsigned step = 1; step < P; step <<= 1) {
                if (tid % (2 * step) == 0 && tid + step < P) {
                    const unsigned partner = tid + step;
                    for (std::uint32_t b = 0; b < radix(); ++b) {
                        co_yield MemRef::read(
                            histogram_.addr(
                                std::uint64_t{partner} * radix() + b),
                            1);
                        co_yield MemRef::write(
                            histogram_.addr(
                                std::uint64_t{tid} * radix() + b),
                            1);
                    }
                }
                co_yield MemRef::barrier(bar++);
            }
            if (tid == 0) {
                for (std::uint32_t b = 0; b < radix(); ++b)
                    co_yield MemRef::write(offsets_.addr(b), 2);
            }
            co_yield MemRef::barrier(bar++);

            // Host-side exact ranks: start[p][b] = total keys in
            // buckets < b plus keys of bucket b at processors < p.
            {
                auto &mine = nextFree_[tid];
                std::uint32_t running = 0;
                for (std::uint32_t b = 0; b < radix(); ++b) {
                    std::uint32_t start = running;
                    for (unsigned p = 0; p < static_cast<unsigned>(tid);
                         ++p)
                        start += hist_[p][b];
                    mine[b] = start;
                    for (unsigned p = 0; p < P; ++p)
                        running += hist_[p][b];
                }
            }

            // Phase 3: permutation — every key is written to its
            // global rank in the shared output array.
            for (std::uint64_t i = lo; i < hi; ++i) {
                const std::uint32_t key = hostSrc[i];
                const std::uint32_t b = digit(key, pass);
                const std::uint32_t dest = nextFree_[tid][b]++;
                hostDst[dest] = key;
                co_yield MemRef::read(src.addr(i), 2);
                // Rank offsets are re-read as the permutation runs.
                co_yield MemRef::read(offsets_.addr(b), 1);
                co_yield MemRef::write(dst.addr(dest), 2);
            }
            co_yield MemRef::barrier(bar++);
        }

        // Check phase (as in the SPLASH-2 program): each processor
        // scans its slice of the sorted output; the run aborts if the
        // radix sort produced an unsorted array.
        const std::vector<std::uint32_t> &result = host_[passes_ % 2];
        for (std::uint64_t i = lo; i < hi; ++i) {
            if (i > 0 && result[i - 1] > result[i])
                panic("RADIX: output not sorted at index ", i);
            co_yield MemRef::read(
                ((passes_ % 2 == 0) ? keys0_ : keys1_).addr(i), 1);
        }
        co_yield MemRef::barrier(bar++);
    }

    WorkloadParams params_;
    std::uint64_t numKeys_;
    unsigned radixBits_;
    unsigned maxKeyBits_;
    unsigned passes_ = 0;

    AddressSpace space_;
    SharedArray<std::uint32_t> keys0_;
    SharedArray<std::uint32_t> keys1_;
    SharedArray<std::uint32_t> histogram_;
    SharedArray<std::uint32_t> offsets_;

    std::vector<std::uint32_t> host_[2];
    std::vector<std::vector<std::uint32_t>> hist_;
    std::vector<std::vector<std::uint32_t>> nextFree_;
};

} // namespace

std::unique_ptr<Workload>
makeRadix(const WorkloadParams &params)
{
    return std::make_unique<RadixWorkload>(params);
}

} // namespace vcoma
