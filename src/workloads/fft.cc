/**
 * @file
 * FFT: the SPLASH-2 radix-sqrt(n) six-step 1D FFT.
 *
 * The n complex points live in a sqrt(n) x sqrt(n) matrix partitioned
 * by rows; the algorithm alternates all-to-all transposes (each
 * processor reads a column block owned by every other processor) with
 * local 1D FFTs over its own rows and a twiddle-factor multiply
 * against the shared, read-only roots-of-unity array. The transposes
 * generate the bulk writes whose later write-backs hurt the L2-TLB
 * (Figure 8's write-back effect).
 */

#include <string>

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "workloads/factories.hh"
#include "workloads/workload.hh"

namespace vcoma
{

namespace
{

/** One complex double (re, im) = 16 bytes. */
struct Complex
{
    double re;
    double im;
};

class FftWorkload : public Workload
{
  public:
    explicit FftWorkload(const WorkloadParams &params)
        : params_(params),
          m_(scaledLogPoints(params.scale)),
          dim_(std::uint64_t{1} << (m_ / 2)),
          x_(space_, "fft.x", dim_ * dim_),
          trans_(space_, "fft.trans", dim_ * dim_),
          umain_(space_, "fft.umain", dim_)
    {
        if (m_ % 2 != 0)
            fatal("FFT: -m must be even (square matrix)");
        if (dim_ % params.threads != 0)
            fatal("FFT: matrix rows (", dim_,
                  ") not divisible by threads (", params.threads, ")");
    }

    std::string name() const override { return "FFT"; }

    std::string
    parameters() const override
    {
        return "-m" + std::to_string(m_) + " -t";
    }

    unsigned numThreads() const override { return params_.threads; }
    const AddressSpace &space() const override { return space_; }

    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

  private:
    static unsigned
    scaledLogPoints(double scale)
    {
        // scale 1 -> 2^16 points; every 4x of scale adds 2 to m.
        unsigned m = 16;
        double s = scale;
        while (s >= 4.0) {
            m += 2;
            s /= 4.0;
        }
        while (s <= 0.25 && m > 10) {
            m -= 2;
            s *= 4.0;
        }
        return m;
    }

    VAddr
    xAddr(std::uint64_t row, std::uint64_t col) const
    {
        return x_.addr(row * dim_ + col);
    }

    VAddr
    tAddr(std::uint64_t row, std::uint64_t col) const
    {
        return trans_.addr(row * dim_ + col);
    }

    /**
     * Blocked transpose of @p src into @p dst, emitting this thread's
     * share: it produces its own destination rows, reading the
     * source column-wise across every other processor's partition.
     */
    Generator<MemRef>
    body(unsigned tid)
    {
        const unsigned P = params_.threads;
        const std::uint64_t rowsPerProc = dim_ / P;
        const std::uint64_t lo = tid * rowsPerProc;
        const std::uint64_t hi = lo + rowsPerProc;
        constexpr std::uint64_t blockFactor = 8;
        std::uint32_t bar = 0;

        // Step 1: transpose x -> trans (blocked, as in SPLASH-2:
        // BxB tiles keep the strided side's pages resident).
        for (std::uint64_t rb = lo; rb < hi; rb += blockFactor) {
            for (std::uint64_t cb = 0; cb < dim_; cb += blockFactor) {
                for (std::uint64_t r = rb;
                     r < std::min(rb + blockFactor, hi); ++r) {
                    for (std::uint64_t c = cb;
                         c < std::min(cb + blockFactor, dim_); ++c) {
                        co_yield MemRef::read(xAddr(c, r), 1);
                        co_yield MemRef::read(xAddr(c, r) + 8, 1);
                        co_yield MemRef::write(tAddr(r, c), 1);
                        co_yield MemRef::write(tAddr(r, c) + 8, 1);
                    }
                }
            }
        }
        co_yield MemRef::barrier(bar++);

        // Step 2: 1D FFTs over this processor's rows of trans.
        const unsigned logDim = floorLog2(dim_);
        for (std::uint64_t r = lo; r < hi; ++r) {
            for (unsigned pass = 0; pass < logDim; ++pass) {
                for (std::uint64_t c = 0; c < dim_; c += 2) {
                    co_yield MemRef::read(tAddr(r, c), 3);
                    co_yield MemRef::read(tAddr(r, c + 1), 3);
                    co_yield MemRef::write(tAddr(r, c), 3);
                    co_yield MemRef::write(tAddr(r, c + 1), 3);
                }
            }
        }

        // Step 3: twiddle multiply against the shared roots array.
        for (std::uint64_t r = lo; r < hi; ++r) {
            for (std::uint64_t c = 0; c < dim_; ++c) {
                co_yield MemRef::read(umain_.addr(c), 2);
                co_yield MemRef::read(tAddr(r, c), 2);
                co_yield MemRef::write(tAddr(r, c), 2);
            }
        }
        co_yield MemRef::barrier(bar++);

        // Step 4: transpose trans -> x (blocked).
        for (std::uint64_t rb = lo; rb < hi; rb += blockFactor) {
            for (std::uint64_t cb = 0; cb < dim_; cb += blockFactor) {
                for (std::uint64_t r = rb;
                     r < std::min(rb + blockFactor, hi); ++r) {
                    for (std::uint64_t c = cb;
                         c < std::min(cb + blockFactor, dim_); ++c) {
                        co_yield MemRef::read(tAddr(c, r), 1);
                        co_yield MemRef::read(tAddr(c, r) + 8, 1);
                        co_yield MemRef::write(xAddr(r, c), 1);
                        co_yield MemRef::write(xAddr(r, c) + 8, 1);
                    }
                }
            }
        }
        co_yield MemRef::barrier(bar++);

        // Step 5: second round of row FFTs, on x.
        for (std::uint64_t r = lo; r < hi; ++r) {
            for (unsigned pass = 0; pass < logDim; ++pass) {
                for (std::uint64_t c = 0; c < dim_; c += 2) {
                    co_yield MemRef::read(xAddr(r, c), 3);
                    co_yield MemRef::read(xAddr(r, c + 1), 3);
                    co_yield MemRef::write(xAddr(r, c), 3);
                    co_yield MemRef::write(xAddr(r, c + 1), 3);
                }
            }
        }
        co_yield MemRef::barrier(bar++);

        // Step 6: final transpose x -> trans (blocked).
        for (std::uint64_t rb = lo; rb < hi; rb += blockFactor) {
            for (std::uint64_t cb = 0; cb < dim_; cb += blockFactor) {
                for (std::uint64_t r = rb;
                     r < std::min(rb + blockFactor, hi); ++r) {
                    for (std::uint64_t c = cb;
                         c < std::min(cb + blockFactor, dim_); ++c) {
                        co_yield MemRef::read(xAddr(c, r), 1);
                        co_yield MemRef::read(xAddr(c, r) + 8, 1);
                        co_yield MemRef::write(tAddr(r, c), 1);
                        co_yield MemRef::write(tAddr(r, c) + 8, 1);
                    }
                }
            }
        }
        co_yield MemRef::barrier(bar++);
    }

    WorkloadParams params_;
    unsigned m_;
    std::uint64_t dim_;
    AddressSpace space_;
    SharedArray<Complex> x_;
    SharedArray<Complex> trans_;
    SharedArray<Complex> umain_;
};

} // namespace

std::unique_ptr<Workload>
makeFft(const WorkloadParams &params)
{
    return std::make_unique<FftWorkload>(params);
}

} // namespace vcoma
