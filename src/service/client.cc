#include "service/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "service/wire.hh"

namespace vcoma
{

ServiceClient::ServiceClient(const std::string &socketPath, int timeoutMs)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        fatal("socket path '", socketPath, "' exceeds the ",
              sizeof(addr.sun_path) - 1, "-byte AF_UNIX limit");
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeoutMs);
    int lastErr = 0;
    for (;;) {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            fatal("cannot create socket: ", std::strerror(errno));
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return;
        lastErr = errno;
        ::close(fd_);
        fd_ = -1;
        if (std::chrono::steady_clock::now() >= deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    fatal("cannot connect to '", socketPath,
          "': ", std::strerror(lastErr));
}

ServiceClient::~ServiceClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ServiceClient::sendAll(const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t sent = ::send(fd_, data.data() + off,
                                    data.size() - off, MSG_NOSIGNAL);
        if (sent <= 0)
            fatal("service connection lost while sending: ",
                  std::strerror(errno));
        off += static_cast<std::size_t>(sent);
    }
}

std::string
ServiceClient::recvLine()
{
    for (;;) {
        const std::size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            std::string line = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            return line;
        }
        char chunk[4096];
        const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (got <= 0)
            fatal("service connection closed mid-reply");
        pending_.append(chunk, static_cast<std::size_t>(got));
    }
}

std::string
ServiceClient::request(const std::string &line)
{
    sendAll(line + "\n");
    return recvLine();
}

bool
ServiceClient::ping()
{
    const JsonValue v = JsonValue::parse(request("{\"op\":\"ping\"}"));
    const JsonValue *pong = v.find("pong");
    return pong && pong->isBool() && pong->asBool();
}

ServiceClient::Outcome
ServiceClient::outcomeFromReply(const JsonValue &v)
{
    Outcome out;
    const JsonValue *ok = v.find("ok");
    out.ok = ok && ok->isBool() && ok->asBool();
    if (const JsonValue *shed = v.find("shed"))
        out.shed = shed->isBool() && shed->asBool();
    if (const JsonValue *cached = v.find("cached"))
        out.cached = cached->isBool() && cached->asBool();
    if (out.ok) {
        const JsonValue *stats = v.find("stats");
        if (!stats || !stats->isString())
            throw WireError("ok reply without a stats string");
        out.statsJson = stats->asString();
    } else if (const JsonValue *err = v.find("error")) {
        out.error = err->isString() ? err->asString()
                                    : "malformed error reply";
    } else {
        out.error = "malformed reply";
    }
    return out;
}

ServiceClient::Outcome
ServiceClient::run(const ExperimentConfig &cfg, int priority,
                   std::uint64_t deadlineMs)
{
    std::ostringstream os;
    os << "{\"op\":\"run\",\"priority\":" << priority
       << ",\"deadlineMs\":" << deadlineMs << ",\"config\":";
    writeConfigJson(os, cfg);
    os << "}";
    return outcomeFromReply(JsonValue::parse(request(os.str())));
}

std::vector<ServiceClient::Outcome>
ServiceClient::batch(std::span<const ExperimentConfig> cfgs,
                     int priority, std::uint64_t deadlineMs)
{
    std::ostringstream os;
    os << "{\"op\":\"batch\",\"priority\":" << priority
       << ",\"deadlineMs\":" << deadlineMs << ",\"configs\":[";
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        if (i)
            os << ",";
        writeConfigJson(os, cfgs[i]);
    }
    os << "]}";
    const JsonValue v = JsonValue::parse(request(os.str()));
    const JsonValue *ok = v.find("ok");
    if (!ok || !ok->isBool() || !ok->asBool()) {
        const JsonValue *err = v.find("error");
        fatal("batch rejected: ",
              err && err->isString() ? err->asString() : "unknown");
    }
    const JsonValue &results = v.at("results");
    std::vector<Outcome> out;
    out.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        out.push_back(outcomeFromReply(results.at(i)));
    return out;
}

std::string
ServiceClient::statsLine()
{
    return request("{\"op\":\"stats\"}");
}

bool
ServiceClient::shutdown()
{
    const JsonValue v =
        JsonValue::parse(request("{\"op\":\"shutdown\"}"));
    const JsonValue *ok = v.find("ok");
    return ok && ok->isBool() && ok->asBool();
}

} // namespace vcoma
