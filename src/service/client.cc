#include "service/client.hh"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "service/wire.hh"

namespace vcoma
{

namespace
{

std::uint64_t
envCount(const char *name, std::uint64_t fallback)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') {
        warn(name, "='", s, "' is not a number; using ", fallback);
        return fallback;
    }
    return v;
}

} // namespace

ClientOptions
ServiceClient::optionsFromEnv()
{
    ClientOptions opts;
    opts.requestTimeoutMs = static_cast<int>(envCount(
        "VCOMA_REQUEST_TIMEOUT_MS",
        static_cast<std::uint64_t>(opts.requestTimeoutMs)));
    opts.maxRetries = static_cast<unsigned>(
        envCount("VCOMA_RETRY_MAX", opts.maxRetries));
    opts.backoffBaseMs =
        envCount("VCOMA_RETRY_BASE_MS", opts.backoffBaseMs);
    opts.backoffCapMs =
        envCount("VCOMA_RETRY_CAP_MS", opts.backoffCapMs);
    opts.jitterSeed =
        envCount("VCOMA_RETRY_JITTER_SEED", opts.jitterSeed);
    return opts;
}

std::uint64_t
ServiceClient::backoffDelayMs(unsigned attempt, std::uint64_t baseMs,
                              std::uint64_t capMs, Rng &rng)
{
    std::uint64_t d = capMs;
    if (attempt < 63) {
        const std::uint64_t shifted = baseMs << attempt;
        // A zero base short-circuits; detect shift overflow by
        // reversing it.
        if (baseMs == 0)
            d = 0;
        else if ((shifted >> attempt) == baseMs && shifted < capMs)
            d = shifted;
    }
    if (d == 0)
        return 0;
    // Uniform in [d/2, d]: enough spread to de-synchronise a fleet
    // of retrying clients, bounded so tests can pin the schedule.
    const std::uint64_t lo = d / 2;
    return lo + rng.below(d - lo + 1);
}

ServiceClient::ServiceClient(const std::string &endpoint,
                             ClientOptions opts)
    : ep_(parseEndpoint(endpoint)), opts_(opts),
      jitter_(opts.jitterSeed)
{
    ignoreSigpipe();
    connectOrThrow();
}

ServiceClient::ServiceClient(const std::string &endpoint,
                             int connectTimeoutMs)
    : ServiceClient(endpoint, [&] {
          ClientOptions opts = optionsFromEnv();
          opts.connectTimeoutMs = connectTimeoutMs;
          return opts;
      }())
{
}

ServiceClient::~ServiceClient()
{
    disconnect();
}

void
ServiceClient::connectOrThrow()
{
    disconnect();
    std::string error;
    fd_ = tryConnectEndpoint(ep_, opts_.connectTimeoutMs, &error);
    if (fd_ < 0)
        fatal(error);
    setIoDeadlines(fd_, opts_.requestTimeoutMs, opts_.requestTimeoutMs);
    pending_.clear();
    broken_ = false;
}

void
ServiceClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
    broken_ = true;
}

void
ServiceClient::sendAll(const std::string &data)
{
    switch (vcoma::sendAll(fd_, data)) {
      case IoStatus::Ok:
        return;
      case IoStatus::TimedOut:
        broken_ = true;
        throw ServiceTimeout("request timed out while sending to '" +
                             ep_.str() + "'");
      case IoStatus::Closed:
        broken_ = true;
        throw ServiceIoError("service connection to '" + ep_.str() +
                             "' lost while sending");
      case IoStatus::Error:
        broken_ = true;
        throw ServiceIoError("send to '" + ep_.str() +
                             "' failed: " + std::strerror(errno));
    }
}

std::string
ServiceClient::recvLine()
{
    for (;;) {
        const std::size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            if (nl > opts_.maxLineBytes) {
                broken_ = true;
                throw ServiceIoError(
                    "reply line from '" + ep_.str() + "' exceeds " +
                    std::to_string(opts_.maxLineBytes) + " bytes");
            }
            std::string line = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            return line;
        }
        if (pending_.size() > opts_.maxLineBytes) {
            broken_ = true;
            throw ServiceIoError(
                "reply line from '" + ep_.str() + "' exceeds " +
                std::to_string(opts_.maxLineBytes) + " bytes");
        }
        switch (recvSome(fd_, pending_)) {
          case IoStatus::Ok:
            break;
          case IoStatus::TimedOut:
            broken_ = true;
            throw ServiceTimeout(
                "request to '" + ep_.str() + "' timed out after " +
                std::to_string(opts_.requestTimeoutMs) + " ms");
          case IoStatus::Closed:
          case IoStatus::Error:
            broken_ = true;
            throw ServiceIoError("service connection to '" +
                                 ep_.str() + "' closed mid-reply");
        }
    }
}

std::string
ServiceClient::request(const std::string &line)
{
    // A previous timeout leaves the stream desynchronised (the stale
    // reply may still arrive); start from a fresh connection.
    if (broken_ || fd_ < 0)
        connectOrThrow();
    sendAll(line + "\n");
    return recvLine();
}

std::string
ServiceClient::requestWithRetry(const std::string &line)
{
    std::exception_ptr last;
    for (unsigned attempt = 0; attempt <= opts_.maxRetries;
         ++attempt) {
        if (attempt) {
            const std::uint64_t stall = backoffDelayMs(
                attempt - 1, opts_.backoffBaseMs, opts_.backoffCapMs,
                jitter_);
            if (stall)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(stall));
        }
        try {
            return request(line);
        } catch (const ServiceIoError &) {
            last = std::current_exception();
        } catch (const FatalError &) {
            // Reconnect failed (daemon restarting); keep trying.
            last = std::current_exception();
        }
        disconnect();
    }
    std::rethrow_exception(last);
}

bool
ServiceClient::ping()
{
    const JsonValue v = JsonValue::parse(request("{\"op\":\"ping\"}"));
    const JsonValue *pong = v.find("pong");
    return pong && pong->isBool() && pong->asBool();
}

ServiceClient::Outcome
ServiceClient::outcomeFromReply(const JsonValue &v)
{
    Outcome out;
    const JsonValue *ok = v.find("ok");
    out.ok = ok && ok->isBool() && ok->asBool();
    if (const JsonValue *shed = v.find("shed"))
        out.shed = shed->isBool() && shed->asBool();
    if (const JsonValue *cached = v.find("cached"))
        out.cached = cached->isBool() && cached->asBool();
    if (out.ok) {
        const JsonValue *stats = v.find("stats");
        if (!stats || !stats->isString())
            throw WireError("ok reply without a stats string");
        out.statsJson = stats->asString();
    } else if (const JsonValue *err = v.find("error")) {
        out.error = err->isString() ? err->asString()
                                    : "malformed error reply";
    } else {
        out.error = "malformed reply";
    }
    return out;
}

std::string
ServiceClient::runRequestLine(const ExperimentConfig &cfg,
                              int priority, std::uint64_t deadlineMs)
{
    std::ostringstream os;
    os << "{\"op\":\"run\",\"priority\":" << priority
       << ",\"deadlineMs\":" << deadlineMs << ",\"config\":";
    writeConfigJson(os, cfg);
    os << "}";
    return os.str();
}

ServiceClient::Outcome
ServiceClient::run(const ExperimentConfig &cfg, int priority,
                   std::uint64_t deadlineMs)
{
    try {
        return outcomeFromReply(JsonValue::parse(
            request(runRequestLine(cfg, priority, deadlineMs))));
    } catch (const ServiceTimeout &e) {
        Outcome out;
        out.timedOut = true;
        out.error = e.what();
        return out;
    } catch (const ServiceIoError &e) {
        Outcome out;
        out.error = e.what();
        return out;
    }
}

ServiceClient::Outcome
ServiceClient::runResilient(const ExperimentConfig &cfg, int priority,
                            std::uint64_t deadlineMs)
{
    try {
        return outcomeFromReply(JsonValue::parse(requestWithRetry(
            runRequestLine(cfg, priority, deadlineMs))));
    } catch (const ServiceTimeout &e) {
        Outcome out;
        out.timedOut = true;
        out.error = e.what();
        return out;
    } catch (const std::exception &e) {
        // ServiceIoError or a reconnect FatalError: every attempt
        // failed; surface the last error as a typed outcome.
        Outcome out;
        out.error = e.what();
        return out;
    }
}

std::vector<ServiceClient::Outcome>
ServiceClient::batch(std::span<const ExperimentConfig> cfgs,
                     int priority, std::uint64_t deadlineMs)
{
    std::ostringstream os;
    os << "{\"op\":\"batch\",\"priority\":" << priority
       << ",\"deadlineMs\":" << deadlineMs << ",\"configs\":[";
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        if (i)
            os << ",";
        writeConfigJson(os, cfgs[i]);
    }
    os << "]}";
    const JsonValue v = JsonValue::parse(request(os.str()));
    const JsonValue *ok = v.find("ok");
    if (!ok || !ok->isBool() || !ok->asBool()) {
        const JsonValue *err = v.find("error");
        fatal("batch rejected: ",
              err && err->isString() ? err->asString() : "unknown");
    }
    const JsonValue &results = v.at("results");
    std::vector<Outcome> out;
    out.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        out.push_back(outcomeFromReply(results.at(i)));
    return out;
}

std::string
ServiceClient::statsLine()
{
    return request("{\"op\":\"stats\"}");
}

bool
ServiceClient::shutdown()
{
    const JsonValue v =
        JsonValue::parse(request("{\"op\":\"shutdown\"}"));
    const JsonValue *ok = v.find("ok");
    return ok && ok->isBool() && ok->asBool();
}

} // namespace vcoma
