#include "service/scheduler.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/logging.hh"
#include "common/types.hh"

namespace vcoma
{

namespace
{

/** Ring size for the percentile estimates: recent-window quantiles. */
constexpr std::size_t latencyWindow = 4096;

/** Nearest-rank percentile of an unsorted sample copy. */
double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const std::size_t rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(samples.size()))));
    return samples[rank - 1];
}

} // namespace

void
writeSchedulerStatsJson(std::ostream &os, const SchedulerStats &s)
{
    os << "{\"schema\":1"
       << ",\"queueDepth\":" << s.queueDepth
       << ",\"queueCapacity\":" << s.queueCapacity
       << ",\"workers\":" << s.workers
       << ",\"jobsSubmitted\":" << s.submitted
       << ",\"jobsServed\":" << s.served
       << ",\"jobsFailed\":" << s.failed
       << ",\"jobsShed\":" << s.shed()
       << ",\"shedQueueFull\":" << s.shedQueueFull
       << ",\"shedDeadline\":" << s.shedDeadline
       << ",\"jobsCancelled\":" << s.cancelled
       << ",\"dedupJoins\":" << s.dedupJoins
       << ",\"cacheHits\":" << s.cacheHits
       << ",\"simulationsExecuted\":" << s.executed
       << ",\"latencyMs\":{\"count\":" << s.latencyMs.count
       << ",\"sum\":" << s.latencyMs.sum
       << ",\"min\":" << s.latencyMs.min
       << ",\"max\":" << s.latencyMs.max
       << ",\"mean\":" << s.latencyMs.mean()
       << ",\"p50\":" << s.latencyP50Ms
       << ",\"p90\":" << s.latencyP90Ms
       << ",\"p99\":" << s.latencyP99Ms << "}}";
}

Scheduler::Scheduler(Runner &runner, std::size_t capacity,
                     unsigned workers)
    : runner_(runner), capacity_(capacity)
{
    const unsigned n = workers ? workers : Runner::envJobs();
    workers_.reserve(std::max(1u, n));
    for (unsigned i = 0; i < std::max(1u, n); ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Scheduler::~Scheduler()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

std::uint64_t
Scheduler::nowMs()
{
    using namespace std::chrono;
    return static_cast<std::uint64_t>(
        duration_cast<milliseconds>(
            steady_clock::now().time_since_epoch())
            .count());
}

Scheduler::Submission
Scheduler::submit(const JobRequest &req)
{
    Submission out;
    const std::string key = req.config.key();
    std::lock_guard<std::mutex> lock(mutex_);

    if (draining_) {
        ++shedQueueFull_;
        out.rejection = "service is draining";
        return out;
    }

    // Dedup first: joining an in-flight run costs no queue slot, so a
    // popular config can always fan out even through a full queue.
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
        ++dedupJoins_;
        out.future = it->second->future;
        out.deduplicated = true;
        return out;
    }

    if (queue_.size() >= capacity_) {
        ++shedQueueFull_;
        out.rejection = detail::concat(
            "queue full: depth ", queue_.size(), " >= capacity ",
            capacity_);
        return out;
    }

    auto job = std::make_shared<Job>();
    job->req = req;
    job->key = key;
    job->seq = nextSeq_++;
    job->submitMs = nowMs();
    job->deadlineAtMs =
        req.deadlineMs
            ? saturatingAdd(job->submitMs, req.deadlineMs)
            : std::numeric_limits<std::uint64_t>::max();
    job->future = job->promise.get_future().share();
    queue_.push_back(job);
    inflight_.emplace(key, job);
    ++submitted_;
    out.future = job->future;
    workCv_.notify_one();
    return out;
}

std::shared_ptr<Scheduler::Job>
Scheduler::popLocked()
{
    // Highest priority first, FIFO within a priority. The queue is
    // admission-bounded, so a linear scan is cheaper than keeping an
    // ordered structure coherent with cancellation.
    auto best = queue_.begin();
    for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
        if ((*it)->req.priority > (*best)->req.priority ||
            ((*it)->req.priority == (*best)->req.priority &&
             (*it)->seq < (*best)->seq))
            best = it;
    }
    std::shared_ptr<Job> job = *best;
    queue_.erase(best);
    return job;
}

void
Scheduler::resolve(const std::shared_ptr<Job> &job, JobResult result)
{
    // Latency covers admitted jobs that reached a verdict through a
    // worker (Done/Failed); shed and cancelled jobs never ran.
    if (result.status == JobStatus::Done ||
        result.status == JobStatus::Failed) {
        const double ms = static_cast<double>(nowMs() - job->submitMs);
        latencyMs_.sample(ms);
        if (latencyRing_.size() < latencyWindow) {
            latencyRing_.push_back(ms);
        } else {
            latencyRing_[latencyRingNext_] = ms;
            latencyRingNext_ = (latencyRingNext_ + 1) % latencyWindow;
        }
    }
    switch (result.status) {
      case JobStatus::Done:
        ++served_;
        if (result.cached)
            ++cacheHits_;
        break;
      case JobStatus::Failed: ++failed_; break;
      case JobStatus::Shed: ++shedDeadline_; break;
      case JobStatus::Cancelled: ++cancelled_; break;
    }
    inflight_.erase(job->key);
    job->promise.set_value(std::move(result));
}

void
Scheduler::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock, [this] {
            return stopping_ || !queue_.empty();
        });
        if (stopping_ && queue_.empty())
            return;
        std::shared_ptr<Job> job = popLocked();

        if (job->cancelled) {
            JobResult r;
            r.status = JobStatus::Cancelled;
            r.error = "cancelled while queued";
            resolve(job, std::move(r));
            idleCv_.notify_all();
            continue;
        }
        if (nowMs() > job->deadlineAtMs) {
            JobResult r;
            r.status = JobStatus::Shed;
            r.error = detail::concat(
                "deadline of ", job->req.deadlineMs,
                " ms passed while queued");
            resolve(job, std::move(r));
            idleCv_.notify_all();
            continue;
        }

        ++executing_;
        lock.unlock();
        bool fresh = false;
        const RunStats *stats =
            runner_.tryRun(job->req.config, &fresh);
        JobResult r;
        if (stats) {
            r.status = JobStatus::Done;
            r.stats = stats;
            r.cached = !fresh;
        } else {
            r.status = JobStatus::Failed;
            r.error = runner_.failureMessage(job->key);
            if (r.error.empty())
                r.error = "simulation failed";
        }
        lock.lock();
        --executing_;
        resolve(job, std::move(r));
        idleCv_.notify_all();
    }
}

unsigned
Scheduler::cancel(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    unsigned n = 0;
    for (const auto &job : queue_) {
        if (job->key == key && !job->cancelled) {
            job->cancelled = true;
            ++n;
        }
    }
    // The workers resolve cancelled jobs as they pop them; waking one
    // per cancellation keeps the futures from lingering until the
    // next real job arrives.
    if (n)
        workCv_.notify_all();
    return n;
}

void
Scheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    idleCv_.wait(lock, [this] {
        return queue_.empty() && executing_ == 0;
    });
}

std::size_t
Scheduler::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

SchedulerStats
Scheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    SchedulerStats s;
    s.queueDepth = queue_.size();
    s.queueCapacity = capacity_;
    s.workers = static_cast<unsigned>(workers_.size());
    s.submitted = submitted_;
    s.served = served_;
    s.failed = failed_;
    s.shedQueueFull = shedQueueFull_;
    s.shedDeadline = shedDeadline_;
    s.cancelled = cancelled_;
    s.dedupJoins = dedupJoins_;
    s.cacheHits = cacheHits_;
    s.executed = runner_.executed();
    s.latencyMs = DistSummary::of(latencyMs_);
    s.latencyP50Ms = percentile(latencyRing_, 0.50);
    s.latencyP90Ms = percentile(latencyRing_, 0.90);
    s.latencyP99Ms = percentile(latencyRing_, 0.99);
    return s;
}

} // namespace vcoma
