/**
 * @file
 * The service's listeners.
 *
 * LineServer is the transport skeleton shared by the worker daemon
 * and the farm router: it binds an endpoint (AF_UNIX path or
 * "tcp:host:port"), accepts connections with one handler thread
 * each, frames newline-delimited requests through a bounded
 * LineBuffer (an oversized frame gets an explicit protocol error,
 * never an unbounded buffer), arms per-request send deadlines so a
 * hung peer cannot pin a handler, drops a connection whose peer
 * stalls mid-line past the I/O deadline, and optionally runs a
 * ChaosMonkey that drops connections, delays requests, or SIGKILLs
 * the process (worker chaos testing). Derived classes supply
 * handleRequestLine().
 *
 * ServiceServer is the vcoma_served worker: every request funnels
 * into one shared Scheduler/Runner pair so the in-memory and on-disk
 * result caches stay warm across clients.
 *
 * Lifecycle: construct, start(), then either waitUntilStopped() (the
 * daemon's main thread parks here) or destroy. A {"op":"shutdown"}
 * request or requestStop() — callable from a signal handler's flag
 * poller — stops accepting, drains (via onDrain()) and unblocks
 * waitUntilStopped(). Derived destructors must call stopAndJoin()
 * first so no handler thread can call a torn-down override.
 */

#ifndef VCOMA_SERVICE_SERVER_HH
#define VCOMA_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/chaos.hh"
#include "service/scheduler.hh"
#include "service/transport.hh"

namespace vcoma
{

/** Transport knobs shared by every line-protocol listener. */
struct ListenerConfig
{
    /** AF_UNIX path or "tcp:host:port" (port 0 = kernel-assigned). */
    std::string endpoint = "vcoma.sock";
    /** Reject request frames longer than this (malformed peer). */
    std::size_t maxLineBytes = 1 << 20;
    /**
     * Per-request I/O deadline: bounds a blocked send() to a hung
     * peer and a request line stalled half-sent. 0 = none.
     */
    int ioTimeoutMs = 30000;
    /** Service-tier chaos injection; default off. */
    ChaosSpec chaos;
};

class LineServer
{
  public:
    explicit LineServer(ListenerConfig lcfg);
    virtual ~LineServer();

    LineServer(const LineServer &) = delete;
    LineServer &operator=(const LineServer &) = delete;

    /**
     * Bind the endpoint, listen, and spawn the accept loop. Throws
     * FatalError on bind failure.
     */
    void start();

    /** Begin graceful shutdown: stop accepting, drain, unpark. */
    void requestStop();

    /** Park until requestStop() (or a shutdown request) completes. */
    void waitUntilStopped();

    bool stopped() const { return stopped_.load(); }

    /**
     * The endpoint actually bound — a TCP port-0 listen resolves to
     * the kernel's choice. Valid after start().
     */
    std::string boundEndpoint() const { return bound_; }

    const ListenerConfig &listenerConfig() const { return lcfg_; }

    /**
     * Handle one request line, returning the reply line (without the
     * trailing newline). Public so tests can drive the protocol
     * without a socket.
     */
    virtual std::string handleRequestLine(const std::string &line) = 0;

  protected:
    /** Called once during requestStop(), before unparking waiters. */
    virtual void onDrain() {}

    /**
     * For a shutdown op: reply first, stop from a separate thread so
     * the connection handler is not joined from inside itself. The
     * thread is kept joinable — waitUntilStopped() joins it, so it
     * can never outlive the server and touch freed members.
     */
    void stopAsyncFromHandler();

    /**
     * requestStop() + waitUntilStopped() + join everything. Derived
     * destructors call this first, while their overrides still exist.
     */
    void stopAndJoin();

  private:
    void acceptLoop();
    void serveConnection(int fd);
    void joinFinishedHandlers();

    ListenerConfig lcfg_;
    std::unique_ptr<ChaosMonkey> chaos_;

    int listenFd_ = -1;
    Endpoint ep_;
    std::string bound_;
    std::thread acceptThread_;
    std::mutex handlersMutex_;
    std::vector<std::thread> handlers_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};
    std::mutex stopMutex_;
    std::condition_variable stopCv_;
    std::mutex stopThreadMutex_;
    std::thread stopThread_;
};

/** Daemon knobs (the vcoma_served command line). */
struct ServiceConfig
{
    /** AF_UNIX path or "tcp:host:port". */
    std::string endpoint = "vcoma.sock";
    /** Scheduler queue capacity (admission control). */
    std::size_t queueCapacity = 64;
    /** Executor threads; 0 = Runner::envJobs(). */
    unsigned workers = 0;
    /** Reject request lines longer than this (malformed client). */
    std::size_t maxLineBytes = 1 << 20;
    /** Per-request I/O deadline (see ListenerConfig). 0 = none. */
    int ioTimeoutMs = 30000;
    /** Worker chaos injection ($VCOMA_CHAOS); default off. */
    ChaosSpec chaos;
};

class ServiceServer : public LineServer
{
  public:
    /** Binds nothing yet; start() does the socket work. */
    ServiceServer(Runner &runner, ServiceConfig cfg);
    ~ServiceServer() override;

    std::string handleRequestLine(const std::string &line) override;

    Scheduler &scheduler() { return scheduler_; }
    const ServiceConfig &config() const { return cfg_; }

  protected:
    void onDrain() override { scheduler_.drain(); }

  private:
    static ListenerConfig listenerOf(const ServiceConfig &cfg);

    Runner &runner_;
    ServiceConfig cfg_;
    Scheduler scheduler_;
};

} // namespace vcoma

#endif // VCOMA_SERVICE_SERVER_HH
