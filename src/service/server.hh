/**
 * @file
 * The vcoma_served daemon's listener: a Unix-domain stream socket
 * speaking the line-delimited JSON protocol of service/wire.hh, with
 * one handler thread per connection and every request funnelled into
 * one shared Scheduler/Runner pair so the in-memory and on-disk
 * result caches stay warm across clients.
 *
 * Lifecycle: construct, start(), then either waitUntilStopped() (the
 * daemon's main thread parks here) or destroy. A {"op":"shutdown"}
 * request or requestStop() — callable from a signal handler's flag
 * poller — stops accepting, drains the scheduler (queued jobs finish)
 * and unblocks waitUntilStopped().
 */

#ifndef VCOMA_SERVICE_SERVER_HH
#define VCOMA_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/scheduler.hh"

namespace vcoma
{

/** Daemon knobs (the vcoma_served command line). */
struct ServiceConfig
{
    std::string socketPath = "vcoma.sock";
    /** Scheduler queue capacity (admission control). */
    std::size_t queueCapacity = 64;
    /** Executor threads; 0 = Runner::envJobs(). */
    unsigned workers = 0;
    /** Reject request lines longer than this (malformed client). */
    std::size_t maxLineBytes = 1 << 20;
};

class ServiceServer
{
  public:
    /** Binds nothing yet; start() does the socket work. */
    ServiceServer(Runner &runner, ServiceConfig cfg);
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /**
     * Bind the socket (replacing a stale file at the path), listen,
     * and spawn the accept loop. Throws FatalError on bind failure.
     */
    void start();

    /** Begin graceful shutdown: stop accepting, drain, unpark. */
    void requestStop();

    /** Park until requestStop() (or a shutdown request) completes. */
    void waitUntilStopped();

    bool stopped() const { return stopped_.load(); }

    /**
     * Handle one request line, returning the reply line (without the
     * trailing newline). Public so tests can drive the protocol
     * without a socket.
     */
    std::string handleRequestLine(const std::string &line);

    Scheduler &scheduler() { return scheduler_; }
    const ServiceConfig &config() const { return cfg_; }

  private:
    void acceptLoop();
    void serveConnection(int fd);
    void joinFinishedHandlers();

    Runner &runner_;
    ServiceConfig cfg_;
    Scheduler scheduler_;

    int listenFd_ = -1;
    std::thread acceptThread_;
    std::mutex handlersMutex_;
    std::vector<std::thread> handlers_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};
    std::mutex stopMutex_;
    std::condition_variable stopCv_;
    /** The shutdown op's stop thread; joined by waitUntilStopped(). */
    std::mutex stopThreadMutex_;
    std::thread stopThread_;
};

} // namespace vcoma

#endif // VCOMA_SERVICE_SERVER_HH
