/**
 * @file
 * The simulation service's wire protocol: line-delimited JSON over a
 * Unix-domain stream socket. Every request and every reply is exactly
 * one RFC 8259 JSON object on one line, parsed with the in-tree
 * vcoma::JsonValue parser — no framing beyond '\n', so the protocol
 * is scriptable with a shell and `nc`.
 *
 * Requests carry an "op":
 *
 *   {"op":"ping"}
 *   {"op":"run","config":{...},"priority":0,"deadlineMs":0}
 *   {"op":"batch","configs":[{...},...],"priority":0,"deadlineMs":0}
 *   {"op":"stats"}
 *   {"op":"cancel","key":"<config key>"}
 *   {"op":"shutdown"}
 *
 * Replies always carry "ok". A successful run reply embeds the stats
 * sheet as a JSON *string* holding the exact writeRunStatsJson()
 * bytes, so a client can recover the sheet byte-identically to a
 * direct Runner::run — JSON string escaping is lossless, re-parsing
 * numbers is not. A shed job replies {"ok":false,"shed":true,...}
 * (explicit backpressure, never a hang).
 *
 * Config objects mirror ExperimentConfig field by field; unknown
 * members are an error (a typo must not silently simulate the
 * default config).
 */

#ifndef VCOMA_SERVICE_WIRE_HH
#define VCOMA_SERVICE_WIRE_HH

#include <ostream>
#include <stdexcept>
#include <string>

#include "harness/runner.hh"

namespace vcoma
{

class JsonValue;

/** Thrown on a malformed request or config object. */
class WireError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Protocol revision reported by ping and /stats replies. */
inline constexpr int wireProtocolVersion = 1;

/** Parse a scheme token ("L0", "VCOMA", or paper names like "L2-TLB"). */
Scheme parseSchemeToken(const std::string &token);

/** Serialise @p cfg as a JSON object (one line, no newline). */
void writeConfigJson(std::ostream &os, const ExperimentConfig &cfg);

/**
 * Build an ExperimentConfig from a parsed JSON object. Missing
 * members keep their defaults; unknown members, wrong-kind values,
 * and out-of-domain numbers throw WireError.
 */
ExperimentConfig configFromJson(const JsonValue &v);

} // namespace vcoma

#endif // VCOMA_SERVICE_WIRE_HH
