/**
 * @file
 * The simulation service's wire protocol: line-delimited JSON over a
 * stream socket — a Unix-domain path or a TCP "tcp:host:port"
 * endpoint (see service/transport.hh), same bytes either way. Every
 * request and every reply is exactly one RFC 8259 JSON object on one
 * line, parsed with the in-tree vcoma::JsonValue parser — no framing
 * beyond '\n', so the protocol is scriptable with a shell and `nc`.
 * Frames are capped (ListenerConfig::maxLineBytes server-side,
 * ClientOptions::maxLineBytes client-side): an oversized frame is
 * answered with an explicit protocol error, never buffered without
 * bound.
 *
 * Requests carry an "op":
 *
 *   {"op":"ping"}
 *   {"op":"run","config":{...},"priority":0,"deadlineMs":0}
 *   {"op":"batch","configs":[{...},...],"priority":0,"deadlineMs":0}
 *   {"op":"stats"}
 *   {"op":"cancel","key":"<config key>"}
 *   {"op":"shutdown"}
 *
 * Replies always carry "ok". A successful run reply embeds the stats
 * sheet as a JSON *string* holding the exact writeRunStatsJson()
 * bytes, so a client can recover the sheet byte-identically to a
 * direct Runner::run — JSON string escaping is lossless, re-parsing
 * numbers is not. A shed job replies {"ok":false,"shed":true,...}
 * (explicit backpressure, never a hang).
 *
 * A worker's ping reply carries {"role":"worker","queueDepth":N};
 * the farm router (service/farm.hh) speaks the same ops with
 * {"role":"farm"} and routes run/batch to workers by config key, so
 * clients need not know whether they face one daemon or a fleet.
 *
 * Config objects mirror ExperimentConfig field by field; unknown
 * members are an error (a typo must not silently simulate the
 * default config).
 */

#ifndef VCOMA_SERVICE_WIRE_HH
#define VCOMA_SERVICE_WIRE_HH

#include <ostream>
#include <stdexcept>
#include <string>

#include "harness/runner.hh"

namespace vcoma
{

class JsonValue;

/** Thrown on a malformed request or config object. */
class WireError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Protocol revision reported by ping and /stats replies.
 * v2: TCP endpoints, worker role/queueDepth in ping, farm router. */
inline constexpr int wireProtocolVersion = 2;

/**
 * One error reply line: {"ok":false,"error":...}, with a
 * {"shed":true} backpressure marker when @p shed. Shared by the
 * worker daemon and the farm router so error frames are uniform.
 */
std::string wireErrorReply(const std::string &message,
                           bool shed = false);

/** Parse a scheme token ("L0", "VCOMA", or paper names like "L2-TLB"). */
Scheme parseSchemeToken(const std::string &token);

/** Serialise @p cfg as a JSON object (one line, no newline). */
void writeConfigJson(std::ostream &os, const ExperimentConfig &cfg);

/**
 * Build an ExperimentConfig from a parsed JSON object. Missing
 * members keep their defaults; unknown members, wrong-kind values,
 * and out-of-domain numbers throw WireError.
 */
ExperimentConfig configFromJson(const JsonValue &v);

} // namespace vcoma

#endif // VCOMA_SERVICE_WIRE_HH
