/**
 * @file
 * Service-tier chaos injection, the FaultInjector philosophy applied
 * to the farm: a worker daemon started with $VCOMA_CHAOS randomly
 * delays requests, drops fresh connections, or SIGKILLs itself, all
 * driven by one seeded RNG so a given seed exercises the same
 * recovery paths on every run (deterministic for a serial request
 * stream; concurrent connections interleave their draws).
 *
 * Spec grammar (comma-separated key=value pairs):
 *
 *   VCOMA_CHAOS="seed=42,drop=0.05,delay=0.2,delay-ms=25,kill=0.002"
 *
 *   seed      RNG seed (default 1)
 *   drop      P(close an accepted connection immediately)  [0,1]
 *   delay     P(stall a request by delay-ms before serving) [0,1]
 *   delay-ms  stall length in milliseconds (default 25)
 *   kill      P(SIGKILL the whole process before a request) [0,1]
 *
 * A bare truthy value ("1", "true") enables mild connection chaos
 * (drop=0.02, delay=0.05) with no self-kill — kill is always opt-in.
 */

#ifndef VCOMA_SERVICE_CHAOS_HH
#define VCOMA_SERVICE_CHAOS_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "common/rng.hh"

namespace vcoma
{

/** Parsed $VCOMA_CHAOS knob; default-constructed means "off". */
struct ChaosSpec
{
    bool enabled = false;
    std::uint64_t seed = 1;
    double dropP = 0.0;   ///< P(drop an accepted connection)
    double delayP = 0.0;  ///< P(stall a request)
    std::uint64_t delayMs = 25;
    double killP = 0.0;   ///< P(SIGKILL self before a request)

    /** Human-readable form for startup logging. */
    std::string describe() const;
};

/**
 * Parse a $VCOMA_CHAOS value. Throws FatalError on malformed input
 * (unknown key, probability outside [0,1]) — a typo must not
 * silently run without chaos in a chaos-testing CI job.
 */
ChaosSpec parseChaosSpec(const std::string &spec);

/** ChaosSpec from $VCOMA_CHAOS; disabled when unset/falsy. */
ChaosSpec chaosSpecFromEnv();

/**
 * The sampling side: one seeded RNG behind a mutex. The caller acts
 * on the verdicts (closing fds, sleeping, raising SIGKILL) so the
 * monkey itself stays side-effect-free and unit-testable.
 */
class ChaosMonkey
{
  public:
    explicit ChaosMonkey(ChaosSpec spec)
        : spec_(spec), rng_(spec.seed)
    {
    }

    const ChaosSpec &spec() const { return spec_; }

    /** Should this freshly accepted connection be dropped? */
    bool dropConnection() { return roll(spec_.dropP); }

    /** Milliseconds to stall the next request (0 = no stall). */
    std::uint64_t requestDelayMs()
    {
        return roll(spec_.delayP) ? spec_.delayMs : 0;
    }

    /** Should the process kill itself before serving this request? */
    bool killNow() { return roll(spec_.killP); }

  private:
    bool roll(double p)
    {
        if (p <= 0.0)
            return false;
        std::lock_guard<std::mutex> lock(mutex_);
        return rng_.uniform() < p;
    }

    ChaosSpec spec_;
    std::mutex mutex_;
    Rng rng_;
};

} // namespace vcoma

#endif // VCOMA_SERVICE_CHAOS_HH
