#include "service/farm.hh"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "service/client.hh"
#include "service/wire.hh"

namespace vcoma
{

// ---------------------------------------------------------------------
// HashRing.

std::uint64_t
HashRing::hashKey(std::string_view s)
{
    // FNV-1a 64-bit plus an avalanche finalizer. Raw FNV clusters
    // badly on short similar strings ("a#0".."a#63" land within a
    // few thousand of each other), which would collapse a member's
    // vnodes into one arc; the fmix64 finalizer spreads them over
    // the whole ring. Stable across builds — the ring layout is part
    // of the farm's warm-cache behaviour, not an implementation
    // detail.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

HashRing::HashRing(std::vector<std::string> members, unsigned vnodes)
    : members_(std::move(members))
{
    if (members_.empty())
        fatal("a hash ring needs at least one member");
    if (vnodes == 0)
        vnodes = 1;
    ring_.reserve(members_.size() * vnodes);
    for (std::size_t i = 0; i < members_.size(); ++i)
        for (unsigned v = 0; v < vnodes; ++v)
            ring_.emplace_back(
                hashKey(members_[i] + "#" + std::to_string(v)), i);
    std::sort(ring_.begin(), ring_.end());
}

std::size_t
HashRing::owner(const std::string &key) const
{
    const std::uint64_t h = hashKey(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const auto &p, std::uint64_t v) { return p.first < v; });
    if (it == ring_.end())
        it = ring_.begin();  // wrap: first point clockwise
    return it->second;
}

std::vector<std::size_t>
HashRing::candidates(const std::string &key) const
{
    const std::uint64_t h = hashKey(key);
    auto start = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const auto &p, std::uint64_t v) { return p.first < v; });
    if (start == ring_.end())
        start = ring_.begin();
    std::vector<std::size_t> order;
    order.reserve(members_.size());
    std::vector<bool> seen(members_.size(), false);
    auto it = start;
    do {
        if (!seen[it->second]) {
            seen[it->second] = true;
            order.push_back(it->second);
        }
        ++it;
        if (it == ring_.end())
            it = ring_.begin();
    } while (it != start && order.size() < members_.size());
    return order;
}

// ---------------------------------------------------------------------
// FarmRouter.

ListenerConfig
FarmRouter::listenerOf(const FarmConfig &cfg)
{
    ListenerConfig lcfg;
    lcfg.endpoint = cfg.endpoint;
    lcfg.maxLineBytes = cfg.maxLineBytes;
    lcfg.ioTimeoutMs = cfg.ioTimeoutMs;
    // Chaos lives in the workers; the router is the recovery layer.
    return lcfg;
}

FarmRouter::FarmRouter(FarmConfig cfg)
    : LineServer(listenerOf(cfg)), cfg_(std::move(cfg)),
      ring_(cfg_.workers, cfg_.vnodes), backoffRng_(0x5eedULL)
{
    workers_.reserve(cfg_.workers.size());
    for (const std::string &ep : cfg_.workers)
        workers_.push_back(Worker{ep});
}

FarmRouter::~FarmRouter()
{
    stopAndJoin();
}

void
FarmRouter::startFarm()
{
    start();
    heartbeatThread_ = std::thread([this] { heartbeatLoop(); });
}

void
FarmRouter::onDrain()
{
    heartbeatStop_.store(true);
    if (heartbeatThread_.joinable())
        heartbeatThread_.join();
}

void
FarmRouter::heartbeatLoop()
{
    ClientOptions opts;
    opts.connectTimeoutMs = cfg_.heartbeatTimeoutMs;
    opts.requestTimeoutMs = cfg_.heartbeatTimeoutMs;
    opts.maxRetries = 0;
    while (!heartbeatStop_.load()) {
        for (std::size_t i = 0; i < cfg_.workers.size(); ++i) {
            if (heartbeatStop_.load())
                return;
            bool pong = false;
            try {
                ServiceClient probe(cfg_.workers[i], opts);
                pong = probe.ping();
            } catch (const std::exception &) {
                pong = false;
            }
            std::lock_guard<std::mutex> lock(workersMutex_);
            Worker &w = workers_[i];
            if (pong) {
                w.misses = 0;
                if (!w.alive) {
                    w.alive = true;
                    inform("farm: worker ", w.endpoint, " is back");
                }
            } else {
                ++w.misses;
                if (w.alive && w.misses >= cfg_.missThreshold) {
                    w.alive = false;
                    ++evictions_;
                    inform("farm: worker ", w.endpoint, " evicted (",
                           w.misses, " missed heartbeats)");
                }
            }
        }
        // Sleep in slices so a stop request is honoured promptly.
        const std::uint64_t until = steadyMs() + cfg_.heartbeatMs;
        while (!heartbeatStop_.load() && steadyMs() < until)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }
}

std::vector<std::size_t>
FarmRouter::routeOrder(const std::string &key) const
{
    const std::vector<std::size_t> pref = ring_.candidates(key);
    std::vector<std::size_t> order;
    order.reserve(pref.size());
    std::lock_guard<std::mutex> lock(workersMutex_);
    // Live workers in ring order first; dead ones still trail the
    // list — when the whole fleet looks down they may simply all be
    // restarting, and trying beats failing.
    for (const std::size_t i : pref)
        if (workers_[i].alive)
            order.push_back(i);
    for (const std::size_t i : pref)
        if (!workers_[i].alive)
            order.push_back(i);
    return order;
}

std::string
FarmRouter::forwardTo(std::size_t idx, const std::string &line,
                      int timeoutMs)
{
    ClientOptions opts;
    opts.connectTimeoutMs = cfg_.connectTimeoutMs;
    opts.requestTimeoutMs = timeoutMs;
    opts.maxRetries = 0;
    opts.maxLineBytes = 64u << 20;  // worker replies carry sheets
    ServiceClient link(cfg_.workers[idx], opts);
    return link.request(line);
}

void
FarmRouter::noteForwardOk(std::size_t idx)
{
    std::lock_guard<std::mutex> lock(workersMutex_);
    Worker &w = workers_[idx];
    ++w.forwarded;
    w.misses = 0;
    if (!w.alive) {
        w.alive = true;
        inform("farm: worker ", w.endpoint, " is back");
    }
}

void
FarmRouter::noteForwardFailure(std::size_t idx, bool workerGone)
{
    std::lock_guard<std::mutex> lock(workersMutex_);
    Worker &w = workers_[idx];
    ++w.failures;
    if (workerGone && w.alive) {
        // Connection refused/reset: the worker is gone, not slow —
        // evict now instead of waiting out the heartbeat threshold.
        w.alive = false;
        w.misses = cfg_.missThreshold;
        ++evictions_;
        inform("farm: worker ", w.endpoint,
               " evicted (connection failed)");
    }
}

std::string
FarmRouter::routeRun(const std::string &key, const std::string &line)
{
    unsigned attempts = 0;
    for (unsigned round = 0; round < cfg_.forwardRounds; ++round) {
        if (round) {
            std::uint64_t stall;
            {
                std::lock_guard<std::mutex> lock(backoffMutex_);
                stall = ServiceClient::backoffDelayMs(
                    round - 1, cfg_.backoffBaseMs, cfg_.backoffCapMs,
                    backoffRng_);
            }
            if (stall)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(stall));
        }
        for (const std::size_t idx : routeOrder(key)) {
            ++attempts;
            try {
                const std::string reply =
                    forwardTo(idx, line, cfg_.forwardTimeoutMs);
                noteForwardOk(idx);
                std::lock_guard<std::mutex> lock(workersMutex_);
                ++routed_;
                if (attempts > 1)
                    ++rerouted_;
                return reply;
            } catch (const ServiceTimeout &) {
                // Deep in a long simulation or truly hung: either
                // way this job moves on, but the worker keeps its
                // place on the ring until heartbeats say otherwise.
                noteForwardFailure(idx, /*workerGone=*/false);
            } catch (const std::exception &) {
                noteForwardFailure(idx, /*workerGone=*/true);
            }
        }
    }
    {
        std::lock_guard<std::mutex> lock(workersMutex_);
        ++unrouted_;
    }
    return wireErrorReply("no live worker could serve key '" + key +
                          "' after " + std::to_string(attempts) +
                          " attempts");
}

std::vector<FarmRouter::WorkerStatus>
FarmRouter::workerStatus() const
{
    std::lock_guard<std::mutex> lock(workersMutex_);
    std::vector<WorkerStatus> out;
    out.reserve(workers_.size());
    for (const Worker &w : workers_)
        out.push_back(WorkerStatus{w.endpoint, w.alive, w.misses,
                                   w.forwarded, w.failures});
    return out;
}

std::string
FarmRouter::handleStats()
{
    std::ostringstream os;
    std::lock_guard<std::mutex> lock(workersMutex_);
    os << "{\"ok\":true,\"farmStats\":{\"workers\":[";
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        const Worker &w = workers_[i];
        if (i)
            os << ",";
        os << "{\"endpoint\":\"" << jsonEscape(w.endpoint)
           << "\",\"alive\":" << (w.alive ? "true" : "false")
           << ",\"misses\":" << w.misses
           << ",\"forwarded\":" << w.forwarded
           << ",\"failures\":" << w.failures << "}";
    }
    os << "],\"routed\":" << routed_ << ",\"rerouted\":" << rerouted_
       << ",\"unrouted\":" << unrouted_
       << ",\"evictions\":" << evictions_ << "}}";
    return os.str();
}

std::string
FarmRouter::handleCancel(const std::string &key)
{
    std::uint64_t cancelled = 0;
    for (std::size_t i = 0; i < cfg_.workers.size(); ++i) {
        try {
            const std::string reply = forwardTo(
                i,
                "{\"op\":\"cancel\",\"key\":\"" + jsonEscape(key) +
                    "\"}",
                cfg_.heartbeatTimeoutMs);
            const JsonValue v = JsonValue::parse(reply);
            if (const JsonValue *n = v.find("cancelled"))
                cancelled += n->asUint();
        } catch (const std::exception &) {
            // A dead worker has nothing queued to cancel.
        }
    }
    std::ostringstream os;
    os << "{\"ok\":true,\"cancelled\":" << cancelled << "}";
    return os.str();
}

void
FarmRouter::forwardShutdownToWorkers()
{
    for (std::size_t i = 0; i < cfg_.workers.size(); ++i) {
        try {
            forwardTo(i, "{\"op\":\"shutdown\"}",
                      cfg_.heartbeatTimeoutMs);
        } catch (const std::exception &) {
            // Already gone is shut down enough.
        }
    }
}

std::string
FarmRouter::handleRequestLine(const std::string &line)
{
    JsonValue req;
    try {
        req = JsonValue::parse(line);
    } catch (const JsonError &e) {
        return wireErrorReply(std::string("bad request JSON: ") +
                              e.what());
    }
    if (!req.isObject())
        return wireErrorReply("request must be a JSON object");
    const JsonValue *opv = req.find("op");
    if (!opv || !opv->isString())
        return wireErrorReply("request needs a string \"op\"");
    const std::string &op = opv->asString();

    try {
        if (op == "ping") {
            std::size_t alive = 0;
            {
                std::lock_guard<std::mutex> lock(workersMutex_);
                for (const Worker &w : workers_)
                    alive += w.alive ? 1 : 0;
            }
            std::ostringstream os;
            os << "{\"ok\":true,\"pong\":true,\"protocol\":"
               << wireProtocolVersion << ",\"role\":\"farm\""
               << ",\"workers\":" << cfg_.workers.size()
               << ",\"aliveWorkers\":" << alive << "}";
            return os.str();
        }

        if (op == "stats")
            return handleStats();

        if (op == "cancel") {
            const JsonValue *keyv = req.find("key");
            if (!keyv || !keyv->isString())
                return wireErrorReply(
                    "cancel needs a string \"key\"");
            return handleCancel(keyv->asString());
        }

        if (op == "shutdown") {
            // Reply to the client first? No: fan the shutdown out to
            // the workers before stopping so "shut the farm down" is
            // one op, then stop the router asynchronously (the reply
            // still goes out before the handler is joined).
            forwardShutdownToWorkers();
            stopAsyncFromHandler();
            return "{\"ok\":true,\"draining\":true}";
        }

        int priority = 0;
        std::uint64_t deadlineMs = 0;
        if (const JsonValue *p = req.find("priority"))
            priority = static_cast<int>(p->asNumber());
        if (const JsonValue *d = req.find("deadlineMs"))
            deadlineMs = d->asUint();

        auto forwardLine = [&](const ExperimentConfig &cfg) {
            std::ostringstream os;
            os << "{\"op\":\"run\",\"priority\":" << priority
               << ",\"deadlineMs\":" << deadlineMs << ",\"config\":";
            writeConfigJson(os, cfg);
            os << "}";
            return os.str();
        };

        if (op == "run") {
            const JsonValue *cfgv = req.find("config");
            if (!cfgv)
                return wireErrorReply(
                    "run needs a \"config\" object");
            const ExperimentConfig cfg = configFromJson(*cfgv);
            return routeRun(cfg.key(), forwardLine(cfg));
        }

        if (op == "batch") {
            const JsonValue *cfgsv = req.find("configs");
            if (!cfgsv || !cfgsv->isArray())
                return wireErrorReply(
                    "batch needs a \"configs\" array");
            std::vector<ExperimentConfig> cfgs;
            cfgs.reserve(cfgsv->size());
            for (std::size_t i = 0; i < cfgsv->size(); ++i)
                cfgs.push_back(configFromJson(cfgsv->at(i)));

            // Fan the batch out across the ring; replies come back
            // in submission order regardless of completion order.
            std::vector<std::string> replies(cfgs.size());
            const unsigned fanout = static_cast<unsigned>(
                std::min<std::size_t>(cfg_.batchFanout,
                                      std::max<std::size_t>(
                                          cfgs.size(), 1)));
            ThreadPool pool(fanout);
            std::vector<std::future<void>> done;
            done.reserve(cfgs.size());
            for (std::size_t i = 0; i < cfgs.size(); ++i) {
                done.push_back(pool.submit(
                    [this, i, &replies, &cfgs, &forwardLine] {
                        replies[i] = routeRun(cfgs[i].key(),
                                              forwardLine(cfgs[i]));
                    }));
            }
            for (auto &f : done)
                f.get();
            std::ostringstream os;
            os << "{\"ok\":true,\"results\":[";
            for (std::size_t i = 0; i < replies.size(); ++i) {
                if (i)
                    os << ",";
                os << replies[i];
            }
            os << "]}";
            return os.str();
        }
    } catch (const WireError &e) {
        return wireErrorReply(e.what());
    } catch (const JsonError &e) {
        return wireErrorReply(e.what());
    } catch (const std::exception &e) {
        return wireErrorReply(std::string("internal error: ") +
                              e.what());
    }

    return wireErrorReply("unknown op '" + op + "'");
}

} // namespace vcoma
