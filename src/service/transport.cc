#include "service/transport.hh"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include "common/logging.hh"

namespace vcoma
{

std::string
Endpoint::str() const
{
    if (kind == Kind::Unix)
        return path;
    return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint
parseEndpoint(const std::string &spec)
{
    Endpoint ep;
    if (spec.rfind("tcp:", 0) == 0) {
        std::string rest = spec.substr(4);
        if (rest.rfind("//", 0) == 0)
            rest = rest.substr(2);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0)
            fatal("TCP endpoint '", spec,
                  "' must be tcp:HOST:PORT");
        ep.kind = Endpoint::Kind::Tcp;
        ep.host = rest.substr(0, colon);
        const std::string portStr = rest.substr(colon + 1);
        char *end = nullptr;
        const unsigned long port =
            std::strtoul(portStr.c_str(), &end, 10);
        if (portStr.empty() || *end != '\0' || port > 65535)
            fatal("TCP endpoint '", spec, "' has a bad port '",
                  portStr, "'");
        ep.port = static_cast<std::uint16_t>(port);
        return ep;
    }
    ep.kind = Endpoint::Kind::Unix;
    ep.path = spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
    if (ep.path.empty())
        fatal("empty Unix socket path in endpoint '", spec, "'");
    return ep;
}

void
ignoreSigpipe()
{
    // Once is enough, but re-arming is harmless; MSG_NOSIGNAL covers
    // send() already — this covers every other path to a dead peer.
    static const bool armed = [] {
        std::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)armed;
}

namespace
{

/** Fill @p addr for a Unix endpoint; throws on an over-long path. */
sockaddr_un
unixAddr(const Endpoint &ep)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path))
        fatal("socket path '", ep.path, "' exceeds the ",
              sizeof(addr.sun_path) - 1, "-byte AF_UNIX limit");
    std::strncpy(addr.sun_path, ep.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    return addr;
}

/** Resolve an AF_INET host:port; throws FatalError when unresolvable. */
sockaddr_in
tcpAddr(const Endpoint &ep)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int rc = ::getaddrinfo(ep.host.c_str(), nullptr, &hints, &res);
    if (rc != 0 || !res)
        fatal("cannot resolve TCP host '", ep.host,
              "': ", ::gai_strerror(rc));
    sockaddr_in addr{};
    std::memcpy(&addr, res->ai_addr,
                std::min(sizeof(addr),
                         static_cast<std::size_t>(res->ai_addrlen)));
    ::freeaddrinfo(res);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    return addr;
}

} // namespace

int
listenEndpoint(const Endpoint &ep, int backlog)
{
    ignoreSigpipe();
    int fd = -1;
    if (ep.kind == Endpoint::Kind::Unix) {
        const sockaddr_un addr = unixAddr(ep);
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("cannot create socket: ", std::strerror(errno));
        // A previous daemon that died without cleanup leaves the
        // socket file behind; a fresh bind needs the path free.
        ::unlink(ep.path.c_str());
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            const int err = errno;
            ::close(fd);
            fatal("cannot bind '", ep.path, "': ",
                  std::strerror(err));
        }
    } else {
        const sockaddr_in addr = tcpAddr(ep);
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("cannot create socket: ", std::strerror(errno));
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            const int err = errno;
            ::close(fd);
            fatal("cannot bind '", ep.str(), "': ",
                  std::strerror(err));
        }
    }
    if (::listen(fd, backlog) < 0) {
        const int err = errno;
        ::close(fd);
        fatal("cannot listen on '", ep.str(), "': ",
              std::strerror(err));
    }
    return fd;
}

Endpoint
boundEndpoint(int fd, const Endpoint &ep)
{
    if (ep.kind == Endpoint::Kind::Unix)
        return ep;
    Endpoint out = ep;
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) ==
        0)
        out.port = ntohs(addr.sin_port);
    if (out.host.empty() || out.host == "0.0.0.0" || out.host == "*")
        out.host = "127.0.0.1";
    return out;
}

namespace
{

/**
 * One non-blocking connect attempt bounded by @p deadlineMs (absolute
 * steady time). Returns the connected fd or -1 with errno set.
 */
int
connectOnce(const Endpoint &ep, std::uint64_t deadlineMs)
{
    const int family =
        ep.kind == Endpoint::Kind::Unix ? AF_UNIX : AF_INET;
    const int fd = ::socket(family, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

    int rc;
    if (ep.kind == Endpoint::Kind::Unix) {
        const sockaddr_un addr = unixAddr(ep);
        rc = ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr));
    } else {
        const sockaddr_in addr = tcpAddr(ep);
        rc = ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr));
    }
    if (rc < 0 && errno == EINPROGRESS) {
        // SYN in flight: wait for writability up to the deadline.
        for (;;) {
            const std::uint64_t now = steadyMs();
            if (now >= deadlineMs) {
                errno = ETIMEDOUT;
                rc = -1;
                break;
            }
            pollfd pfd{fd, POLLOUT, 0};
            const int n = ::poll(
                &pfd, 1, static_cast<int>(deadlineMs - now));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                errno = ETIMEDOUT;
                rc = -1;
                break;
            }
            int soErr = 0;
            socklen_t len = sizeof(soErr);
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &len);
            if (soErr != 0) {
                errno = soErr;
                rc = -1;
            } else {
                rc = 0;
            }
            break;
        }
    }
    if (rc < 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        return -1;
    }
    ::fcntl(fd, F_SETFL, flags);
    return fd;
}

} // namespace

int
tryConnectEndpoint(const Endpoint &ep, int timeoutMs, std::string *error)
{
    ignoreSigpipe();
    const std::uint64_t deadline =
        steadyMs() + static_cast<std::uint64_t>(
                         timeoutMs > 0 ? timeoutMs : 0);
    int lastErr = ECONNREFUSED;
    for (;;) {
        const int fd = connectOnce(ep, deadline);
        if (fd >= 0)
            return fd;
        lastErr = errno;
        if (steadyMs() >= deadline)
            break;
        // A daemon still binding its socket wins the race.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (error)
        *error = "cannot connect to '" + ep.str() +
                 "': " + std::strerror(lastErr);
    return -1;
}

void
setIoDeadlines(int fd, int sendTimeoutMs, int recvTimeoutMs)
{
    auto arm = [&](int opt, int ms) {
        if (ms <= 0)
            return;
        timeval tv{};
        tv.tv_sec = ms / 1000;
        tv.tv_usec = (ms % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
    };
    arm(SO_SNDTIMEO, sendTimeoutMs);
    arm(SO_RCVTIMEO, recvTimeoutMs);
}

IoStatus
sendAll(int fd, std::string_view data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t sent = ::send(fd, data.data() + off,
                                    data.size() - off, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return IoStatus::TimedOut;
            if (errno == EPIPE || errno == ECONNRESET)
                return IoStatus::Closed;
            return IoStatus::Error;
        }
        if (sent == 0)
            return IoStatus::Closed;
        off += static_cast<std::size_t>(sent);
    }
    return IoStatus::Ok;
}

IoStatus
recvSome(int fd, std::string &out)
{
    char chunk[4096];
    for (;;) {
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got > 0) {
            out.append(chunk, static_cast<std::size_t>(got));
            return IoStatus::Ok;
        }
        if (got == 0)
            return IoStatus::Closed;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return IoStatus::TimedOut;
        if (errno == ECONNRESET)
            return IoStatus::Closed;
        return IoStatus::Error;
    }
}

LineBuffer::Next
LineBuffer::next(std::string &line)
{
    if (skipping_) {
        const std::size_t nl = pending_.find('\n');
        if (nl == std::string::npos) {
            // Still inside the oversized frame: drop what arrived.
            pending_.clear();
            return Next::Need;
        }
        pending_.erase(0, nl + 1);
        skipping_ = false;
        return Next::Overlong;
    }
    const std::size_t nl = pending_.find('\n');
    if (nl != std::string::npos) {
        if (nl > maxLine_) {
            pending_.erase(0, nl + 1);
            return Next::Overlong;
        }
        line.assign(pending_, 0, nl);
        pending_.erase(0, nl + 1);
        return Next::Line;
    }
    if (pending_.size() > maxLine_) {
        // The frame already exceeds the cap with no end in sight:
        // stop buffering, skip until its newline finally arrives,
        // and report it once then.
        pending_.clear();
        skipping_ = true;
    }
    return Next::Need;
}

std::uint64_t
steadyMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace vcoma
