/**
 * @file
 * Client side of the simulation service: connects to a vcoma_served
 * worker or a farm router (AF_UNIX path or "tcp:host:port"), frames
 * line-delimited JSON requests, and unpacks replies. Used by the
 * vcoma_client CLI, the farm router's worker links, and the service
 * tests; one ServiceClient is one connection (not thread-safe —
 * concurrent callers each open their own).
 *
 * Resilience: every request runs under kernel send/recv deadlines
 * (ClientOptions::requestTimeoutMs), so a hung server surfaces as a
 * typed ServiceTimeout instead of blocking forever. runResilient()
 * adds bounded retries with exponential backoff + deterministic
 * jitter, reconnecting on EPIPE/reset/close between attempts —
 * simulations are idempotent (cache-keyed, exactly-once-via-cache),
 * so resubmitting after a worker death is safe and byte-identical.
 */

#ifndef VCOMA_SERVICE_CLIENT_HH
#define VCOMA_SERVICE_CLIENT_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "harness/runner.hh"
#include "service/transport.hh"

namespace vcoma
{

class JsonValue;

/** Connection/retry knobs; optionsFromEnv() reads the VCOMA_* set. */
struct ClientOptions
{
    /** Connect deadline (a daemon still binding wins the race). */
    int connectTimeoutMs = 5000;
    /**
     * Per-request send/recv inactivity deadline; a server that
     * neither reads nor replies within it yields ServiceTimeout.
     * The default is deliberately generous — a reply only arrives
     * once the simulation finishes, so this bounds "hung", not
     * "slow"; raise it (or $VCOMA_REQUEST_TIMEOUT_MS) for
     * paper-scale sweeps. 0 = wait forever.
     */
    int requestTimeoutMs = 300000;
    /** Extra attempts in runResilient()/requestWithRetry(). */
    unsigned maxRetries = 4;
    /** Backoff schedule: min(cap, base << attempt), jittered. */
    std::uint64_t backoffBaseMs = 50;
    std::uint64_t backoffCapMs = 2000;
    /** Jitter RNG seed (deterministic backoff in tests). */
    std::uint64_t jitterSeed = 1;
    /** Reject reply lines longer than this (misbehaving server). */
    std::size_t maxLineBytes = 64u << 20;
};

class ServiceClient
{
  public:
    /** Outcome of one job as the service reported it. */
    struct Outcome
    {
        bool ok = false;
        /** Rejected/cancelled without running (backpressure). */
        bool shed = false;
        /** Served without a fresh simulation. */
        bool cached = false;
        /** The request's I/O deadline expired (hung/dead server). */
        bool timedOut = false;
        /** Exact writeRunStatsJson() bytes of the sheet (ok only). */
        std::string statsJson;
        std::string error;
    };

    /**
     * Connect to @p endpoint, retrying until the connect deadline
     * elapses. Throws FatalError when the deadline passes.
     */
    explicit ServiceClient(const std::string &endpoint,
                           ClientOptions opts);
    ServiceClient(const std::string &endpoint, int connectTimeoutMs =
                                                   5000);
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * ClientOptions with $VCOMA_REQUEST_TIMEOUT_MS, $VCOMA_RETRY_MAX,
     * $VCOMA_RETRY_BASE_MS, $VCOMA_RETRY_CAP_MS and
     * $VCOMA_RETRY_JITTER_SEED applied over the defaults.
     */
    static ClientOptions optionsFromEnv();

    /**
     * The jittered backoff delay before retry @p attempt (0-based):
     * uniform in [d/2, d] for d = min(cap, base << attempt).
     * Exposed so tests can pin the schedule's bounds.
     */
    static std::uint64_t backoffDelayMs(unsigned attempt,
                                        std::uint64_t baseMs,
                                        std::uint64_t capMs, Rng &rng);

    /**
     * Round-trip a raw request line; returns the raw reply line.
     * Throws ServiceTimeout on an expired I/O deadline and
     * ServiceIoError on a lost connection (one attempt, no retry).
     */
    std::string request(const std::string &line);

    /**
     * request() with up to maxRetries reconnect-and-resend attempts
     * under the backoff schedule. Throws the last error when every
     * attempt fails.
     */
    std::string requestWithRetry(const std::string &line);

    /** {"op":"ping"} — true iff the daemon answered pong. */
    bool ping();

    /**
     * Submit one config and wait for its result. An I/O deadline
     * expiry comes back as a typed outcome (timedOut, not ok) rather
     * than an exception or a hang.
     */
    Outcome run(const ExperimentConfig &cfg, int priority = 0,
                std::uint64_t deadlineMs = 0);

    /**
     * run() with retry/reconnect/backoff on timeouts and lost
     * connections — the farm sweep path. Shed and simulation-failure
     * replies are terminal (the service answered; retrying would not
     * change it); only transport failures retry.
     */
    Outcome runResilient(const ExperimentConfig &cfg, int priority = 0,
                         std::uint64_t deadlineMs = 0);

    /** Submit a batch; results come back in submission order. */
    std::vector<Outcome> batch(std::span<const ExperimentConfig> cfgs,
                               int priority = 0,
                               std::uint64_t deadlineMs = 0);

    /** Raw {"op":"stats"} reply line (JSON with "serviceStats"). */
    std::string statsLine();

    /** Ask the daemon to drain and exit; true on acknowledgement. */
    bool shutdown();

    const ClientOptions &options() const { return opts_; }

  private:
    void connectOrThrow();
    void disconnect();
    std::string recvLine();
    void sendAll(const std::string &data);
    static Outcome outcomeFromReply(const JsonValue &v);
    static std::string runRequestLine(const ExperimentConfig &cfg,
                                      int priority,
                                      std::uint64_t deadlineMs);

    Endpoint ep_;
    ClientOptions opts_;
    Rng jitter_;
    int fd_ = -1;
    /** A timed-out request leaves the stream desynchronised; the
     * next attempt must reconnect before reusing the connection. */
    bool broken_ = false;
    std::string pending_;  ///< bytes received past the last newline
};

} // namespace vcoma

#endif // VCOMA_SERVICE_CLIENT_HH
