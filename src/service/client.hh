/**
 * @file
 * Client side of the simulation service: connects to a vcoma_served
 * Unix-domain socket, frames line-delimited JSON requests, and
 * unpacks replies. Used by the vcoma_client CLI and by the service
 * tests; one ServiceClient is one connection (not thread-safe —
 * concurrent callers each open their own).
 */

#ifndef VCOMA_SERVICE_CLIENT_HH
#define VCOMA_SERVICE_CLIENT_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace vcoma
{

class JsonValue;

class ServiceClient
{
  public:
    /** Outcome of one job as the service reported it. */
    struct Outcome
    {
        bool ok = false;
        /** Rejected/cancelled without running (backpressure). */
        bool shed = false;
        /** Served without a fresh simulation. */
        bool cached = false;
        /** Exact writeRunStatsJson() bytes of the sheet (ok only). */
        std::string statsJson;
        std::string error;
    };

    /**
     * Connect to @p socketPath, retrying until @p timeoutMs elapses
     * (a daemon that is still binding its socket wins the race).
     * Throws FatalError when the deadline passes.
     */
    ServiceClient(const std::string &socketPath, int timeoutMs = 5000);
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Round-trip a raw request line; returns the raw reply line. */
    std::string request(const std::string &line);

    /** {"op":"ping"} — true iff the daemon answered pong. */
    bool ping();

    /** Submit one config and wait for its result. */
    Outcome run(const ExperimentConfig &cfg, int priority = 0,
                std::uint64_t deadlineMs = 0);

    /** Submit a batch; results come back in submission order. */
    std::vector<Outcome> batch(std::span<const ExperimentConfig> cfgs,
                               int priority = 0,
                               std::uint64_t deadlineMs = 0);

    /** Raw {"op":"stats"} reply line (JSON with "serviceStats"). */
    std::string statsLine();

    /** Ask the daemon to drain and exit; true on acknowledgement. */
    bool shutdown();

  private:
    std::string recvLine();
    void sendAll(const std::string &data);
    static Outcome outcomeFromReply(const JsonValue &v);

    int fd_ = -1;
    std::string pending_;  ///< bytes received past the last newline
};

} // namespace vcoma

#endif // VCOMA_SERVICE_CLIENT_HH
