#include "service/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "service/wire.hh"
#include "sim/run_stats_json.hh"

namespace vcoma
{

namespace
{

/** One reply line: {"ok":false,"error":...} (+ backpressure marker). */
std::string
errorReply(const std::string &message, bool shed = false)
{
    std::ostringstream os;
    os << "{\"ok\":false";
    if (shed)
        os << ",\"shed\":true";
    os << ",\"error\":\"" << jsonEscape(message) << "\"}";
    return os.str();
}

/** The reply fragment for one resolved job (run and batch share it). */
void
writeJobReply(std::ostream &os, const JobResult &r)
{
    switch (r.status) {
      case JobStatus::Done: {
        os << "{\"ok\":true,\"cached\":" << (r.cached ? "true" : "false")
           << ",\"stats\":\"";
        std::ostringstream sheet;
        writeRunStatsJson(sheet, *r.stats);
        os << jsonEscape(sheet.str()) << "\"}";
        return;
      }
      case JobStatus::Failed:
        os << errorReply(r.error);
        return;
      case JobStatus::Shed:
      case JobStatus::Cancelled:
        os << errorReply(r.error, /*shed=*/true);
        return;
    }
    os << errorReply("internal: unhandled job status");
}

} // namespace

ServiceServer::ServiceServer(Runner &runner, ServiceConfig cfg)
    : runner_(runner), cfg_(std::move(cfg)),
      scheduler_(runner_, cfg_.queueCapacity, cfg_.workers)
{
}

ServiceServer::~ServiceServer()
{
    requestStop();
    waitUntilStopped();
    if (acceptThread_.joinable())
        acceptThread_.join();
    joinFinishedHandlers();
}

void
ServiceServer::start()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.size() >= sizeof(addr.sun_path))
        fatal("socket path '", cfg_.socketPath, "' exceeds the ",
              sizeof(addr.sun_path) - 1, "-byte AF_UNIX limit");
    std::strncpy(addr.sun_path, cfg_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("cannot create socket: ", std::strerror(errno));
    // A previous daemon that died without cleanup leaves the socket
    // file behind; a fresh bind needs the path free.
    ::unlink(cfg_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("cannot bind '", cfg_.socketPath,
              "': ", std::strerror(err));
    }
    if (::listen(listenFd_, 64) < 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("cannot listen on '", cfg_.socketPath,
              "': ", std::strerror(err));
    }
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
ServiceServer::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int n = ::poll(&pfd, 1, 200);
        if (n < 0 && errno != EINTR)
            break;
        if (n <= 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lock(handlersMutex_);
        handlers_.emplace_back([this, fd] { serveConnection(fd); });
    }
}

void
ServiceServer::serveConnection(int fd)
{
    std::string buffer;
    char chunk[4096];
    bool overlong = false;
    while (!stopping_.load()) {
        pollfd pfd{fd, POLLIN, 0};
        const int n = ::poll(&pfd, 1, 200);
        if (n < 0 && errno != EINTR)
            break;
        if (n <= 0)
            continue;
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got <= 0)
            break;
        buffer.append(chunk, static_cast<std::size_t>(got));

        std::size_t start = 0;
        std::size_t nl;
        bool closing = false;
        while ((nl = buffer.find('\n', start)) != std::string::npos) {
            std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            std::string reply;
            if (overlong) {
                reply = errorReply("request line too long");
                overlong = false;
            } else {
                reply = handleRequestLine(line);
            }
            reply.push_back('\n');
            std::size_t off = 0;
            while (off < reply.size()) {
                const ssize_t sent = ::send(fd, reply.data() + off,
                                            reply.size() - off,
                                            MSG_NOSIGNAL);
                if (sent <= 0) {
                    closing = true;
                    break;
                }
                off += static_cast<std::size_t>(sent);
            }
            if (closing)
                break;
        }
        buffer.erase(0, start);
        if (closing)
            break;
        if (buffer.size() > cfg_.maxLineBytes) {
            // Drop the oversized prefix but keep the connection: the
            // client gets an explicit error once its newline arrives.
            buffer.clear();
            overlong = true;
        }
    }
    ::close(fd);
}

std::string
ServiceServer::handleRequestLine(const std::string &line)
{
    JsonValue req;
    try {
        req = JsonValue::parse(line);
    } catch (const JsonError &e) {
        return errorReply(std::string("bad request JSON: ") + e.what());
    }
    if (!req.isObject())
        return errorReply("request must be a JSON object");
    const JsonValue *opv = req.find("op");
    if (!opv || !opv->isString())
        return errorReply("request needs a string \"op\"");
    const std::string &op = opv->asString();

    try {
        if (op == "ping") {
            std::ostringstream os;
            os << "{\"ok\":true,\"pong\":true,\"protocol\":"
               << wireProtocolVersion << "}";
            return os.str();
        }

        if (op == "stats") {
            std::ostringstream os;
            os << "{\"ok\":true,\"serviceStats\":";
            writeSchedulerStatsJson(os, scheduler_.stats());
            os << "}";
            return os.str();
        }

        if (op == "cancel") {
            const JsonValue *keyv = req.find("key");
            if (!keyv || !keyv->isString())
                return errorReply("cancel needs a string \"key\"");
            const unsigned n = scheduler_.cancel(keyv->asString());
            std::ostringstream os;
            os << "{\"ok\":true,\"cancelled\":" << n << "}";
            return os.str();
        }

        if (op == "shutdown") {
            // Reply first; the stop (drain + exit) happens after this
            // response is on the wire, from a separate thread so the
            // connection handler is not joined from inside itself.
            // The thread is kept joinable — waitUntilStopped() joins
            // it, so it can never outlive the server and touch freed
            // members (a detached thread could still be inside
            // requestStop()'s notify while the server is destroyed).
            std::lock_guard<std::mutex> lock(stopThreadMutex_);
            if (!stopping_.load() && !stopThread_.joinable())
                stopThread_ = std::thread([this] { requestStop(); });
            return "{\"ok\":true,\"draining\":true}";
        }

        int priority = 0;
        std::uint64_t deadlineMs = 0;
        if (const JsonValue *p = req.find("priority"))
            priority = static_cast<int>(p->asNumber());
        if (const JsonValue *d = req.find("deadlineMs"))
            deadlineMs = d->asUint();

        if (op == "run") {
            const JsonValue *cfgv = req.find("config");
            if (!cfgv)
                return errorReply("run needs a \"config\" object");
            JobRequest jr{configFromJson(*cfgv), priority, deadlineMs};
            Scheduler::Submission sub = scheduler_.submit(jr);
            if (!sub.accepted())
                return errorReply(sub.rejection, /*shed=*/true);
            std::ostringstream os;
            writeJobReply(os, sub.future.get());
            return os.str();
        }

        if (op == "batch") {
            const JsonValue *cfgsv = req.find("configs");
            if (!cfgsv || !cfgsv->isArray())
                return errorReply("batch needs a \"configs\" array");
            // Admit everything up front so the batch occupies the
            // queue as one burst, then wait in submission order.
            std::vector<Scheduler::Submission> subs;
            subs.reserve(cfgsv->size());
            for (std::size_t i = 0; i < cfgsv->size(); ++i) {
                JobRequest jr{configFromJson(cfgsv->at(i)), priority,
                              deadlineMs};
                subs.push_back(scheduler_.submit(jr));
            }
            std::ostringstream os;
            os << "{\"ok\":true,\"results\":[";
            for (std::size_t i = 0; i < subs.size(); ++i) {
                if (i)
                    os << ",";
                if (!subs[i].accepted())
                    os << errorReply(subs[i].rejection, /*shed=*/true);
                else
                    writeJobReply(os, subs[i].future.get());
            }
            os << "]}";
            return os.str();
        }
    } catch (const WireError &e) {
        return errorReply(e.what());
    } catch (const JsonError &e) {
        return errorReply(e.what());
    } catch (const std::exception &e) {
        return errorReply(std::string("internal error: ") + e.what());
    }

    return errorReply("unknown op '" + op + "'");
}

void
ServiceServer::requestStop()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) {
        return;
    }
    scheduler_.drain();
    {
        std::lock_guard<std::mutex> lock(stopMutex_);
        stopped_.store(true);
    }
    stopCv_.notify_all();
}

void
ServiceServer::waitUntilStopped()
{
    {
        std::unique_lock<std::mutex> lock(stopMutex_);
        stopCv_.wait(lock, [this] { return stopped_.load(); });
    }
    {
        // stopped_ implies stopping_, so no new stop thread can be
        // spawned after this join (the shutdown op checks stopping_).
        std::lock_guard<std::mutex> lock(stopThreadMutex_);
        if (stopThread_.joinable())
            stopThread_.join();
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    joinFinishedHandlers();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(cfg_.socketPath.c_str());
    }
}

void
ServiceServer::joinFinishedHandlers()
{
    std::vector<std::thread> handlers;
    {
        std::lock_guard<std::mutex> lock(handlersMutex_);
        handlers.swap(handlers_);
    }
    for (std::thread &t : handlers)
        if (t.joinable())
            t.join();
}

} // namespace vcoma
