#include "service/server.hh"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "service/wire.hh"
#include "sim/run_stats_json.hh"

namespace vcoma
{

// ---------------------------------------------------------------------
// LineServer: the shared accept/frame/reply skeleton.

LineServer::LineServer(ListenerConfig lcfg) : lcfg_(std::move(lcfg))
{
    if (lcfg_.chaos.enabled)
        chaos_ = std::make_unique<ChaosMonkey>(lcfg_.chaos);
}

LineServer::~LineServer()
{
    stopAndJoin();
}

void
LineServer::start()
{
    ignoreSigpipe();
    ep_ = parseEndpoint(lcfg_.endpoint);
    listenFd_ = listenEndpoint(ep_);
    ep_ = vcoma::boundEndpoint(listenFd_, ep_);
    bound_ = ep_.str();
    if (chaos_)
        inform("chaos enabled: ", lcfg_.chaos.describe());
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
LineServer::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int n = ::poll(&pfd, 1, 200);
        if (n < 0 && errno != EINTR)
            break;
        if (n <= 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lock(handlersMutex_);
        handlers_.emplace_back([this, fd] { serveConnection(fd); });
    }
}

void
LineServer::serveConnection(int fd)
{
    if (chaos_ && chaos_->dropConnection()) {
        ::close(fd);
        return;
    }
    // Bound a send() to a peer that stopped draining its replies.
    // recv stays poll-driven so an idle connection parks cheaply and
    // the loop keeps noticing stopping_.
    setIoDeadlines(fd, lcfg_.ioTimeoutMs, 0);
    LineBuffer buf(lcfg_.maxLineBytes);
    std::uint64_t lastByteMs = steadyMs();
    std::string data;
    bool closing = false;
    while (!stopping_.load() && !closing) {
        pollfd pfd{fd, POLLIN, 0};
        const int n = ::poll(&pfd, 1, 200);
        if (n < 0 && errno != EINTR)
            break;
        if (n <= 0 ||
            !(pfd.revents & (POLLIN | POLLHUP | POLLERR))) {
            // A peer stalled halfway through a request line cannot
            // pin this handler past the I/O deadline.
            if (buf.midLine() && lcfg_.ioTimeoutMs > 0 &&
                steadyMs() - lastByteMs >
                    static_cast<std::uint64_t>(lcfg_.ioTimeoutMs))
                break;
            continue;
        }
        data.clear();
        const IoStatus rs = recvSome(fd, data);
        if (rs == IoStatus::TimedOut)
            continue;
        if (rs != IoStatus::Ok)
            break;
        lastByteMs = steadyMs();
        buf.append(data.data(), data.size());

        std::string line;
        for (;;) {
            const LineBuffer::Next next = buf.next(line);
            if (next == LineBuffer::Next::Need)
                break;
            std::string reply;
            if (next == LineBuffer::Next::Overlong) {
                reply = wireErrorReply(
                    "request line exceeds " +
                    std::to_string(lcfg_.maxLineBytes) + " bytes");
            } else {
                if (chaos_) {
                    const std::uint64_t stall =
                        chaos_->requestDelayMs();
                    if (stall)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(stall));
                    if (chaos_->killNow()) {
                        inform("chaos: killing self");
                        ::kill(::getpid(), SIGKILL);
                    }
                }
                reply = handleRequestLine(line);
            }
            reply.push_back('\n');
            if (sendAll(fd, reply) != IoStatus::Ok) {
                closing = true;
                break;
            }
        }
    }
    ::close(fd);
}

void
LineServer::stopAsyncFromHandler()
{
    std::lock_guard<std::mutex> lock(stopThreadMutex_);
    if (!stopping_.load() && !stopThread_.joinable())
        stopThread_ = std::thread([this] { requestStop(); });
}

void
LineServer::requestStop()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true))
        return;
    onDrain();
    {
        std::lock_guard<std::mutex> lock(stopMutex_);
        stopped_.store(true);
    }
    stopCv_.notify_all();
}

void
LineServer::waitUntilStopped()
{
    {
        std::unique_lock<std::mutex> lock(stopMutex_);
        stopCv_.wait(lock, [this] { return stopped_.load(); });
    }
    {
        // stopped_ implies stopping_, so no new stop thread can be
        // spawned after this join (the shutdown op checks stopping_).
        std::lock_guard<std::mutex> lock(stopThreadMutex_);
        if (stopThread_.joinable())
            stopThread_.join();
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    joinFinishedHandlers();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        if (ep_.kind == Endpoint::Kind::Unix)
            ::unlink(ep_.path.c_str());
    }
}

void
LineServer::stopAndJoin()
{
    requestStop();
    waitUntilStopped();
    if (acceptThread_.joinable())
        acceptThread_.join();
    joinFinishedHandlers();
}

void
LineServer::joinFinishedHandlers()
{
    std::vector<std::thread> handlers;
    {
        std::lock_guard<std::mutex> lock(handlersMutex_);
        handlers.swap(handlers_);
    }
    for (std::thread &t : handlers)
        if (t.joinable())
            t.join();
}

// ---------------------------------------------------------------------
// ServiceServer: the worker daemon's protocol handler.

namespace
{

/** The reply fragment for one resolved job (run and batch share it). */
void
writeJobReply(std::ostream &os, const JobResult &r)
{
    switch (r.status) {
      case JobStatus::Done: {
        os << "{\"ok\":true,\"cached\":" << (r.cached ? "true" : "false")
           << ",\"stats\":\"";
        std::ostringstream sheet;
        writeRunStatsJson(sheet, *r.stats);
        os << jsonEscape(sheet.str()) << "\"}";
        return;
      }
      case JobStatus::Failed:
        os << wireErrorReply(r.error);
        return;
      case JobStatus::Shed:
      case JobStatus::Cancelled:
        os << wireErrorReply(r.error, /*shed=*/true);
        return;
    }
    os << wireErrorReply("internal: unhandled job status");
}

} // namespace

ListenerConfig
ServiceServer::listenerOf(const ServiceConfig &cfg)
{
    ListenerConfig lcfg;
    lcfg.endpoint = cfg.endpoint;
    lcfg.maxLineBytes = cfg.maxLineBytes;
    lcfg.ioTimeoutMs = cfg.ioTimeoutMs;
    lcfg.chaos = cfg.chaos;
    return lcfg;
}

ServiceServer::ServiceServer(Runner &runner, ServiceConfig cfg)
    : LineServer(listenerOf(cfg)), runner_(runner),
      cfg_(std::move(cfg)),
      scheduler_(runner_, cfg_.queueCapacity, cfg_.workers)
{
}

ServiceServer::~ServiceServer()
{
    stopAndJoin();
}

std::string
ServiceServer::handleRequestLine(const std::string &line)
{
    JsonValue req;
    try {
        req = JsonValue::parse(line);
    } catch (const JsonError &e) {
        return wireErrorReply(std::string("bad request JSON: ") +
                              e.what());
    }
    if (!req.isObject())
        return wireErrorReply("request must be a JSON object");
    const JsonValue *opv = req.find("op");
    if (!opv || !opv->isString())
        return wireErrorReply("request needs a string \"op\"");
    const std::string &op = opv->asString();

    try {
        if (op == "ping") {
            std::ostringstream os;
            os << "{\"ok\":true,\"pong\":true,\"protocol\":"
               << wireProtocolVersion
               << ",\"role\":\"worker\",\"queueDepth\":"
               << scheduler_.depth() << "}";
            return os.str();
        }

        if (op == "stats") {
            std::ostringstream os;
            os << "{\"ok\":true,\"serviceStats\":";
            writeSchedulerStatsJson(os, scheduler_.stats());
            os << "}";
            return os.str();
        }

        if (op == "cancel") {
            const JsonValue *keyv = req.find("key");
            if (!keyv || !keyv->isString())
                return wireErrorReply(
                    "cancel needs a string \"key\"");
            const unsigned n = scheduler_.cancel(keyv->asString());
            std::ostringstream os;
            os << "{\"ok\":true,\"cancelled\":" << n << "}";
            return os.str();
        }

        if (op == "shutdown") {
            stopAsyncFromHandler();
            return "{\"ok\":true,\"draining\":true}";
        }

        int priority = 0;
        std::uint64_t deadlineMs = 0;
        if (const JsonValue *p = req.find("priority"))
            priority = static_cast<int>(p->asNumber());
        if (const JsonValue *d = req.find("deadlineMs"))
            deadlineMs = d->asUint();

        if (op == "run") {
            const JsonValue *cfgv = req.find("config");
            if (!cfgv)
                return wireErrorReply(
                    "run needs a \"config\" object");
            JobRequest jr{configFromJson(*cfgv), priority, deadlineMs};
            Scheduler::Submission sub = scheduler_.submit(jr);
            if (!sub.accepted())
                return wireErrorReply(sub.rejection, /*shed=*/true);
            std::ostringstream os;
            writeJobReply(os, sub.future.get());
            return os.str();
        }

        if (op == "batch") {
            const JsonValue *cfgsv = req.find("configs");
            if (!cfgsv || !cfgsv->isArray())
                return wireErrorReply(
                    "batch needs a \"configs\" array");
            // Admit everything up front so the batch occupies the
            // queue as one burst, then wait in submission order.
            std::vector<Scheduler::Submission> subs;
            subs.reserve(cfgsv->size());
            for (std::size_t i = 0; i < cfgsv->size(); ++i) {
                JobRequest jr{configFromJson(cfgsv->at(i)), priority,
                              deadlineMs};
                subs.push_back(scheduler_.submit(jr));
            }
            std::ostringstream os;
            os << "{\"ok\":true,\"results\":[";
            for (std::size_t i = 0; i < subs.size(); ++i) {
                if (i)
                    os << ",";
                if (!subs[i].accepted())
                    os << wireErrorReply(subs[i].rejection,
                                         /*shed=*/true);
                else
                    writeJobReply(os, subs[i].future.get());
            }
            os << "]}";
            return os.str();
        }
    } catch (const WireError &e) {
        return wireErrorReply(e.what());
    } catch (const JsonError &e) {
        return wireErrorReply(e.what());
    } catch (const std::exception &e) {
        return wireErrorReply(std::string("internal error: ") +
                              e.what());
    }

    return wireErrorReply("unknown op '" + op + "'");
}

} // namespace vcoma
