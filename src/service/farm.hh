/**
 * @file
 * The fault-tolerant simulation farm: a router that spreads the
 * paper's embarrassingly parallel config grid over N vcoma_served
 * worker daemons and keeps sweeps running — byte-identical to a
 * direct local Runner — while workers die, hang, or get partitioned.
 *
 *  - Consistent hashing: ExperimentConfig cache keys map onto a
 *    vnode hash ring over the worker endpoints, so each worker's
 *    in-memory memo stays hot for *its* slice of config space and a
 *    membership change only remaps the keys on the moved arcs.
 *  - Health: a heartbeat thread pings every worker each
 *    heartbeatMs; missThreshold consecutive misses evict it from
 *    routing, a later successful ping re-admits it. A
 *    connection-refused forward evicts immediately (the worker is
 *    gone, not slow); a forward timeout only counts a failure (the
 *    worker may be deep in a long simulation).
 *  - Failover: a run that fails on the ring owner re-routes to the
 *    next live successor, with bounded backoff rounds when every
 *    candidate is down (workers restarting). Re-running a job a dead
 *    worker may have half-finished is safe: simulations are
 *    deterministic and keyed by config, and the shared disk cache is
 *    the durable layer of record — exactly-once *effects* via the
 *    cache, at-least-once execution.
 *  - Batches fan out config-by-config across the ring concurrently,
 *    replies reassembled in submission order.
 *
 * The router speaks the same wire protocol as a worker ("role":
 * "farm" in ping), so vcoma_client needs no farm-specific code path
 * beyond choosing per-config resilient submission (sweep --farm).
 */

#ifndef VCOMA_SERVICE_FARM_HH
#define VCOMA_SERVICE_FARM_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/server.hh"

namespace vcoma
{

/**
 * Consistent-hash ring: each member contributes @p vnodes points
 * (FNV-1a of "endpoint#i"); a key belongs to the member owning the
 * first point clockwise of the key's hash. Immutable after
 * construction — liveness is the router's concern, the ring only
 * answers "whose key is this, and who comes next".
 */
class HashRing
{
  public:
    explicit HashRing(std::vector<std::string> members,
                      unsigned vnodes = 64);

    std::size_t size() const { return members_.size(); }
    const std::string &member(std::size_t i) const
    {
        return members_[i];
    }

    /** The member owning @p key (ignoring liveness). */
    std::size_t owner(const std::string &key) const;

    /**
     * Every member in failover-preference order for @p key: the
     * owner first, then successors clockwise around the ring (each
     * member once).
     */
    std::vector<std::size_t> candidates(const std::string &key) const;

    /** FNV-1a 64-bit with an avalanche finalizer, the ring's (and
     * the vnodes') hash. */
    static std::uint64_t hashKey(std::string_view s);

  private:
    std::vector<std::string> members_;
    /** (point, member index), sorted by point. */
    std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

/** Farm knobs (the vcoma_served --farm command line). */
struct FarmConfig
{
    /** The router's own endpoint (clients connect here). */
    std::string endpoint = "vcoma-farm.sock";
    /** Worker endpoints ($VCOMA_FARM_WORKERS). */
    std::vector<std::string> workers;
    /** Heartbeat period ($VCOMA_HEARTBEAT_MS). */
    std::uint64_t heartbeatMs = 500;
    /** Consecutive heartbeat misses before eviction. */
    unsigned missThreshold = 3;
    /** Forward I/O deadline — bounds a worker deep in a simulation,
     * so it must exceed the longest legitimate job (see
     * ClientOptions::requestTimeoutMs). */
    int forwardTimeoutMs = 300000;
    /** Heartbeat ping deadline (a hung worker misses quickly). */
    int heartbeatTimeoutMs = 1000;
    /** Connect deadline per forward attempt. */
    int connectTimeoutMs = 2000;
    /** Failover rounds over the whole ring before giving up. */
    unsigned forwardRounds = 3;
    /** Backoff between failover rounds: min(cap, base << round). */
    std::uint64_t backoffBaseMs = 100;
    std::uint64_t backoffCapMs = 2000;
    /** Concurrent forwards per batch request. */
    unsigned batchFanout = 8;
    /** Ring points per worker. */
    unsigned vnodes = 64;
    /** Frame cap for client connections. */
    std::size_t maxLineBytes = 1 << 20;
    /** Per-request I/O deadline on client connections. 0 = none. */
    int ioTimeoutMs = 30000;
};

class FarmRouter : public LineServer
{
  public:
    explicit FarmRouter(FarmConfig cfg);
    ~FarmRouter() override;

    std::string handleRequestLine(const std::string &line) override;

    /** Health/traffic snapshot of one worker, for stats and tests. */
    struct WorkerStatus
    {
        std::string endpoint;
        bool alive = true;
        unsigned misses = 0;
        std::uint64_t forwarded = 0; ///< replies relayed
        std::uint64_t failures = 0;  ///< failed forward attempts
    };

    std::vector<WorkerStatus> workerStatus() const;
    const FarmConfig &config() const { return cfg_; }
    const HashRing &ring() const { return ring_; }

    /** Start the heartbeat thread too. */
    void startFarm();

  protected:
    void onDrain() override;

  private:
    struct Worker
    {
        std::string endpoint;
        bool alive = true;
        unsigned misses = 0;
        std::uint64_t forwarded = 0;
        std::uint64_t failures = 0;
    };

    static ListenerConfig listenerOf(const FarmConfig &cfg);

    void heartbeatLoop();
    /** Candidates for @p key with live workers first. */
    std::vector<std::size_t> routeOrder(const std::string &key) const;
    /** Forward one request line to @p idx; throws on transport
     * failure. */
    std::string forwardTo(std::size_t idx, const std::string &line,
                          int timeoutMs);
    /** Route one run request by config key, with failover. */
    std::string routeRun(const std::string &key,
                         const std::string &line);
    void noteForwardOk(std::size_t idx);
    void noteForwardFailure(std::size_t idx, bool workerGone);
    std::string handleStats();
    std::string handleCancel(const std::string &key);
    void forwardShutdownToWorkers();

    FarmConfig cfg_;
    HashRing ring_;

    mutable std::mutex workersMutex_;
    std::vector<Worker> workers_;

    std::mutex backoffMutex_;
    Rng backoffRng_;

    std::thread heartbeatThread_;
    std::atomic<bool> heartbeatStop_{false};

    /** @{ @name Router counters (guarded by workersMutex_) */
    std::uint64_t routed_ = 0;    ///< jobs answered by a worker
    std::uint64_t rerouted_ = 0;  ///< jobs that needed failover
    std::uint64_t unrouted_ = 0;  ///< jobs no worker could serve
    std::uint64_t evictions_ = 0; ///< alive -> dead transitions
    /** @} */
};

} // namespace vcoma

#endif // VCOMA_SERVICE_FARM_HH
