/**
 * @file
 * Socket transport shared by the service's server, client, and farm
 * router: endpoint parsing (AF_UNIX paths and "tcp:host:port"
 * AF_INET addresses), listen/connect with deadlines, EINTR- and
 * partial-write-safe I/O loops, per-request kernel I/O timeouts
 * (SO_RCVTIMEO/SO_SNDTIMEO), and bounded line framing so a
 * misbehaving peer can never grow a read buffer without limit.
 *
 * Every helper reports failure through a status code or a typed
 * exception (ServiceTimeout, ServiceIoError) rather than killing the
 * process: a peer reset is an error to recover from, not a crash.
 */

#ifndef VCOMA_SERVICE_TRANSPORT_HH
#define VCOMA_SERVICE_TRANSPORT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace vcoma
{

/** Connection-level I/O failure: peer closed, reset, refused. */
class ServiceIoError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A send/recv deadline expired (the peer is hung or overloaded). */
class ServiceTimeout : public ServiceIoError
{
  public:
    using ServiceIoError::ServiceIoError;
};

/**
 * One service address: a Unix-domain socket path or an AF_INET
 * "tcp:host:port" pair. Everything that binds or connects parses its
 * endpoint string through here, so the daemon, the client and the
 * farm router all accept the same spellings.
 */
struct Endpoint
{
    enum class Kind : std::uint8_t { Unix, Tcp };
    Kind kind = Kind::Unix;
    /** AF_UNIX socket path (Kind::Unix). */
    std::string path;
    /** AF_INET host, numeric or resolvable (Kind::Tcp). */
    std::string host;
    /** AF_INET port; 0 asks the kernel for one (Kind::Tcp). */
    std::uint16_t port = 0;

    /** Canonical string form ("path" or "tcp:host:port"). */
    std::string str() const;
};

/**
 * Parse an endpoint spec: "tcp:HOST:PORT" (or "tcp://HOST:PORT")
 * is AF_INET, "unix:PATH" or any other string is an AF_UNIX path.
 * Throws FatalError on a malformed TCP spec (bad port, empty host).
 */
Endpoint parseEndpoint(const std::string &spec);

/** Ignore SIGPIPE process-wide (idempotent). A peer that resets its
 * connection must surface as a send error, not kill the process. */
void ignoreSigpipe();

/**
 * Bind and listen on @p ep. Replaces a stale socket file (Unix) and
 * sets SO_REUSEADDR (TCP). Returns the listening fd; throws
 * FatalError on failure.
 */
int listenEndpoint(const Endpoint &ep, int backlog = 64);

/**
 * The endpoint actually bound by @p fd — resolves a TCP port-0 bind
 * to the kernel-assigned port (and a wildcard host to 127.0.0.1 so
 * the result is connectable). For Unix endpoints, returns @p ep.
 */
Endpoint boundEndpoint(int fd, const Endpoint &ep);

/**
 * Connect to @p ep, retrying until @p timeoutMs elapses (a daemon
 * still binding its socket wins the race; a SYN to a dropped peer is
 * bounded by the same deadline via a non-blocking connect). Returns
 * the connected fd, or -1 with the failure text in @p error.
 */
int tryConnectEndpoint(const Endpoint &ep, int timeoutMs,
                       std::string *error = nullptr);

/**
 * Arm kernel I/O deadlines on @p fd: a send() blocked longer than
 * @p sendTimeoutMs or a recv() idle longer than @p recvTimeoutMs
 * fails with EAGAIN instead of blocking forever. 0 disables a
 * direction.
 */
void setIoDeadlines(int fd, int sendTimeoutMs, int recvTimeoutMs);

/** Outcome of a low-level socket operation. */
enum class IoStatus : std::uint8_t
{
    Ok,
    Closed,   ///< orderly shutdown or broken pipe
    TimedOut, ///< an armed SO_*TIMEO deadline expired
    Error,    ///< any other errno
};

/**
 * Send all of @p data: EINTR-safe, partial-write-safe, MSG_NOSIGNAL.
 * Honours an armed SO_SNDTIMEO (returns IoStatus::TimedOut).
 */
IoStatus sendAll(int fd, std::string_view data);

/**
 * Receive some bytes into @p out (appended), EINTR-safe. Returns
 * Ok/Closed/TimedOut/Error; Ok guarantees at least one byte arrived.
 */
IoStatus recvSome(int fd, std::string &out);

/**
 * Newline framing with a hard per-line cap. Feed raw bytes with
 * append(); drain frames with next(). A line longer than the cap is
 * discarded (the reader skips to the next newline) and reported once
 * as Next::Overlong so the protocol layer can answer with an
 * explicit error instead of buffering without bound.
 */
class LineBuffer
{
  public:
    explicit LineBuffer(std::size_t maxLineBytes)
        : maxLine_(maxLineBytes)
    {
    }

    void append(const char *data, std::size_t n)
    {
        pending_.append(data, n);
    }

    enum class Next : std::uint8_t
    {
        Line,     ///< @p line holds one complete frame
        Need,     ///< no complete frame buffered yet
        Overlong, ///< a frame exceeded the cap and was discarded
    };

    Next next(std::string &line);

    /** Bytes of an incomplete frame are buffered (or being skipped):
     * a peer stalled mid-line, relevant for idle-deadline checks. */
    bool midLine() const { return !pending_.empty() || skipping_; }

    std::size_t maxLineBytes() const { return maxLine_; }

  private:
    std::size_t maxLine_;
    std::string pending_;
    bool skipping_ = false;
};

/** Milliseconds on the steady clock (deadline arithmetic). */
std::uint64_t steadyMs();

} // namespace vcoma

#endif // VCOMA_SERVICE_TRANSPORT_HH
