/**
 * @file
 * The simulation service's job scheduler: a bounded priority/FIFO
 * queue in front of one shared Runner.
 *
 *  - Admission control: a submit that would push the queue past its
 *    capacity is rejected immediately with a backpressure message —
 *    the caller sheds load instead of hanging.
 *  - Deduplication: identical in-flight configs collapse onto one
 *    job; every waiter shares the same future, so one simulation fans
 *    out to all of them (the paper's DLB sharing/prefetching argument
 *    replayed at the service layer). Dedup joins bypass admission —
 *    they add no queue entry.
 *  - Deadlines: a job still queued past its deadline is shed when a
 *    worker pops it. Deadline arithmetic saturates (saturatingAdd),
 *    so a malformed huge deadline pins at "never" instead of wrapping
 *    into the past.
 *  - Cancellation: queued jobs can be cancelled by config key; a job
 *    already executing runs to completion (a simulation is atomic —
 *    its result still warms the cache) and cancellation resolves the
 *    waiters, not the run.
 *  - Graceful drain: drain() stops admission, lets every queued job
 *    finish, then parks the workers. The destructor drains.
 *
 * Thread safety: every public method may be called from any thread.
 */

#ifndef VCOMA_SERVICE_SCHEDULER_HH
#define VCOMA_SERVICE_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "harness/runner.hh"

namespace vcoma
{

/** One job request as admitted from the wire. */
struct JobRequest
{
    ExperimentConfig config;
    /** Larger runs first among queued jobs; FIFO within a priority. */
    int priority = 0;
    /** Shed if still queued this many ms after submit; 0 = none. */
    std::uint64_t deadlineMs = 0;
};

/** Terminal state of one job. */
enum class JobStatus : std::uint8_t
{
    Done,      ///< stats is valid
    Failed,    ///< the simulation failed; error holds the reason
    Shed,      ///< never ran: queue full or deadline passed
    Cancelled, ///< never ran: cancelled while queued
};

/** What a waiter receives. */
struct JobResult
{
    JobStatus status = JobStatus::Failed;
    /** Valid for the Runner's lifetime when status == Done. */
    const RunStats *stats = nullptr;
    std::string error;
    /** Done without a fresh simulation (memo/disk cache). */
    bool cached = false;
};

/** A snapshot of the service counters for the /stats reply. */
struct SchedulerStats
{
    std::size_t queueDepth = 0;
    std::size_t queueCapacity = 0;
    unsigned workers = 0;
    std::uint64_t submitted = 0;    ///< admitted jobs (dedup joins excluded)
    std::uint64_t served = 0;       ///< jobs resolved Done
    std::uint64_t failed = 0;       ///< jobs resolved Failed
    std::uint64_t shedQueueFull = 0;
    std::uint64_t shedDeadline = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t dedupJoins = 0;   ///< submits that joined an in-flight job
    std::uint64_t cacheHits = 0;    ///< Done jobs served without simulating
    std::uint64_t executed = 0;     ///< Runner::executed() at snapshot time
    /** Submit-to-resolve wall latency of Done/Failed jobs, in ms. */
    DistSummary latencyMs;
    double latencyP50Ms = 0.0;
    double latencyP90Ms = 0.0;
    double latencyP99Ms = 0.0;

    std::uint64_t shed() const { return shedQueueFull + shedDeadline; }
};

/** Serialise a snapshot as one JSON object (no trailing newline). */
void writeSchedulerStatsJson(std::ostream &os, const SchedulerStats &s);

class Scheduler
{
  public:
    /** Outcome of submit(): either a shared future or a rejection. */
    struct Submission
    {
        /** Valid iff the job was admitted (or joined). */
        std::shared_future<JobResult> future;
        /** This submit joined an already in-flight identical config. */
        bool deduplicated = false;
        /** Non-empty iff rejected at admission (backpressure). */
        std::string rejection;

        bool accepted() const { return rejection.empty(); }
    };

    /**
     * @param runner   shared runner (owns the warm caches)
     * @param capacity max queued (not yet executing) jobs
     * @param workers  executor threads; 0 = Runner::envJobs()
     */
    Scheduler(Runner &runner, std::size_t capacity, unsigned workers = 0);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Admit, join, or reject @p req (never blocks on the queue). */
    Submission submit(const JobRequest &req);

    /**
     * Cancel every *queued* job whose config key is @p key; their
     * waiters resolve with JobStatus::Cancelled.
     * @return the number of jobs cancelled.
     */
    unsigned cancel(const std::string &key);

    /**
     * Stop admitting, run every queued job to completion, park the
     * workers. Idempotent; submit() after drain() rejects.
     */
    void drain();

    /** Queued (not yet popped) jobs right now. */
    std::size_t depth() const;

    /** Counter snapshot (consistent under one lock). */
    SchedulerStats stats() const;

  private:
    struct Job
    {
        JobRequest req;
        std::string key;
        std::uint64_t seq = 0;
        std::uint64_t submitMs = 0;
        std::uint64_t deadlineAtMs = 0; ///< saturated absolute deadline
        bool cancelled = false;
        std::promise<JobResult> promise;
        std::shared_future<JobResult> future;
    };

    void workerLoop();
    /** Pop the best queued job; caller holds the lock. */
    std::shared_ptr<Job> popLocked();
    void resolve(const std::shared_ptr<Job> &job, JobResult result);
    static std::uint64_t nowMs();

    Runner &runner_;
    const std::size_t capacity_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_;  ///< workers wait for jobs
    std::condition_variable idleCv_;  ///< drain waits for quiescence
    std::deque<std::shared_ptr<Job>> queue_;
    /** Queued or executing job per config key (dedup target). */
    std::map<std::string, std::shared_ptr<Job>> inflight_;
    std::vector<std::thread> workers_;
    unsigned executing_ = 0;
    std::uint64_t nextSeq_ = 0;
    bool draining_ = false;
    bool stopping_ = false;

    /** @{ @name Counters (guarded by mutex_) */
    std::uint64_t submitted_ = 0;
    std::uint64_t served_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t shedQueueFull_ = 0;
    std::uint64_t shedDeadline_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t dedupJoins_ = 0;
    std::uint64_t cacheHits_ = 0;
    Distribution latencyMs_;
    /** Ring of recent latencies for the percentile estimates. */
    std::vector<double> latencyRing_;
    std::size_t latencyRingNext_ = 0;
    /** @} */
};

} // namespace vcoma

#endif // VCOMA_SERVICE_SCHEDULER_HH
