#include "service/wire.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/json.hh"
#include "translation/scheme.hh"

namespace vcoma
{

std::string
wireErrorReply(const std::string &message, bool shed)
{
    std::ostringstream os;
    os << "{\"ok\":false";
    if (shed)
        os << ",\"shed\":true";
    os << ",\"error\":\"" << jsonEscape(message) << "\"}";
    return os.str();
}

Scheme
parseSchemeToken(const std::string &token)
{
    // The registry owns the accepted spellings; the wire layer only
    // adds its error type (a bad remote config must never fatal() the
    // daemon).
    Scheme s;
    if (!tryParseScheme(token, s))
        throw WireError("unknown scheme '" + token + "'");
    return s;
}

void
writeConfigJson(std::ostream &os, const ExperimentConfig &cfg)
{
    os << "{\"workload\":\"" << jsonEscape(cfg.workload) << "\""
       << ",\"scheme\":\"" << schemeName(cfg.scheme) << "\""
       << ",\"tlbEntries\":" << cfg.tlbEntries
       << ",\"tlbAssoc\":" << cfg.tlbAssoc
       << ",\"timedTranslation\":"
       << (cfg.timedTranslation ? "true" : "false")
       << ",\"writebacksAccessTlb\":"
       << (cfg.writebacksAccessTlb ? "true" : "false")
       << ",\"raytraceV2\":" << (cfg.raytraceV2 ? "true" : "false")
       << ",\"nodes\":" << cfg.nodes;
    // %.17g-style shortest exact form matters less here than for the
    // stats sheets, but the scale still has to survive a round trip
    // bit for bit or the config key (and thus the cache) changes.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", cfg.scale);
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[32];
        std::snprintf(shorter, sizeof shorter, "%.*g", prec, cfg.scale);
        if (std::strtod(shorter, nullptr) == cfg.scale) {
            std::snprintf(buf, sizeof buf, "%s", shorter);
            break;
        }
    }
    os << ",\"scale\":" << buf << ",\"seed\":" << cfg.seed
       << ",\"amAssoc\":" << cfg.amAssoc
       << ",\"xlatPenalty\":" << cfg.xlatPenalty;
    if (!cfg.injectFault.empty())
        os << ",\"injectFault\":\"" << jsonEscape(cfg.injectFault)
           << "\"";
    os << "}";
}

namespace
{

std::uint64_t
uintField(const JsonValue &v, const char *name)
{
    try {
        return v.asUint();
    } catch (const JsonError &e) {
        throw WireError(std::string("config field '") + name +
                        "': " + e.what());
    }
}

bool
boolField(const JsonValue &v, const char *name)
{
    if (!v.isBool())
        throw WireError(std::string("config field '") + name +
                        "' must be a boolean");
    return v.asBool();
}

} // namespace

ExperimentConfig
configFromJson(const JsonValue &v)
{
    if (!v.isObject())
        throw WireError("config must be a JSON object");
    ExperimentConfig cfg;
    for (const auto &[key, val] : v.asObject()) {
        if (key == "workload") {
            if (!val.isString())
                throw WireError("config field 'workload' must be a "
                                "string");
            cfg.workload = val.asString();
        } else if (key == "scheme") {
            if (!val.isString())
                throw WireError("config field 'scheme' must be a "
                                "string");
            cfg.scheme = parseSchemeToken(val.asString());
        } else if (key == "tlbEntries") {
            cfg.tlbEntries =
                static_cast<unsigned>(uintField(val, "tlbEntries"));
        } else if (key == "tlbAssoc") {
            cfg.tlbAssoc =
                static_cast<unsigned>(uintField(val, "tlbAssoc"));
        } else if (key == "timedTranslation") {
            cfg.timedTranslation = boolField(val, "timedTranslation");
        } else if (key == "writebacksAccessTlb") {
            cfg.writebacksAccessTlb =
                boolField(val, "writebacksAccessTlb");
        } else if (key == "raytraceV2") {
            cfg.raytraceV2 = boolField(val, "raytraceV2");
        } else if (key == "nodes") {
            cfg.nodes = static_cast<unsigned>(uintField(val, "nodes"));
        } else if (key == "scale") {
            if (!val.isNumber())
                throw WireError("config field 'scale' must be a "
                                "number");
            const double s = val.asNumber();
            if (!std::isfinite(s) || s <= 0)
                throw WireError("config field 'scale' must be finite "
                                "and positive");
            cfg.scale = s;
        } else if (key == "seed") {
            cfg.seed = uintField(val, "seed");
        } else if (key == "amAssoc") {
            cfg.amAssoc =
                static_cast<unsigned>(uintField(val, "amAssoc"));
        } else if (key == "xlatPenalty") {
            cfg.xlatPenalty = uintField(val, "xlatPenalty");
        } else if (key == "injectFault") {
            if (!val.isString())
                throw WireError("config field 'injectFault' must be a "
                                "string");
            cfg.injectFault = val.asString();
        } else {
            throw WireError("unknown config field '" + key + "'");
        }
    }
    return cfg;
}

} // namespace vcoma
