#include "service/chaos.hh"

#include <cstdlib>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"

namespace vcoma
{

std::string
ChaosSpec::describe() const
{
    if (!enabled)
        return "off";
    std::ostringstream os;
    os << "seed=" << seed << " drop=" << dropP << " delay=" << delayP
       << " delay-ms=" << delayMs << " kill=" << killP;
    return os.str();
}

namespace
{

double
probability(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (value.empty() || *end != '\0' || !(p >= 0.0) || p > 1.0)
        fatal("chaos spec: '", key, "=", value,
              "' is not a probability in [0,1]");
    return p;
}

std::uint64_t
counting(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0')
        fatal("chaos spec: '", key, "=", value,
              "' is not a non-negative integer");
    return v;
}

} // namespace

ChaosSpec
parseChaosSpec(const std::string &spec)
{
    ChaosSpec out;
    out.enabled = true;
    if (spec.find('=') == std::string::npos) {
        // Bare truthy value: mild connection chaos, never self-kill.
        out.dropP = 0.02;
        out.delayP = 0.05;
        return out;
    }
    std::istringstream is(spec);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            fatal("chaos spec: '", item, "' is not key=value");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "seed")
            out.seed = counting(key, value);
        else if (key == "drop")
            out.dropP = probability(key, value);
        else if (key == "delay")
            out.delayP = probability(key, value);
        else if (key == "delay-ms" || key == "delayms")
            out.delayMs = counting(key, value);
        else if (key == "kill")
            out.killP = probability(key, value);
        else
            fatal("chaos spec: unknown key '", key, "'");
    }
    return out;
}

ChaosSpec
chaosSpecFromEnv()
{
    const char *s = std::getenv("VCOMA_CHAOS");
    if (!s || !*s)
        return {};
    const std::string spec(s);
    if (spec.find('=') == std::string::npos && !envTruthy("VCOMA_CHAOS"))
        return {};
    return parseChaosSpec(spec);
}

} // namespace vcoma
