/**
 * @file
 * Error-reporting helpers in the gem5 idiom: panic() for internal
 * simulator bugs (aborts), fatal() for user/configuration errors
 * (clean exit), warn()/inform() for status messages.
 */

#ifndef VCOMA_COMMON_LOGGING_HH
#define VCOMA_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace vcoma
{

/** Thrown by panic(): a condition that indicates a simulator bug. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Thrown by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace detail
{

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an internal inconsistency that should never happen regardless
 * of configuration. Throws PanicError so tests can assert on it.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError("panic: " + detail::concat(args...));
}

/**
 * Report a condition caused by bad user input (configuration,
 * arguments) that prevents the simulation from continuing.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError("fatal: " + detail::concat(args...));
}

/** Warn about suspicious-but-survivable conditions. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::fprintf(stderr, "warn: %s\n", detail::concat(args...).c_str());
}

/** Plain status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::fprintf(stderr, "info: %s\n", detail::concat(args...).c_str());
}

/** panic() unless @p cond holds. */
#define VCOMA_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond))                                                       \
            ::vcoma::panic("assertion failed: ", #cond, " ", __FILE__,     \
                           ":", __LINE__);                                 \
    } while (0)

} // namespace vcoma

#endif // VCOMA_COMMON_LOGGING_HH
