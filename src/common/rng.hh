/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * The paper uses random replacement for the fully associative TLB/DLB
 * and random forwarding for block injection. Simulation results must
 * be reproducible run-to-run, so every component that needs randomness
 * owns one of these seeded generators instead of sharing global state.
 */

#ifndef VCOMA_COMMON_RNG_HH
#define VCOMA_COMMON_RNG_HH

#include <cstdint>

namespace vcoma
{

/**
 * SplitMix64-seeded xorshift* generator. Small, fast, deterministic,
 * and adequate for replacement-victim selection.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 step to avoid weak (e.g. zero) seeds.
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        state_ = z ^ (z >> 31);
        if (state_ == 0)
            state_ = 0x2545f4914f6cdd1dULL;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dULL;
    }

    /**
     * Uniform value in [0, bound); @p bound must be non-zero.
     *
     * Lemire's multiply-shift rejection method: `next() % bound`
     * would over-weight the low residues whenever 2^64 is not a
     * multiple of @p bound (for bound = 3<<62 the first quarter of
     * the range is twice as likely), which skewed every
     * non-power-of-two draw — victim selection, UNIFORM's address
     * draws, the datacenter kernels' Zipf tables. The rejection loop
     * discards just enough of the 64-bit space to make every value
     * exactly equally likely; it iterates at most once in
     * expectation.
     */
    std::uint64_t
    below(std::uint64_t bound)
    {
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                m = static_cast<unsigned __int128>(next()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
};

} // namespace vcoma

#endif // VCOMA_COMMON_RNG_HH
