#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vcoma
{

namespace
{

std::string
describePosition(std::string_view text, std::size_t pos)
{
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
        if (text[i] == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
    }
    return "line " + std::to_string(line) + ", column " + std::to_string(col);
}

} // namespace

/** Recursive-descent parser over a string_view. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw JsonError("JSON parse error at " +
                        describePosition(text_, pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue
    value()
    {
        skipWs();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return boolean(true);
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return boolean(false);
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
          default:
            return number();
        }
    }

    static JsonValue
    boolean(bool b)
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Bool;
        v.bool_ = b;
        return v;
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected object key");
            JsonValue key = string();
            skipWs();
            expect(':');
            v.object_.emplace_back(key.string_, value());
            skipWs();
            const char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array_.push_back(value());
            skipWs();
            const char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    unsigned
    hex4()
    {
        unsigned out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            ++pos_;
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad \\u escape");
        }
        return out;
    }

    void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    JsonValue
    string()
    {
        expect('"');
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c == '\\') {
                c = peek();
                ++pos_;
                switch (c) {
                  case '"': v.string_ += '"'; break;
                  case '\\': v.string_ += '\\'; break;
                  case '/': v.string_ += '/'; break;
                  case 'b': v.string_ += '\b'; break;
                  case 'f': v.string_ += '\f'; break;
                  case 'n': v.string_ += '\n'; break;
                  case 'r': v.string_ += '\r'; break;
                  case 't': v.string_ += '\t'; break;
                  case 'u': {
                    unsigned cp = hex4();
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // Surrogate pair.
                        if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                            text_[pos_ + 1] == 'u') {
                            pos_ += 2;
                            const unsigned lo = hex4();
                            if (lo < 0xDC00 || lo > 0xDFFF)
                                fail("bad low surrogate");
                            cp = 0x10000 + ((cp - 0xD800) << 10) +
                                 (lo - 0xDC00);
                        } else {
                            fail("lone high surrogate");
                        }
                    }
                    appendUtf8(v.string_, cp);
                    break;
                  }
                  default:
                    fail("bad escape");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
            } else {
                v.string_ += c;
            }
        }
    }

    JsonValue
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        const auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        const std::size_t intStart = pos_;
        if (digits() == 0)
            fail("expected number");
        // RFC 8259: no leading zeros ("01" is two tokens, not a number).
        if (pos_ - intStart > 1 && text_[intStart] == '0')
            fail("leading zero in number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                fail("expected fraction digits");
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                fail("expected exponent digits");
        }
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        v.number_ = std::strtod(std::string(text_.substr(start, pos_ - start))
                                    .c_str(),
                                nullptr);
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

JsonValue
JsonValue::parse(std::string_view text)
{
    return JsonParser(text).document();
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        throw JsonError("value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        throw JsonError("value is not a number");
    return number_;
}

std::uint64_t
JsonValue::asUint() const
{
    const double n = asNumber();
    if (n < 0.0 || n != std::floor(n))
        throw JsonError("number is not a non-negative integer");
    return static_cast<std::uint64_t>(n);
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        throw JsonError("value is not a string");
    return string_;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    throw JsonError("value has no size");
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    if (kind_ != Kind::Array)
        throw JsonError("value is not an array");
    if (i >= array_.size())
        throw JsonError("array index out of range");
    return array_[i];
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        throw JsonError("value is not an object");
    for (const auto &[k, v] : object_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throw JsonError("missing object key: " + key);
    return *v;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (kind_ != Kind::Array)
        throw JsonError("value is not an array");
    return array_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::asObject() const
{
    if (kind_ != Kind::Object)
        throw JsonError("value is not an object");
    return object_;
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace vcoma
