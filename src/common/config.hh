/**
 * @file
 * Machine configuration for the simulated COMA multiprocessor.
 *
 * Defaults reproduce the baseline architecture of Section 5.1 of the
 * paper: 32 nodes of 200 MHz processors, 16 KB direct-mapped
 * write-through FLC (32 B blocks), 64 KB 4-way write-back SLC (64 B
 * blocks), 4 MB 4-way attraction memory (128 B blocks), 4 KB pages,
 * an 8-bit 100 MHz crossbar (16-cycle requests, 272-cycle block
 * messages in processor cycles) and a 40-cycle TLB/DLB miss service.
 */

#ifndef VCOMA_COMMON_CONFIG_HH
#define VCOMA_COMMON_CONFIG_HH

#include <cstdint>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace vcoma
{

/** Geometry and policies of one cache level. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 0;
    /** Associativity (1 = direct mapped). */
    unsigned assoc = 1;
    /** Block size in bytes. */
    unsigned blockBytes = 32;
    /** Write-through (true) or write-back (false). */
    bool writeThrough = false;
    /** Allocate a block on a write miss. */
    bool writeAllocate = true;

    /** Number of sets. */
    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(assoc) * blockBytes);
    }

    /** Total number of block frames. */
    std::uint64_t
    numBlocks() const
    {
        return sizeBytes / blockBytes;
    }

    /** Sanity-check the geometry; fatal() on bad user input. */
    void
    validate(const char *name) const
    {
        if (sizeBytes == 0 || !isPowerOf2(sizeBytes))
            fatal(name, ": size must be a non-zero power of two");
        if (!isPowerOf2(blockBytes))
            fatal(name, ": block size must be a power of two");
        if (assoc == 0 || numSets() == 0 || !isPowerOf2(numSets()))
            fatal(name, ": sets must be a non-zero power of two");
    }
};

/** Latency/occupancy model (all values in 200 MHz processor cycles). */
struct TimingConfig
{
    /** FLC hit: no latency charge (Section 5.1). */
    Cycles flcHit = 0;
    /** SLC hit. */
    Cycles slcHit = 6;
    /** Attraction-memory access (hit at the local node). */
    Cycles amHit = 74;
    /** 8-byte request message on the crossbar. */
    Cycles requestMsg = 16;
    /** Message carrying a memory block. */
    Cycles blockMsg = 272;
    /** TLB or DLB miss service (page-table walk / refill). */
    Cycles translationMiss = 40;
    /** Directory lookup at the home node's protocol engine. */
    Cycles directoryLookup = 20;
    /** Protocol-engine occupancy per handled transaction. */
    Cycles peOccupancy = 16;
    /** Fixed cost charged per barrier episode once all have arrived. */
    Cycles barrierRelease = 100;
    /** Cost of an uncontended lock acquire/release pair. */
    Cycles lockTransfer = 40;
    /** AM tag check discovering a local-node miss. */
    Cycles amTagCheck = 20;
    /** Disk service for a page fault (0: preloaded data sets). */
    Cycles pageFault = 0;
};

/** Where the dynamic address translation mechanism is placed. */
enum class Scheme : std::uint8_t
{
    L0,       ///< classic TLB before the FLC; all levels physical
    L1,       ///< TLB between virtual FLC and physical SLC
    L2,       ///< TLB between virtual SLC and physical attraction memory
    L3,       ///< TLB on local-node (attraction memory) miss
    VCOMA,    ///< no TLB; DLB at the home node inside the protocol
    VICTIMA,  ///< L0 TLB that spills victim entries into SLC frames
    NMT,      ///< near-memory translation computed at the home node
};

/**
 * Human-readable scheme name as used in the paper's tables and in
 * Runner cache keys. Defined by the scheme registry
 * (translation/scheme.cc); fatal() on a value outside the registry so
 * a corrupted or future-version config can never collide cache
 * entries or render "?" columns.
 */
const char *schemeName(Scheme s);

/**
 * True iff the scheme indexes the attraction memory virtually.
 * Answered by the registry's SchemeTraits (the single source of
 * truth); kept as a convenience wrapper for config-level callers.
 */
bool schemeUsesVirtualAm(Scheme s);

/** Configuration of the (single) configured TLB or DLB in timed runs. */
struct TranslationConfig
{
    Scheme scheme = Scheme::VCOMA;
    /** Entry count of the TLB (per node) or DLB (per home node). */
    unsigned entries = 8;
    /** Associativity; 0 means fully associative. */
    unsigned assoc = 0;
    /**
     * Whether SLC write-backs consult the L2 TLB. The paper's
     * "L2-TLB/no_wback" variant stores physical pointers in the
     * virtual SLC so write-backs bypass translation (Section 2.2.2).
     */
    bool writebacksAccessTlb = true;
};

/** Full machine description. */
struct MachineConfig
{
    /** Number of processing nodes (one processor per node). */
    unsigned numNodes = 32;
    /** Page size in bytes. */
    unsigned pageBytes = 4096;
    /** First-level cache. */
    CacheConfig flc{16 * 1024, 1, 32, /*writeThrough=*/true,
                    /*writeAllocate=*/false};
    /** Second-level cache. */
    CacheConfig slc{64 * 1024, 4, 64, /*writeThrough=*/false,
                    /*writeAllocate=*/true};
    /** Attraction memory (the COMA "main memory" cache). */
    CacheConfig am{4 * 1024 * 1024, 4, 128, /*writeThrough=*/false,
                   /*writeAllocate=*/true};
    /** Latency model. */
    TimingConfig timing{};
    /** Translation mechanism for timed runs. */
    TranslationConfig translation{};
    /** Seed for all derived deterministic RNG streams. */
    std::uint64_t seed = 1;
    /**
     * Charge the configured TLB/DLB's miss penalty on the timed path.
     * Miss-count studies (Figures 8/9, Tables 2/3) disable this so
     * every scheme sees identical interleavings; timed studies
     * (Table 4, Figure 10) enable it.
     */
    bool timedTranslation = true;
    /**
     * Coherence self-check level: 0 = off, 1 = verify versions at
     * attraction-memory/protocol touch points, 2 = verify on every
     * processor reference (slow; used by tests).
     */
    unsigned checkLevel = 1;
    /**
     * Multiplier applied to the busy cycles workloads attach to each
     * reference: models the instructions and private accesses between
     * shared references (the paper simulates shared accesses only).
     */
    Cycles busyScale = 10;
    /**
     * Period, in cycles, at which the protocol engines reset the
     * page reference bits (Section 4.1); 0 disables the daemon.
     */
    Cycles refBitDecayPeriod = 0;
    /**
     * Memory-pressure threshold above which the page daemon would
     * start swapping (Section 4.3). Data sets are preloaded in all
     * paper experiments, so this only gates allocation-time checks.
     */
    double pressureThreshold = 1.0;
    /**
     * Coherence-sanitizer sweep interval, in retired references
     * (protocol transitions are weighted in): the machine walks the
     * directory, attraction memories, translation structures and
     * pressure accounting and panics on any violated invariant.
     * 0 disables the sanitizer; a set VCOMA_CHECK environment
     * variable supplies the value when this field is 0.
     */
    std::uint64_t invariantCheckInterval = 0;
    /**
     * Forward-progress watchdog: Machine::run throws WatchdogError
     * with a diagnostic snapshot when no processor retires a memory
     * reference for this many simulated cycles while sync traffic
     * keeps time advancing (livelock). 0 disables the watchdog; a
     * set VCOMA_WATCHDOG environment variable supplies the value
     * when this field is 0.
     */
    Cycles watchdogCycles = 0;
    /**
     * Let the engine resolve FLC/SLC hits through its per-CPU fast
     * filter instead of the full protocol walk. Strictly a simulator
     * speed knob: results are identical either way (the equivalence
     * suite enforces it), so it defaults on. A set VCOMA_FASTPATH
     * environment variable overrides this field.
     */
    bool fastPath = true;

    /** Log2 of the page size. */
    unsigned pageBits() const { return exactLog2(pageBytes); }

    /** Blocks (AM block size) per page: directory-page entry count. */
    unsigned
    blocksPerPage() const
    {
        return pageBytes / am.blockBytes;
    }

    /** Number of global page sets ("colours", Section 3.4). */
    std::uint64_t
    numGlobalPageSets() const
    {
        return am.numSets() * am.blockBytes / pageBytes;
    }

    /** Page slots per global page set: P * K (Section 6). */
    std::uint64_t
    globalPageSetCapacity() const
    {
        return static_cast<std::uint64_t>(numNodes) * am.assoc;
    }

    /** Sanity-check the whole configuration. */
    void
    validate() const
    {
        if (numNodes == 0 || !isPowerOf2(numNodes))
            fatal("numNodes must be a power of two (home-node bits)");
        if (!isPowerOf2(pageBytes))
            fatal("page size must be a power of two");
        flc.validate("FLC");
        slc.validate("SLC");
        am.validate("AM");
        if (flc.blockBytes > slc.blockBytes ||
            slc.blockBytes > am.blockBytes) {
            fatal("block sizes must not shrink down the hierarchy");
        }
        if (am.numSets() * am.blockBytes < pageBytes)
            fatal("a page must span at least one full stripe of AM sets");
    }
};

} // namespace vcoma

#endif // VCOMA_COMMON_CONFIG_HH
