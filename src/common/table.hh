/**
 * @file
 * A small column-aligned table printer used by the benchmark harness
 * to emit the paper's tables and figure data series in a readable,
 * diff-friendly form (plain text; also exportable as CSV).
 */

#ifndef VCOMA_COMMON_TABLE_HH
#define VCOMA_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace vcoma
{

/** A text table with a header row and aligned columns. */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the column headers (defines the column count). */
    void header(std::vector<std::string> cols);

    /** Append a row; must match the header width. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with @p prec decimals. */
    static std::string num(double v, int prec = 2);

    /** Append a footnote line printed below the rows. */
    void footnote(std::string text);

    /** Render as aligned plain text. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    const std::string &title() const { return title_; }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> footnotes_;
};

} // namespace vcoma

#endif // VCOMA_COMMON_TABLE_HH
