#include "common/stats.hh"

#include <iomanip>

namespace vcoma
{

void
StatGroup::addCounter(const std::string &name, const Counter &c)
{
    counters_.emplace_back(name, &c);
}

void
StatGroup::addDistribution(const std::string &name, const Distribution &d)
{
    dists_.emplace_back(name, &d);
}

void
StatGroup::addChild(const StatGroup &child)
{
    children_.push_back(&child);
}

void
StatGroup::dump(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    os << pad << name_ << ":\n";
    for (const auto &[name, c] : counters_)
        os << pad << "  " << name << " = " << c->value() << "\n";
    for (const auto &[name, d] : dists_) {
        os << pad << "  " << name << " = {n=" << d->count()
           << " mean=" << std::fixed << std::setprecision(2) << d->mean()
           << " min=" << d->min() << " max=" << d->max() << "}\n";
        os.unsetf(std::ios::floatfield);
    }
    for (const auto *child : children_)
        child->dump(os, indent + 1);
}

} // namespace vcoma
