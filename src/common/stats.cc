#include "common/stats.hh"

#include <iomanip>

#include "common/logging.hh"

namespace vcoma
{

void
StatGroup::checkScalarName(const std::string &name) const
{
    for (const auto &[n, c] : counters_) {
        if (n == name)
            fatal("stat group '", name_, "': duplicate stat name '", name,
                  "'");
    }
    for (const auto &[n, d] : dists_) {
        if (n == name)
            fatal("stat group '", name_, "': duplicate stat name '", name,
                  "'");
    }
}

void
StatGroup::addCounter(const std::string &name, const Counter &c)
{
    checkScalarName(name);
    counters_.emplace_back(name, &c);
}

void
StatGroup::addDistribution(const std::string &name, const Distribution &d)
{
    checkScalarName(name);
    dists_.emplace_back(name, &d);
}

void
StatGroup::addChild(const StatGroup &child)
{
    for (const auto *g : children_) {
        if (g->name() == child.name())
            fatal("stat group '", name_, "': duplicate child group '",
                  child.name(), "'");
    }
    children_.push_back(&child);
}

void
StatGroup::dump(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    os << pad << name_ << ":\n";
    for (const auto &[name, c] : counters_)
        os << pad << "  " << name << " = " << c->value() << "\n";
    for (const auto &[name, d] : dists_) {
        os << pad << "  " << name << " = {n=" << d->count()
           << " mean=" << std::fixed << std::setprecision(2) << d->mean()
           << " min=" << d->min() << " max=" << d->max() << "}\n";
        os.unsetf(std::ios::floatfield);
    }
    for (const auto *child : children_)
        child->dump(os, indent + 1);
}

} // namespace vcoma
