/**
 * @file
 * A minimal JSON document model and recursive-descent parser, plus a
 * string escaper for writers. This exists so the exporters
 * (sim/run_stats_json, sim/event_trace, bench reports) can be
 * round-trip tested without pulling a third-party JSON dependency
 * into the image.
 *
 * The parser accepts strict RFC 8259 JSON (no comments, no trailing
 * commas). Numbers are held as double, which is exact for the 53-bit
 * integer range — far beyond any counter a run of this simulator
 * produces.
 */

#ifndef VCOMA_COMMON_JSON_HH
#define VCOMA_COMMON_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vcoma
{

/** Thrown on malformed JSON text or a wrong-kind accessor. */
class JsonError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One parsed JSON value (null / bool / number / string / array / object). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    /** Parse a complete JSON document; throws JsonError on bad input. */
    static JsonValue parse(std::string_view text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const;
    double asNumber() const;
    /** Number as a non-negative integer; throws if negative/fractional. */
    std::uint64_t asUint() const;
    const std::string &asString() const;

    /** Array element count or object member count. */
    std::size_t size() const;

    /** Array element access; throws on out-of-range or non-array. */
    const JsonValue &at(std::size_t i) const;

    /** Object member lookup; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;
    /** Object member access; throws JsonError when absent. */
    const JsonValue &at(const std::string &key) const;

    const std::vector<JsonValue> &asArray() const;
    const std::vector<std::pair<std::string, JsonValue>> &asObject() const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/**
 * Escape @p s for inclusion inside a JSON string literal (adds no
 * surrounding quotes). Control characters become \\u00XX.
 */
std::string jsonEscape(std::string_view s);

} // namespace vcoma

#endif // VCOMA_COMMON_JSON_HH
