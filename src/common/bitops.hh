/**
 * @file
 * Bit-manipulation helpers used throughout the address-decomposition
 * logic (Figure 6 of the paper) and the cache/TLB indexing code.
 */

#ifndef VCOMA_COMMON_BITOPS_HH
#define VCOMA_COMMON_BITOPS_HH

#include <cassert>
#include <cstdint>

namespace vcoma
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** log2 of a power of two. */
constexpr unsigned
exactLog2(std::uint64_t v)
{
    return floorLog2(v);
}

/** ceil(log2(v)); log2 rounded up for non-powers of two. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** A mask with the low @p n bits set. */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

/**
 * Extract bits [first, first+count) of @p v (LSB = bit 0).
 * @param v     the value to slice
 * @param first lowest bit of the field
 * @param count width of the field
 */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned first, unsigned count)
{
    return (v >> first) & mask(count);
}

/** Round @p v up to the next multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

} // namespace vcoma

#endif // VCOMA_COMMON_BITOPS_HH
