/**
 * @file
 * Lightweight statistics machinery: named scalar counters and simple
 * distributions, grouped so components can register and dump their
 * stats uniformly (in the spirit of the gem5 stats package, scaled to
 * this project).
 */

#ifndef VCOMA_COMMON_STATS_HH
#define VCOMA_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace vcoma
{

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A running distribution: count, sum, min, max. Enough for latency
 * and occupancy summaries without storing samples.
 */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A fixed-bucket histogram over [0, buckets); values beyond the last
 * bucket are clamped. Used e.g. for the Figure 11 pressure profile.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 0) : buckets_(buckets, 0) {}

    void resize(std::size_t buckets) { buckets_.assign(buckets, 0); }

    void
    add(std::size_t bucket, std::uint64_t n = 1)
    {
        if (buckets_.empty())
            return;
        if (bucket >= buckets_.size())
            bucket = buckets_.size() - 1;
        buckets_[bucket] += n;
    }

    std::size_t size() const { return buckets_.size(); }
    std::uint64_t at(std::size_t i) const { return buckets_.at(i); }
    const std::vector<std::uint64_t> &data() const { return buckets_; }

  private:
    std::vector<std::uint64_t> buckets_;
};

/**
 * A group of named stats a component exposes for dumping. Components
 * register references; the group never owns the counters.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a scalar counter under @p name. */
    void addCounter(const std::string &name, const Counter &c);
    /** Register a distribution under @p name. */
    void addDistribution(const std::string &name, const Distribution &d);
    /** Nest a child group. */
    void addChild(const StatGroup &child);

    /** Pretty-print all registered stats, one per line. */
    void dump(std::ostream &os, int indent = 0) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::pair<std::string, const Counter *>> counters_;
    std::vector<std::pair<std::string, const Distribution *>> dists_;
    std::vector<const StatGroup *> children_;
};

} // namespace vcoma

#endif // VCOMA_COMMON_STATS_HH
