/**
 * @file
 * Lightweight statistics machinery: named scalar counters and simple
 * distributions, grouped so components can register and dump their
 * stats uniformly (in the spirit of the gem5 stats package, scaled to
 * this project).
 */

#ifndef VCOMA_COMMON_STATS_HH
#define VCOMA_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace vcoma
{

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A running distribution: count, sum, min, max. Enough for latency
 * and occupancy summaries without storing samples.
 */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A by-value snapshot of a Distribution's moments, for carrying
 * through RunStats, the result cache and the JSON exporter without
 * referencing the live Distribution.
 */
struct DistSummary
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    double mean() const { return count ? sum / count : 0.0; }

    static DistSummary
    of(const Distribution &d)
    {
        return {d.count(), d.sum(), d.min(), d.max()};
    }

    /** Fold another summary in (as if both sample streams merged). */
    void
    merge(const DistSummary &o)
    {
        if (o.count == 0)
            return;
        if (count == 0) {
            *this = o;
            return;
        }
        count += o.count;
        sum += o.sum;
        if (o.min < min)
            min = o.min;
        if (o.max > max)
            max = o.max;
    }
};

/**
 * A fixed-bucket histogram over [0, buckets); values beyond the last
 * bucket still land in the last bucket (so totals stay totals), but
 * the clamped mass is also tracked in overflow() — a profile with a
 * fat final bucket and nonzero overflow is telling you the range was
 * too small, not that the tail genuinely piled up at the edge. Used
 * e.g. for the Figure 11 pressure profile.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 0) : buckets_(buckets, 0) {}

    void
    resize(std::size_t buckets)
    {
        buckets_.assign(buckets, 0);
        overflow_ = 0;
    }

    void
    add(std::size_t bucket, std::uint64_t n = 1)
    {
        if (buckets_.empty())
            return;
        if (bucket >= buckets_.size()) {
            overflow_ += n;
            bucket = buckets_.size() - 1;
        }
        buckets_[bucket] += n;
    }

    std::size_t size() const { return buckets_.size(); }
    std::uint64_t at(std::size_t i) const { return buckets_.at(i); }
    const std::vector<std::uint64_t> &data() const { return buckets_; }
    /** Mass added beyond the last bucket (and clamped into it). */
    std::uint64_t overflow() const { return overflow_; }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
};

/**
 * A group of named stats a component exposes for dumping. Components
 * register references; the group never owns the counters.
 *
 * Lifetime contract: a StatGroup stores raw pointers to the
 * registered Counter/Distribution objects and child groups. Every
 * registered object must outlive the last dump() of this group, and
 * must not move after registration (registering a Counter inside a
 * vector that later reallocates is a dangling pointer). The intended
 * pattern — which machine.cc follows — is to build the whole group
 * tree immediately before dumping, from components whose addresses
 * are stable for the call.
 *
 * Moving a StatGroup is allowed and transfers its registrations (the
 * pointers it holds stay valid — they point at the components, not at
 * the group). The moved-from group is left empty and may be dumped or
 * re-registered without undefined behaviour, but note that any parent
 * that captured the old group's address via addChild() still points
 * at the moved-from (now empty) shell: addChild() after moves, never
 * before. Copying is disabled — a copy would silently alias the
 * registered pointers.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    StatGroup(StatGroup &&other) noexcept { swap(other); }

    StatGroup &
    operator=(StatGroup &&other) noexcept
    {
        if (this != &other) {
            StatGroup tmp(std::move(other));
            swap(tmp);
        }
        return *this;
    }

    /** Register a scalar counter under @p name; fatal on duplicates. */
    void addCounter(const std::string &name, const Counter &c);
    /** Register a distribution under @p name; fatal on duplicates. */
    void addDistribution(const std::string &name, const Distribution &d);
    /** Nest a child group; fatal when a child of that name exists. */
    void addChild(const StatGroup &child);

    /** Pretty-print all registered stats, one per line. */
    void dump(std::ostream &os, int indent = 0) const;

    const std::string &name() const { return name_; }

  private:
    void
    swap(StatGroup &other) noexcept
    {
        name_.swap(other.name_);
        counters_.swap(other.counters_);
        dists_.swap(other.dists_);
        children_.swap(other.children_);
    }

    /** fatal() when @p name is already a counter or distribution. */
    void checkScalarName(const std::string &name) const;

    std::string name_;
    std::vector<std::pair<std::string, const Counter *>> counters_;
    std::vector<std::pair<std::string, const Distribution *>> dists_;
    std::vector<const StatGroup *> children_;
};

} // namespace vcoma

#endif // VCOMA_COMMON_STATS_HH
