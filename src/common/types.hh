/**
 * @file
 * Fundamental scalar types shared by every subsystem of the V-COMA
 * simulator: addresses, cycle counts, node identifiers and the small
 * enumerations that describe memory references.
 */

#ifndef VCOMA_COMMON_TYPES_HH
#define VCOMA_COMMON_TYPES_HH

#include <cstdint>
#include <limits>
#include <string>

namespace vcoma
{

/** A virtual address in the single global segmented address space. */
using VAddr = std::uint64_t;

/**
 * A physical address. Only meaningful in the L0/L1/L2/L3 schemes;
 * V-COMA eliminates the physical address space entirely.
 */
using PAddr = std::uint64_t;

/** A virtual or physical page number (address >> page bits). */
using PageNum = std::uint64_t;

/** Simulated processor clock cycles (200 MHz in the baseline). */
using Cycles = std::uint64_t;

/** A point in simulated time, in processor cycles since reset. */
using Tick = std::uint64_t;

/** Identifies one of the P processing nodes. */
using NodeId = std::uint32_t;

/** Identifies one simulated processor (== its node in this machine). */
using CpuId = std::uint32_t;

/**
 * Saturating addition over the Tick/Cycles domain: a sum that would
 * wrap pins at the maximum instead. Time comparisons (resource
 * next-free times, scheduler deadlines) stay monotonic even when a
 * caller hands in a near-infinite operand, so a malformed huge value
 * can never wrap into the past.
 */
constexpr std::uint64_t
saturatingAdd(std::uint64_t a, std::uint64_t b)
{
    return a > std::numeric_limits<std::uint64_t>::max() - b
               ? std::numeric_limits<std::uint64_t>::max()
               : a + b;
}

/** Sentinel for "no node". */
constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

/** Sentinel for "no address". */
constexpr VAddr invalidAddr = std::numeric_limits<VAddr>::max();

/** The kind of a memory reference issued by a workload thread. */
enum class RefType : std::uint8_t
{
    Read,
    Write,
};

/** Returns "R" or "W" for trace output. */
inline const char *
refTypeName(RefType t)
{
    return t == RefType::Read ? "R" : "W";
}

/**
 * The class of the stream that reaches a translation structure.
 * Demand references are loads/stores filtered down from above;
 * write-backs are dirty evictions, which the paper shows have much
 * poorer locality (the L2-TLB "writeback impact").
 */
enum class StreamClass : std::uint8_t
{
    Demand,
    Writeback,
};

} // namespace vcoma

#endif // VCOMA_COMMON_TYPES_HH
