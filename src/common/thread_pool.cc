#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>

#include "common/logging.hh"

namespace vcoma
{

ThreadPool::ThreadPool(unsigned threads)
{
    threads = std::max(threads, 1u);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping, and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
    }
}

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::max(std::thread::hardware_concurrency(), 1u);
    const char *s = std::getenv("VCOMA_JOBS");
    if (!s)
        return hw;
    // strtoul accepts a leading '-' and wraps it modulo 2^32/2^64,
    // so VCOMA_JOBS=-1 would become the 1024-worker clamp instead of
    // an error. Treat any negative value as unparsable.
    const char *p = s;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    char *end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0' || *p == '-') {
        // runAll() consults this on every batch; warn only once.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("unparsable VCOMA_JOBS='", s, "': using ", hw,
                 " hardware thread(s)");
        return hw;
    }
    if (v == 0)
        return hw;
    return static_cast<unsigned>(std::min<unsigned long>(v, 1024));
}

} // namespace vcoma
