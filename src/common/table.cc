#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace vcoma
{

void
Table::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
Table::row(std::vector<std::string> cells)
{
    if (!header_.empty() && cells.size() != header_.size())
        panic("table '", title_, "': row width ", cells.size(),
              " != header width ", header_.size());
    rows_.push_back(std::move(cells));
}

void
Table::footnote(std::string text)
{
    footnotes_.push_back(std::move(text));
}

std::string
Table::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i]
               << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    for (const auto &f : footnotes_)
        os << "* " << f << "\n";
    os << "\n";
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            os << cells[i] << (i + 1 < cells.size() ? "," : "\n");
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    for (const auto &f : footnotes_)
        os << "# * " << f << "\n";
}

} // namespace vcoma
