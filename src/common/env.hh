/**
 * @file
 * Environment-variable helpers shared by the harness and the machine:
 * boolean knobs (VCOMA_NO_CACHE, VCOMA_STRICT) and numeric-or-boolean
 * knobs that both enable a feature and tune it (VCOMA_CHECK,
 * VCOMA_WATCHDOG).
 */

#ifndef VCOMA_COMMON_ENV_HH
#define VCOMA_COMMON_ENV_HH

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace vcoma
{

/**
 * Is the boolean-ish environment variable @p name set to a truthy
 * value? "", "0", "false", "no" and "off" (any case) are falsy;
 * "1", "true", "yes" and "on" are truthy; anything else warns and
 * counts as truthy (the variable was set, so honour the intent).
 */
inline bool
envTruthy(const char *name)
{
    const char *s = std::getenv(name);
    if (!s)
        return false;
    std::string v(s);
    for (char &c : v)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (v.empty() || v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    if (v != "1" && v != "true" && v != "yes" && v != "on")
        warn(name, "='", s, "' is not a recognised boolean; "
             "treating as enabled");
    return true;
}

/**
 * Numeric-or-boolean environment knob. Unset or falsy values yield 0
 * (feature off); a number greater than 1 (decimal or 0x-prefixed
 * hex, surrounding whitespace tolerated) yields that number; any
 * other truthy value ("1", "true", ...) yields @p enabledDefault.
 * One variable can thus both switch a feature on and tune it
 * (VCOMA_CHECK=1 vs VCOMA_CHECK=256). A value that starts with a
 * number but carries trailing garbage ("5x", "16 pages") is rejected
 * with a warning naming the variable and the ignored suffix, and
 * yields @p enabledDefault — it is never silently misread as a
 * different number.
 */
inline std::uint64_t
envScaledFlag(const char *name, std::uint64_t enabledDefault)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return 0;
    // strtoull accepts a leading '-' and wraps it modulo 2^64, which
    // would silently turn e.g. VCOMA_CHECK=-1 into a huge interval.
    const char *p = s;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    if (*p == '-') {
        warn(name, "='", s, "' is negative; using the default of ",
             enabledDefault);
        return enabledDefault;
    }
    // Base 16 only behind an explicit 0x prefix; a leading zero must
    // not silently switch to octal.
    const int base =
        (p[0] == '0' && (p[1] == 'x' || p[1] == 'X')) ? 16 : 10;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, base);
    if (end != p) {
        const char *rest = end;
        while (std::isspace(static_cast<unsigned char>(*rest)))
            ++rest;
        if (*rest != '\0') {
            warn(name, "='", s, "': trailing '", end,
                 "' is not part of a number; using the default of ",
                 enabledDefault);
            return enabledDefault;
        }
        return v > 1 ? v : (v == 1 ? enabledDefault : 0);
    }
    return envTruthy(name) ? enabledDefault : 0;
}

} // namespace vcoma

#endif // VCOMA_COMMON_ENV_HH
