/**
 * @file
 * A fixed-size worker pool draining one FIFO queue. Deliberately
 * work-stealing-free: tasks start in submission order, so a batch of
 * deterministic, independent jobs (one simulation each) produces the
 * same results regardless of how many workers drain the queue.
 */

#ifndef VCOMA_COMMON_THREAD_POOL_HH
#define VCOMA_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace vcoma
{

class ThreadPool
{
  public:
    /** Spawns @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads = defaultThreads());

    /** Runs every queued task to completion, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue a callable; its result (or exception) is delivered
     * through the returned future.
     */
    template <typename F>
    auto
    submit(F &&f) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(f));
        std::future<R> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.push([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /**
     * Worker count from $VCOMA_JOBS: a positive integer is taken as
     * is, 0 or an unset variable means "one per hardware thread", and
     * anything unparsable warns and falls back to the hardware count.
     */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

} // namespace vcoma

#endif // VCOMA_COMMON_THREAD_POOL_HH
