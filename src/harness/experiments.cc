#include "harness/experiments.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "common/logging.hh"
#include "tlb/shadow_bank.hh"
#include "translation/scheme.hh"
#include "workloads/workload.hh"

namespace vcoma
{

namespace
{

/**
 * The paper's five 1998 placements, from the scheme registry. Every
 * table header below is derived from the same list its row loop
 * iterates (via schemeName), so a list edit can never mislabel a
 * column.
 */
const std::vector<Scheme> &
paperSchemes()
{
    return legacySchemes();
}

/**
 * The "1998 vs modern" showdown line-up: the paper's classic anchor
 * (L0) and winner (V-COMA) against the modern proposals.
 */
const std::vector<Scheme> &
showdownSchemes()
{
    static const std::vector<Scheme> v = [] {
        std::vector<Scheme> out{Scheme::L0, Scheme::VCOMA};
        for (Scheme s : modernSchemes())
            out.push_back(s);
        return out;
    }();
    return v;
}

/**
 * Figure 8's extra column: the L2 variant whose SLC stores physical
 * pointers so write-backs bypass the TLB (Section 2.2.2). Lives next
 * to the row logic that emits it, and the header derives from it.
 */
constexpr const char *l2NoWbackLabel = "L2/no_wback";

/** Cell text for a config whose simulation failed. */
constexpr const char *failedCell = "n/a*";

/**
 * Reads one table cell's stats via Runner::tryRun. A failed config
 * yields nullptr (the caller renders @ref failedCell) and footnotes
 * the table once per config, so one bad simulation skips its cells
 * instead of aborting the whole bench binary.
 */
class CellReader
{
  public:
    CellReader(Runner &runner, Table &table)
        : runner_(runner), table_(table)
    {
    }

    const RunStats *
    operator()(const ExperimentConfig &cfg)
    {
        const RunStats *stats = runner_.tryRun(cfg);
        if (!stats && noted_.insert(cfg.key()).second)
            table_.footnote("n/a: config " + cfg.key() +
                            " failed to simulate");
        return stats;
    }

  private:
    Runner &runner_;
    Table &table_;
    std::set<std::string> noted_;
};

ExperimentConfig
missStudyConfig(const std::string &workload, Scheme scheme, double scale)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.scheme = scheme;
    cfg.scale = scale;
    cfg.timedTranslation = false;
    return cfg;
}

/** Include the write-back/injection stream where the scheme has one. */
bool
schemeCountsWritebacks(Scheme scheme)
{
    return schemeTraits(scheme).countsWritebacks;
}

ExperimentConfig
timedConfig(const std::string &workload, Scheme scheme, unsigned entries,
            unsigned assoc, double scale, bool v2 = false)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.scheme = scheme;
    cfg.tlbEntries = entries;
    cfg.tlbAssoc = assoc;
    cfg.timedTranslation = true;
    cfg.scale = scale;
    cfg.raytraceV2 = v2;
    return cfg;
}

/** An empty benchmark list means the paper's six SPLASH-2 kernels. */
const std::vector<std::string> &
resolveBenchmarks(const std::vector<std::string> &benchmarks)
{
    return benchmarks.empty() ? paperBenchmarks() : benchmarks;
}

std::string
suiteTag(const std::string &suite)
{
    return suite.empty() ? "" : " [" + suite + "]";
}

/** Stable two-decimal spelling for inline workload knobs. */
std::string
knob2(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

/** The KVLOOKUP skew x read-ratio grid of the datacenter sweep. */
const std::vector<double> kvSkews{0.2, 0.6, 0.99, 1.3};
const std::vector<double> kvReads{0.5, 0.95};
/** The GRAPH working-set multipliers of the datacenter sweep. */
const std::vector<double> graphWs{0.5, 1.0, 2.0, 4.0};

std::string
kvSweepSpelling(double skew, double read)
{
    return "KVLOOKUP:skew=" + knob2(skew) + ",read=" + knob2(read);
}

std::string
graphSweepSpelling(double ws)
{
    return "GRAPH:ws=" + knob2(ws);
}

} // namespace

std::vector<ExperimentConfig>
missStudySweepConfigs(double scale,
                      const std::vector<std::string> &benchmarks)
{
    std::vector<ExperimentConfig> cfgs;
    for (const auto &name : resolveBenchmarks(benchmarks))
        for (Scheme s : paperSchemes())
            cfgs.push_back(missStudyConfig(name, s, scale));
    return cfgs;
}

std::vector<ExperimentConfig>
missStudyVcomaConfigs(double scale,
                      const std::vector<std::string> &benchmarks)
{
    std::vector<ExperimentConfig> cfgs;
    for (const auto &name : resolveBenchmarks(benchmarks))
        cfgs.push_back(missStudyConfig(name, Scheme::VCOMA, scale));
    return cfgs;
}

std::vector<ExperimentConfig>
table4Configs(double scale, const std::vector<std::string> &benchmarks)
{
    std::vector<ExperimentConfig> cfgs;
    for (unsigned entries : {8u, 16u})
        for (Scheme s : {Scheme::L0, Scheme::VCOMA})
            for (const auto &name : resolveBenchmarks(benchmarks))
                cfgs.push_back(timedConfig(name, s, entries, 0, scale));
    return cfgs;
}

std::vector<ExperimentConfig>
datacenterSweepConfigs(double scale)
{
    std::vector<ExperimentConfig> cfgs;
    for (double skew : kvSkews) {
        for (double read : kvReads) {
            for (Scheme s : {Scheme::L0, Scheme::VCOMA}) {
                cfgs.push_back(missStudyConfig(
                    kvSweepSpelling(skew, read), s, scale));
            }
        }
    }
    for (double ws : graphWs) {
        for (Scheme s : {Scheme::L0, Scheme::VCOMA}) {
            cfgs.push_back(
                missStudyConfig(graphSweepSpelling(ws), s, scale));
        }
    }
    return cfgs;
}

std::vector<ExperimentConfig>
figure10Configs(double scale)
{
    std::vector<ExperimentConfig> cfgs;
    for (const auto &name : paperBenchmarks()) {
        const std::vector<std::uint64_t> seeds =
            name == "RAYTRACE" ? std::vector<std::uint64_t>{1, 2, 3}
                               : std::vector<std::uint64_t>{1};
        for (std::uint64_t seed : seeds) {
            for (unsigned assoc : {0u, 1u}) {
                for (Scheme s : {Scheme::L0, Scheme::VCOMA}) {
                    ExperimentConfig cfg =
                        timedConfig(name, s, 8, assoc, scale);
                    cfg.seed = seed;
                    cfgs.push_back(cfg);
                }
            }
            if (name == "RAYTRACE") {
                ExperimentConfig cfg = timedConfig(
                    name, Scheme::VCOMA, 8, 0, scale, true);
                cfg.seed = seed;
                cfgs.push_back(cfg);
            }
        }
    }
    return cfgs;
}

std::vector<ExperimentConfig>
dlbScalingConfigs(double scale)
{
    std::vector<ExperimentConfig> cfgs;
    for (unsigned nodes : {8u, 16u, 32u, 64u}) {
        for (Scheme s : {Scheme::VCOMA, Scheme::L3}) {
            ExperimentConfig cfg = missStudyConfig("RADIX", s, scale);
            cfg.nodes = nodes;
            cfgs.push_back(cfg);
        }
    }
    return cfgs;
}

std::vector<ExperimentConfig>
softwareTlbConfigs(double scale)
{
    std::vector<ExperimentConfig> cfgs;
    for (const auto &name : paperBenchmarks()) {
        ExperimentConfig sw = timedConfig(name, Scheme::L2, 0, 0, scale);
        sw.xlatPenalty = 200; // softwareManagedTranslation's trap cost
        cfgs.push_back(sw);
        cfgs.push_back(timedConfig(name, Scheme::L2, 8, 0, scale));
        cfgs.push_back(timedConfig(name, Scheme::L2, 32, 0, scale));
    }
    return cfgs;
}

std::vector<ExperimentConfig>
amAssociativityConfigs(double scale)
{
    std::vector<ExperimentConfig> cfgs;
    for (unsigned assoc : {1u, 2u, 4u, 8u}) {
        ExperimentConfig cfg =
            timedConfig("RAYTRACE", Scheme::VCOMA, 8, 0, scale);
        cfg.amAssoc = assoc;
        cfgs.push_back(cfg);
    }
    return cfgs;
}

std::vector<ExperimentConfig>
xlatCostConfigs(double scale)
{
    std::vector<ExperimentConfig> cfgs;
    for (Cycles penalty : {20u, 40u, 80u, 160u}) {
        for (Scheme s : {Scheme::L0, Scheme::VCOMA}) {
            ExperimentConfig cfg = timedConfig("RADIX", s, 8, 0, scale);
            cfg.xlatPenalty = penalty;
            cfgs.push_back(cfg);
        }
    }
    return cfgs;
}

std::vector<ExperimentConfig>
layoutPressureConfigs(double scale)
{
    std::vector<ExperimentConfig> cfgs;
    for (const char *name : {"UNIFORM", "HOTSPOT"}) {
        ExperimentConfig cfg;
        cfg.workload = name;
        cfg.scheme = Scheme::VCOMA;
        cfg.scale = scale;
        cfg.timedTranslation = false;
        cfgs.push_back(cfg);
    }
    return cfgs;
}

Table
table1Benchmarks(double scale,
                 const std::vector<std::string> &benchmarks,
                 const std::string &suite)
{
    Table t("Table 1" + suiteTag(suite) + ": Benchmarks (scale=" +
            Table::num(scale, 2) + ")");
    t.header({"Benchmark", "Parameters", "Shared Memory (MB)"});
    WorkloadParams wp;
    wp.scale = scale;
    for (const auto &name : resolveBenchmarks(benchmarks)) {
        auto w = makeWorkload(name, wp);
        t.row({w->name(), w->parameters(),
               Table::num(static_cast<double>(w->sharedBytes()) /
                              (1024.0 * 1024.0),
                          2)});
    }
    return t;
}

std::vector<Table>
figure8MissCurves(Runner &runner, double scale)
{
    runner.runAll(missStudySweepConfigs(scale));
    std::vector<Table> tables;
    for (const auto &name : paperBenchmarks()) {
        Table t("Figure 8 (" + name +
                "): translation misses per node vs TLB/DLB size");
        // Derived from the same list the row loop walks: one column
        // per scheme, plus the no_wback variant right after L2 (the
        // row loop appends its cell in the same place).
        std::vector<std::string> header{"size"};
        for (Scheme s : paperSchemes()) {
            header.push_back(schemeName(s));
            if (s == Scheme::L2)
                header.push_back(l2NoWbackLabel);
        }
        t.header(header);
        CellReader cell(runner, t);
        std::vector<const RunStats *> runs;
        for (Scheme s : paperSchemes())
            runs.push_back(cell(missStudyConfig(name, s, scale)));
        for (unsigned size : shadowSizes()) {
            std::vector<std::string> row{std::to_string(size)};
            for (std::size_t i = 0; i < paperSchemes().size(); ++i) {
                const Scheme s = paperSchemes()[i];
                const bool wb = schemeCountsWritebacks(s);
                row.push_back(runs[i] ? Table::num(runs[i]->missesPerNode(
                                            size, 0, wb), 0)
                                      : failedCell);
                if (s == Scheme::L2) {
                    row.push_back(runs[i]
                                      ? Table::num(runs[i]->missesPerNode(
                                            size, 0, false), 0)
                                      : failedCell);
                }
            }
            t.row(std::move(row));
        }
        tables.push_back(std::move(t));
    }
    return tables;
}

Table
table2MissRates(Runner &runner, double scale,
                const std::vector<std::string> &benchmarks,
                const std::string &suite)
{
    runner.runAll(missStudySweepConfigs(scale, benchmarks));
    Table t("Table 2" + suiteTag(suite) +
            ": TLB/DLB miss rates per processor reference (%)");
    std::vector<std::string> header{"SYSTEM"};
    for (unsigned size : {8u, 32u, 128u}) {
        for (Scheme s : paperSchemes()) {
            header.push_back(schemeName(s) + std::string("/") +
                             std::to_string(size));
        }
    }
    t.header(header);
    CellReader cell(runner, t);
    for (const auto &name : resolveBenchmarks(benchmarks)) {
        std::vector<std::string> row{name};
        for (unsigned size : {8u, 32u, 128u}) {
            for (Scheme s : paperSchemes()) {
                const RunStats *stats =
                    cell(missStudyConfig(name, s, scale));
                // Home-side structures see only the filtered residue
                // of the reference stream; their tiny rates need the
                // extra decimals.
                row.push_back(
                    stats ? Table::num(stats->missRatePct(
                                           size, 0,
                                           schemeCountsWritebacks(s)),
                                       schemeTraits(s).homeTranslation
                                           ? 4 : 2)
                          : failedCell);
            }
        }
        t.row(std::move(row));
    }
    return t;
}

namespace
{

/**
 * Smallest TLB size whose per-node misses fall at or below @p target,
 * log-interpolated between the swept sizes; returns <0 for
 * "beyond the largest swept size".
 */
double
equivalentSize(const RunStats &stats, bool includeWritebacks,
               double target)
{
    const auto &sizes = shadowSizes();
    double prevSize = 0;
    double prevMisses = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const double misses =
            stats.missesPerNode(sizes[i], 0, includeWritebacks);
        if (misses <= target) {
            if (i == 0)
                return sizes[0];
            // log-linear interpolation between the two sizes.
            const double f =
                (std::log(std::max(prevMisses, 1.0)) -
                 std::log(std::max(target, 1.0))) /
                std::max(std::log(std::max(prevMisses, 1.0)) -
                             std::log(std::max(misses, 1.0)),
                         1e-9);
            return prevSize +
                   f * (static_cast<double>(sizes[i]) - prevSize);
        }
        prevSize = sizes[i];
        prevMisses = misses;
    }
    return -1.0;
}

} // namespace

Table
table3EquivalentSize(Runner &runner, double scale,
                     const std::vector<std::string> &benchmarks,
                     const std::string &suite)
{
    runner.runAll(missStudySweepConfigs(scale, benchmarks));
    Table t("Table 3" + suiteTag(suite) +
            ": TLB size equivalent to an 8-entry DLB");
    // One list drives the header and the row loop: the legacy
    // per-node-TLB schemes (everything but the DLB baseline).
    std::vector<Scheme> tlbSchemes;
    for (Scheme s : paperSchemes())
        if (schemeTraits(s).perNodeTlb)
            tlbSchemes.push_back(s);
    std::vector<std::string> header{"Benchmark"};
    for (Scheme s : tlbSchemes)
        header.push_back(schemeName(s));
    header.push_back("DLB/8 misses/node");
    t.header(header);
    CellReader cell(runner, t);
    for (const auto &name : resolveBenchmarks(benchmarks)) {
        const RunStats *vcoma =
            cell(missStudyConfig(name, Scheme::VCOMA, scale));
        std::vector<std::string> row{name};
        if (!vcoma) {
            // Without the DLB baseline there is no target to match.
            row.insert(row.end(), tlbSchemes.size() + 1, failedCell);
            t.row(std::move(row));
            continue;
        }
        const double target = vcoma->missesPerNode(8, 0, true);
        for (Scheme s : tlbSchemes) {
            const RunStats *stats =
                cell(missStudyConfig(name, s, scale));
            if (!stats) {
                row.push_back(failedCell);
                continue;
            }
            const double eq = equivalentSize(
                *stats, schemeCountsWritebacks(s), target);
            // ">512" means even the largest swept TLB cannot match
            // the shared DLB: with scaled-down data sets the DLB's
            // cold floor (one fill per page machine-wide, thanks to
            // the prefetching effect) undercuts any private TLB's
            // per-node cold misses.
            row.push_back(eq < 0 ? ">512" : Table::num(eq, 0));
        }
        row.push_back(Table::num(target, 0));
        t.row(std::move(row));
    }
    return t;
}

std::vector<Table>
figure9DirectMapped(Runner &runner, double scale)
{
    runner.runAll(missStudySweepConfigs(scale));
    std::vector<Table> tables;
    for (const auto &name : paperBenchmarks()) {
        Table t("Figure 9 (" + name +
                "): direct-mapped vs fully associative misses per node");
        std::vector<std::string> header{"size"};
        for (Scheme s : paperSchemes()) {
            header.push_back(schemeName(s) + std::string("/DM"));
            header.push_back(schemeName(s));
        }
        t.header(header);
        CellReader cell(runner, t);
        std::vector<const RunStats *> runs;
        for (Scheme s : paperSchemes())
            runs.push_back(cell(missStudyConfig(name, s, scale)));
        for (unsigned size : shadowSizes()) {
            std::vector<std::string> row{std::to_string(size)};
            for (std::size_t i = 0; i < paperSchemes().size(); ++i) {
                const bool wb = schemeCountsWritebacks(paperSchemes()[i]);
                row.push_back(runs[i] ? Table::num(runs[i]->missesPerNode(
                                            size, 1, wb), 0)
                                      : failedCell);
                row.push_back(runs[i] ? Table::num(runs[i]->missesPerNode(
                                            size, 0, wb), 0)
                                      : failedCell);
            }
            t.row(std::move(row));
        }
        tables.push_back(std::move(t));
    }
    return tables;
}

Table
table4StallShare(Runner &runner, double scale,
                 const std::vector<std::string> &benchmarks,
                 const std::string &suite)
{
    runner.runAll(table4Configs(scale, benchmarks));
    Table t("Table 4" + suiteTag(suite) +
            ": address translation time / total stall time (%)");
    std::vector<std::string> header{"Config"};
    for (const auto &name : resolveBenchmarks(benchmarks))
        header.push_back(name);
    t.header(header);
    struct Row
    {
        std::string label;
        Scheme scheme;
        unsigned entries;
    };
    // Labels derive from each scheme's registered timed-structure
    // label (the paper writes V-COMA rows as "DLB/<n>").
    std::vector<Row> rows;
    for (unsigned entries : {8u, 16u}) {
        for (Scheme s : {Scheme::L0, Scheme::VCOMA}) {
            rows.push_back({std::string(schemeDescriptor(s).timedLabel) +
                                "/" + std::to_string(entries),
                            s, entries});
        }
    }
    CellReader cell(runner, t);
    for (const Row &r : rows) {
        std::vector<std::string> row{r.label};
        for (const auto &name : resolveBenchmarks(benchmarks)) {
            const RunStats *stats = cell(
                timedConfig(name, r.scheme, r.entries, 0, scale));
            row.push_back(
                stats ? Table::num(stats->xlatOverTotalStallPct(), 2)
                      : failedCell);
        }
        t.row(std::move(row));
    }
    return t;
}

std::vector<Table>
figure10ExecTime(Runner &runner, double scale)
{
    runner.runAll(figure10Configs(scale));
    std::vector<Table> tables;
    for (const auto &name : paperBenchmarks()) {
        Table t("Figure 10 (" + name +
                "): execution time breakdown (% of TLB/8 total)");
        t.header({"Config", "busy", "sync", "loc-stall", "rem-stall",
                  "xlat", "total"});

        struct Variant
        {
            std::string label;
            Scheme scheme;
            unsigned assoc;
            bool v2;
        };
        std::vector<Variant> variants{
            {"TLB/8", Scheme::L0, 0, false},
            {"TLB/8/DM", Scheme::L0, 1, false},
            {"DLB/8", Scheme::VCOMA, 0, false},
            {"DLB/8/DM", Scheme::VCOMA, 1, false},
        };
        if (name == "RAYTRACE")
            variants.push_back({"DLB/8/V2", Scheme::VCOMA, 0, true});

        // RAYTRACE distributes tiles through a central work queue, so
        // its timing is run-to-run sensitive; average over seeds.
        const std::vector<std::uint64_t> seeds =
            name == "RAYTRACE" ? std::vector<std::uint64_t>{1, 2, 3}
                               : std::vector<std::uint64_t>{1};

        CellReader cell(runner, t);
        double baseTotal = 0;
        for (const auto &v : variants) {
            double busy = 0;
            double sync = 0;
            double loc = 0;
            double rem = 0;
            double xlat = 0;
            bool failed = false;
            for (std::uint64_t seed : seeds) {
                ExperimentConfig cfg = timedConfig(
                    name, v.scheme, 8, v.assoc, scale, v.v2);
                cfg.seed = seed;
                const RunStats *stats = cell(cfg);
                if (!stats) {
                    // One bad seed poisons the average; drop the
                    // whole variant row rather than skew it.
                    failed = true;
                    break;
                }
                busy += static_cast<double>(stats->totalBusy());
                sync += static_cast<double>(stats->totalSync());
                loc += static_cast<double>(stats->totalLocStall());
                rem += static_cast<double>(stats->totalRemStall());
                xlat += static_cast<double>(stats->totalXlatStall());
            }
            if (failed) {
                t.row({v.label, failedCell, failedCell, failedCell,
                       failedCell, failedCell, failedCell});
                continue;
            }
            const double n = static_cast<double>(seeds.size());
            busy /= n;
            sync /= n;
            loc /= n;
            rem /= n;
            xlat /= n;
            const double total = busy + sync + loc + rem + xlat;
            if (baseTotal == 0)
                baseTotal = total;
            auto pct = [&](double v2x) {
                return Table::num(100.0 * v2x / baseTotal, 1);
            };
            t.row({v.label, pct(busy), pct(sync), pct(loc), pct(rem),
                   pct(xlat), pct(total)});
        }
        tables.push_back(std::move(t));
    }
    return tables;
}

std::vector<Table>
figure11Pressure(Runner &runner, double scale,
                 const std::vector<std::string> &benchmarks)
{
    runner.runAll(missStudyVcomaConfigs(scale, benchmarks));
    std::vector<Table> tables;
    for (const auto &name : resolveBenchmarks(benchmarks)) {
        Table t("Figure 11 (" + name +
                "): pressure profile over global page sets");
        t.header({"set group", "mean pressure", "max pressure"});
        CellReader cell(runner, t);
        const RunStats *stats =
            cell(missStudyConfig(name, Scheme::VCOMA, scale));
        if (!stats || stats->pressureProfile.empty()) {
            if (stats)
                t.footnote("n/a: run produced no pressure profile");
            t.row({"ALL", failedCell, failedCell});
            tables.push_back(std::move(t));
            continue;
        }
        const auto &profile = stats->pressureProfile;
        const std::size_t groups = 16;
        const std::size_t per =
            std::max<std::size_t>(1, profile.size() / groups);
        for (std::size_t g = 0; g < groups && g * per < profile.size();
             ++g) {
            double sum = 0;
            double mx = 0;
            std::size_t n = 0;
            for (std::size_t i = g * per;
                 i < std::min((g + 1) * per, profile.size()); ++i) {
                sum += profile[i];
                mx = std::max(mx, profile[i]);
                ++n;
            }
            t.row({std::to_string(g * per) + "-" +
                       std::to_string(g * per + n - 1),
                   Table::num(sum / n, 4), Table::num(mx, 4)});
        }
        // Whole-profile summary row.
        double sum = 0;
        double mx = 0;
        for (double v : profile) {
            sum += v;
            mx = std::max(mx, v);
        }
        t.row({"ALL", Table::num(sum / profile.size(), 4),
               Table::num(mx, 4)});
        tables.push_back(std::move(t));
    }
    return tables;
}

Table
tagOverheadTable()
{
    Table t("Section 6: virtual-tag memory overhead of V-COMA");
    t.header({"block size (B)", "extra tag 2B (%)", "extra tag 3B (%)"});
    for (unsigned block : {32u, 64u, 128u}) {
        t.row({std::to_string(block),
               Table::num(100.0 * virtualTagOverhead(block, 2), 2),
               Table::num(100.0 * virtualTagOverhead(block, 3), 2)});
    }
    return t;
}

Table
injectionBehaviour(Runner &runner, double scale)
{
    runner.runAll(missStudyVcomaConfigs(scale));
    Table t("Ablation: injection behaviour under V-COMA");
    t.header({"Benchmark", "injections", "hops", "hops/injection",
              "shared drops", "swap-outs"});
    CellReader cell(runner, t);
    for (const auto &name : paperBenchmarks()) {
        const RunStats *stats =
            cell(missStudyConfig(name, Scheme::VCOMA, scale));
        if (!stats) {
            t.row({name, failedCell, failedCell, failedCell, failedCell,
                   failedCell});
            continue;
        }
        const double perInj =
            stats->injections
                ? static_cast<double>(stats->injectionHops) /
                      stats->injections
                : 0.0;
        t.row({name, std::to_string(stats->injections),
               std::to_string(stats->injectionHops),
               Table::num(perInj, 2),
               std::to_string(stats->sharedDrops),
               std::to_string(stats->swapOuts)});
    }
    return t;
}

Table
dlbScaling(Runner &runner, double scale)
{
    runner.runAll(dlbScalingConfigs(scale));
    Table t("Ablation: DLB sharing effect vs machine size (RADIX)");
    t.header({"nodes", "DLB/8 miss rate (%)", "L3-TLB/8 miss rate (%)"});
    CellReader cell(runner, t);
    for (unsigned nodes : {8u, 16u, 32u, 64u}) {
        ExperimentConfig base = missStudyConfig("RADIX", Scheme::VCOMA,
                                                scale);
        base.nodes = nodes;
        const RunStats *vcoma = cell(base);
        ExperimentConfig l3 = missStudyConfig("RADIX", Scheme::L3,
                                              scale);
        l3.nodes = nodes;
        const RunStats *l3Stats = cell(l3);
        t.row({std::to_string(nodes),
               vcoma ? Table::num(vcoma->missRatePct(8, 0, true), 4)
                     : failedCell,
               l3Stats ? Table::num(l3Stats->missRatePct(8, 0, true), 4)
                       : failedCell});
    }
    return t;
}


Table
softwareManagedTranslation(Runner &runner, double scale)
{
    // A software trap + table walk costs far more than a hardware
    // refill; Jacob & Mudge report tens to hundreds of cycles.
    constexpr Cycles softwareTrap = 200;

    runner.runAll(softwareTlbConfigs(scale));
    Table t("Ablation: software-managed translation as a 0-entry "
            "L2-TLB (trap cost " + std::to_string(softwareTrap) +
            " cycles) vs hardware L2-TLBs");
    t.header({"Benchmark", "traps per 1k refs",
              "SW xlat cycles/ref", "HW/8 xlat cycles/ref",
              "SW exec / HW-32 exec"});
    CellReader cell(runner, t);
    for (const auto &name : paperBenchmarks()) {
        ExperimentConfig sw =
            timedConfig(name, Scheme::L2, 0, 0, scale);
        sw.xlatPenalty = softwareTrap;
        const RunStats *swStats = cell(sw);
        const RunStats *hw8 =
            cell(timedConfig(name, Scheme::L2, 8, 0, scale));
        const RunStats *hw32 =
            cell(timedConfig(name, Scheme::L2, 32, 0, scale));
        if (!swStats || !hw8 || !hw32) {
            // Every column mixes the three runs; none survive alone.
            t.row({name, failedCell, failedCell, failedCell,
                   failedCell});
            continue;
        }

        const double traps =
            1000.0 * static_cast<double>(swStats->tlbMisses) /
            swStats->totalRefs();
        const double swPerRef =
            static_cast<double>(swStats->totalXlatStall()) /
            swStats->totalRefs();
        const double hwPerRef =
            static_cast<double>(hw8->totalXlatStall()) /
            hw8->totalRefs();
        t.row({name, Table::num(traps, 1), Table::num(swPerRef, 2),
               Table::num(hwPerRef, 2),
               Table::num(static_cast<double>(swStats->execTime) /
                              hw32->execTime,
                          3)});
    }
    return t;
}

Table
amAssociativity(Runner &runner, double scale)
{
    runner.runAll(amAssociativityConfigs(scale));
    Table t("Ablation: attraction-memory associativity under V-COMA "
            "(RAYTRACE)");
    t.header({"assoc", "global-set capacity", "exec time", "injections",
              "shared drops", "max pressure"});
    CellReader cell(runner, t);
    for (unsigned assoc : {1u, 2u, 4u, 8u}) {
        ExperimentConfig cfg =
            timedConfig("RAYTRACE", Scheme::VCOMA, 8, 0, scale);
        cfg.amAssoc = assoc;
        const RunStats *stats = cell(cfg);
        if (!stats) {
            t.row({std::to_string(assoc), std::to_string(32 * assoc),
                   failedCell, failedCell, failedCell, failedCell});
            continue;
        }
        double maxPressure = 0;
        for (double v : stats->pressureProfile)
            maxPressure = std::max(maxPressure, v);
        t.row({std::to_string(assoc),
               std::to_string(32 * assoc),
               std::to_string(stats->execTime),
               std::to_string(stats->injections),
               std::to_string(stats->sharedDrops),
               Table::num(maxPressure, 4)});
    }
    return t;
}

Table
translationCostSensitivity(Runner &runner, double scale)
{
    runner.runAll(xlatCostConfigs(scale));
    Table t("Ablation: sensitivity to the translation-miss service "
            "time (RADIX exec time, millions of cycles)");
    t.header({"miss service (cycles)", "L0-TLB/8", "V-COMA DLB/8"});
    CellReader cell(runner, t);
    for (Cycles penalty : {20u, 40u, 80u, 160u}) {
        std::vector<std::string> row{std::to_string(penalty)};
        for (Scheme s : {Scheme::L0, Scheme::VCOMA}) {
            ExperimentConfig cfg =
                timedConfig("RADIX", s, 8, 0, scale);
            cfg.xlatPenalty = penalty;
            const RunStats *stats = cell(cfg);
            row.push_back(stats ? Table::num(static_cast<double>(
                                      stats->execTime) / 1e6, 2)
                                : failedCell);
        }
        t.row(std::move(row));
    }
    return t;
}

Table
layoutPressure(Runner &runner, double scale)
{
    runner.runAll(layoutPressureConfigs(scale));
    Table t("Ablation: virtual-layout pressure on the global page "
            "sets (V-COMA)");
    t.header({"layout", "mean pressure", "max pressure", "max/mean",
              "swap-outs"});
    CellReader cell(runner, t);
    for (const char *name : {"UNIFORM", "HOTSPOT"}) {
        ExperimentConfig cfg;
        cfg.workload = name;
        cfg.scheme = Scheme::VCOMA;
        cfg.scale = scale;
        cfg.timedTranslation = false;
        const RunStats *stats = cell(cfg);
        if (!stats || stats->pressureProfile.empty()) {
            if (stats)
                t.footnote("n/a: run produced no pressure profile");
            t.row({name, failedCell, failedCell, failedCell,
                   failedCell});
            continue;
        }
        double sum = 0;
        double mx = 0;
        for (double v : stats->pressureProfile) {
            sum += v;
            mx = std::max(mx, v);
        }
        const double mean =
            sum / static_cast<double>(stats->pressureProfile.size());
        t.row({name, Table::num(mean, 4), Table::num(mx, 4),
               Table::num(mean > 0 ? mx / mean : 0, 1),
               std::to_string(stats->swapOuts)});
    }
    return t;
}

namespace
{

/**
 * One row of a datacenter sensitivity table: both schemes' 8-entry
 * miss rates plus the V-COMA run's DLB filtering/sharing evidence.
 */
std::vector<std::string>
datacenterSweepRow(CellReader &cell, const std::string &label,
                   const std::string &spelling, double scale)
{
    const RunStats *tlb =
        cell(missStudyConfig(spelling, Scheme::L0, scale));
    const RunStats *dlb =
        cell(missStudyConfig(spelling, Scheme::VCOMA, scale));
    std::vector<std::string> row{label};
    row.push_back(tlb ? Table::num(tlb->missRatePct(8, 0, false), 2)
                      : failedCell);
    row.push_back(dlb ? Table::num(dlb->missRatePct(8, 0, true), 4)
                      : failedCell);
    if (dlb) {
        const double refs =
            std::max<double>(1.0, static_cast<double>(dlb->totalRefs()));
        row.push_back(Table::num(
            100.0 * static_cast<double>(dlb->dlbFilteredRefs) / refs,
            1));
        row.push_back(std::to_string(dlb->dlbSharedHits));
        row.push_back(std::to_string(dlb->remoteReads));
    } else {
        row.insert(row.end(), 3, failedCell);
    }
    return row;
}

} // namespace

std::vector<Table>
datacenterSweeps(Runner &runner, double scale)
{
    runner.runAll(datacenterSweepConfigs(scale));
    std::vector<Table> tables;

    Table kv("Datacenter sweep (KVLOOKUP): Zipf skew x read ratio, "
             "8-entry L0-TLB vs DLB");
    kv.header({"skew/read", "L0-TLB miss%", "DLB miss%",
               "DLB filtered%", "DLB shared hits", "remote reads"});
    {
        CellReader cell(runner, kv);
        for (double skew : kvSkews) {
            for (double read : kvReads) {
                kv.row(datacenterSweepRow(
                    cell, knob2(skew) + "/" + knob2(read),
                    kvSweepSpelling(skew, read), scale));
            }
        }
    }
    tables.push_back(std::move(kv));

    Table g("Datacenter sweep (GRAPH): working-set multiplier, "
            "8-entry L0-TLB vs DLB");
    g.header({"ws", "L0-TLB miss%", "DLB miss%", "DLB filtered%",
              "DLB shared hits", "remote reads"});
    {
        CellReader cell(runner, g);
        for (double ws : graphWs) {
            g.row(datacenterSweepRow(cell, knob2(ws),
                                     graphSweepSpelling(ws), scale));
        }
    }
    tables.push_back(std::move(g));
    return tables;
}

std::vector<ExperimentConfig>
showdownConfigs(double scale, const std::vector<std::string> &benchmarks)
{
    std::vector<ExperimentConfig> cfgs;
    for (const auto &name : resolveBenchmarks(benchmarks)) {
        for (Scheme s : showdownSchemes()) {
            cfgs.push_back(missStudyConfig(name, s, scale));
            cfgs.push_back(timedConfig(name, s, 8, 0, scale));
        }
    }
    return cfgs;
}

Table
showdownMissRates(Runner &runner, double scale,
                  const std::vector<std::string> &benchmarks,
                  const std::string &suite)
{
    runner.runAll(showdownConfigs(scale, benchmarks));
    Table t("Showdown" + suiteTag(suite) +
            ": translation walks per 1k references "
            "(8-entry structures, 1998 vs modern)");
    std::vector<std::string> header{"Benchmark"};
    for (Scheme s : showdownSchemes())
        header.push_back(schemeName(s));
    header.push_back("VICTIMA spill hit%");
    t.header(header);
    CellReader cell(runner, t);
    for (const auto &name : resolveBenchmarks(benchmarks)) {
        std::vector<std::string> row{name};
        std::string spillCell = failedCell;
        for (Scheme s : showdownSchemes()) {
            const RunStats *stats =
                cell(missStudyConfig(name, s, scale));
            if (!stats) {
                row.push_back(failedCell);
                continue;
            }
            // Walks actually paid by the configured structure: TLB
            // (or DLB) misses, minus the misses VICTIMA's spill probe
            // rescued. NMT computes translations, so its count is
            // structurally zero.
            const double walks = static_cast<double>(
                stats->tlbMisses - stats->tlbSpillHits);
            const double refs =
                std::max<double>(1.0,
                                 static_cast<double>(stats->totalRefs()));
            row.push_back(Table::num(1000.0 * walks / refs, 3));
            if (schemeTraits(s).slcTlbSpill) {
                spillCell =
                    stats->tlbSpillProbes
                        ? Table::num(
                              100.0 *
                                  static_cast<double>(stats->tlbSpillHits) /
                                  static_cast<double>(
                                      stats->tlbSpillProbes),
                              1)
                        : "0.0";
            }
        }
        row.push_back(spillCell);
        t.row(std::move(row));
    }
    return t;
}

Table
showdownStallShare(Runner &runner, double scale,
                   const std::vector<std::string> &benchmarks,
                   const std::string &suite)
{
    runner.runAll(showdownConfigs(scale, benchmarks));
    Table t("Showdown" + suiteTag(suite) +
            ": address translation time / total stall time (%) "
            "(8 entries, 1998 vs modern)");
    std::vector<std::string> header{"Config"};
    for (const auto &name : resolveBenchmarks(benchmarks))
        header.push_back(name);
    t.header(header);
    CellReader cell(runner, t);
    for (Scheme s : showdownSchemes()) {
        std::vector<std::string> row{
            std::string(schemeDescriptor(s).timedLabel) + "/8"};
        for (const auto &name : resolveBenchmarks(benchmarks)) {
            const RunStats *stats =
                cell(timedConfig(name, s, 8, 0, scale));
            row.push_back(
                stats ? Table::num(stats->xlatOverTotalStallPct(), 2)
                      : failedCell);
        }
        t.row(std::move(row));
    }
    return t;
}

} // namespace vcoma
