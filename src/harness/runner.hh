/**
 * @file
 * The experiment runner: builds a machine and a workload from an
 * ExperimentConfig, runs the simulation, and caches the resulting
 * stats sheet both in memory and on disk so that the benchmark
 * binaries (one per paper table/figure) can share simulation runs.
 *
 * Batches submitted through runAll() execute concurrently on up to
 * $VCOMA_JOBS worker threads. Each simulation is single-threaded and
 * fully deterministic, so a parallel batch is bit-identical to the
 * same configs run serially; only the wall clock changes.
 */

#ifndef VCOMA_HARNESS_RUNNER_HH
#define VCOMA_HARNESS_RUNNER_HH

#include <atomic>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/run_stats.hh"

namespace vcoma
{

/**
 * Thrown when a simulation fails: wraps whatever escaped the machine
 * (a ProtectionFault, PanicError, FatalError, WatchdogError, ...)
 * with the workload, scheme and config key so sweep failure reports
 * are actionable.
 */
class SimulationError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Everything that identifies one simulation run. */
struct ExperimentConfig
{
    std::string workload = "RADIX";
    Scheme scheme = Scheme::VCOMA;
    /** Configured (timed) TLB/DLB geometry. */
    unsigned tlbEntries = 8;
    unsigned tlbAssoc = 0;
    /** Charge translation-miss penalties on the critical path. */
    bool timedTranslation = false;
    /** L2-TLB: whether SLC write-backs consult the TLB. */
    bool writebacksAccessTlb = true;
    /** RAYTRACE layout variant (Figure 10's DLB/8/V2). */
    bool raytraceV2 = false;
    unsigned nodes = 32;
    double scale = 1.0;
    std::uint64_t seed = 1;
    /** Attraction-memory associativity (ablations; paper uses 4). */
    unsigned amAssoc = 4;
    /** TLB/DLB miss service time (ablations; paper uses 40). */
    Cycles xlatPenalty = 40;
    /**
     * Name of a FaultClass to inject after the run (see
     * check/fault_injector.hh), empty for a normal simulation. A
     * poisoned config deterministically corrupts coherence state and
     * fails its invariant sweep, so failure paths (graceful runAll
     * sweeps, the service's per-job error replies) can be exercised
     * end to end. Appears in key() only when set, so ordinary cache
     * keys are unchanged.
     */
    std::string injectFault;

    /** Stable cache key. */
    std::string key() const;
};

/** Record of one config that failed to simulate (graceful sweeps). */
struct FailedRun
{
    ExperimentConfig config;
    /** The config's cache key (its "hash"). */
    std::string key;
    /** Exception text, with workload/scheme/config context. */
    std::string error;
};

/**
 * Runs experiments with in-memory + on-disk caching.
 *
 * Thread safety: run() and runAll() may be called from any thread;
 * the memo map and execution counter are internally synchronised.
 * Returned references stay valid for the Runner's lifetime (the memo
 * is a node-based map). The disk cache is also safe across processes:
 * writers stage into unique temp files and publish with an atomic
 * rename, so concurrent bench binaries sharing one cache directory
 * never observe partial entries.
 */
class Runner
{
  public:
    /**
     * @param cacheDir directory for cached results; empty string
     *        disables the disk cache. Defaults to $VCOMA_CACHE_DIR or
     *        ".vcoma_cache".
     */
    explicit Runner(std::string cacheDir = defaultCacheDir());

    /**
     * Run (or recall) the experiment. Throws SimulationError if the
     * simulation fails (including a failure recorded by an earlier
     * run/tryRun/runAll of the same config; those do not re-execute).
     */
    const RunStats &run(const ExperimentConfig &cfg);

    /**
     * Like run(), but returns nullptr instead of throwing when the
     * simulation fails; the failure is recorded in failures().
     *
     * When @p freshlyExecuted is non-null it is set to true iff this
     * call actually simulated (a miss in both the memo and the disk
     * cache) — the service layer's cache-hit accounting.
     */
    const RunStats *tryRun(const ExperimentConfig &cfg,
                           bool *freshlyExecuted = nullptr);

    /**
     * Run a batch: configs not already memoised or on disk execute
     * concurrently on up to min($VCOMA_JOBS, batch) worker threads;
     * duplicates within the batch run once. Results come back in
     * submission order and are bit-identical to serial execution.
     *
     * A config whose simulation fails does not abort the sweep: its
     * slot comes back as nullptr, the failure is recorded in
     * failures(), and every other config still runs. Set
     * $VCOMA_STRICT=1 to restore fail-fast (the first failure is
     * rethrown once the pool drains).
     */
    std::vector<const RunStats *>
    runAll(std::span<const ExperimentConfig> cfgs);

    /**
     * Warm the in-memory memo from every readable disk-cache entry
     * (*.txt under the cache directory; the key is the file stem).
     * A restarted farm worker calls this to recover its warm state
     * from the durable layer instead of re-simulating its slice.
     * Unreadable or truncated entries are skipped, never fatal.
     * @return the number of entries loaded into the memo.
     */
    std::size_t preloadCache();

    /** Every failed config recorded so far, in key order. */
    std::vector<FailedRun> failures() const;

    /** Recorded failure text for @p key, or empty when none. */
    std::string failureMessage(const std::string &key) const;

    /** Problem scale from $VCOMA_SCALE (default 1.0). */
    static double envScale();

    /** $VCOMA_CACHE_DIR, or ".vcoma_cache"; truthy $VCOMA_NO_CACHE -> "". */
    static std::string defaultCacheDir();

    /** runAll() worker count: $VCOMA_JOBS, or one per hardware thread. */
    static unsigned envJobs();

    /** Disk-cache budget from $VCOMA_CACHE_MAX_MB in bytes; 0 = unlimited. */
    static std::uint64_t envCacheMaxBytes();

    /**
     * Cache tenant from $VCOMA_CACHE_TENANT, or "" (the default
     * shared namespace). When set, this runner's entries live in
     * `<cacheDir>/<tenant>/` and pruning applies the tenant budget
     * ($VCOMA_CACHE_TENANT_MAX_MB, falling back to
     * $VCOMA_CACHE_MAX_MB) to that subdirectory only — one farm
     * client can never evict another tenant's warm results, and the
     * shared root's non-recursive pruning never reaches into tenant
     * subdirectories. Values that are not a plain directory name
     * ([A-Za-z0-9._-], not "." or "..") are rejected with a warning.
     */
    static std::string envCacheTenant();

    /** Tenant budget from $VCOMA_CACHE_TENANT_MAX_MB in bytes; 0 = unset. */
    static std::uint64_t envCacheTenantMaxBytes();

    /**
     * Reference-trace directory from $VCOMA_TRACE_DIR; empty string
     * (the default) disables record/replay. When set, the first
     * execution of a config records its packed memref trace under
     * `<dir>/<cache key>.vctrace`, and later executions of the same
     * config replay the trace instead of re-running the workload
     * algorithm (see DESIGN.md "Packed memref traces").
     */
    static std::string envTraceDir();

    /** Trace-dir budget from $VCOMA_TRACE_MAX_MB in bytes; 0 = unlimited. */
    static std::uint64_t envTraceMaxBytes();

    /**
     * Delete the oldest-mtime cache entries (*.txt files) in @p dir
     * until the survivors fit in @p maxBytes. Files that are not
     * cache entries — subdirectories, in-flight *.tmp.* stagings,
     * anything a user dropped in the directory — are never touched.
     * Ties on mtime (common within one batch sweep: filesystem
     * timestamps are coarse) break deterministically by file name,
     * oldest-name-last, so pruning never depends on directory
     * iteration order. Runs at Runner construction when
     * $VCOMA_CACHE_MAX_MB is set.
     * @return the number of entries removed.
     */
    static unsigned pruneCache(const std::string &dir,
                               std::uint64_t maxBytes);

    /**
     * Same policy over recorded traces (*.vctrace files): oldest
     * mtime first, name as the deterministic tie-break. Runs at
     * Runner construction when $VCOMA_TRACE_DIR and
     * $VCOMA_TRACE_MAX_MB are both set.
     */
    static unsigned pruneTraces(const std::string &dir,
                                std::uint64_t maxBytes);

    /** Simulations actually executed (not served from cache). */
    unsigned executed() const { return executed_.load(); }

  private:
    RunStats execute(const ExperimentConfig &cfg);
    std::string cachePath(const ExperimentConfig &cfg) const;
    bool load(const std::string &path, RunStats &stats) const;
    void store(const std::string &path, const RunStats &stats) const;
    bool storeOnce(const std::string &path, const RunStats &stats,
                   std::string &error) const;
    /** Execute, store to disk, and memoise one cache-missing config. */
    void executeAndMemoise(const ExperimentConfig &cfg,
                           const std::string &key);
    void recordFailure(const ExperimentConfig &cfg,
                       const std::string &key, const std::string &error);

    std::string cacheDir_;
    /** $VCOMA_TRACE_DIR at construction; empty = record/replay off. */
    std::string traceDir_;
    mutable std::mutex mutex_; ///< guards memo_ and failed_
    std::map<std::string, RunStats> memo_;
    std::map<std::string, FailedRun> failed_;
    std::atomic<unsigned> executed_{0};
};

/** The six paper benchmarks in Table 2's row order. */
const std::vector<std::string> &paperBenchmarks();

/** The synthetic datacenter kernels (KVLOOKUP, GRAPH, STREAMJOIN). */
const std::vector<std::string> &datacenterBenchmarks();

} // namespace vcoma

#endif // VCOMA_HARNESS_RUNNER_HH
