/**
 * @file
 * Generators for every table and figure of the paper's evaluation
 * (Section 5) plus the Section 6 discussion artefacts. Each function
 * drives the Runner (which caches simulations) and renders the same
 * rows/series the paper reports.
 */

#ifndef VCOMA_HARNESS_EXPERIMENTS_HH
#define VCOMA_HARNESS_EXPERIMENTS_HH

#include <vector>

#include "common/table.hh"
#include "harness/runner.hh"

namespace vcoma
{

/**
 * Config-list builders: each experiment enumerates every simulation it
 * will read up front, so the bench binaries (and the table generators
 * themselves) can submit the whole sweep through Runner::runAll and
 * execute cache misses concurrently. The table generators below then
 * render from memo hits, so their output is byte-identical to a
 * serial run.
 */

/**
 * Several sweeps and tables run over a benchmark list: the default
 * (empty) list means the paper's six SPLASH-2 benchmarks; passing
 * datacenterBenchmarks() (or any custom list, including knobbed
 * spellings and "TRACE:<path>" entries) reuses the identical grid
 * over other workloads. Tables take an optional @p suite label that
 * is appended to the title so the two variants stay distinguishable
 * in one bench report.
 */

/** All benchmarks x all five schemes, untimed (Fig. 8/9, Tables 2/3). */
std::vector<ExperimentConfig>
missStudySweepConfigs(double scale,
                      const std::vector<std::string> &benchmarks = {});

/** All benchmarks under V-COMA, untimed (Fig. 11, injection ablation). */
std::vector<ExperimentConfig>
missStudyVcomaConfigs(double scale,
                      const std::vector<std::string> &benchmarks = {});

/** Table 4's timed TLB/DLB size points. */
std::vector<ExperimentConfig>
table4Configs(double scale,
              const std::vector<std::string> &benchmarks = {});

/**
 * The datacenter skew/read-ratio/working-set sweep: KVLOOKUP across
 * Zipf exponents and read ratios, GRAPH across working-set
 * multipliers, each under L0-TLB and V-COMA (untimed miss study).
 */
std::vector<ExperimentConfig> datacenterSweepConfigs(double scale);

/** Figure 10's timed variants (and RAYTRACE seed averages). */
std::vector<ExperimentConfig> figure10Configs(double scale);

/** DLB scaling ablation: RADIX at 8..64 nodes, V-COMA vs L3. */
std::vector<ExperimentConfig> dlbScalingConfigs(double scale);

/** Software-managed translation ablation sweep. */
std::vector<ExperimentConfig> softwareTlbConfigs(double scale);

/** Attraction-memory associativity ablation sweep. */
std::vector<ExperimentConfig> amAssociativityConfigs(double scale);

/** Translation-miss service time sensitivity sweep. */
std::vector<ExperimentConfig> xlatCostConfigs(double scale);

/** Layout-pressure ablation (UNIFORM vs HOTSPOT). */
std::vector<ExperimentConfig> layoutPressureConfigs(double scale);

/**
 * The 1998-vs-modern showdown grid: every showdown scheme (L0-TLB and
 * V-COMA as the 1998 poles, plus every registry scheme marked modern)
 * over the benchmark list, untimed for the miss study and timed at
 * 8 entries for the stall-share table.
 */
std::vector<ExperimentConfig>
showdownConfigs(double scale,
                const std::vector<std::string> &benchmarks = {});

/**
 * Showdown table A (Table 2-style): page-table walks per 1k processor
 * references under each scheme's configured translation structure,
 * plus VICTIMA's spill hit rate. NMT is structurally zero.
 */
Table showdownMissRates(Runner &runner, double scale,
                        const std::vector<std::string> &benchmarks = {},
                        const std::string &suite = "");

/**
 * Showdown table B (Table 4-style): address-translation time as a
 * share of total stall time with 8-entry structures.
 */
Table showdownStallShare(Runner &runner, double scale,
                         const std::vector<std::string> &benchmarks = {},
                         const std::string &suite = "");

/** Table 1: benchmark parameters and shared-memory footprints. */
Table table1Benchmarks(double scale,
                       const std::vector<std::string> &benchmarks = {},
                       const std::string &suite = "");

/**
 * Figure 8: number of address-translation misses per node vs TLB/DLB
 * size, one table per benchmark; columns L0..V-COMA plus
 * L2/no_wback.
 */
std::vector<Table> figure8MissCurves(Runner &runner, double scale);

/** Table 2: TLB/DLB miss rates per processor reference (%). */
Table table2MissRates(Runner &runner, double scale,
                      const std::vector<std::string> &benchmarks = {},
                      const std::string &suite = "");

/** Table 3: TLB size equivalent to an 8-entry DLB. */
Table table3EquivalentSize(
    Runner &runner, double scale,
    const std::vector<std::string> &benchmarks = {},
    const std::string &suite = "");

/**
 * Figure 9: direct-mapped vs fully associative TLB/DLB miss counts
 * per node, one table per benchmark.
 */
std::vector<Table> figure9DirectMapped(Runner &runner, double scale);

/** Table 4: address translation time / total stall time (%). */
Table table4StallShare(Runner &runner, double scale,
                       const std::vector<std::string> &benchmarks = {},
                       const std::string &suite = "");

/**
 * Figure 10: execution-time breakdown (busy/sync/loc/rem/xlat) for
 * TLB/8, TLB/8/DM, DLB/8, DLB/8/DM (plus DLB/8/V2 for RAYTRACE),
 * normalised to TLB/8.
 */
std::vector<Table> figure10ExecTime(Runner &runner, double scale);

/** Figure 11: pressure profile across the global page sets. */
std::vector<Table>
figure11Pressure(Runner &runner, double scale,
                 const std::vector<std::string> &benchmarks = {});

/**
 * Datacenter sensitivity tables: KVLOOKUP swept over Zipf skew x
 * read ratio and GRAPH over working-set multipliers, comparing the
 * paper's per-node L0-TLB against V-COMA's home-node DLB on miss
 * rates and the DLB's filtering/sharing evidence — the paper's
 * Section 5 argument re-run in a regime it never measured.
 */
std::vector<Table> datacenterSweeps(Runner &runner, double scale);

/** Section 6: virtual-tag memory overhead vs block size. */
Table tagOverheadTable();

/**
 * Ablation: injection with the paper's random-forwarding ring vs a
 * home-only policy is not separately configurable at run time, so
 * this reports the measured injection behaviour (hops, swaps) per
 * benchmark under V-COMA.
 */
Table injectionBehaviour(Runner &runner, double scale);

/** Ablation: DLB sharing effect vs node count (Section 6 scaling). */
Table dlbScaling(Runner &runner, double scale);

/**
 * Ablation: software-managed translation (Jacob & Mudge [15]) seen as
 * a 0-entry L2-TLB that traps on every SLC miss, against hardware
 * L2-TLBs (Section 3.3's observation).
 */
Table softwareManagedTranslation(Runner &runner, double scale);

/**
 * Ablation: attraction-memory associativity. Lower associativity
 * shrinks each global page set and stresses the injection protocol
 * and the page daemon (Section 6's discussion of set-associative
 * memory mappings).
 */
Table amAssociativity(Runner &runner, double scale);

/**
 * Ablation: sensitivity to the translation-miss service time. The
 * classic TLB pays it on the critical path of every miss; V-COMA's
 * DLB pays it so rarely the execution time barely moves.
 */
Table translationCostSensitivity(Runner &runner, double scale);

/**
 * Ablation: virtual-layout pressure (Section 6). Sequential layouts
 * spread pages uniformly over the global page sets "without even
 * trying"; an adversarial layout that aligns every allocation to
 * numColours pages concentrates them on one colour and forces the
 * page daemon to swap.
 */
Table layoutPressure(Runner &runner, double scale);

} // namespace vcoma

#endif // VCOMA_HARNESS_EXPERIMENTS_HH
