#include "harness/runner.hh"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iomanip>
#include <limits>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "check/fault_injector.hh"
#include "check/invariant_checker.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/machine.hh"
#include "sim/memref_pack.hh"
#include "translation/scheme.hh"
#include "translation/system_builder.hh"
#include "workloads/replay.hh"
#include "workloads/workload.hh"

namespace vcoma
{

namespace
{

/**
 * v4: Rng::below() lost its modulo bias (Lemire rejection), which
 * shifts every deterministic reference stream; sheets cached by
 * earlier builds must never mix with fresh runs.
 */
constexpr const char *cacheMagic = "vcoma-cache-v4";

/**
 * Make one key component safe to embed in a file name. Plain
 * workload names pass through byte-identical; a component carrying
 * '/', ':' or other non-portable characters (a "TRACE:/path/to.vctrace"
 * spelling, inline knob lists) has them replaced with '_' and gains
 * an 8-hex-digit FNV-1a suffix of the original spelling, so distinct
 * spellings can never collapse onto one cache entry.
 */
std::string
sanitizeKeyComponent(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    bool dirty = false;
    for (const char c : s) {
        const auto u = static_cast<unsigned char>(c);
        if (std::isalnum(u) || c == '.' || c == '_' || c == '-' ||
            c == '=' || c == ',') {
            out += c;
        } else {
            out += '_';
            dirty = true;
        }
    }
    if (!dirty)
        return out;
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    std::ostringstream os;
    os << out << "-h" << std::hex << std::setw(8) << std::setfill('0')
       << static_cast<std::uint32_t>(h ^ (h >> 32));
    return os.str();
}

/**
 * Poison a finished machine the way ExperimentConfig::injectFault
 * asks: corrupt one seeded target of the named fault class, then run
 * a full invariant sweep, which is guaranteed to throw (the injector
 * test suite proves every class is detected). Unknown class names and
 * machines without a suitable target also throw, so a poisoned
 * config never silently succeeds.
 */
void
applyConfiguredFault(Machine &machine, const ExperimentConfig &cfg)
{
    const FaultClass *match = nullptr;
    for (const FaultClass &c : allFaultClasses()) {
        if (cfg.injectFault == faultClassName(c)) {
            match = &c;
            break;
        }
    }
    if (!match)
        throw SimulationError(detail::concat(
            "unknown injectFault class '", cfg.injectFault, "'"));
    FaultInjector injector(machine, cfg.seed);
    const auto what = injector.inject(*match);
    if (!what)
        throw SimulationError(detail::concat(
            "injectFault '", cfg.injectFault,
            "' found no target to corrupt"));
    InvariantChecker(machine).enforce();
    throw SimulationError(detail::concat(
        "injectFault '", cfg.injectFault, "' corrupted ", *what,
        " but the invariant sweep did not detect it"));
}

} // namespace

std::string
ExperimentConfig::key() const
{
    std::ostringstream os;
    os << sanitizeKeyComponent(workload) << "-" << schemeName(scheme)
       << "-e" << tlbEntries
       << "-a" << tlbAssoc << "-t" << timedTranslation << "-w"
       << writebacksAccessTlb << "-v2_" << raytraceV2 << "-n" << nodes
       << "-s" << scale << "-r" << seed << "-k" << amAssoc << "-p"
       << xlatPenalty;
    // Only poisoned configs carry the suffix: every key minted before
    // fault injection existed is still minted byte-for-byte.
    if (!injectFault.empty())
        os << "-f" << injectFault;
    return os.str();
}

Runner::Runner(std::string cacheDir)
    : cacheDir_(std::move(cacheDir)), traceDir_(envTraceDir())
{
    // Multi-tenant farms: $VCOMA_CACHE_TENANT namespaces this
    // runner's entries into a per-tenant subdirectory with its own
    // pruning budget, so one client's sweep can never evict another
    // tenant's warm results. The global budget keeps bounding the
    // shared root (pruning is non-recursive, so it never reaches
    // into tenant subdirectories either way).
    const std::string tenant = envCacheTenant();
    if (!cacheDir_.empty() && !tenant.empty())
        cacheDir_ += "/" + tenant;
    if (!cacheDir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir_, ec);
        if (ec) {
            warn("cannot create cache dir '", cacheDir_,
                 "': caching disabled");
            cacheDir_.clear();
        }
    }
    if (!cacheDir_.empty()) {
        if (tenant.empty()) {
            if (const std::uint64_t maxBytes = envCacheMaxBytes())
                pruneCache(cacheDir_, maxBytes);
        } else {
            std::uint64_t maxBytes = envCacheTenantMaxBytes();
            if (!maxBytes)
                maxBytes = envCacheMaxBytes();
            if (maxBytes)
                pruneCache(cacheDir_, maxBytes);
        }
    }
    if (!traceDir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(traceDir_, ec);
        if (ec) {
            warn("cannot create trace dir '", traceDir_,
                 "': record/replay disabled");
            traceDir_.clear();
        }
    }
    if (!traceDir_.empty()) {
        if (const std::uint64_t maxBytes = envTraceMaxBytes())
            pruneTraces(traceDir_, maxBytes);
    }
}

double
Runner::envScale()
{
    const char *s = std::getenv("VCOMA_SCALE");
    if (!s || !*s)
        return 1.0;
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || !std::isfinite(v) || v <= 0) {
        warn("unparsable VCOMA_SCALE='", s, "': using scale 1.0");
        return 1.0;
    }
    return v;
}

std::string
Runner::defaultCacheDir()
{
    if (envTruthy("VCOMA_NO_CACHE"))
        return "";
    if (const char *s = std::getenv("VCOMA_CACHE_DIR"))
        return s;
    return ".vcoma_cache";
}

unsigned
Runner::envJobs()
{
    return ThreadPool::defaultThreads();
}

namespace
{

/** Parse a megabyte budget env var into bytes; 0 = unlimited. */
std::uint64_t
envMegabytes(const char *name)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return 0;
    const char *p = s;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    char *end = nullptr;
    const unsigned long long mb = std::strtoull(p, &end, 10);
    if (*p == '-' || end == p || *end != '\0') {
        warn("unparsable ", name, "='", s, "': left unbounded");
        return 0;
    }
    constexpr std::uint64_t mib = 1024 * 1024;
    if (mb > std::numeric_limits<std::uint64_t>::max() / mib)
        return std::numeric_limits<std::uint64_t>::max();
    return mb * mib;
}

/**
 * Shared pruning policy for the result cache and the trace dir:
 * delete oldest-mtime `*<extension>` files until the survivors fit
 * the budget. Equal mtimes — the common case inside one batch sweep,
 * where many entries land within the filesystem's timestamp
 * granularity — are ordered by file name so the victim choice is
 * deterministic and never depends on directory iteration order.
 */
unsigned
pruneOldest(const std::string &dir, std::uint64_t maxBytes,
            const char *extension, const char *what)
{
    namespace fs = std::filesystem;
    struct Entry
    {
        fs::file_time_type mtime;
        std::uint64_t size;
        fs::path path;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir, ec)) {
        if (!de.is_regular_file(ec) ||
            de.path().extension() != extension)
            continue;
        const auto mtime = de.last_write_time(ec);
        if (ec)
            continue;
        const std::uint64_t size = de.file_size(ec);
        if (ec)
            continue;
        total += size;
        entries.push_back({mtime, size, de.path()});
    }
    if (total <= maxBytes)
        return 0;

    // Newest first; file name as the deterministic tie-break for
    // equal mtimes.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime > b.mtime;
                  return a.path.filename() < b.path.filename();
              });
    unsigned removed = 0;
    std::uint64_t kept = 0;
    for (const Entry &e : entries) {
        if (saturatingAdd(kept, e.size) <= maxBytes) {
            kept += e.size;
            continue;
        }
        if (fs::remove(e.path, ec))
            ++removed;
        else if (ec)
            warn("cannot prune ", what, " '", e.path.string(), "': ",
                 ec.message());
    }
    if (removed)
        inform("pruned ", removed, " ", what, removed == 1 ? "" : "s",
               " from '", dir, "' (budget ", maxBytes, " bytes)");
    return removed;
}

} // namespace

std::uint64_t
Runner::envCacheMaxBytes()
{
    return envMegabytes("VCOMA_CACHE_MAX_MB");
}

std::string
Runner::envCacheTenant()
{
    const char *s = std::getenv("VCOMA_CACHE_TENANT");
    if (!s || !*s)
        return "";
    const std::string tenant(s);
    // The tenant becomes a path component; anything that could
    // escape the cache directory or collide with an entry name is
    // rejected loudly rather than half-honoured.
    bool ok = tenant != "." && tenant != "..";
    for (const char c : tenant) {
        const auto u = static_cast<unsigned char>(c);
        if (!std::isalnum(u) && c != '.' && c != '_' && c != '-')
            ok = false;
    }
    if (!ok) {
        warn("VCOMA_CACHE_TENANT='", s, "' is not a plain directory "
             "name ([A-Za-z0-9._-], not . or ..): ignoring it");
        return "";
    }
    return tenant;
}

std::uint64_t
Runner::envCacheTenantMaxBytes()
{
    return envMegabytes("VCOMA_CACHE_TENANT_MAX_MB");
}

std::string
Runner::envTraceDir()
{
    const char *s = std::getenv("VCOMA_TRACE_DIR");
    return s ? s : "";
}

std::uint64_t
Runner::envTraceMaxBytes()
{
    return envMegabytes("VCOMA_TRACE_MAX_MB");
}

unsigned
Runner::pruneCache(const std::string &dir, std::uint64_t maxBytes)
{
    return pruneOldest(dir, maxBytes, ".txt", "cache entry");
}

unsigned
Runner::pruneTraces(const std::string &dir, std::uint64_t maxBytes)
{
    return pruneOldest(dir, maxBytes, ".vctrace", "recorded trace");
}

const RunStats &
Runner::run(const ExperimentConfig &cfg)
{
    if (const RunStats *stats = tryRun(cfg))
        return *stats;
    std::lock_guard<std::mutex> lock(mutex_);
    throw SimulationError(failed_.at(cfg.key()).error);
}

const RunStats *
Runner::tryRun(const ExperimentConfig &cfg, bool *freshlyExecuted)
{
    if (freshlyExecuted)
        *freshlyExecuted = false;
    const std::string key = cfg.key();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return &it->second;
        if (failed_.count(key))
            return nullptr;
    }

    RunStats stats;
    const std::string path = cachePath(cfg);
    if (path.empty() || !load(path, stats)) {
        try {
            stats = execute(cfg);
        } catch (const std::exception &e) {
            recordFailure(cfg, key, e.what());
            return nullptr;
        }
        if (freshlyExecuted)
            *freshlyExecuted = true;
        if (!path.empty())
            store(path, stats);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    return &memo_.emplace(key, std::move(stats)).first->second;
}

std::size_t
Runner::preloadCache()
{
    if (cacheDir_.empty())
        return 0;
    namespace fs = std::filesystem;
    std::error_code ec;
    std::size_t loaded = 0;
    for (const fs::directory_entry &de :
         fs::directory_iterator(cacheDir_, ec)) {
        if (ec)
            break;
        if (!de.is_regular_file(ec) ||
            de.path().extension() != ".txt")
            continue;
        const std::string key = de.path().stem().string();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (memo_.count(key))
                continue;
        }
        RunStats stats;
        if (!load(de.path().string(), stats))
            continue;  // truncated/foreign file: not an error
        std::lock_guard<std::mutex> lock(mutex_);
        if (memo_.emplace(key, std::move(stats)).second)
            ++loaded;
    }
    return loaded;
}

void
Runner::executeAndMemoise(const ExperimentConfig &cfg,
                          const std::string &key)
{
    RunStats stats;
    try {
        stats = execute(cfg);
    } catch (const std::exception &e) {
        recordFailure(cfg, key, e.what());
        if (envTruthy("VCOMA_STRICT"))
            throw;
        return;
    }
    const std::string path = cachePath(cfg);
    if (!path.empty())
        store(path, stats);
    std::lock_guard<std::mutex> lock(mutex_);
    memo_.emplace(key, std::move(stats));
}

void
Runner::recordFailure(const ExperimentConfig &cfg, const std::string &key,
                      const std::string &error)
{
    warn("config ", key, " failed: ", error);
    std::lock_guard<std::mutex> lock(mutex_);
    failed_.emplace(key, FailedRun{cfg, key, error});
}

std::string
Runner::failureMessage(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = failed_.find(key);
    return it != failed_.end() ? it->second.error : "";
}

std::vector<FailedRun>
Runner::failures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<FailedRun> out;
    out.reserve(failed_.size());
    for (const auto &[key, f] : failed_)
        out.push_back(f);
    return out;
}

std::vector<const RunStats *>
Runner::runAll(std::span<const ExperimentConfig> cfgs)
{
    std::vector<std::string> keys;
    keys.reserve(cfgs.size());
    for (const auto &cfg : cfgs)
        keys.push_back(cfg.key());

    // Single-threaded triage: satisfy what the memo or the disk cache
    // already has, and collect the first occurrence of every unique
    // key that still needs a simulation.
    std::vector<std::size_t> toRun;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::unordered_set<std::string> scheduled;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            if (memo_.count(keys[i]) || failed_.count(keys[i]) ||
                scheduled.count(keys[i]))
                continue;
            RunStats stats;
            const std::string path = cachePath(cfgs[i]);
            if (!path.empty() && load(path, stats)) {
                memo_.emplace(keys[i], std::move(stats));
                continue;
            }
            scheduled.insert(keys[i]);
            toRun.push_back(i);
        }
    }

    const unsigned jobs = static_cast<unsigned>(
        std::min<std::size_t>(envJobs(), toRun.size()));
    if (jobs > 1) {
        ThreadPool pool(jobs);
        std::vector<std::future<void>> done;
        done.reserve(toRun.size());
        for (std::size_t i : toRun) {
            done.push_back(pool.submit([this, cfg = cfgs[i],
                                        key = keys[i]] {
                executeAndMemoise(cfg, key);
            }));
        }
        // Collect in submission order. Failures are recorded inside
        // the job, so get() only rethrows under $VCOMA_STRICT; the
        // pool's destructor still drains the queue if one does.
        for (auto &f : done)
            f.get();
    } else {
        for (std::size_t i : toRun)
            executeAndMemoise(cfgs[i], keys[i]);
    }

    std::vector<const RunStats *> results;
    results.reserve(cfgs.size());
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &key : keys) {
        auto it = memo_.find(key);
        results.push_back(it != memo_.end() ? &it->second : nullptr);
    }
    return results;
}

RunStats
Runner::execute(const ExperimentConfig &cfg)
{
    ++executed_;
    MachineConfig mc = baselineConfig(cfg.scheme, cfg.tlbEntries,
                                      cfg.tlbAssoc);
    mc.numNodes = cfg.nodes;
    mc.timedTranslation = cfg.timedTranslation;
    mc.translation.writebacksAccessTlb = cfg.writebacksAccessTlb;
    mc.seed = cfg.seed;
    mc.am.assoc = cfg.amAssoc;
    mc.timing.translationMiss = cfg.xlatPenalty;

    WorkloadParams wp;
    wp.threads = cfg.nodes;
    wp.scale = cfg.scale;
    wp.seed = cfg.seed;
    wp.raytraceV2Layout = cfg.raytraceV2;

    // Record/replay ($VCOMA_TRACE_DIR): the first execution of a
    // config records the packed memref streams its workload produced;
    // later executions mmap and replay them, skipping the workload
    // algorithm entirely. An unusable trace (corrupt, truncated,
    // version- or key-mismatched) is rejected with a warning and the
    // run falls back to live generation, re-recording over it —
    // never a crash, never a silent partial replay.
    // "TRACE:<path>" workloads already replay an external packed
    // trace; recording them again (or shadowing them with a
    // trace-dir entry whose recorded key can never match) would be
    // circular, so they bypass the machinery entirely.
    std::string tracePath;
    if (!traceDir_.empty() && !isTraceSpelling(cfg.workload))
        tracePath = traceDir_ + "/" + cfg.key() + ".vctrace";

    try {
        Machine machine(mc);
        std::unique_ptr<Workload> workload;
        if (!tracePath.empty() &&
            std::filesystem::exists(tracePath)) {
            try {
                auto replay = std::make_unique<ReplayWorkload>(tracePath);
                if (replay->recordedKey() != cfg.key()) {
                    warn("trace '", tracePath, "' was recorded for key ",
                         replay->recordedKey(), ", not ", cfg.key(),
                         ": regenerating");
                } else {
                    workload = std::move(replay);
                }
            } catch (const TraceFormatError &e) {
                warn(e.what(), ": regenerating");
            }
        }
        std::unique_ptr<RecordingWorkload> recording;
        if (!workload) {
            workload = makeWorkload(cfg.workload, wp);
            if (!tracePath.empty()) {
                recording = std::make_unique<RecordingWorkload>(
                    *workload, tracePath, cfg.key());
            }
        }
        RunStats stats =
            machine.run(recording ? *recording : *workload);
        if (recording)
            recording->finalize();
        if (!cfg.injectFault.empty())
            applyConfiguredFault(machine, cfg);
        return stats;
    } catch (const SimulationError &) {
        throw;
    } catch (const std::exception &e) {
        throw SimulationError(detail::concat(
            "simulation of workload ", cfg.workload, " under ",
            schemeName(cfg.scheme), " (config ", cfg.key(),
            ") failed: ", e.what()));
    }
}

std::string
Runner::cachePath(const ExperimentConfig &cfg) const
{
    if (cacheDir_.empty())
        return "";
    return cacheDir_ + "/" + cfg.key() + ".txt";
}

bool
Runner::load(const std::string &path, RunStats &stats) const
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string magic;
    if (!std::getline(in, magic) || magic != cacheMagic)
        return false;

    std::string line;
    auto restOf = [](const std::string &l, std::size_t at) {
        return l.substr(at);
    };
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "workload") {
            stats.workload = line.size() > 9 ? restOf(line, 9) : "";
        } else if (tag == "parameters") {
            stats.parameters = line.size() > 11 ? restOf(line, 11) : "";
        } else if (tag == "scheme") {
            int v;
            ls >> v;
            // A value outside the registry (corrupt file, or a sheet
            // written by a future version with more schemes) must
            // never masquerade as a valid scheme: reject the whole
            // file so the runner re-simulates instead.
            if (v < 0 || !isKnownScheme(static_cast<unsigned>(v)))
                return false;
            stats.scheme = static_cast<Scheme>(v);
        } else if (tag == "numNodes") {
            ls >> stats.numNodes;
        } else if (tag == "sharedBytes") {
            ls >> stats.sharedBytes;
        } else if (tag == "execTime") {
            ls >> stats.execTime;
        } else if (tag == "cpu") {
            CpuStats c;
            ls >> c.refs >> c.reads >> c.writes >> c.busy >> c.sync >>
                c.locStall >> c.remStall >> c.xlatStall >> c.finish;
            stats.cpus.push_back(c);
        } else if (tag == "shadow") {
            ShadowPoint p;
            ls >> p.entries >> p.assoc >> p.demandAccesses >>
                p.demandMisses >> p.writebackAccesses >>
                p.writebackMisses;
            stats.shadow.push_back(p);
        } else if (tag == "tlb") {
            ls >> stats.tlbAccesses >> stats.tlbMisses >>
                stats.tlbWritebackAccesses >> stats.tlbWritebackMisses;
        } else if (tag == "pressure") {
            double v;
            while (ls >> v)
                stats.pressureProfile.push_back(v);
        } else if (tag == "caches") {
            ls >> stats.flcAccesses >> stats.flcMisses >>
                stats.slcAccesses >> stats.slcMisses >> stats.amHits >>
                stats.amMisses;
        } else if (tag == "protocol") {
            ls >> stats.remoteReads >> stats.remoteWrites >>
                stats.upgrades >> stats.invalidations >>
                stats.injections >> stats.injectionHops >>
                stats.sharedDrops >> stats.pageFaults >>
                stats.swapOuts >> stats.tlbShootdowns;
        } else if (tag == "network") {
            ls >> stats.requestMessages >> stats.blockMessages;
        } else if (tag == "dlb") {
            ls >> stats.dlbFilteredRefs >> stats.dlbSharedHits >>
                stats.dlbPrefetchedFills;
        } else if (tag == "spill") {
            ls >> stats.tlbSpillProbes >> stats.tlbSpillHits >>
                stats.tlbSpillFills;
        } else if (tag == "dlbreq") {
            ls >> stats.dlbRequestersPerEntry.count >>
                stats.dlbRequestersPerEntry.sum >>
                stats.dlbRequestersPerEntry.min >>
                stats.dlbRequestersPerEntry.max;
        } else if (tag == "lat") {
            // lat <which> <count> <sum> <min> <max>
            std::string which;
            ls >> which;
            DistSummary *d = which == "read" ? &stats.remoteReadLatency
                             : which == "write"
                                 ? &stats.remoteWriteLatency
                             : which == "dlbfill" ? &stats.dlbFillLatency
                                                  : nullptr;
            if (d)
                ls >> d->count >> d->sum >> d->min >> d->max;
        } else if (tag == "end") {
            return true;
        }
    }
    return false;  // truncated file
}

void
Runner::store(const std::string &path, const RunStats &stats) const
{
    // The cache is an optimisation, so failing to write it is never
    // fatal; but transient filesystem trouble (a concurrently pruned
    // cache directory, a momentary ENOSPC) deserves a couple of
    // retries with a short backoff before we give up.
    std::string error;
    for (int attempt = 0; attempt < 3; ++attempt) {
        if (attempt != 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10 << (attempt - 1)));
        if (storeOnce(path, stats, error))
            return;
    }
    warn("cannot write cache file '", path, "' after 3 attempts: ",
         error);
}

bool
Runner::storeOnce(const std::string &path, const RunStats &stats,
                  std::string &error) const
{
    // Stage into a temp name unique across processes (pid) and across
    // threads within one process (a shared counter), then publish with
    // an atomic rename: concurrent writers of the same key each
    // produce a complete file and the last rename wins.
    static std::atomic<unsigned> seq{0};
    std::ostringstream tmpName;
    tmpName << path << ".tmp." << ::getpid() << "." << seq.fetch_add(1);
    const std::string tmp = tmpName.str();
    std::ofstream out(tmp);
    if (!out) {
        error = "cannot create '" + tmp + "'";
        return false;
    }
    out << cacheMagic << "\n";
    out << "workload " << stats.workload << "\n";
    out << "parameters " << stats.parameters << "\n";
    out << "scheme " << static_cast<int>(stats.scheme) << "\n";
    out << "numNodes " << stats.numNodes << "\n";
    out << "sharedBytes " << stats.sharedBytes << "\n";
    out << "execTime " << stats.execTime << "\n";
    for (const auto &c : stats.cpus) {
        out << "cpu " << c.refs << " " << c.reads << " " << c.writes
            << " " << c.busy << " " << c.sync << " " << c.locStall << " "
            << c.remStall << " " << c.xlatStall << " " << c.finish
            << "\n";
    }
    for (const auto &p : stats.shadow) {
        out << "shadow " << p.entries << " " << p.assoc << " "
            << p.demandAccesses << " " << p.demandMisses << " "
            << p.writebackAccesses << " " << p.writebackMisses << "\n";
    }
    out << "tlb " << stats.tlbAccesses << " " << stats.tlbMisses << " "
        << stats.tlbWritebackAccesses << " " << stats.tlbWritebackMisses
        << "\n";
    // 17 significant digits round-trip any double exactly, so a sheet
    // reloaded from disk is bit-identical to the one simulated (the
    // service's byte-exact replies depend on it).
    out << "pressure" << std::setprecision(17);
    for (double v : stats.pressureProfile)
        out << " " << v;
    out << std::setprecision(6) << "\n";
    out << "caches " << stats.flcAccesses << " " << stats.flcMisses
        << " " << stats.slcAccesses << " " << stats.slcMisses << " "
        << stats.amHits << " " << stats.amMisses << "\n";
    out << "protocol " << stats.remoteReads << " " << stats.remoteWrites
        << " " << stats.upgrades << " " << stats.invalidations << " "
        << stats.injections << " " << stats.injectionHops << " "
        << stats.sharedDrops << " " << stats.pageFaults << " "
        << stats.swapOuts << " " << stats.tlbShootdowns << "\n";
    out << "network " << stats.requestMessages << " "
        << stats.blockMessages << "\n";
    // Observability extras, appended after the v3 tags so old cache
    // files (which simply lack them) still load with default-zero
    // values; the loader ignores tags it does not know, so nothing
    // here requires a magic bump.
    out << "dlb " << stats.dlbFilteredRefs << " " << stats.dlbSharedHits
        << " " << stats.dlbPrefetchedFills << "\n";
    // Spill counters only exist under slcTlbSpill schemes (VICTIMA):
    // emitting the tag conditionally keeps every legacy sheet
    // byte-identical, and the loader defaults the fields to zero.
    if (stats.tlbSpillProbes || stats.tlbSpillHits ||
        stats.tlbSpillFills) {
        out << "spill " << stats.tlbSpillProbes << " "
            << stats.tlbSpillHits << " " << stats.tlbSpillFills << "\n";
    }
    const auto putSummary = [&out](const char *tag, const char *which,
                                   const DistSummary &d) {
        out << tag;
        if (*which)
            out << " " << which;
        out << " " << d.count << " " << std::setprecision(17) << d.sum
            << " " << d.min << " " << d.max << std::setprecision(6)
            << "\n";
    };
    putSummary("dlbreq", "", stats.dlbRequestersPerEntry);
    putSummary("lat", "read", stats.remoteReadLatency);
    putSummary("lat", "write", stats.remoteWriteLatency);
    putSummary("lat", "dlbfill", stats.dlbFillLatency);
    out << "end\n";
    out.close();
    std::error_code ec;
    if (!out) {
        error = "short write to '" + tmp + "'";
        std::filesystem::remove(tmp, ec);
        return false;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        error = "cannot publish: " + ec.message();
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

const std::vector<std::string> &
paperBenchmarks()
{
    static const std::vector<std::string> names{
        "RADIX", "FFT", "FMM", "RAYTRACE", "BARNES", "OCEAN",
    };
    return names;
}

const std::vector<std::string> &
datacenterBenchmarks()
{
    static const std::vector<std::string> names{
        "KVLOOKUP", "GRAPH", "STREAMJOIN",
    };
    return names;
}

} // namespace vcoma
