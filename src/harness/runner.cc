#include "harness/runner.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sim/machine.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

namespace vcoma
{

namespace
{

constexpr const char *cacheMagic = "vcoma-cache-v3";

} // namespace

std::string
ExperimentConfig::key() const
{
    std::ostringstream os;
    os << workload << "-" << schemeName(scheme) << "-e" << tlbEntries
       << "-a" << tlbAssoc << "-t" << timedTranslation << "-w"
       << writebacksAccessTlb << "-v2_" << raytraceV2 << "-n" << nodes
       << "-s" << scale << "-r" << seed << "-k" << amAssoc << "-p"
       << xlatPenalty;
    return os.str();
}

Runner::Runner(std::string cacheDir) : cacheDir_(std::move(cacheDir))
{
    if (!cacheDir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir_, ec);
        if (ec) {
            warn("cannot create cache dir '", cacheDir_,
                 "': caching disabled");
            cacheDir_.clear();
        }
    }
}

double
Runner::envScale()
{
    if (const char *s = std::getenv("VCOMA_SCALE")) {
        const double v = std::atof(s);
        if (v > 0)
            return v;
    }
    return 1.0;
}

std::string
Runner::defaultCacheDir()
{
    if (const char *s = std::getenv("VCOMA_NO_CACHE")) {
        if (s[0] == '1')
            return "";
    }
    if (const char *s = std::getenv("VCOMA_CACHE_DIR"))
        return s;
    return ".vcoma_cache";
}

const RunStats &
Runner::run(const ExperimentConfig &cfg)
{
    const std::string key = cfg.key();
    auto it = memo_.find(key);
    if (it != memo_.end())
        return it->second;

    RunStats stats;
    const std::string path = cachePath(cfg);
    if (!path.empty() && load(path, stats))
        return memo_.emplace(key, std::move(stats)).first->second;

    stats = execute(cfg);
    if (!path.empty())
        store(path, stats);
    return memo_.emplace(key, std::move(stats)).first->second;
}

RunStats
Runner::execute(const ExperimentConfig &cfg)
{
    ++executed_;
    MachineConfig mc = baselineConfig(cfg.scheme, cfg.tlbEntries,
                                      cfg.tlbAssoc);
    mc.numNodes = cfg.nodes;
    mc.timedTranslation = cfg.timedTranslation;
    mc.translation.writebacksAccessTlb = cfg.writebacksAccessTlb;
    mc.seed = cfg.seed;
    mc.am.assoc = cfg.amAssoc;
    mc.timing.translationMiss = cfg.xlatPenalty;

    WorkloadParams wp;
    wp.threads = cfg.nodes;
    wp.scale = cfg.scale;
    wp.seed = cfg.seed;
    wp.raytraceV2Layout = cfg.raytraceV2;

    Machine machine(mc);
    auto workload = makeWorkload(cfg.workload, wp);
    return machine.run(*workload);
}

std::string
Runner::cachePath(const ExperimentConfig &cfg) const
{
    if (cacheDir_.empty())
        return "";
    return cacheDir_ + "/" + cfg.key() + ".txt";
}

bool
Runner::load(const std::string &path, RunStats &stats) const
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string magic;
    if (!std::getline(in, magic) || magic != cacheMagic)
        return false;

    std::string line;
    auto restOf = [](const std::string &l, std::size_t at) {
        return l.substr(at);
    };
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "workload") {
            stats.workload = line.size() > 9 ? restOf(line, 9) : "";
        } else if (tag == "parameters") {
            stats.parameters = line.size() > 11 ? restOf(line, 11) : "";
        } else if (tag == "scheme") {
            int v;
            ls >> v;
            stats.scheme = static_cast<Scheme>(v);
        } else if (tag == "numNodes") {
            ls >> stats.numNodes;
        } else if (tag == "sharedBytes") {
            ls >> stats.sharedBytes;
        } else if (tag == "execTime") {
            ls >> stats.execTime;
        } else if (tag == "cpu") {
            CpuStats c;
            ls >> c.refs >> c.reads >> c.writes >> c.busy >> c.sync >>
                c.locStall >> c.remStall >> c.xlatStall >> c.finish;
            stats.cpus.push_back(c);
        } else if (tag == "shadow") {
            ShadowPoint p;
            ls >> p.entries >> p.assoc >> p.demandAccesses >>
                p.demandMisses >> p.writebackAccesses >>
                p.writebackMisses;
            stats.shadow.push_back(p);
        } else if (tag == "tlb") {
            ls >> stats.tlbAccesses >> stats.tlbMisses >>
                stats.tlbWritebackAccesses >> stats.tlbWritebackMisses;
        } else if (tag == "pressure") {
            double v;
            while (ls >> v)
                stats.pressureProfile.push_back(v);
        } else if (tag == "caches") {
            ls >> stats.flcAccesses >> stats.flcMisses >>
                stats.slcAccesses >> stats.slcMisses >> stats.amHits >>
                stats.amMisses;
        } else if (tag == "protocol") {
            ls >> stats.remoteReads >> stats.remoteWrites >>
                stats.upgrades >> stats.invalidations >>
                stats.injections >> stats.injectionHops >>
                stats.sharedDrops >> stats.pageFaults >>
                stats.swapOuts >> stats.tlbShootdowns;
        } else if (tag == "network") {
            ls >> stats.requestMessages >> stats.blockMessages;
        } else if (tag == "end") {
            return true;
        }
    }
    return false;  // truncated file
}

void
Runner::store(const std::string &path, const RunStats &stats) const
{
    std::ofstream out(path + ".tmp");
    if (!out)
        return;
    out << cacheMagic << "\n";
    out << "workload " << stats.workload << "\n";
    out << "parameters " << stats.parameters << "\n";
    out << "scheme " << static_cast<int>(stats.scheme) << "\n";
    out << "numNodes " << stats.numNodes << "\n";
    out << "sharedBytes " << stats.sharedBytes << "\n";
    out << "execTime " << stats.execTime << "\n";
    for (const auto &c : stats.cpus) {
        out << "cpu " << c.refs << " " << c.reads << " " << c.writes
            << " " << c.busy << " " << c.sync << " " << c.locStall << " "
            << c.remStall << " " << c.xlatStall << " " << c.finish
            << "\n";
    }
    for (const auto &p : stats.shadow) {
        out << "shadow " << p.entries << " " << p.assoc << " "
            << p.demandAccesses << " " << p.demandMisses << " "
            << p.writebackAccesses << " " << p.writebackMisses << "\n";
    }
    out << "tlb " << stats.tlbAccesses << " " << stats.tlbMisses << " "
        << stats.tlbWritebackAccesses << " " << stats.tlbWritebackMisses
        << "\n";
    out << "pressure";
    for (double v : stats.pressureProfile)
        out << " " << v;
    out << "\n";
    out << "caches " << stats.flcAccesses << " " << stats.flcMisses
        << " " << stats.slcAccesses << " " << stats.slcMisses << " "
        << stats.amHits << " " << stats.amMisses << "\n";
    out << "protocol " << stats.remoteReads << " " << stats.remoteWrites
        << " " << stats.upgrades << " " << stats.invalidations << " "
        << stats.injections << " " << stats.injectionHops << " "
        << stats.sharedDrops << " " << stats.pageFaults << " "
        << stats.swapOuts << " " << stats.tlbShootdowns << "\n";
    out << "network " << stats.requestMessages << " "
        << stats.blockMessages << "\n";
    out << "end\n";
    out.close();
    std::error_code ec;
    std::filesystem::rename(path + ".tmp", path, ec);
}

const std::vector<std::string> &
paperBenchmarks()
{
    static const std::vector<std::string> names{
        "RADIX", "FFT", "FMM", "RAYTRACE", "BARNES", "OCEAN",
    };
    return names;
}

} // namespace vcoma
