#include "core/vaddr_layout.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace vcoma
{

VAddrLayout::VAddrLayout(const MachineConfig &cfg)
{
    blockBits_ = exactLog2(cfg.am.blockBytes);
    setBits_ = exactLog2(cfg.am.numSets());
    pageBits_ = exactLog2(cfg.pageBytes);
    nodeBits_ = exactLog2(cfg.numNodes);

    if (blockBits_ + setBits_ < pageBits_) {
        fatal("attraction memory sets (", cfg.am.numSets(),
              ") too few: the AM index must extend past the page offset");
    }
    colourBits_ = blockBits_ + setBits_ - pageBits_;
    if (nodeBits_ > colourBits_) {
        fatal("home-node bits (", nodeBits_, ") exceed colour bits (",
              colourBits_, "): every global page set must map to a",
              " single home node");
    }
}

} // namespace vcoma
