/**
 * @file
 * The DLB (Directory Lookaside Buffer) of V-COMA: a cache at every
 * home node that accelerates the translation from virtual address to
 * *directory address* (Section 4.2, Figure 7). Because it sits behind
 * the attraction memories of all nodes it enjoys the filtering
 * effect, and because its entries are shared by every requester it
 * enjoys the sharing and prefetching effects (Section 5.2).
 *
 * The DLB also maintains the page's reference and modify bits
 * (Section 4.3): the reference bit is set on every directory lookup;
 * the modify bit is set when a node first acquires exclusive
 * ownership of any block of the page.
 */

#ifndef VCOMA_CORE_DLB_HH
#define VCOMA_CORE_DLB_HH

#include <cstdint>
#include <memory>

#include "common/stats.hh"
#include "tlb/tlb.hh"
#include "vm/page_table.hh"

namespace vcoma
{

/** One home node's DLB. */
class Dlb
{
  public:
    /**
     * @param entries entry count
     * @param assoc   0 = fully associative
     * @param seed    random-replacement seed
     */
    Dlb(unsigned entries, unsigned assoc, std::uint64_t seed,
        unsigned indexShift = 0)
        : tlb_(entries, assoc, seed, indexShift)
    {
    }

    /**
     * Translate @p vpn for a directory lookup, filling on miss, and
     * maintain the page's reference/modify bits.
     *
     * @param page       the page-table entry being translated
     * @param exclusiveRequest the transaction asks for exclusive
     *        ownership (sets the modify bit, Section 4.3)
     * @param cls        demand vs write-back/injection stream class
     * @return true on DLB hit.
     */
    bool
    access(PageInfo &page, bool exclusiveRequest, StreamClass cls)
    {
        const bool hit = tlb_.access(page.vpn, cls);
        if (!page.referenced) {
            page.referenced = true;
            ++refBitSets;
        }
        if (exclusiveRequest && !page.modified) {
            page.modified = true;
            ++modBitSets;
        }
        return hit;
    }

    /** Shoot down the entry for @p vpn (page swap-out, Section 4.3). */
    bool invalidate(PageNum vpn) { return tlb_.invalidate(vpn); }

    const Tlb &tlb() const { return tlb_; }
    /** Mutable access (stats wiring, test fault injection). */
    Tlb &tlb() { return tlb_; }

    Counter refBitSets;
    Counter modBitSets;

  private:
    Tlb tlb_;
};

} // namespace vcoma

#endif // VCOMA_CORE_DLB_HH
