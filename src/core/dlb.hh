/**
 * @file
 * The DLB (Directory Lookaside Buffer) of V-COMA: a cache at every
 * home node that accelerates the translation from virtual address to
 * *directory address* (Section 4.2, Figure 7). Because it sits behind
 * the attraction memories of all nodes it enjoys the filtering
 * effect, and because its entries are shared by every requester it
 * enjoys the sharing and prefetching effects (Section 5.2).
 *
 * Those two effects are measured directly: each live entry remembers
 * which node's miss filled it and the set of nodes that have hit it
 * since (a 64-bit mask — the machine caps at 64 nodes). A hit by a
 * node other than the filler is a *shared* hit, and the first such
 * hit marks the fill as having *prefetched* the translation for that
 * later requester. When an entry is evicted or shot down (or the run
 * ends), its distinct-requester count is retired into the
 * requestersPerEntry distribution.
 *
 * The DLB also maintains the page's reference and modify bits
 * (Section 4.3): the reference bit is set on every directory lookup;
 * the modify bit is set when a node first acquires exclusive
 * ownership of any block of the page.
 */

#ifndef VCOMA_CORE_DLB_HH
#define VCOMA_CORE_DLB_HH

#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/stats.hh"
#include "tlb/tlb.hh"
#include "vm/page_table.hh"

namespace vcoma
{

/** One home node's DLB. */
class Dlb
{
  public:
    /**
     * @param entries entry count
     * @param assoc   0 = fully associative
     * @param seed    random-replacement seed
     */
    Dlb(unsigned entries, unsigned assoc, std::uint64_t seed,
        unsigned indexShift = 0)
        : tlb_(entries, assoc, seed, indexShift)
    {
    }

    /**
     * Translate @p vpn for a directory lookup, filling on miss, and
     * maintain the page's reference/modify bits.
     *
     * @param page       the page-table entry being translated
     * @param requester  the node whose transaction needs the
     *        translation (attributes the sharing/prefetching effects)
     * @param exclusiveRequest the transaction asks for exclusive
     *        ownership (sets the modify bit, Section 4.3)
     * @param cls        demand vs write-back/injection stream class
     * @return true on DLB hit.
     */
    bool
    access(PageInfo &page, NodeId requester, bool exclusiveRequest,
           StreamClass cls)
    {
        PageNum evicted = Tlb::noVpn;
        const bool hit = tlb_.access(page.vpn, cls, &evicted);
        if (evicted != Tlb::noVpn)
            retireEntry(evicted);
        if (tlb_.entries() != 0) {
            if (hit) {
                auto it = meta_.find(page.vpn);
                // Entries injected behind the Dlb's back (fault
                // injection pokes tlb() directly) have no metadata;
                // skip attribution for those.
                if (it != meta_.end()) {
                    EntryMeta &m = it->second;
                    m.requesters |= maskOf(requester);
                    if (requester != m.filler) {
                        ++sharedHits;
                        if (!m.servedOther) {
                            m.servedOther = true;
                            ++prefetchedFills;
                        }
                    }
                }
            } else {
                meta_[page.vpn] =
                    EntryMeta{maskOf(requester), requester, false};
            }
        }
        if (!page.referenced) {
            page.referenced = true;
            ++refBitSets;
        }
        if (exclusiveRequest && !page.modified) {
            page.modified = true;
            ++modBitSets;
        }
        return hit;
    }

    /** Shoot down the entry for @p vpn (page swap-out, Section 4.3). */
    bool
    invalidate(PageNum vpn)
    {
        if (!tlb_.invalidate(vpn))
            return false;
        retireEntry(vpn);
        return true;
    }

    /** Retire every live entry's requester count (end of run). */
    void
    finalizeEntryStats()
    {
        for (const auto &[vpn, m] : meta_)
            requestersPerEntry.sample(
                static_cast<double>(std::popcount(m.requesters)));
        meta_.clear();
    }

    /** Register all counters on @p g as <prefix>refBitSets etc. */
    void
    addStats(StatGroup &g, const std::string &prefix) const
    {
        tlb_.addStats(g, prefix);
        g.addCounter(prefix + "refBitSets", refBitSets);
        g.addCounter(prefix + "modBitSets", modBitSets);
        g.addCounter(prefix + "sharedHits", sharedHits);
        g.addCounter(prefix + "prefetchedFills", prefetchedFills);
        g.addDistribution(prefix + "requestersPerEntry",
                          requestersPerEntry);
    }

    const Tlb &tlb() const { return tlb_; }
    /** Mutable access (stats wiring, test fault injection). */
    Tlb &tlb() { return tlb_; }

    Counter refBitSets;
    Counter modBitSets;
    /** @{ @name Effect evidence (Section 5.2) */
    Counter sharedHits;       ///< hits by a node other than the filler
    Counter prefetchedFills;  ///< fills that later served another node
    Distribution requestersPerEntry;  ///< distinct requesters, retired
    /** @} */

  private:
    struct EntryMeta
    {
        std::uint64_t requesters = 0;  ///< bitmask of requester nodes
        NodeId filler = invalidNode;   ///< node whose miss filled it
        bool servedOther = false;      ///< already counted as prefetch
    };

    static std::uint64_t
    maskOf(NodeId node)
    {
        return node < 64 ? (std::uint64_t{1} << node) : 0;
    }

    void
    retireEntry(PageNum vpn)
    {
        auto it = meta_.find(vpn);
        if (it == meta_.end())
            return;
        requestersPerEntry.sample(
            static_cast<double>(std::popcount(it->second.requesters)));
        meta_.erase(it);
    }

    Tlb tlb_;
    /** Live-entry attribution, keyed by vpn; parallels tlb_'s content. */
    std::unordered_map<PageNum, EntryMeta> meta_;
};

} // namespace vcoma

#endif // VCOMA_CORE_DLB_HH
