#include "core/protection.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vcoma
{

ProtectionManager::ProtectionManager(
    const MachineConfig &cfg, const VAddrLayout &layout,
    PageTable &pageTable, Directory &directory, Network &network,
    std::vector<std::unique_ptr<Node>> &nodes)
    : cfg_(cfg), layout_(layout), pageTable_(pageTable),
      directory_(directory), network_(network), nodes_(nodes)
{
}

Tick
ProtectionManager::changeProtection(NodeId requester, PageNum vpn,
                                    std::uint8_t prot, Tick now)
{
    PageInfo *page = pageTable_.find(vpn);
    if (!page)
        fatal("protection change on unmapped page, vpn ", vpn);

    // Request travels to the page's home node.
    Tick t = network_.send(requester, page->home, MsgSize::Request, now);
    Node &home = *nodes_[page->home];
    const Tick s = home.pe.acquire(t, cfg_.timing.peOccupancy);
    t = s + cfg_.timing.directoryLookup;

    // The PE changes the bits in the page table and in the DLB.
    page->protection = prot;
    ++changes;

    // Update messages to every node currently holding blocks of the
    // page, per the directory entries.
    std::uint64_t holders = 0;
    if (DirectoryPage *dp = directory_.findPage(vpn)) {
        for (std::uint64_t i = 0; i < dp->size(); ++i)
            holders |= dp->entry(i).copyset;
    }
    Tick maxAck = t;
    for (unsigned m = 0; m < cfg_.numNodes; ++m) {
        if (!((holders >> m) & 1))
            continue;
        const Tick ti =
            network_.send(page->home, m, MsgSize::Request, t);
        Node &tm = *nodes_[m];
        const Tick sm = tm.pe.acquire(ti, cfg_.timing.peOccupancy);
        ++updatesSent;
        const Tick ack =
            network_.send(m, page->home, MsgSize::Request, sm + 4);
        maxAck = std::max(maxAck, ack);
    }

    // Acknowledge the requester.
    return network_.send(page->home, requester, MsgSize::Request, maxAck);
}

} // namespace vcoma
