/**
 * @file
 * Directory pages (Section 4.2): the directory memory is organised in
 * pages of contiguous entries, one entry per memory block of the
 * corresponding data page. In V-COMA the directory page is allocated
 * and reclaimed by the virtual memory system and plays the role the
 * pageframe plays in a classical machine (Section 4.3); in the
 * physical schemes the same layout is simply indexed by the physical
 * frame.
 */

#ifndef VCOMA_CORE_DIRECTORY_PAGE_HH
#define VCOMA_CORE_DIRECTORY_PAGE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace vcoma
{

/** Directory state for one memory block. */
struct DirectoryEntry
{
    /** Bitmask of nodes holding a valid copy (owner included). */
    std::uint64_t copyset = 0;
    /** Node holding the MasterShared/Exclusive copy. */
    NodeId owner = invalidNode;
    /** The owner's copy is Exclusive. */
    bool exclusive = false;
    /** Global write version, for protocol self-checking. */
    std::uint32_t version = 0;

    /** Block resident somewhere in the machine. */
    bool resident() const { return owner != invalidNode; }

    /** Number of valid copies. */
    unsigned
    copies() const
    {
        return static_cast<unsigned>(__builtin_popcountll(copyset));
    }

    bool
    holds(NodeId n) const
    {
        return (copyset >> n) & 1;
    }

    void
    addCopy(NodeId n)
    {
        copyset |= std::uint64_t{1} << n;
    }

    void
    dropCopy(NodeId n)
    {
        copyset &= ~(std::uint64_t{1} << n);
    }
};

/** One directory page: an entry per block of the data page. */
class DirectoryPage
{
  public:
    explicit DirectoryPage(unsigned entries) : entries_(entries) {}

    DirectoryEntry &
    entry(std::uint64_t index)
    {
        return entries_.at(index);
    }

    const DirectoryEntry &
    entry(std::uint64_t index) const
    {
        return entries_.at(index);
    }

    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<DirectoryEntry> entries_;
};

} // namespace vcoma

#endif // VCOMA_CORE_DIRECTORY_PAGE_HH
