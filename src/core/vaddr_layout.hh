/**
 * @file
 * Virtual-address field decomposition for V-COMA (Figure 6 of the
 * paper) and the set/global-set geometry shared with L3-TLB
 * (Figures 3 and 4).
 *
 * With S = 2^s attraction-memory sets per node, K = 2^k ways, block
 * size B = 2^b, P = 2^p nodes and page size N = 2^n:
 *
 *  - bits [0, b)        block displacement
 *  - bits [b, b+s)      attraction-memory set index
 *  - bits [n, n+p)      home node (p LSBs of the page number)
 *  - bits [b, n)        entry index within the directory page
 *                       (the n-b MSBs of the page displacement)
 *  - bits [n, b+s)      the "colour": which global page set the page
 *                       belongs to (s+b-n bits); the upper s-p-n+b of
 *                       them index the page-table set at the home.
 */

#ifndef VCOMA_CORE_VADDR_LAYOUT_HH
#define VCOMA_CORE_VADDR_LAYOUT_HH

#include "common/config.hh"
#include "common/types.hh"

namespace vcoma
{

/** Precomputed field geometry for one machine configuration. */
class VAddrLayout
{
  public:
    explicit VAddrLayout(const MachineConfig &cfg);

    /** @{ @name Field widths (bit counts) */
    unsigned blockBits() const { return blockBits_; }       ///< b
    unsigned setBits() const { return setBits_; }           ///< s
    unsigned pageBits() const { return pageBits_; }         ///< n
    unsigned nodeBits() const { return nodeBits_; }         ///< p
    unsigned colourBits() const { return colourBits_; }     ///< s+b-n
    /** @} */

    /** Virtual page number of @p va. */
    PageNum vpn(VAddr va) const { return va >> pageBits_; }

    /** First byte of the page containing @p va. */
    VAddr
    pageBase(VAddr va) const
    {
        return va & ~mask(pageBits_);
    }

    /** Attraction-memory block-aligned address. */
    VAddr
    blockAlign(VAddr va) const
    {
        return va & ~mask(blockBits_);
    }

    /** AM set index of @p va (bits [b, b+s)). */
    std::uint64_t
    amSet(VAddr va) const
    {
        return bits(va, blockBits_, setBits_);
    }

    /**
     * V-COMA home node: the p least significant bits of the page
     * number (Section 4.2 / Figure 6).
     */
    NodeId
    homeNode(VAddr va) const
    {
        return static_cast<NodeId>(bits(va, pageBits_, nodeBits_));
    }

    /** Home node from a page number instead of a full address. */
    NodeId
    homeNodeOfVpn(PageNum vpn) const
    {
        return static_cast<NodeId>(vpn & mask(nodeBits_));
    }

    /**
     * Colour / global page set index of a page: the bits of the page
     * number that select AM sets (Figure 3). All blocks of a page
     * with colour c live in the contiguous global sets of colour c.
     */
    std::uint64_t
    colour(VAddr va) const
    {
        return bits(va, pageBits_, colourBits_);
    }

    std::uint64_t
    colourOfVpn(PageNum vpn) const
    {
        return vpn & mask(colourBits_);
    }

    /** Number of distinct colours (global page sets). */
    std::uint64_t numColours() const { return std::uint64_t{1} << colourBits_; }

    /**
     * Directory-page entry index: which block of its page @p va falls
     * in (the n-b MSBs of the page displacement, Figure 6).
     */
    std::uint64_t
    dirEntryIndex(VAddr va) const
    {
        return bits(va, blockBits_, pageBits_ - blockBits_);
    }

    /** Entries per directory page == blocks per page. */
    std::uint64_t
    entriesPerDirPage() const
    {
        return std::uint64_t{1} << (pageBits_ - blockBits_);
    }

    /**
     * Page-table set index at the home node: the colour bits above
     * the home-node bits (s-p-n+b bits, Figure 6). Every page in one
     * global page set shares a home, so the home's page table is
     * organised as sets of P*K entries indexed by these bits.
     */
    std::uint64_t
    pageTableSet(VAddr va) const
    {
        return bits(va, pageBits_ + nodeBits_, colourBits_ - nodeBits_);
    }

  private:
    unsigned blockBits_;
    unsigned setBits_;
    unsigned pageBits_;
    unsigned nodeBits_;
    unsigned colourBits_;
};

} // namespace vcoma

#endif // VCOMA_CORE_VADDR_LAYOUT_HH
