/**
 * @file
 * Page-level protection management for V-COMA (Section 4.3).
 *
 * A node that wants to change the protection bits of a page sends a
 * message to the page's home node. The protocol engine at the home
 * changes the bits in the page table and in the DLB, then — using the
 * directory entries — sends update messages to every node currently
 * holding blocks of the page, and collects acknowledgements.
 */

#ifndef VCOMA_CORE_PROTECTION_HH
#define VCOMA_CORE_PROTECTION_HH

#include <memory>
#include <vector>

#include "coma/directory.hh"
#include "coma/node.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "core/vaddr_layout.hh"
#include "net/network.hh"
#include "vm/page_table.hh"

namespace vcoma
{

/** Executes protection-bit changes through the home node. */
class ProtectionManager
{
  public:
    ProtectionManager(const MachineConfig &cfg, const VAddrLayout &layout,
                      PageTable &pageTable, Directory &directory,
                      Network &network,
                      std::vector<std::unique_ptr<Node>> &nodes);

    /**
     * Change page @p vpn's protection to @p prot on behalf of node
     * @p requester, starting at tick @p now.
     * @return the tick at which all holders have been updated.
     */
    Tick changeProtection(NodeId requester, PageNum vpn,
                          std::uint8_t prot, Tick now);

    /** Update messages sent to block holders. */
    Counter updatesSent;
    /** Protection changes executed. */
    Counter changes;

  private:
    const MachineConfig &cfg_;
    const VAddrLayout &layout_;
    PageTable &pageTable_;
    Directory &directory_;
    Network &network_;
    std::vector<std::unique_ptr<Node>> &nodes_;
};

} // namespace vcoma

#endif // VCOMA_CORE_PROTECTION_HH
