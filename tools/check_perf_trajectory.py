#!/usr/bin/env python3
"""Back-compat shim: the perf gate now lives in
vcoma_sweep.checks.perf (same flags, same output, same exit codes).
New callers: `python3 -m vcoma_sweep check-perf ...`."""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from vcoma_sweep.checks.perf import main  # noqa: E402

if __name__ == "__main__":
    main()
