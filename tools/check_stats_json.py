#!/usr/bin/env python3
"""Back-compat shim: the validator now lives in
vcoma_sweep.checks.stats (same flags, same output, same exit codes).
New callers: `python3 -m vcoma_sweep check-stats ...`."""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from vcoma_sweep.checks.stats import main  # noqa: E402

if __name__ == "__main__":
    main()
