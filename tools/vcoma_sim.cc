/**
 * @file
 * vcoma_sim — the command-line front end of the simulator.
 *
 * Runs one workload (built-in kernel or recorded trace) on one machine
 * configuration and reports the stats sheet; can also record traces
 * and dump the full per-component statistics hierarchy.
 *
 *   vcoma_sim --workload FFT --scheme VCOMA --entries 8
 *   vcoma_sim --workload RADIX --scheme L0 --entries 16 --assoc 1
 *   vcoma_sim --workload BARNES --record barnes.trace
 *   vcoma_sim --replay barnes.trace --scheme L3 --dump-stats
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/machine.hh"
#include "sim/trace.hh"
#include "translation/scheme.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

struct Options
{
    std::string workload = "RADIX";
    std::string replayPath;
    std::string recordPath;
    Scheme scheme = Scheme::VCOMA;
    unsigned entries = 8;
    unsigned assoc = 0;
    unsigned nodes = 32;
    double scale = 1.0;
    std::uint64_t seed = 1;
    bool timed = true;
    bool dumpStats = false;
    bool raytraceV2 = false;
    std::string statsJsonPath;
    std::string traceEventsPath;
};

/** Accepted --scheme spellings, straight from the registry. */
std::string
schemeTokenList()
{
    std::string out;
    for (const auto &d : schemeRegistry()) {
        // The shortest accepted spelling per scheme ("L0" rather
        // than "L0-TLB"); the canonical name wins ties.
        std::string token = d.name;
        for (const std::string &alias : d.aliases)
            if (alias.size() < token.size())
                token = alias;
        if (!out.empty())
            out += " ";
        out += token;
    }
    return out;
}

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: vcoma_sim [options]\n"
        "  --workload NAME   RADIX FFT FMM OCEAN RAYTRACE BARNES\n"
        "                    UNIFORM STRIDE HOTSPOT (default RADIX)\n"
        "                    KVLOOKUP GRAPH STREAMJOIN, with optional\n"
        "                    inline knobs (KVLOOKUP:skew=1.2,read=0.5)\n"
        "                    or TRACE:FILE to replay a packed trace\n"
        "                    (see vcoma_trace; nodes must match it)\n"
        "  --scheme S        translation scheme (default VCOMA); one\n"
        "                    of: " + schemeTokenList() + "\n"
        "  --entries N       TLB/DLB entries; 0 = software-managed\n"
        "  --assoc N         TLB/DLB associativity; 0 = fully assoc.\n"
        "  --nodes N         processing nodes (power of two, <= 64)\n"
        "  --scale X         problem-size scale (default 1.0)\n"
        "  --seed N          deterministic seed\n"
        "  --untimed         do not charge translation-miss penalties\n"
        "  --raytrace-v2     page-aligned ray stacks (Figure 10 V2)\n"
        "  --record FILE     write the reference trace and exit\n"
        "  --replay FILE     simulate a recorded trace\n"
        "  --dump-stats      print the per-component stats hierarchy\n"
        "  --stats-json FILE append the stats sheet as one JSONL line\n"
        "                    (same as VCOMA_STATS_JSON=FILE)\n"
        "  --trace-events FILE write a Chrome trace of the run\n"
        "                    (same as VCOMA_TRACE_EVENTS=FILE)\n"
        "  --help\n";
    std::exit(code);
}

Scheme
parseScheme(const std::string &s)
{
    // Strict registry parse: an unknown token is fatal (never a
    // silent default), with the accepted spellings spelled out.
    Scheme out;
    if (!vcoma::tryParseScheme(s, out)) {
        std::cerr << "unknown scheme '" << s << "'; accepted: "
                  << schemeTokenList() << "\n";
        usage(2);
    }
    return out;
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            usage(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload")
            opt.workload = value(i);
        else if (arg == "--scheme")
            opt.scheme = parseScheme(value(i));
        else if (arg == "--entries")
            opt.entries = static_cast<unsigned>(std::stoul(value(i)));
        else if (arg == "--assoc")
            opt.assoc = static_cast<unsigned>(std::stoul(value(i)));
        else if (arg == "--nodes")
            opt.nodes = static_cast<unsigned>(std::stoul(value(i)));
        else if (arg == "--scale")
            opt.scale = std::stod(value(i));
        else if (arg == "--seed")
            opt.seed = std::stoull(value(i));
        else if (arg == "--untimed")
            opt.timed = false;
        else if (arg == "--raytrace-v2")
            opt.raytraceV2 = true;
        else if (arg == "--record")
            opt.recordPath = value(i);
        else if (arg == "--replay")
            opt.replayPath = value(i);
        else if (arg == "--dump-stats")
            opt.dumpStats = true;
        else if (arg == "--stats-json")
            opt.statsJsonPath = value(i);
        else if (arg == "--trace-events")
            opt.traceEventsPath = value(i);
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else {
            std::cerr << "vcoma_sim: unknown option '" << arg
                      << "' (flags are never ignored; see --help)\n";
            usage(2);
        }
    }
    return opt;
}

std::unique_ptr<Workload>
buildWorkload(const Options &opt)
{
    if (!opt.replayPath.empty()) {
        std::ifstream in(opt.replayPath);
        if (!in) {
            std::cerr << "cannot open trace '" << opt.replayPath
                      << "'\n";
            std::exit(1);
        }
        return std::make_unique<TraceWorkload>(in);
    }
    WorkloadParams params;
    params.threads = opt.nodes;
    params.scale = opt.scale;
    params.seed = opt.seed;
    params.raytraceV2Layout = opt.raytraceV2;
    return makeWorkload(opt.workload, params);
}

} // namespace

int
main(int argc, char **argv)
try {
    const Options opt = parse(argc, argv);
    auto workload = buildWorkload(opt);

    if (!opt.recordPath.empty()) {
        std::ofstream out(opt.recordPath);
        if (!out) {
            std::cerr << "cannot write '" << opt.recordPath << "'\n";
            return 1;
        }
        const std::uint64_t events = recordTrace(*workload, out);
        std::cout << "recorded " << events << " events from "
                  << workload->name() << " to " << opt.recordPath
                  << "\n";
        return 0;
    }

    // The exporters are wired to the environment (so every consumer —
    // bench binaries, the service — shares one switch); the CLI flags
    // are sugar over the same mechanism and must precede Machine
    // construction, which opens the tracer.
    if (!opt.statsJsonPath.empty())
        ::setenv("VCOMA_STATS_JSON", opt.statsJsonPath.c_str(), 1);
    if (!opt.traceEventsPath.empty())
        ::setenv("VCOMA_TRACE_EVENTS", opt.traceEventsPath.c_str(), 1);

    MachineConfig cfg =
        baselineConfig(opt.scheme, opt.entries, opt.assoc);
    cfg.numNodes = opt.nodes;
    cfg.timedTranslation = opt.timed;
    cfg.seed = opt.seed;
    Machine machine(cfg);

    const RunStats stats = machine.run(*workload);

    std::cout << "workload     : " << stats.workload << " ("
              << stats.parameters << ")\n"
              << "scheme       : " << schemeName(stats.scheme)
              << ", TLB/DLB " << opt.entries << " entries, "
              << (opt.assoc == 0 ? std::string("fully associative")
                                 : std::to_string(opt.assoc) + "-way")
              << "\n"
              << "nodes        : " << stats.numNodes << "\n"
              << "references   : " << stats.totalRefs() << "\n"
              << "exec time    : " << stats.execTime << " cycles\n";
    const double total = static_cast<double>(
        stats.totalBusy() + stats.totalSync() + stats.totalLocStall() +
        stats.totalRemStall() + stats.totalXlatStall());
    auto pct = [&](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * v / total);
        return std::string(buf);
    };
    std::cout << "breakdown    : busy " << pct(stats.totalBusy())
              << ", sync " << pct(stats.totalSync()) << ", local "
              << pct(stats.totalLocStall()) << ", remote "
              << pct(stats.totalRemStall()) << ", translation "
              << pct(stats.totalXlatStall()) << "\n"
              << "translation  : " << stats.tlbMisses << "/"
              << stats.tlbAccesses << " demand misses/accesses\n"
              << "protocol     : " << stats.remoteReads
              << " remote reads, " << stats.remoteWrites
              << " remote writes, " << stats.upgrades << " upgrades, "
              << stats.injections << " injections\n"
              << "network      : " << stats.requestMessages
              << " requests, " << stats.blockMessages
              << " block messages\n";

    if (opt.dumpStats) {
        std::cout << "\n";
        machine.dumpStats(std::cout);
    }
    return 0;
} catch (const std::exception &e) {
    std::cerr << e.what() << "\n";
    return 1;
}
