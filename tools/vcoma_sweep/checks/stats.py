"""Validate the observability outputs of a vcoma run.

Usage (module form; `tools/check_stats_json.py` is a shim onto this):
    python3 -m vcoma_sweep check-stats STATS.jsonl
        [--trace TRACE.json] [--bench-glob 'BENCH_*.json']
        [--require-vcoma] [--service-stats FILE]

Checks, per JSONL line in STATS.jsonl:
  * the line parses as JSON with schema == 1;
  * totals.refs equals the sum of the per-CPU refs;
  * every CPU's cycle buckets sum to its "accounted" field;
  * xlatOverTotalStallPct recomputes from the totals;
  * shadow-sweep points never report more misses than accesses;
  * the DLB filtering invariant for V-COMA lines: the home DLBs see
    only the remote protocol traffic, so filteredRefs + the DLB's
    demand accesses account for all processor references.

With --trace, also checks the Chrome trace file: valid JSON, a
traceEvents list, and per-(pid, tid) monotonically non-decreasing
timestamps for the non-metadata events.

With --bench-glob, every matching BENCH_*.json must parse and carry
the report fields bench_util.hh writes (both the schema-1 era and
the current schema-2 + git-stamp format are accepted here; the
dashboard is the layer that refuses stale formats).

With --service-stats, validate a vcoma_served /stats reply (either
the raw reply line {"ok":true,"serviceStats":{...}} or the bare
serviceStats object): schema == 1, all counters present, the latency
percentiles ordered p50 <= p90 <= p99 <= max, cache hits bounded by
jobs served, and the queue depth bounded by its capacity.

Exit status 0 on success, 1 with a message on the first failure.
"""

import argparse
import glob
import json
import math
import sys


def fail(msg):
    print(f"check_stats_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def reject_constant(token):
    # Python's json module accepts Infinity/-Infinity/NaN by default,
    # but RFC 8259 forbids them and the in-tree C++ parser rejects
    # them; the writer must emit null instead.
    raise ValueError(f"non-finite JSON constant {token!r} (RFC 8259 "
                     "forbids it; the writer should emit null)")


def load_json(text, where):
    try:
        return json.loads(text, parse_constant=reject_constant)
    except ValueError as e:
        fail(f"{where}: not strict JSON: {e}")


def check_stats_line(line_no, obj):
    where = f"stats line {line_no}"
    if obj.get("schema") != 1:
        fail(f"{where}: schema != 1")

    for key in ("workload", "scheme", "numNodes", "totals", "cpus",
                "shadow", "tlb", "pressureProfile", "caches", "protocol",
                "network", "dlb", "latency"):
        if key not in obj:
            fail(f"{where}: missing key {key!r}")

    totals = obj["totals"]
    cpus = obj["cpus"]

    if totals["refs"] != sum(c["refs"] for c in cpus):
        fail(f"{where}: totals.refs != sum of per-CPU refs")

    for i, c in enumerate(cpus):
        buckets = (c["busy"] + c["sync"] + c["locStall"] + c["remStall"] +
                   c["xlatStall"])
        if buckets != c["accounted"]:
            fail(f"{where}: cpu {i}: cycle buckets sum {buckets} != "
                 f"accounted {c['accounted']}")

    stall = totals["locStall"] + totals["remStall"]
    expect = 100.0 * totals["xlatStall"] / stall if stall else 0.0
    if not math.isclose(expect, obj["xlatOverTotalStallPct"],
                        rel_tol=1e-9, abs_tol=1e-9):
        fail(f"{where}: xlatOverTotalStallPct {obj['xlatOverTotalStallPct']}"
             f" != recomputed {expect}")

    for p in obj["shadow"]:
        if p["demandMisses"] > p["demandAccesses"]:
            fail(f"{where}: shadow point {p['entries']}/{p['assoc']}: "
                 "demand misses exceed accesses")
        if p["writebackMisses"] > p["writebackAccesses"]:
            fail(f"{where}: shadow point {p['entries']}/{p['assoc']}: "
                 "writeback misses exceed accesses")

    dlb = obj["dlb"]
    req = dlb["requestersPerEntry"]
    if req["count"] and not (1 <= req["min"] <= req["max"]):
        fail(f"{where}: requestersPerEntry range is nonsense: {req}")

    if obj["scheme"] == "V-COMA" and totals["refs"]:
        # Filtering: references either stop below the home DLB or show
        # up as DLB demand traffic. (tlb.* holds the DLB counts for
        # V-COMA — the scheme has no per-node TLBs.)
        absorbed = dlb["filteredRefs"]
        seen = obj["tlb"]["accesses"]
        if absorbed + seen != totals["refs"]:
            fail(f"{where}: V-COMA filtering invariant broken: "
                 f"filtered {absorbed} + DLB accesses {seen} != "
                 f"refs {totals['refs']}")

    return obj


def check_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = load_json(f.read(), path)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents list")
    last = {}
    counted = 0
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            continue
        if ph not in ("X", "i"):
            fail(f"{path}: event {i}: unexpected ph {ph!r}")
        for key in ("name", "pid", "tid", "ts"):
            if key not in e:
                fail(f"{path}: event {i}: missing {key!r}")
        track = (e["pid"], e["tid"])
        if track in last and e["ts"] < last[track]:
            fail(f"{path}: event {i}: timestamps not monotonic on "
                 f"track {track}: {e['ts']} < {last[track]}")
        last[track] = e["ts"]
        counted += 1
    return counted


def check_bench(pattern):
    paths = sorted(glob.glob(pattern))
    if not paths:
        fail(f"no bench reports match {pattern!r}")
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            doc = load_json(f.read(), path)
        for key in ("bench", "schema", "wall_ms", "executed"):
            if key not in doc:
                fail(f"{path}: missing {key!r}")
        if doc["wall_ms"] < 0:
            fail(f"{path}: negative wall_ms")
        # schema >= 2 reports carry the build stamp the dashboard
        # keys its staleness rule on.
        if doc["schema"] >= 2 and "git" not in doc:
            fail(f"{path}: schema {doc['schema']} report without a "
                 "git stamp")
    return paths


def check_service_stats(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = load_json(f.read(), path)
    if "serviceStats" in doc:
        # The raw reply line of a {"op":"stats"} request.
        if doc.get("ok") is not True:
            fail(f"{path}: stats reply carries ok != true")
        doc = doc["serviceStats"]
    if doc.get("schema") != 1:
        fail(f"{path}: serviceStats schema != 1")

    for key in ("queueDepth", "queueCapacity", "workers",
                "jobsSubmitted", "jobsServed", "jobsFailed", "jobsShed",
                "shedQueueFull", "shedDeadline", "jobsCancelled",
                "dedupJoins", "cacheHits", "simulationsExecuted",
                "latencyMs"):
        if key not in doc:
            fail(f"{path}: missing serviceStats key {key!r}")

    if doc["jobsShed"] != doc["shedQueueFull"] + doc["shedDeadline"]:
        fail(f"{path}: jobsShed {doc['jobsShed']} != shedQueueFull "
             f"{doc['shedQueueFull']} + shedDeadline {doc['shedDeadline']}")
    if doc["cacheHits"] > doc["jobsServed"]:
        fail(f"{path}: cacheHits {doc['cacheHits']} > jobsServed "
             f"{doc['jobsServed']}")
    if doc["queueDepth"] > doc["queueCapacity"]:
        fail(f"{path}: queueDepth {doc['queueDepth']} > queueCapacity "
             f"{doc['queueCapacity']}")

    lat = doc["latencyMs"]
    for key in ("count", "sum", "min", "max", "mean", "p50", "p90", "p99"):
        if key not in lat:
            fail(f"{path}: missing latencyMs key {key!r}")
    if lat["count"]:
        if not (lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]):
            fail(f"{path}: latency percentiles out of order: "
                 f"p50 {lat['p50']} p90 {lat['p90']} p99 {lat['p99']} "
                 f"max {lat['max']}")
        if lat["min"] > lat["max"]:
            fail(f"{path}: latencyMs min {lat['min']} > max {lat['max']}")
    return doc


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("stats", nargs="?",
                    help="JSONL file written via VCOMA_STATS_JSON")
    ap.add_argument("--trace", help="Chrome trace via VCOMA_TRACE_EVENTS")
    ap.add_argument("--bench-glob", help="glob of BENCH_*.json reports")
    ap.add_argument("--require-vcoma", action="store_true",
                    help="fail unless at least one line is a V-COMA run "
                         "with nonzero DLB effect counters")
    ap.add_argument("--service-stats",
                    help="vcoma_served /stats reply (raw line or bare "
                         "serviceStats object)")
    args = ap.parse_args(argv)

    if not args.stats and not args.service_stats:
        ap.error("nothing to check: give STATS.jsonl and/or "
                 "--service-stats FILE")

    if args.service_stats:
        doc = check_service_stats(args.service_stats)
        print(f"check_stats_json: service stats OK "
              f"({doc['jobsServed']} job(s) served, "
              f"{doc['cacheHits']} cache hit(s))")
    if not args.stats:
        return

    lines = 0
    vcoma_evidence = False
    with open(args.stats, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            obj = load_json(line, f"stats line {line_no}")
            check_stats_line(line_no, obj)
            lines += 1
            dlb = obj["dlb"]
            if (obj["scheme"] == "V-COMA" and dlb["filteredRefs"] > 0 and
                    dlb["requestersPerEntry"]["count"] > 0):
                vcoma_evidence = True
    if lines == 0:
        fail(f"{args.stats}: no JSONL lines (did the sweep hit the cache? "
             "set VCOMA_NO_CACHE=1)")
    print(f"check_stats_json: {lines} stats line(s) OK")

    if args.require_vcoma and not vcoma_evidence:
        fail("no V-COMA line with nonzero DLB effect counters")

    if args.trace:
        n = check_trace(args.trace)
        print(f"check_stats_json: trace OK ({n} events)")

    if args.bench_glob:
        paths = check_bench(args.bench_glob)
        print(f"check_stats_json: {len(paths)} bench report(s) OK")


if __name__ == "__main__":
    main()
