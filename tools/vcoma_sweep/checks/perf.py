"""Gate the perf-core trajectory against the committed baseline.

Reads BENCH_perf_core.json (written by bench/bench_perf_core), checks
that every expected metric is present and finite -- a `null` metric
means a non-finite rate leaked into the report, which is exactly the
corruption the bench's trial-clamping exists to prevent -- and
compares the *ratio* metrics (speedup, replay_speedup) against
bench/perf_baseline.json.

Only ratios are gated: both sides of each ratio run in the same
process on the same host, so the ratio is stable where absolute
refs/sec on shared CI runners is hopelessly noisy.  A ratio below
baseline * (1 - tolerance) fails the check.  Absolute rates are
appended to the trajectory file for trending, never gated.

Usage (module form; `tools/check_perf_trajectory.py` is a shim):
    python3 -m vcoma_sweep check-perf
        [--report BENCH_perf_core.json]
        [--baseline bench/perf_baseline.json]
        [--append perf_trajectory.jsonl]
"""

import argparse
import json
import math
import sys

EXPECTED_METRICS = (
    "refs_per_sec_slow",
    "refs_per_sec_fast",
    "refs_per_sec_replay",
    "speedup",
    "replay_speedup",
    "kvlookup_refs_per_sec_live",
    "kvlookup_refs_per_sec_replay",
    "kvlookup_replay_speedup",
)


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--report", default="BENCH_perf_core.json")
    ap.add_argument("--baseline", default="bench/perf_baseline.json")
    ap.add_argument("--append", default=None,
                    help="trajectory JSONL file to append this run to")
    args = ap.parse_args(argv)

    try:
        with open(args.report) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot read perf report '{args.report}': {e}")
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot read baseline '{args.baseline}': {e}")

    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"'{args.report}' carries no metrics object")
    for name in EXPECTED_METRICS:
        value = metrics.get(name)
        if value is None:
            # bench_util serialises non-finite doubles as null.
            fail(f"metric '{name}' is missing or null (a non-finite "
                 "rate reached the report)")
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            fail(f"metric '{name}' is not a finite number: {value!r}")
        if value <= 0:
            fail(f"metric '{name}' is not positive: {value}")

    tolerance = baseline.get("tolerance", 0.2)
    if not 0 < tolerance < 1:
        fail(f"baseline tolerance {tolerance!r} is not in (0, 1)")
    gates = baseline.get("gates")
    if not isinstance(gates, dict) or not gates:
        fail(f"baseline '{args.baseline}' defines no gates")

    failures = []
    for name, floor in sorted(gates.items()):
        if name not in metrics:
            failures.append(f"gated metric '{name}' absent from report")
            continue
        threshold = floor * (1.0 - tolerance)
        value = metrics[name]
        verdict = "ok" if value >= threshold else "REGRESSION"
        print(f"{name}: measured {value:.3f}, baseline {floor:.3f}, "
              f"threshold {threshold:.3f} -> {verdict}")
        if value < threshold:
            failures.append(
                f"{name} regressed: {value:.3f} < {threshold:.3f} "
                f"(baseline {floor:.3f} - {tolerance:.0%})")

    if args.append:
        row = {"bench": report.get("bench"),
               "wall_ms": report.get("wall_ms"),
               "metrics": {k: metrics.get(k) for k in EXPECTED_METRICS}}
        try:
            with open(args.append, "a") as f:
                f.write(json.dumps(row, sort_keys=True) + "\n")
        except OSError as e:
            fail(f"cannot append trajectory '{args.append}': {e}")

    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}", file=sys.stderr)
        sys.exit(1)
    print("perf trajectory OK")


if __name__ == "__main__":
    main()
