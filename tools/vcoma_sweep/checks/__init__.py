"""CI validators, folded into the package from the original
stand-alone scripts:

  * :mod:`vcoma_sweep.checks.stats` -- validates VCOMA_STATS_JSON
    JSONL sheets, Chrome traces, BENCH_*.json reports and
    vcoma_served /stats replies (ex ``tools/check_stats_json.py``).
  * :mod:`vcoma_sweep.checks.perf` -- gates BENCH_perf_core.json
    ratios against bench/perf_baseline.json (ex
    ``tools/check_perf_trajectory.py``).

The old script paths remain as thin shims, so existing workflows and
muscle memory keep working; new callers use
``python3 -m vcoma_sweep check-stats ...`` / ``check-perf ...``.
"""

from . import perf, stats  # noqa: F401

__all__ = ["stats", "perf"]
