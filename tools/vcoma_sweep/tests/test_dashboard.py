"""Dashboard: report classification, gating and HTML assembly."""

import json
import os
import tempfile
import unittest

from vcoma_sweep import dashboard as D


def write(path, doc):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        if isinstance(doc, str):
            f.write(doc)
        else:
            json.dump(doc, f)


def current_report(name="fig8", **metrics):
    return {"bench": name, "schema": D.BENCH_SCHEMA, "git": "abc1234",
            "wall_ms": 12.0, "executed": 3, "failures": 0,
            "metrics": metrics or {"m": 1.0}}


class ClassifyTest(unittest.TestCase):
    def test_schema_and_git_gate(self):
        with tempfile.TemporaryDirectory() as d:
            write(os.path.join(d, "BENCH_new.json"), current_report())
            write(os.path.join(d, "BENCH_old.json"),
                  {"bench": "old", "schema": 1, "wall_ms": 1.0,
                   "executed": 0, "failures": 0})
            write(os.path.join(d, "BENCH_nogit.json"),
                  {"bench": "g", "schema": D.BENCH_SCHEMA,
                   "wall_ms": 1.0, "executed": 0, "failures": 0})
            write(os.path.join(d, "BENCH_junk.json"), "{nope")
            write(os.path.join(d, "BENCH_alien.json"), {"hello": 1})
            write(os.path.join(d, "sub", "BENCH_deep.json"),
                  current_report("deep"))
            current, stale = D.classify_reports(D.find_reports(d))
        self.assertEqual(sorted(doc["bench"] for _p, doc in current),
                         ["deep", "fig8"])
        self.assertEqual(len(stale), 4)
        reasons = " | ".join(r for _p, r in stale)
        self.assertIn("stale format", reasons)
        self.assertIn("unreadable", reasons)
        self.assertIn("not a BenchReport", reasons)


class BuildTest(unittest.TestCase):
    def test_dashboard_flags_stale_and_gates_metrics(self):
        with tempfile.TemporaryDirectory() as d:
            write(os.path.join(d, "BENCH_perf.json"),
                  current_report("perf", sims_per_sec=50.0,
                                 ungated=7.0))
            write(os.path.join(d, "BENCH_old.json"),
                  {"bench": "old", "schema": 1, "wall_ms": 1.0,
                   "executed": 0, "failures": 0})
            baseline = os.path.join(d, "baseline.json")
            write(baseline, {"gates": {"sims_per_sec": 100.0},
                             "tolerance": 0.2})
            out = os.path.join(d, "dashboard.html")
            text, n_current, n_stale = D.build_dashboard(
                d, baseline_path=baseline, out_path=out)
            self.assertTrue(os.path.getsize(out))
        self.assertEqual((n_current, n_stale), (1, 1))
        self.assertIn("REGRESSION", text)       # 50 < 100 * 0.8
        self.assertIn("0.50x", text)
        self.assertIn("BENCH_old.json", text)   # listed as ignored
        self.assertIn("abc1234", text)          # git stamp surfaced
        self.assertIn("Ignored", text)

    def test_metric_within_tolerance_is_ok(self):
        with tempfile.TemporaryDirectory() as d:
            write(os.path.join(d, "BENCH_perf.json"),
                  current_report("perf", sims_per_sec=90.0))
            baseline = os.path.join(d, "baseline.json")
            write(baseline, {"gates": {"sims_per_sec": 100.0},
                             "tolerance": 0.2})
            text, _c, _s = D.build_dashboard(d, baseline_path=baseline)
        self.assertIn(">ok<", text)
        self.assertNotIn("REGRESSION", text)

    def test_empty_tree(self):
        with tempfile.TemporaryDirectory() as d:
            text, n_current, n_stale = D.build_dashboard(d)
        self.assertEqual((n_current, n_stale), (0, 0))
        self.assertIn("No current bench reports", text)

    def test_trajectory_sparkline(self):
        with tempfile.TemporaryDirectory() as d:
            write(os.path.join(d, "BENCH_perf.json"),
                  current_report("perf", sims_per_sec=90.0))
            with open(os.path.join(d, "perf_trajectory.jsonl"), "w",
                      encoding="utf-8") as f:
                for v in (80.0, 85.0, 90.0):
                    f.write(json.dumps(
                        {"metrics": {"sims_per_sec": v}}) + "\n")
            text, _c, _s = D.build_dashboard(d)
        self.assertIn('class="spark"', text)


class SparklineTest(unittest.TestCase):
    def test_needs_two_finite_points(self):
        self.assertEqual(D.sparkline([1.0]), "")
        self.assertEqual(D.sparkline([None, 1.0]), "")
        self.assertIn("polyline", D.sparkline([1.0, 2.0, 1.5]))

    def test_flat_series_does_not_divide_by_zero(self):
        self.assertIn("polyline", D.sparkline([3.0, 3.0, 3.0]))


if __name__ == "__main__":
    unittest.main()
