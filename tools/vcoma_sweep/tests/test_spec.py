"""Spec grammar: expansion, overrides, rejection, key mirroring."""

import json
import os
import tempfile
import unittest

from vcoma_sweep import spec as M


def make_spec(**kw):
    obj = {
        "name": "t",
        "sweeps": [{"id": "s", "workloads": ["RADIX"],
                    "schemes": ["L0"]}],
    }
    obj.update(kw)
    return M.Spec(obj)


class CanonicalTest(unittest.TestCase):
    def test_scheme_aliases(self):
        self.assertEqual(M.canonical_scheme("L0"), "L0-TLB")
        self.assertEqual(M.canonical_scheme("l0-tlb"), "L0-TLB")
        self.assertEqual(M.canonical_scheme("DLB"), "V-COMA")
        self.assertEqual(M.canonical_scheme("vcoma"), "V-COMA")
        self.assertEqual(M.canonical_scheme("victima-tlb"), "VICTIMA")
        self.assertEqual(M.canonical_scheme("NMT"), "NMT")

    def test_bad_scheme_rejected(self):
        with self.assertRaisesRegex(M.SpecError, "unknown scheme"):
            M.canonical_scheme("L9")
        with self.assertRaisesRegex(M.SpecError, "string"):
            M.canonical_scheme(7)

    def test_workload_base_names(self):
        self.assertEqual(M.canonical_workload("radix"), "RADIX")
        self.assertEqual(M.canonical_workload("KVLOOKUP"), "KVLOOKUP")

    def test_workload_trace_passthrough(self):
        self.assertEqual(M.canonical_workload("TRACE:/tmp/a.vct"),
                         "TRACE:/tmp/a.vct")
        with self.assertRaisesRegex(M.SpecError, "empty trace path"):
            M.canonical_workload("TRACE:")

    def test_workload_inline_knobs(self):
        self.assertEqual(
            M.canonical_workload("kvlookup:skew=1.2,read=0.9"),
            "KVLOOKUP:skew=1.2,read=0.9")
        with self.assertRaisesRegex(M.SpecError, "inline knobs"):
            M.canonical_workload("RADIX:skew=1.2")
        with self.assertRaisesRegex(M.SpecError, "bad knob"):
            M.canonical_workload("KVLOOKUP:zipf=1.2")
        with self.assertRaisesRegex(M.SpecError, "not a number"):
            M.canonical_workload("KVLOOKUP:skew=hot")

    def test_bad_workload_rejected(self):
        with self.assertRaisesRegex(M.SpecError, "unknown workload"):
            M.canonical_workload("CHOLESKY")


class KeyMirrorTest(unittest.TestCase):
    """Config.key() must be byte-identical to ExperimentConfig::key()
    (the strings below are real sheet-file names from the C++ cache)."""

    def test_default_knobs_key(self):
        cfg = M.Config("s", "RADIX", "V-COMA",
                       {n: d for n, (_t, _f, d) in M.KNOBS.items()})
        self.assertEqual(
            cfg.key(), "RADIX-V-COMA-e8-a0-t0-w1-v2_0-n32-s1-r1-k4-p40")

    def test_scaled_key_uses_6g_floats(self):
        knobs = {n: d for n, (_t, _f, d) in M.KNOBS.items()}
        knobs.update(scale=0.05, nodes=8)
        cfg = M.Config("s", "UNIFORM", "L0-TLB", knobs)
        self.assertEqual(
            cfg.key(),
            "UNIFORM-L0-TLB-e8-a0-t0-w1-v2_0-n8-s0.05-r1-k4-p40")

    def test_sanitize_keeps_safe_chars(self):
        self.assertEqual(M._sanitize_key_component("KVLOOKUP:skew=1.2"),
                         M._sanitize_key_component("KVLOOKUP:skew=1.2"))
        # ':' is unsafe -> '_' plus an FNV suffix; '=' ',' '.' pass.
        got = M._sanitize_key_component("KVLOOKUP:skew=1.2")
        self.assertTrue(got.startswith("KVLOOKUP_skew=1.2-h"))
        self.assertEqual(len(got.rsplit("-h", 1)[1]), 8)

    def test_sanitize_clean_string_untouched(self):
        self.assertEqual(M._sanitize_key_component("RADIX"), "RADIX")

    def test_fmt_double_matches_ostream(self):
        self.assertEqual(M._fmt_double(1.0), "1")
        self.assertEqual(M._fmt_double(0.05), "0.05")
        self.assertEqual(M._fmt_double(0.123456789), "0.123457")


class ExpansionTest(unittest.TestCase):
    def test_cross_product_order(self):
        s = make_spec(sweeps=[{
            "id": "s", "workloads": ["RADIX", "FFT"],
            "schemes": ["L0", "VCOMA"],
            "knobs": {"entries": [8, 32]},
        }])
        cfgs = s.expand()
        self.assertEqual(len(cfgs), 8)
        # axis combos outermost; workloads outer, schemes inner.
        self.assertEqual(
            [(c.knobs["entries"], c.workload, c.scheme) for c in cfgs],
            [(8, "RADIX", "L0-TLB"), (8, "RADIX", "V-COMA"),
             (8, "FFT", "L0-TLB"), (8, "FFT", "V-COMA"),
             (32, "RADIX", "L0-TLB"), (32, "RADIX", "V-COMA"),
             (32, "FFT", "L0-TLB"), (32, "FFT", "V-COMA")])

    def test_two_axes_cross(self):
        s = make_spec(sweeps=[{
            "id": "s", "workloads": ["RADIX"], "schemes": ["L0"],
            "knobs": {"entries": [8, 16], "nodes": [8, 32]},
        }])
        combos = [(c.knobs["entries"], c.knobs["nodes"])
                  for c in s.expand()]
        self.assertEqual(combos,
                         [(8, 8), (8, 32), (16, 8), (16, 32)])

    def test_defaults_fill_unset_knobs(self):
        s = make_spec(defaults={"scale": 0.25, "nodes": 16})
        cfg = s.expand()[0]
        self.assertEqual(cfg.knobs["scale"], 0.25)
        self.assertEqual(cfg.knobs["nodes"], 16)
        self.assertEqual(cfg.knobs["entries"], 8)   # built-in default

    def test_sweep_knob_beats_default(self):
        s = make_spec(defaults={"nodes": 16},
                      sweeps=[{"id": "s", "workloads": ["RADIX"],
                               "schemes": ["L0"],
                               "knobs": {"nodes": 64}}])
        self.assertEqual(s.expand()[0].knobs["nodes"], 64)

    def test_override_patches_matching_configs_only(self):
        s = make_spec(sweeps=[{
            "id": "s",
            "workloads": ["RAYTRACE", "RADIX"],
            "schemes": ["L0", "VCOMA"],
            "overrides": [{"match": {"workload": "RAYTRACE",
                                     "scheme": "VCOMA"},
                           "set": {"raytrace_v2": True}}],
        }])
        v2 = {(c.workload, c.scheme): c.knobs["raytrace_v2"]
              for c in s.expand()}
        self.assertTrue(v2[("RAYTRACE", "V-COMA")])
        self.assertFalse(v2[("RAYTRACE", "L0-TLB")])
        self.assertFalse(v2[("RADIX", "V-COMA")])

    def test_override_can_match_axis_value(self):
        s = make_spec(sweeps=[{
            "id": "s", "workloads": ["RADIX"], "schemes": ["L0"],
            "knobs": {"entries": [8, 32]},
            "overrides": [{"match": {"entries": 32},
                           "set": {"am_assoc": 8}}],
        }])
        got = {c.knobs["entries"]: c.knobs["am_assoc"]
               for c in s.expand()}
        self.assertEqual(got, {8: 4, 32: 8})


class RejectionTest(unittest.TestCase):
    def test_unknown_knob(self):
        with self.assertRaisesRegex(M.SpecError, "unknown knob"):
            make_spec(sweeps=[{"id": "s", "workloads": ["RADIX"],
                               "schemes": ["L0"],
                               "knobs": {"ways": 4}}])

    def test_knob_type_mismatch(self):
        with self.assertRaisesRegex(M.SpecError, "integer"):
            make_spec(sweeps=[{"id": "s", "workloads": ["RADIX"],
                               "schemes": ["L0"],
                               "knobs": {"entries": 8.5}}])
        with self.assertRaisesRegex(M.SpecError, "bool"):
            make_spec(sweeps=[{"id": "s", "workloads": ["RADIX"],
                               "schemes": ["L0"],
                               "knobs": {"timed": 1}}])

    def test_empty_axis(self):
        with self.assertRaisesRegex(M.SpecError, "axis is empty"):
            make_spec(sweeps=[{"id": "s", "workloads": ["RADIX"],
                               "schemes": ["L0"],
                               "knobs": {"entries": []}}])

    def test_default_cannot_be_axis(self):
        with self.assertRaisesRegex(M.SpecError, "cannot be an axis"):
            make_spec(defaults={"entries": [8, 16]})

    def test_duplicate_sweep_ids(self):
        with self.assertRaisesRegex(M.SpecError, "duplicate sweep"):
            make_spec(sweeps=[
                {"id": "s", "workloads": ["RADIX"], "schemes": ["L0"]},
                {"id": "s", "workloads": ["FFT"], "schemes": ["L0"]}])

    def test_figure_must_reference_declared_sweep(self):
        with self.assertRaisesRegex(M.SpecError, "not declared"):
            make_spec(figures=[{"file": "a.svg",
                                "type": "miss_rates",
                                "sweep": "nope"}])

    def test_figure_file_must_be_bare_svg(self):
        for bad in ("a.png", "sub/a.svg"):
            with self.assertRaisesRegex(M.SpecError, "bare"):
                make_spec(figures=[{"file": bad, "type": "miss_rates",
                                    "sweep": "s"}])

    def test_duplicate_figure_files(self):
        figs = [{"file": "a.svg", "type": "miss_rates", "sweep": "s"},
                {"file": "a.svg", "type": "pressure", "sweep": "s"}]
        with self.assertRaisesRegex(M.SpecError, "duplicate figure"):
            make_spec(figures=figs)

    def test_unknown_keys_rejected(self):
        with self.assertRaisesRegex(M.SpecError, "unknown"):
            M.Spec({"sweeps": [], "plots": []})
        with self.assertRaisesRegex(M.SpecError, "unknown keys"):
            make_spec(sweeps=[{"id": "s", "workloads": ["RADIX"],
                               "schemes": ["L0"], "axes": {}}])


class LoadSpecTest(unittest.TestCase):
    def test_stock_specs_load_and_expand(self):
        for name in ("smoke.json", "paper_grid.json",
                     "datacenter_grid.json", "modern_showdown.json"):
            s = M.load_spec(os.path.join("specs", name))
            self.assertTrue(s.expand(), name)
            self.assertTrue(s.figures, name)

    def test_literal_path_wins(self):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "x.json")
            with open(p, "w", encoding="utf-8") as f:
                json.dump({"name": "x", "sweeps": [
                    {"workloads": ["FFT"], "schemes": ["NMT"]}]}, f)
            s = M.load_spec(p)
            self.assertEqual(s.expand()[0].scheme, "NMT")

    def test_missing_spec(self):
        with self.assertRaisesRegex(M.SpecError, "not found"):
            M.load_spec("no/such/spec.json")

    def test_invalid_json(self):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "x.json")
            with open(p, "w", encoding="utf-8") as f:
                f.write("{nope")
            with self.assertRaisesRegex(M.SpecError, "not valid JSON"):
                M.load_spec(p)


if __name__ == "__main__":
    unittest.main()
