"""The folded-in CI checkers, exercised through their main()s."""

import contextlib
import io
import json
import os
import tempfile
import unittest

from vcoma_sweep.checks import stats as check_stats

FIXTURE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "fixtures", "smoke_results.jsonl")


def run_main(argv):
    """Run check_stats.main, capturing (exit_code, stdout, stderr)."""
    out, err = io.StringIO(), io.StringIO()
    code = 0
    with contextlib.redirect_stdout(out), \
            contextlib.redirect_stderr(err):
        try:
            check_stats.main(argv)
        except SystemExit as e:
            code = e.code or 0
    return code, out.getvalue(), err.getvalue()


class StatsCheckTest(unittest.TestCase):
    def test_fixture_passes(self):
        code, out, err = run_main([FIXTURE, "--require-vcoma"])
        self.assertEqual(code, 0, err)
        self.assertIn("4 stats line(s) OK", out)

    def test_tampered_totals_fail(self):
        with open(FIXTURE, "r", encoding="utf-8") as f:
            line = f.readline()
        obj = json.loads(line)
        obj["totals"]["refs"] += 1
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "s.jsonl")
            with open(p, "w", encoding="utf-8") as f:
                f.write(json.dumps(obj) + "\n")
            code, _out, err = run_main([p])
        self.assertEqual(code, 1)
        self.assertIn("totals.refs", err)

    def test_empty_file_fails(self):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "s.jsonl")
            open(p, "w").close()
            code, _out, err = run_main([p])
        self.assertEqual(code, 1)
        self.assertIn("no JSONL lines", err)


class BenchCheckTest(unittest.TestCase):
    def bench_doc(self, **over):
        doc = {"bench": "x", "schema": 2, "git": "abc",
               "wall_ms": 1.0, "executed": 0, "failures": 0}
        doc.update(over)
        return doc

    def check(self, doc):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "BENCH_x.json")
            with open(p, "w", encoding="utf-8") as f:
                json.dump({k: v for k, v in doc.items()
                           if v is not None}, f)
            return run_main([FIXTURE, "--bench-glob", p])

    def test_schema2_with_git_passes(self):
        code, out, _err = self.check(self.bench_doc())
        self.assertEqual(code, 0)
        self.assertIn("bench report(s) OK", out)

    def test_schema1_without_git_still_accepted(self):
        # pre-stamp reports remain valid here; the dashboard is the
        # layer that refuses them.
        code, _out, _err = self.check(
            self.bench_doc(schema=1, git=None))
        self.assertEqual(code, 0)

    def test_schema2_without_git_fails(self):
        code, _out, err = self.check(self.bench_doc(git=None))
        self.assertEqual(code, 1)
        self.assertIn("git stamp", err)


class ShimTest(unittest.TestCase):
    """The old tools/ entry points must still work."""

    def test_shims_import_and_expose_main(self):
        import importlib.util
        here = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        for shim in ("check_stats_json.py",
                     "check_perf_trajectory.py"):
            path = os.path.join(here, shim)
            spec = importlib.util.spec_from_file_location(
                shim[:-3], path)
            mod = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(mod)
            self.assertTrue(callable(mod.main), shim)


if __name__ == "__main__":
    unittest.main()
