"""Submission planning: grouping rules and command shapes."""

import unittest

from vcoma_sweep import spec as M
from vcoma_sweep import submit as B


def expand(sweeps, defaults=None):
    return M.Spec({"name": "t", "defaults": defaults or {},
                   "sweeps": sweeps}).expand()


class PlanTest(unittest.TestCase):
    def test_pure_cross_product_is_one_invocation(self):
        cfgs = expand([{"id": "s", "workloads": ["RADIX", "FFT"],
                        "schemes": ["L0", "VCOMA"]}])
        plan = B.plan_invocations(cfgs)
        self.assertEqual(len(plan), 1)
        self.assertEqual(plan[0].workloads, ["RADIX", "FFT"])
        self.assertEqual(plan[0].schemes, ["L0-TLB", "V-COMA"])
        self.assertEqual(len(plan[0].configs), 4)

    def test_axis_combinations_split(self):
        cfgs = expand([{"id": "s", "workloads": ["RADIX"],
                        "schemes": ["L0"],
                        "knobs": {"entries": [8, 32, 128]}}])
        plan = B.plan_invocations(cfgs)
        self.assertEqual(len(plan), 3)
        self.assertEqual([p.configs[0].knobs["entries"] for p in plan],
                         [8, 32, 128])

    def test_override_degrades_to_per_config(self):
        cfgs = expand([{
            "id": "s", "workloads": ["RAYTRACE", "RADIX"],
            "schemes": ["L0", "VCOMA"],
            "overrides": [{"match": {"workload": "RAYTRACE",
                                     "scheme": "VCOMA"},
                           "set": {"raytrace_v2": True}}]}])
        plan = B.plan_invocations(cfgs)
        # the patched config breaks knob uniformity -> no comma lists,
        # but the spec order is preserved across the invocations.
        submitted = [c.key() for p in plan for c in p.configs]
        self.assertEqual(submitted, [c.key() for c in cfgs])
        self.assertTrue(all(len(p.configs) == 1 or
                            all(c.knobs == p.configs[0].knobs
                                for c in p.configs)
                            for p in plan))

    def test_comma_in_workload_token_forces_per_config(self):
        cfgs = expand([{"id": "s",
                        "workloads": ["KVLOOKUP:skew=1.2,read=0.9",
                                      "GRAPH"],
                        "schemes": ["L0"]}])
        plan = B.plan_invocations(cfgs)
        self.assertEqual(len(plan), 2)
        self.assertTrue(all(len(p.configs) == 1 for p in plan))

    def test_two_sweeps_never_merge(self):
        cfgs = expand([
            {"id": "a", "workloads": ["RADIX"], "schemes": ["L0"]},
            {"id": "b", "workloads": ["RADIX"], "schemes": ["L0"]}])
        self.assertEqual(len(B.plan_invocations(cfgs)), 2)


class CommandTest(unittest.TestCase):
    def setUp(self):
        self.cfgs = expand([{"id": "s", "workloads": ["RADIX", "FFT"],
                             "schemes": ["L0", "VCOMA"]}])
        self.inv = B.plan_invocations(self.cfgs)[0]

    def test_direct_command(self):
        opts = B.Options("direct", client="CLIENT")
        cmd = opts.command(self.inv, "out.jsonl")
        self.assertEqual(cmd[:2], ["CLIENT", "direct"])
        self.assertIn("--workloads", cmd)
        self.assertEqual(cmd[cmd.index("--workloads") + 1],
                         "RADIX,FFT")
        self.assertEqual(cmd[cmd.index("--schemes") + 1],
                         "L0-TLB,V-COMA")
        self.assertEqual(cmd[-2:], ["--jsonl", "out.jsonl"])
        self.assertIn("--untimed", cmd)
        self.assertNotIn("--farm", cmd)

    def test_single_config_uses_singular_flags(self):
        one = B.plan_invocations(self.cfgs[:1])[0]
        cmd = B.Options("direct", client="C").command(one, "o.jsonl")
        self.assertIn("--workload", cmd)
        self.assertIn("--scheme", cmd)
        self.assertNotIn("--workloads", cmd)

    def test_farm_command(self):
        opts = B.Options("farm", client="CLIENT", socket="tcp:h:1",
                         retries=5, request_timeout_ms=2000)
        cmd = opts.command(self.inv, "out.jsonl")
        self.assertEqual(cmd[:4], ["CLIENT", "--socket", "tcp:h:1",
                                   "sweep"])
        self.assertIn("--farm", cmd)
        self.assertEqual(cmd[cmd.index("--retries") + 1], "5")
        self.assertEqual(cmd[cmd.index("--request-timeout-ms") + 1],
                         "2000")

    def test_service_command(self):
        cmd = B.Options("service", client="C",
                        socket="s.sock").command(self.inv, "o.jsonl")
        self.assertEqual(cmd[:4], ["C", "--socket", "s.sock", "sweep"])
        self.assertNotIn("--farm", cmd)

    def test_unknown_backend_rejected(self):
        with self.assertRaisesRegex(B.SubmitError, "unknown backend"):
            B.Options("cloud")

    def test_knob_flags_cover_every_flagged_knob(self):
        cmd = B.Options("direct", client="C").command(self.inv, "o")
        for flag in ("--entries", "--assoc", "--nodes", "--scale",
                     "--seed", "--am-assoc", "--xlat-penalty"):
            self.assertIn(flag, cmd)

    def test_dry_run_lists_configs_and_commands(self):
        lines = B.dry_run_lines(self.cfgs,
                                B.Options("direct", client="C"))
        self.assertIn("4 config(s):", lines[0])
        self.assertIn("1 client invocation(s):", lines[5])
        self.assertTrue(lines[1].strip().startswith("RADIX-L0-TLB-"))


if __name__ == "__main__":
    unittest.main()
