"""Unit tests for the vcoma_sweep package.

Run from the repo's tools/ directory (or let ctest do it):

    python3 -m unittest discover -s vcoma_sweep/tests -t .

The tests are hermetic: no simulator binary is needed. The collector
tests run against a committed JSONL fixture (real vcoma_client
--jsonl output); the render tests compare against committed SVG
golden files (set VCOMA_UPDATE_GOLDENS=1 to regenerate after an
intentional rendering change).
"""
