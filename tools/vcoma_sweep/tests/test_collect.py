"""Collector: positional join against a real --jsonl fixture."""

import json
import os
import tempfile
import unittest

from vcoma_sweep import collect as C
from vcoma_sweep import spec as M
from vcoma_sweep.submit import SubmitResult

FIXTURE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "fixtures", "smoke_results.jsonl")

#: the spec whose expansion produced the committed fixture (see the
#: fixture's provenance in tests/__init__.py).
FIXTURE_SPEC = {
    "name": "fixture",
    "defaults": {"scale": 0.05, "nodes": 8},
    "sweeps": [{"id": "s",
                "workloads": ["UNIFORM", "STRIDE"],
                "schemes": ["L0", "VCOMA"]}],
}


def fixture_configs():
    return M.Spec(FIXTURE_SPEC).expand()


def fixture_lines():
    with open(FIXTURE, "r", encoding="utf-8") as f:
        return [ln for ln in (raw.strip() for raw in f) if ln]


def write_lines(path, lines):
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


class CollectFixtureTest(unittest.TestCase):
    def test_join_produces_one_row_per_config(self):
        rows = C.collect_jsonl(fixture_configs(), FIXTURE)
        self.assertEqual(len(rows), 4)
        self.assertEqual([(r["workload"], r["scheme"]) for r in rows],
                         [("UNIFORM", "L0-TLB"), ("UNIFORM", "V-COMA"),
                          ("STRIDE", "L0-TLB"), ("STRIDE", "V-COMA")])

    def test_derived_metrics(self):
        rows = C.collect_jsonl(fixture_configs(), FIXTURE)
        for r in rows:
            self.assertNotIn("error", r)
            self.assertEqual(r["num_nodes"], 8)
            self.assertGreater(r["refs"], 0)
            self.assertGreaterEqual(r["tlb_accesses"], r["tlb_misses"])
            self.assertAlmostEqual(
                r["walks_per_1k_refs"],
                1000.0 * r["tlb_misses"] / r["refs"])
            self.assertAlmostEqual(
                r["misses_per_node"], r["tlb_misses"] / 8)
            self.assertEqual(len(r["pressure_profile"]), 256)
            self.assertIn("key", r)
            self.assertEqual(r["entries"], 8)   # knob provenance

    def test_submit_result_provenance_attached(self):
        cfgs = fixture_configs()
        sr = SubmitResult()
        sr.cached[cfgs[0].key()] = True
        sr.wall_ms[cfgs[0].key()] = 12.5
        rows = C.collect_jsonl(cfgs, FIXTURE, submit_result=sr)
        self.assertTrue(rows[0]["cached"])
        self.assertEqual(rows[0]["wall_ms"], 12.5)
        self.assertIsNone(rows[1]["cached"])

    def test_line_count_mismatch_rejected(self):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "r.jsonl")
            write_lines(p, fixture_lines()[:3])
            with self.assertRaisesRegex(C.CollectError, "3 record"):
                C.collect_jsonl(fixture_configs(), p)

    def test_reordered_file_rejected(self):
        lines = fixture_lines()
        lines[0], lines[2] = lines[2], lines[0]   # UNIFORM <-> STRIDE
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "r.jsonl")
            write_lines(p, lines)
            with self.assertRaisesRegex(C.CollectError,
                                        "does not line up"):
                C.collect_jsonl(fixture_configs(), p)

    def test_scheme_mismatch_rejected(self):
        lines = fixture_lines()
        lines[1] = lines[1].replace('"scheme":"V-COMA"',
                                    '"scheme":"NMT"', 1)
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "r.jsonl")
            write_lines(p, lines)
            with self.assertRaisesRegex(C.CollectError, "scheme"):
                C.collect_jsonl(fixture_configs(), p)

    def test_failure_placeholder_becomes_error_row(self):
        cfgs = fixture_configs()
        lines = fixture_lines()
        lines[3] = json.dumps({"schema": 1, "key": cfgs[3].key(),
                               "error": "boom"})
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "r.jsonl")
            write_lines(p, lines)
            rows = C.collect_jsonl(cfgs, p)
            self.assertEqual(rows[3]["error"], "boom")
            good, skipped = C.sweep_rows(rows, "s")
            self.assertEqual((len(good), skipped), (3, 1))

    def test_failure_placeholder_with_wrong_key_rejected(self):
        lines = fixture_lines()
        lines[3] = json.dumps({"schema": 1, "key": "SOMETHING-ELSE",
                               "error": "boom"})
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "r.jsonl")
            write_lines(p, lines)
            with self.assertRaisesRegex(C.CollectError,
                                        "does not line up"):
                C.collect_jsonl(fixture_configs(), p)

    def test_nonfinite_json_rejected(self):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "r.jsonl")
            write_lines(p, ['{"a": NaN}'] * 4)
            with self.assertRaisesRegex(C.CollectError, "strict JSON"):
                C.collect_jsonl(fixture_configs(), p)


class ResultsRoundTripTest(unittest.TestCase):
    def test_write_read_round_trip(self):
        rows = C.collect_jsonl(fixture_configs(), FIXTURE)
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "results.json")
            C.write_results(rows, p, "fixture")
            doc = C.read_results(p)
        self.assertEqual(doc["spec"], "fixture")
        self.assertEqual(doc["rows"], json.loads(json.dumps(rows)))

    def test_read_rejects_foreign_json(self):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "x.json")
            with open(p, "w", encoding="utf-8") as f:
                json.dump({"rows": 3}, f)
            with self.assertRaisesRegex(C.CollectError,
                                        "results table"):
                C.read_results(p)


class CollectSheetsTest(unittest.TestCase):
    def test_sheet_dir_join_and_missing_sheet(self):
        cfgs = fixture_configs()
        lines = fixture_lines()
        with tempfile.TemporaryDirectory() as d:
            for cfg, line in list(zip(cfgs, lines))[:3]:
                with open(os.path.join(d, cfg.key() + ".json"), "w",
                          encoding="utf-8") as f:
                    f.write(line)
            rows = C.collect_sheets(cfgs, d)
        self.assertEqual(len(rows), 4)
        self.assertNotIn("error", rows[0])
        self.assertIn("missing", rows[3]["error"])


if __name__ == "__main__":
    unittest.main()
