"""Renderers: deterministic SVG output against golden files.

The SVG emitters use fixed-precision coordinates and insertion-order
element emission, so byte-identical goldens are a fair contract. After
an intentional rendering change, regenerate with:

    VCOMA_UPDATE_GOLDENS=1 python3 -m unittest \
        vcoma_sweep.tests.test_render
"""

import math
import os
import unittest

from vcoma_sweep import render as R
from vcoma_sweep import spec as M
from vcoma_sweep import svg as S

HERE = os.path.dirname(os.path.abspath(__file__))
GOLDEN_DIR = os.path.join(HERE, "goldens")
UPDATE = bool(os.environ.get("VCOMA_UPDATE_GOLDENS"))

SPEC = M.Spec({
    "name": "golden",
    "defaults": {"scale": 0.05, "nodes": 8},
    "sweeps": [
        {"id": "exec", "workloads": ["RADIX", "FFT"],
         "schemes": ["L0", "VCOMA"], "knobs": {"timed": True}},
        {"id": "walks", "workloads": ["RADIX", "FFT"],
         "schemes": ["L0", "VCOMA"]},
        {"id": "curves", "workloads": ["RADIX"],
         "schemes": ["L0", "VCOMA"],
         "knobs": {"entries": [8, 32, 128]}},
        {"id": "press", "workloads": ["RADIX", "FFT"],
         "schemes": ["VCOMA"]},
    ],
    "figures": [
        {"file": "g_exec.svg", "type": "exec_breakdown",
         "sweep": "exec", "baseline": "L0"},
        {"file": "g_walks.svg", "type": "miss_rates", "sweep": "walks"},
        {"file": "g_curves.svg", "type": "miss_curves",
         "sweep": "curves", "x": "entries"},
        {"file": "g_press.svg", "type": "pressure", "sweep": "press",
         "scheme": "VCOMA"},
    ],
})


def synthetic_rows():
    """A deterministic result table covering every sweep (values are
    arbitrary but fixed; the goldens pin the rendering, not physics)."""
    rows = []
    for cfg in SPEC.expand():
        row = cfg.provenance()
        salt = len(rows) + 1   # deterministic, no RNG
        is_vcoma = cfg.scheme == "V-COMA"
        row.update({
            "busy": 1000.0,
            "sync": 120.0 + 10 * salt,
            "loc_stall": 300.0 + 5 * salt,
            "rem_stall": 800.0 - 20 * salt,
            "xlat_stall": 40.0 if is_vcoma else 260.0 - 8 * salt,
            "walks_per_1k_refs": (0.8 if is_vcoma
                                  else 22.0 - 1.5 * salt),
            "misses_per_node":
                (90.0 if is_vcoma else 900.0) / cfg.knobs["entries"],
            "pressure_profile":
                [math.sin(j / 40.0 + salt) ** 2 * (1.0 + 0.1 * salt)
                 for j in range(64)],
        })
        rows.append(row)
    return rows


class GoldenTest(unittest.TestCase):
    maxDiff = None

    def check_golden(self, fig):
        text = R.render_figure(fig, synthetic_rows())
        self.assertTrue(text.startswith("<svg "))
        self.assertIn("</svg>", text)
        path = os.path.join(GOLDEN_DIR, fig.file)
        if UPDATE:
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
            self.skipTest(f"regenerated {path}")
        with open(path, "r", encoding="utf-8") as f:
            self.assertEqual(f.read(), text,
                             f"{fig.file} drifted from its golden; "
                             "if intentional, regenerate with "
                             "VCOMA_UPDATE_GOLDENS=1")

    def test_exec_breakdown_golden(self):
        self.check_golden(SPEC.figures[0])

    def test_miss_rates_golden(self):
        self.check_golden(SPEC.figures[1])

    def test_miss_curves_golden(self):
        self.check_golden(SPEC.figures[2])

    def test_pressure_golden(self):
        self.check_golden(SPEC.figures[3])


class RenderEdgeTest(unittest.TestCase):
    def test_error_rows_become_footnote_not_bars(self):
        rows = synthetic_rows()
        victim = next(i for i, r in enumerate(rows)
                      if r["sweep"] == "walks")
        rows[victim] = {k: rows[victim][k]
                        for k in ("key", "sweep", "workload", "scheme")}
        rows[victim]["error"] = "boom"
        text = R.render_figure(SPEC.figures[1], rows)
        self.assertIn("n/a*", text)

    def test_empty_sweep_rejected(self):
        with self.assertRaises(R.RenderError):
            R.render_figure(SPEC.figures[0], [])

    def test_curves_need_an_axis(self):
        rows = [r for r in synthetic_rows()
                if r["sweep"] == "curves" and r["entries"] == 8]
        with self.assertRaisesRegex(R.RenderError, "need an axis"):
            R.render_figure(SPEC.figures[2], rows)

    def test_pressure_needs_the_scheme(self):
        rows = [r for r in synthetic_rows() if r["sweep"] == "press"]
        for r in rows:
            r["scheme"] = "L0-TLB"
        with self.assertRaisesRegex(R.RenderError, "no rows under"):
            R.render_figure(SPEC.figures[3], rows)

    def test_missing_baseline_rejected(self):
        rows = [r for r in synthetic_rows()
                if r["sweep"] == "exec" and r["scheme"] != "L0-TLB"]
        with self.assertRaisesRegex(R.RenderError, "baseline"):
            R.render_figure(SPEC.figures[0], rows)


class SvgPrimitiveTest(unittest.TestCase):
    def test_nice_ticks_are_1_2_5(self):
        ticks = S.nice_ticks(0.0, 87.0)
        self.assertIn(0.0, ticks)
        steps = {round(ticks[i + 1] - ticks[i], 9)
                 for i in range(len(ticks) - 1)}
        self.assertEqual(len(steps), 1)
        step = steps.pop()
        mant = step / (10 ** math.floor(math.log10(step)))
        self.assertIn(round(mant, 6), (1.0, 2.0, 5.0))

    def test_text_is_escaped(self):
        c = S.Svg(100, 50)
        c.text(5, 5, "a<b&c")
        out = c.to_string()
        self.assertIn("a&lt;b&amp;c", out)
        self.assertNotIn("a<b", out)


if __name__ == "__main__":
    unittest.main()
