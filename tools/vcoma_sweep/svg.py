"""A tiny deterministic SVG chart kit (stdlib only).

Just enough vector drawing for the paper's figures: rectangles,
polylines, text, axes with 1-2-5 ticks, band scales for categorical
axes and a legend. Output is byte-deterministic for a given input --
coordinates are formatted to fixed precision and everything renders
in insertion order -- so the renderer tests can diff golden files.
"""

import math
from xml.sax.saxutils import escape, quoteattr

#: Categorical palette (colorblind-safe-ish, stable order: series i
#: always gets PALETTE[i % len]).
PALETTE = (
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4",
    "#8c613c", "#dc7ec0", "#797979", "#d5bb67", "#82c6e2",
)

#: Segment colors for the execution-time breakdown (busy, sync,
#: local stall, remote stall, translation stall).
BREAKDOWN_COLORS = (
    "#4878d0", "#d5bb67", "#6acc64", "#d65f5f", "#956cb4",
)

FONT = "ui-sans-serif, system-ui, 'Helvetica Neue', Arial, sans-serif"


def fmt(v):
    """Fixed-precision coordinate/number formatting (deterministic)."""
    s = f"{float(v):.2f}"
    if s == "-0.00":
        s = "0.00"
    return s


def nice_ticks(lo, hi, target=5):
    """1-2-5 tick positions covering [lo, hi] (deterministic)."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(1, target)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        step = mag * mult
        if span / step <= target:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step * 1e-9:
        ticks.append(0.0 if abs(t) < step * 1e-9 else t)
        t += step
    return ticks


def tick_label(v):
    """Human tick label: integers bare, otherwise trimmed decimal."""
    if abs(v - round(v)) < 1e-9:
        return str(int(round(v)))
    s = f"{v:.4f}".rstrip("0").rstrip(".")
    return s


class Svg:
    """An SVG document built from primitives in insertion order."""

    def __init__(self, width, height):
        self.width = width
        self.height = height
        self._parts = []

    def rect(self, x, y, w, h, fill, stroke=None, opacity=None,
             title=None):
        attrs = (f'x="{fmt(x)}" y="{fmt(y)}" width="{fmt(w)}" '
                 f'height="{fmt(h)}" fill={quoteattr(fill)}')
        if stroke:
            attrs += f' stroke={quoteattr(stroke)} stroke-width="1"'
        if opacity is not None:
            attrs += f' fill-opacity="{fmt(opacity)}"'
        if title:
            self._parts.append(
                f"<rect {attrs}><title>{escape(title)}</title></rect>")
        else:
            self._parts.append(f"<rect {attrs}/>")

    def line(self, x1, y1, x2, y2, stroke, width=1.0, dash=None):
        attrs = (f'x1="{fmt(x1)}" y1="{fmt(y1)}" x2="{fmt(x2)}" '
                 f'y2="{fmt(y2)}" stroke={quoteattr(stroke)} '
                 f'stroke-width="{fmt(width)}"')
        if dash:
            attrs += f' stroke-dasharray="{dash}"'
        self._parts.append(f"<line {attrs}/>")

    def polyline(self, points, stroke, width=1.5, title=None):
        pts = " ".join(f"{fmt(x)},{fmt(y)}" for x, y in points)
        body = (f'points="{pts}" fill="none" '
                f'stroke={quoteattr(stroke)} '
                f'stroke-width="{fmt(width)}" '
                'stroke-linejoin="round" stroke-linecap="round"')
        if title:
            self._parts.append(f"<polyline {body}><title>"
                               f"{escape(title)}</title></polyline>")
        else:
            self._parts.append(f"<polyline {body}/>")

    def circle(self, x, y, r, fill):
        self._parts.append(f'<circle cx="{fmt(x)}" cy="{fmt(y)}" '
                           f'r="{fmt(r)}" fill={quoteattr(fill)}/>')

    def text(self, x, y, s, size=11, anchor="start", fill="#222",
             rotate=None, bold=False):
        attrs = (f'x="{fmt(x)}" y="{fmt(y)}" font-size="{size}" '
                 f'font-family={quoteattr(FONT)} '
                 f'text-anchor="{anchor}" fill={quoteattr(fill)}')
        if bold:
            attrs += ' font-weight="600"'
        if rotate is not None:
            attrs += (f' transform="rotate({fmt(rotate)} {fmt(x)} '
                      f'{fmt(y)})"')
        self._parts.append(f"<text {attrs}>{escape(str(s))}</text>")

    def to_string(self, desc=""):
        head = (f'<svg xmlns="http://www.w3.org/2000/svg" '
                f'width="{self.width}" height="{self.height}" '
                f'viewBox="0 0 {self.width} {self.height}">')
        parts = [head]
        if desc:
            parts.append(f"<desc>{escape(desc)}</desc>")
        parts.append(f'<rect x="0" y="0" width="{self.width}" '
                     f'height="{self.height}" fill="#ffffff"/>')
        parts.extend(self._parts)
        parts.append("</svg>")
        return "\n".join(parts) + "\n"


class Frame:
    """A titled plot area with a linear y axis and gridlines."""

    def __init__(self, svg, title, ylabel, left=64, right=16, top=40,
                 bottom=56):
        self.svg = svg
        self.x0 = left
        self.x1 = svg.width - right
        self.y0 = top
        self.y1 = svg.height - bottom
        if title:
            svg.text(svg.width / 2, 20, title, size=13,
                     anchor="middle", bold=True)
        if ylabel:
            svg.text(14, (self.y0 + self.y1) / 2, ylabel, size=11,
                     anchor="middle", rotate=-90, fill="#444")
        self.ymin = 0.0
        self.ymax = 1.0

    def set_yrange(self, ymin, ymax):
        self.ymin = ymin
        self.ymax = ymax if ymax > ymin else ymin + 1.0

    def y(self, v):
        t = (v - self.ymin) / (self.ymax - self.ymin)
        return self.y1 - t * (self.y1 - self.y0)

    def draw_y_axis(self, ticks=None, label=tick_label):
        if ticks is None:
            ticks = nice_ticks(self.ymin, self.ymax)
        for t in ticks:
            if t < self.ymin - 1e-9 or t > self.ymax + 1e-9:
                continue
            y = self.y(t)
            self.svg.line(self.x0, y, self.x1, y, "#dddddd")
            self.svg.text(self.x0 - 6, y + 3.5, label(t), size=10,
                          anchor="end", fill="#444")
        self.svg.line(self.x0, self.y0, self.x0, self.y1, "#222222")
        self.svg.line(self.x0, self.y1, self.x1, self.y1, "#222222")

    def legend(self, entries, swatch=10):
        """entries: [(label, color)], laid out along the top edge."""
        x = self.x0
        y = self.y0 - 10
        for label, color in entries:
            self.svg.rect(x, y - swatch + 2, swatch, swatch, color)
            self.svg.text(x + swatch + 4, y + 1, label, size=10,
                          fill="#333")
            x += swatch + 10 + 6.2 * len(str(label))


def band_positions(x0, x1, n, pad_frac=0.15):
    """Centers and width for @n categorical bands across [x0, x1]."""
    if n <= 0:
        return [], 0.0
    band = (x1 - x0) / n
    inner = band * (1.0 - 2.0 * pad_frac)
    centers = [x0 + band * (i + 0.5) for i in range(n)]
    return centers, inner
