"""vcoma_sweep -- declarative sweep orchestration + figure pipeline.

A sweep is declared as data (a JSON spec: schemes x workloads x knobs,
cross-product expansion with per-config overrides), submitted through
one of three backends (`direct` = a local Runner via `vcoma_client
direct`, `service` = one daemon, `farm` = resilient per-config
submission through the farm router), collected from the client's
`--jsonl` output into one normalized result table with provenance,
and rendered as the paper's Fig. 8-11 SVGs plus a BENCH_*.json
history dashboard.

Everything is Python stdlib only -- the SVGs are emitted directly, so
CI needs no matplotlib -- and every simulation byte still comes out
of the C++ tree: the same spec produces byte-identical collected
JSONL whichever backend ran it.

Entry point: ``python3 -m vcoma_sweep --help`` (run from `tools/`, or
with `tools/` on PYTHONPATH).
"""

__all__ = [
    "spec", "submit", "collect", "render", "svg", "dashboard", "checks",
]

__version__ = "1.0"
