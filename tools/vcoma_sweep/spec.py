"""Sweep specifications: a sweep declared as data.

A spec is a JSON document:

    {
      "name": "paper_grid",
      "defaults": {"scale": 0.1, "nodes": 32},
      "sweeps": [
        {
          "id": "miss_curves",
          "workloads": ["RADIX", "FFT"],
          "schemes": ["L0", "VCOMA"],
          "knobs": {"entries": [8, 32, 128, 512]},
          "overrides": [
            {"match": {"workload": "RAYTRACE", "scheme": "V-COMA"},
             "set": {"raytrace_v2": true}}
          ]
        }
      ],
      "figures": [
        {"file": "fig10.svg", "type": "miss_curves",
         "sweep": "miss_curves", "x": "entries"}
      ]
    }

Expansion rules:

  * Within a sweep, every knob whose value is a *list* is an axis;
    the sweep expands to the cross product of all axes x workloads x
    schemes. Axis combinations vary outermost so that configs sharing
    one knob combination are consecutive (the submit layer turns each
    such run into one `vcoma_client` invocation with comma lists).
    Within a combination the order is workloads outer, schemes inner
    -- exactly `vcoma_client`'s own sweep order, so the collected
    JSONL lines land in spec order whatever the grouping.
  * `defaults` (and the built-in knob defaults below) fill whatever a
    sweep leaves unspecified.
  * `overrides` patch the knobs of every expanded config whose
    workload/scheme/knob values equal the `match` object -- per-axis
    irregularities (the paper's RAYTRACE/V2 layout variant, say)
    without abandoning the cross product.

Scheme tokens reuse the registry's canonical names and parse aliases
(src/translation/scheme.cc); workloads reuse the `TRACE:<path>` and
`KVLOOKUP:skew=...,read=...,ws=...` grammar of makeWorkload(). Both
are validated here so a bad spec dies before anything is submitted --
and `vcoma_client` re-validates, so registry drift fails loudly
rather than silently diverging.
"""

import itertools
import json
import os


class SpecError(ValueError):
    """A malformed spec, knob, scheme or workload spelling."""


# ---------------------------------------------------------------------------
# Scheme and workload vocabulary (mirrors the C++ registry; the client
# re-validates every token, so drift is a loud failure, not a skew).
# ---------------------------------------------------------------------------

#: canonical scheme name -> accepted aliases (besides the name itself).
SCHEMES = {
    "L0-TLB": ("L0",),
    "L1-TLB": ("L1",),
    "L2-TLB": ("L2",),
    "L3-TLB": ("L3",),
    "V-COMA": ("VCOMA", "DLB"),
    "VICTIMA": ("Victima", "VICTIMA-TLB"),
    "NMT": (),
}

_SCHEME_BY_TOKEN = {}
for _name, _aliases in SCHEMES.items():
    _SCHEME_BY_TOKEN[_name.upper()] = _name
    for _a in _aliases:
        _SCHEME_BY_TOKEN[_a.upper()] = _name

#: workload base names accepted by makeWorkload().
PAPER_WORKLOADS = ("RADIX", "FFT", "FMM", "OCEAN", "RAYTRACE", "BARNES")
SYNTHETIC_WORKLOADS = ("UNIFORM", "STRIDE", "HOTSPOT")
DATACENTER_WORKLOADS = ("KVLOOKUP", "GRAPH", "STREAMJOIN")
ALL_WORKLOADS = PAPER_WORKLOADS + SYNTHETIC_WORKLOADS + DATACENTER_WORKLOADS

#: inline knobs the datacenter kernels accept ("KVLOOKUP:skew=1.2").
WORKLOAD_KNOBS = ("skew", "read", "ws")

#: knob -> (python type, vcoma_client flag or None for booleans,
#:          default). Mirrors ExperimentConfig's fields and defaults.
KNOBS = {
    "entries":      (int,   "--entries",      8),
    "assoc":        (int,   "--assoc",        0),
    "nodes":        (int,   "--nodes",        32),
    "scale":        (float, "--scale",        1.0),
    "seed":         (int,   "--seed",         1),
    "timed":        (bool,  None,             False),
    "wback_tlb":    (bool,  None,             True),
    "raytrace_v2":  (bool,  None,             False),
    "am_assoc":     (int,   "--am-assoc",     4),
    "xlat_penalty": (int,   "--xlat-penalty", 40),
}

FIGURE_TYPES = ("exec_breakdown", "miss_rates", "miss_curves", "pressure")


def canonical_scheme(token):
    """Canonical registry name for @token, or SpecError."""
    if not isinstance(token, str):
        raise SpecError(f"scheme token must be a string, got {token!r}")
    name = _SCHEME_BY_TOKEN.get(token.upper())
    if name is None:
        known = ", ".join(sorted(SCHEMES))
        raise SpecError(f"unknown scheme {token!r} (known: {known})")
    return name


def canonical_workload(spelling):
    """Validate a workload spelling, return its canonical form.

    Base names are upper-cased (makeWorkload is case-insensitive);
    TRACE: paths and inline knob strings are preserved verbatim
    because they flow into cache keys.
    """
    if not isinstance(spelling, str) or not spelling:
        raise SpecError(f"workload must be a non-empty string, "
                        f"got {spelling!r}")
    if spelling.upper().startswith("TRACE:"):
        if len(spelling) <= len("TRACE:"):
            raise SpecError(f"workload {spelling!r}: empty trace path")
        return "TRACE:" + spelling[len("TRACE:"):]
    base, sep, knobs = spelling.partition(":")
    base = base.upper()
    if base not in ALL_WORKLOADS:
        known = ", ".join(ALL_WORKLOADS)
        raise SpecError(f"unknown workload {spelling!r} (known: {known}, "
                        "or TRACE:<path>)")
    if not sep:
        return base
    if base not in DATACENTER_WORKLOADS:
        raise SpecError(f"workload {spelling!r}: only the datacenter "
                        "kernels accept inline knobs")
    if not knobs:
        raise SpecError(f"workload {spelling!r}: empty knob list")
    for item in knobs.split(","):
        key, eq, value = item.partition("=")
        if not eq or key not in WORKLOAD_KNOBS:
            raise SpecError(
                f"workload {spelling!r}: bad knob {item!r} (knobs: "
                + ", ".join(WORKLOAD_KNOBS) + ")")
        try:
            float(value)
        except ValueError:
            raise SpecError(f"workload {spelling!r}: knob {key!r} value "
                            f"{value!r} is not a number") from None
    return base + ":" + knobs


def _check_knob(name, value):
    """Type-check one scalar knob value, returning it normalized."""
    if name not in KNOBS:
        known = ", ".join(sorted(KNOBS))
        raise SpecError(f"unknown knob {name!r} (known: {known})")
    want, _flag, _default = KNOBS[name]
    if want is bool:
        if not isinstance(value, bool):
            raise SpecError(f"knob {name!r} wants a bool, got {value!r}")
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"knob {name!r} wants {want.__name__}, "
                        f"got {value!r}")
    if want is int:
        if float(value) != int(value):
            raise SpecError(f"knob {name!r} wants an integer, "
                            f"got {value!r}")
        return int(value)
    return float(value)


def _fmt_double(v):
    """Format a float the way `std::ostream << double` does (6
    significant digits, no trailing zeros) so mirrored cache keys are
    byte-identical to the C++ ones."""
    return f"{float(v):.6g}"


def _sanitize_key_component(s):
    """Mirror of runner.cc sanitizeKeyComponent(): filesystem-safe
    characters pass through, anything else becomes '_' plus an FNV-1a
    disambiguating suffix."""
    out = []
    dirty = False
    for c in s:
        if c.isalnum() or c in "._-=,":
            out.append(c)
        else:
            out.append("_")
            dirty = True
    if not dirty:
        return "".join(out)
    h = 1469598103934665603
    for c in s.encode("utf-8", "surrogateescape"):
        h ^= c
        h = (h * 1099511628211) % (1 << 64)
    return "".join(out) + "-h" + format((h ^ (h >> 32)) & 0xffffffff, "08x")


class Config:
    """One expanded simulation point: workload x scheme x full knobs."""

    __slots__ = ("sweep_id", "workload", "scheme", "knobs")

    def __init__(self, sweep_id, workload, scheme, knobs):
        self.sweep_id = sweep_id
        self.workload = workload
        self.scheme = scheme          # canonical registry name
        self.knobs = dict(knobs)      # complete: every KNOBS key set

    def key(self):
        """Mirror of ExperimentConfig::key() -- the cache key, sheet
        file name and provenance handle."""
        k = self.knobs
        return (f"{_sanitize_key_component(self.workload)}-{self.scheme}"
                f"-e{k['entries']}-a{k['assoc']}"
                f"-t{int(k['timed'])}-w{int(k['wback_tlb'])}"
                f"-v2_{int(k['raytrace_v2'])}-n{k['nodes']}"
                f"-s{_fmt_double(k['scale'])}-r{k['seed']}"
                f"-k{k['am_assoc']}-p{k['xlat_penalty']}")

    def knob_flags(self):
        """vcoma_client flags for this config's knobs (always the full
        set, so every invocation is explicit and order-independent)."""
        k = self.knobs
        flags = []
        for name in ("entries", "assoc", "nodes", "scale", "seed",
                     "am_assoc", "xlat_penalty"):
            _t, flag, _d = KNOBS[name]
            value = k[name]
            flags += [flag, _fmt_double(value) if _t is float
                      else str(value)]
        flags.append("--timed" if k["timed"] else "--untimed")
        if not k["wback_tlb"]:
            flags.append("--no-wback-tlb")
        if k["raytrace_v2"]:
            flags.append("--raytrace-v2")
        return flags

    def provenance(self):
        """The row-identity columns of the collected table."""
        row = {"key": self.key(), "sweep": self.sweep_id,
               "workload": self.workload, "scheme": self.scheme}
        row.update({k: self.knobs[k] for k in sorted(self.knobs)})
        return row

    def __repr__(self):
        return f"Config({self.key()})"


class Sweep:
    """One declared grid: workloads x schemes x knob axes."""

    def __init__(self, obj, defaults, index):
        if not isinstance(obj, dict):
            raise SpecError(f"sweeps[{index}] must be an object")
        unknown = set(obj) - {"id", "workloads", "schemes", "knobs",
                              "overrides"}
        if unknown:
            raise SpecError(f"sweeps[{index}]: unknown keys "
                            f"{sorted(unknown)}")
        self.id = obj.get("id", f"sweep{index}")
        if not isinstance(self.id, str) or not self.id:
            raise SpecError(f"sweeps[{index}]: id must be a non-empty "
                            "string")
        workloads = obj.get("workloads")
        if not isinstance(workloads, list) or not workloads:
            raise SpecError(f"sweep {self.id!r}: workloads must be a "
                            "non-empty list")
        self.workloads = [canonical_workload(w) for w in workloads]
        schemes = obj.get("schemes")
        if not isinstance(schemes, list) or not schemes:
            raise SpecError(f"sweep {self.id!r}: schemes must be a "
                            "non-empty list")
        self.schemes = [canonical_scheme(s) for s in schemes]

        knobs = obj.get("knobs", {})
        if not isinstance(knobs, dict):
            raise SpecError(f"sweep {self.id!r}: knobs must be an object")
        self.scalars = {}   # knob -> value
        self.axes = []      # [(knob, [values...])] in declaration order
        for name, value in knobs.items():
            if isinstance(value, list):
                if not value:
                    raise SpecError(f"sweep {self.id!r}: knob {name!r} "
                                    "axis is empty")
                self.axes.append(
                    (name, [_check_knob(name, v) for v in value]))
            else:
                self.scalars[name] = _check_knob(name, value)
        for name, value in defaults.items():
            self.scalars.setdefault(name, value)

        self.overrides = []
        for j, ov in enumerate(obj.get("overrides", [])):
            if (not isinstance(ov, dict)
                    or set(ov) - {"match", "set"}
                    or not isinstance(ov.get("match"), dict)
                    or not isinstance(ov.get("set"), dict)
                    or not ov["set"]):
                raise SpecError(f"sweep {self.id!r}: overrides[{j}] must "
                                "be {\"match\": {...}, \"set\": {...}}")
            match = {}
            for mk, mv in ov["match"].items():
                if mk == "workload":
                    match[mk] = canonical_workload(mv)
                elif mk == "scheme":
                    match[mk] = canonical_scheme(mv)
                else:
                    match[mk] = _check_knob(mk, mv)
            patch = {sk: _check_knob(sk, sv)
                     for sk, sv in ov["set"].items()}
            self.overrides.append((match, patch))

    def expand(self):
        """The sweep's configs, knob combinations outermost."""
        configs = []
        axis_values = [values for _n, values in self.axes]
        for combo in itertools.product(*axis_values):
            knobs = {name: default for name, (_t, _f, default)
                     in KNOBS.items()}
            knobs.update(self.scalars)
            knobs.update({name: value for (name, _), value
                          in zip(self.axes, combo)})
            for workload in self.workloads:
                for scheme in self.schemes:
                    cfg = Config(self.id, workload, scheme, knobs)
                    for match, patch in self.overrides:
                        if self._matches(cfg, match):
                            cfg.knobs.update(patch)
                    configs.append(cfg)
        return configs

    @staticmethod
    def _matches(cfg, match):
        for mk, mv in match.items():
            if mk == "workload":
                if cfg.workload != mv:
                    return False
            elif mk == "scheme":
                if cfg.scheme != mv:
                    return False
            elif cfg.knobs[mk] != mv:
                return False
        return True


class Figure:
    """One declared output figure over a sweep's collected rows."""

    def __init__(self, obj, sweep_ids, index):
        if not isinstance(obj, dict):
            raise SpecError(f"figures[{index}] must be an object")
        unknown = set(obj) - {"file", "type", "sweep", "title",
                              "baseline", "x", "scheme"}
        if unknown:
            raise SpecError(f"figures[{index}]: unknown keys "
                            f"{sorted(unknown)}")
        self.file = obj.get("file")
        if (not isinstance(self.file, str)
                or not self.file.endswith(".svg")
                or os.path.basename(self.file) != self.file):
            raise SpecError(f"figures[{index}]: file must be a bare "
                            "*.svg name")
        self.type = obj.get("type")
        if self.type not in FIGURE_TYPES:
            raise SpecError(f"figures[{index}]: type must be one of "
                            + ", ".join(FIGURE_TYPES))
        self.sweep = obj.get("sweep")
        if self.sweep not in sweep_ids:
            raise SpecError(f"figures[{index}]: sweep {self.sweep!r} is "
                            "not declared")
        self.title = obj.get("title", "")
        self.baseline = (canonical_scheme(obj["baseline"])
                         if "baseline" in obj else None)
        self.scheme = (canonical_scheme(obj["scheme"])
                       if "scheme" in obj else None)
        self.x = obj.get("x", "entries")
        if self.x not in KNOBS:
            raise SpecError(f"figures[{index}]: x must name a knob")


class Spec:
    """A parsed, validated sweep spec."""

    def __init__(self, obj, name_hint="spec"):
        if not isinstance(obj, dict):
            raise SpecError("spec must be a JSON object")
        unknown = set(obj) - {"name", "defaults", "sweeps", "figures"}
        if unknown:
            raise SpecError(f"spec: unknown top-level keys "
                            f"{sorted(unknown)}")
        self.name = obj.get("name", name_hint)
        defaults = obj.get("defaults", {})
        if not isinstance(defaults, dict):
            raise SpecError("spec: defaults must be an object")
        self.defaults = {}
        for name, value in defaults.items():
            if isinstance(value, list):
                raise SpecError(f"default knob {name!r} cannot be an "
                                "axis; declare axes per sweep")
            self.defaults[name] = _check_knob(name, value)
        sweeps = obj.get("sweeps")
        if not isinstance(sweeps, list) or not sweeps:
            raise SpecError("spec: sweeps must be a non-empty list")
        self.sweeps = [Sweep(s, self.defaults, i)
                       for i, s in enumerate(sweeps)]
        ids = [s.id for s in self.sweeps]
        if len(set(ids)) != len(ids):
            raise SpecError(f"spec: duplicate sweep ids in {ids}")
        self.figures = [Figure(f, set(ids), i)
                        for i, f in enumerate(obj.get("figures", []))]
        files = [f.file for f in self.figures]
        if len(set(files)) != len(files):
            raise SpecError(f"spec: duplicate figure files in {files}")

    def expand(self):
        """Every config of every sweep, in declaration order."""
        configs = []
        for sweep in self.sweeps:
            configs.extend(sweep.expand())
        return configs


def _package_spec_path(path):
    """Fall back to the stock specs shipped with the package, so
    `specs/paper_grid.json` resolves from any working directory."""
    here = os.path.dirname(os.path.abspath(__file__))
    candidate = os.path.join(here, "specs", os.path.basename(path))
    return candidate if os.path.exists(candidate) else None


def load_spec(path):
    """Load and validate a spec file (literal path first, then the
    package's stock `specs/` directory)."""
    actual = path
    if not os.path.exists(actual):
        fallback = _package_spec_path(path)
        if fallback is None:
            raise SpecError(f"spec file {path!r} not found")
        actual = fallback
    try:
        with open(actual, "r", encoding="utf-8") as f:
            obj = json.load(f)
    except ValueError as e:
        raise SpecError(f"{actual}: not valid JSON: {e}") from None
    name_hint = os.path.splitext(os.path.basename(actual))[0]
    spec = Spec(obj, name_hint=name_hint)
    return spec
