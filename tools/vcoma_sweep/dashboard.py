"""BENCH-history dashboard: every BENCH_*.json in a tree -> HTML.

Each bench binary writes a BENCH_<name>.json report (bench_util.hh's
BenchReport: wall time, executed-simulation count, named metrics,
and -- since report schema 2 -- the format version plus the `git
describe` of the build that produced it). The dashboard:

  * collects every report under a root directory;
  * **refuses stale formats**: a report without `schema == 2`/`git`
    predates the versioned format and is listed in a warning section
    instead of being plotted into the tables, so a leftover file from
    an old build can never masquerade as a current measurement;
  * renders per-bench metric tables, and for every metric gated by
    `bench/perf_baseline.json` the measured/baseline ratio with the
    gate verdict (the same tolerance rule `vcoma_sweep.checks.perf`
    enforces in CI);
  * if a `perf_trajectory.jsonl` history file is present (the
    perf-trajectory workflow appends one row per run), sparklines of
    each gated metric across runs.

Pure stdlib; the output is a single self-contained dashboard.html.
"""

import glob
import html
import json
import math
import os

#: The BenchReport format this dashboard understands. Reports with a
#: different schema (or none) are flagged as stale, never plotted.
BENCH_SCHEMA = 2

_CSS = """
body { font-family: ui-sans-serif, system-ui, sans-serif;
       margin: 2em auto; max-width: 70em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em;
         font-size: 0.9em; text-align: right; }
th { background: #f2f2f2; }
td.name, th.name { text-align: left; font-family: ui-monospace,
                   monospace; }
.ok { color: #1a7a2e; font-weight: 600; }
.bad { color: #b02323; font-weight: 600; }
.stale { background: #fff3e0; border: 1px solid #e0a050;
         padding: 0.6em 1em; margin: 0.6em 0; }
.meta { color: #666; font-size: 0.85em; }
svg.spark { vertical-align: middle; }
"""


def _load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def find_reports(root):
    """Every BENCH_*.json under @root (sorted), shallow dirs included."""
    pattern = os.path.join(glob.escape(root), "**", "BENCH_*.json")
    return sorted(glob.glob(pattern, recursive=True))


def classify_reports(paths):
    """Split reports into (current, stale) lists of (path, doc|reason)."""
    current, stale = [], []
    for path in paths:
        try:
            doc = _load(path)
        except (OSError, ValueError) as e:
            stale.append((path, f"unreadable: {e}"))
            continue
        if not isinstance(doc, dict) or "bench" not in doc:
            stale.append((path, "not a BenchReport"))
        elif doc.get("schema") != BENCH_SCHEMA or "git" not in doc:
            stale.append((path,
                          f"stale format (schema "
                          f"{doc.get('schema')!r}, expected "
                          f"{BENCH_SCHEMA} with a git stamp) -- "
                          "regenerate with a current build"))
        else:
            current.append((path, doc))
    return current, stale


def load_baseline(path):
    """bench/perf_baseline.json -> (gates dict, tolerance)."""
    try:
        doc = _load(path)
    except (OSError, ValueError):
        return {}, 0.2
    gates = doc.get("gates")
    tolerance = doc.get("tolerance", 0.2)
    return (gates if isinstance(gates, dict) else {}), tolerance


def load_trajectory(root):
    """perf_trajectory.jsonl rows (metric history), oldest first."""
    path = os.path.join(root, "perf_trajectory.jsonl")
    rows = []
    if not os.path.exists(path):
        return rows
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except ValueError:
                continue
    return rows


def sparkline(values, width=120, height=24):
    """Inline SVG sparkline of a metric history."""
    pts = [v for v in values if isinstance(v, (int, float))
           and math.isfinite(v)]
    if len(pts) < 2:
        return ""
    lo, hi = min(pts), max(pts)
    span = (hi - lo) or 1.0
    step = width / (len(pts) - 1)
    coords = " ".join(
        f"{i * step:.1f},{height - 2 - (v - lo) / span * (height - 4):.1f}"
        for i, v in enumerate(pts))
    return (f'<svg class="spark" width="{width}" height="{height}">'
            f'<polyline points="{coords}" fill="none" '
            f'stroke="#4878d0" stroke-width="1.5"/></svg>')


def _fmt_metric(v):
    if v is None:
        return '<span class="bad">null</span>'
    if isinstance(v, float):
        return f"{v:,.3f}"
    return f"{v:,}"


def _bench_section(doc, gates, tolerance, history):
    name = doc["bench"]
    out = [f'<h2 id="{html.escape(name)}">{html.escape(name)}</h2>']
    out.append(
        f'<p class="meta">wall {doc.get("wall_ms", 0):,.0f} ms · '
        f'{doc.get("executed", 0)} simulation(s) executed · '
        f'{doc.get("failures", 0)} failure(s) · built at '
        f'<code>{html.escape(str(doc.get("git")))}</code></p>')
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        return out
    out.append("<table><tr><th class=\"name\">metric</th>"
               "<th>value</th><th>baseline</th><th>ratio</th>"
               "<th>gate</th><th>trend</th></tr>")
    for key in sorted(metrics):
        value = metrics[key]
        floor = gates.get(key)
        if floor:
            ratio = (value / floor
                     if isinstance(value, (int, float)) and floor
                     else None)
            good = ratio is not None and ratio >= 1.0 - tolerance
            ratio_s = f"{ratio:.2f}x" if ratio is not None else "–"
            gate_s = ("<span class=\"ok\">ok</span>" if good
                      else "<span class=\"bad\">REGRESSION</span>")
            floor_s = f"{floor:,.3f}"
        else:
            ratio_s, gate_s, floor_s = "–", "–", "–"
        trend = sparkline([r.get("metrics", {}).get(key)
                           for r in history]) or "–"
        out.append(f'<tr><td class="name">{html.escape(key)}</td>'
                   f"<td>{_fmt_metric(value)}</td><td>{floor_s}</td>"
                   f"<td>{ratio_s}</td><td>{gate_s}</td>"
                   f"<td>{trend}</td></tr>")
    out.append("</table>")
    return out


def build_dashboard(root, baseline_path=None, out_path=None):
    """Render dashboard.html for every report under @root.

    Returns (html text, number of current reports, number of stale).
    """
    if baseline_path is None:
        baseline_path = os.path.join(root, "bench",
                                     "perf_baseline.json")
    paths = find_reports(root)
    current, stale = classify_reports(paths)
    gates, tolerance = load_baseline(baseline_path)
    history = load_trajectory(root)

    parts = ["<!DOCTYPE html><html><head><meta charset=\"utf-8\">",
             "<title>V-COMA bench dashboard</title>",
             f"<style>{_CSS}</style></head><body>",
             "<h1>V-COMA bench dashboard</h1>",
             f'<p class="meta">{len(current)} current report(s), '
             f"{len(stale)} stale/unreadable, scanned under "
             f"<code>{html.escape(os.path.abspath(root))}</code>. "
             f"Gate tolerance {tolerance:.0%} below baseline "
             f"(<code>{html.escape(baseline_path)}</code>).</p>"]

    if stale:
        parts.append('<div class="stale"><strong>Ignored '
                     'reports:</strong><ul>')
        for path, reason in stale:
            parts.append(f"<li><code>{html.escape(path)}</code> — "
                         f"{html.escape(reason)}</li>")
        parts.append("</ul></div>")

    if current:
        parts.append("<p>Benches: " + " · ".join(
            f'<a href="#{html.escape(doc["bench"])}">'
            f'{html.escape(doc["bench"])}</a>'
            for _p, doc in current) + "</p>")
        for _path, doc in current:
            parts.extend(_bench_section(doc, gates, tolerance,
                                        history))
    else:
        parts.append("<p>No current bench reports found. Run any "
                     "bench binary (they write BENCH_*.json beside "
                     "their working directory) and rebuild the "
                     "dashboard.</p>")

    parts.append("</body></html>")
    text = "\n".join(parts) + "\n"
    if out_path:
        with open(out_path, "w", encoding="utf-8") as f:
            f.write(text)
    return text, len(current), len(stale)
