"""Submission backends: expanded configs -> collected JSONL.

Three backends share one contract -- after submit() returns, the
JSONL file holds exactly one record per expanded config, in spec
order, each record being the byte-exact writeRunStatsJson() sheet
(or a {"key":...,"error":...} placeholder for a failed config):

  * ``direct``  -- `vcoma_client direct`: a local Runner, no daemon.
  * ``service`` -- `vcoma_client sweep` against one vcoma_served.
  * ``farm``    -- `vcoma_client sweep --farm`: per-config resilient
    submission (retry/backoff/reconnect) through the farm router.

Because simulations are deterministic and every backend emits the
same sheet bytes in the same order, a farm-collected JSONL is
byte-identical to a direct one -- CI diffs them.

Invocation planning: configs sharing one knob combination are
submitted as a single `vcoma_client` call with `--workloads`/
`--schemes` comma lists when (and only when) the group is a pure
cross product and no token contains a comma (inline workload knobs
use commas); anything irregular -- an override that patched one
config, say -- degrades to per-config calls. Either way the JSONL
order is the spec order.
"""

import os
import subprocess
import time


class SubmitError(RuntimeError):
    """A client invocation failed outright (bad flags, dead daemon)."""


BACKENDS = ("direct", "service", "farm")


class Invocation:
    """One planned `vcoma_client` call covering >= 1 configs."""

    def __init__(self, configs, workloads, schemes):
        self.configs = configs      # in spec order
        self.workloads = workloads  # unique, ordered
        self.schemes = schemes      # unique, ordered

    def sweep_args(self):
        args = []
        if len(self.workloads) == 1:
            args += ["--workload", self.workloads[0]]
        else:
            args += ["--workloads", ",".join(self.workloads)]
        if len(self.schemes) == 1:
            args += ["--scheme", self.schemes[0]]
        else:
            args += ["--schemes", ",".join(self.schemes)]
        args += self.configs[0].knob_flags()
        return args


def _unique(seq):
    out = []
    for item in seq:
        if item not in out:
            out.append(item)
    return out


def plan_invocations(configs):
    """Group consecutive same-knob configs into client calls.

    The group's (workload, scheme) sequence must be exactly the cross
    product the client itself would enumerate (workloads outer,
    schemes inner) -- otherwise the JSONL order would diverge from
    the spec order and the collector's provenance join would lie.
    """
    plan = []
    i = 0
    while i < len(configs):
        j = i + 1
        while (j < len(configs)
               and configs[j].knobs == configs[i].knobs
               and configs[j].sweep_id == configs[i].sweep_id):
            j += 1
        group = configs[i:j]
        workloads = _unique(c.workload for c in group)
        schemes = _unique(c.scheme for c in group)
        cross = [(w, s) for w in workloads for s in schemes]
        commas = any("," in t for t in workloads + schemes)
        if not commas and cross == [(c.workload, c.scheme)
                                    for c in group]:
            plan.append(Invocation(group, workloads, schemes))
        else:
            plan.extend(Invocation([c], [c.workload], [c.scheme])
                        for c in group)
        i = j
    return plan


def default_client():
    """Locate the built vcoma_client: $VCOMA_CLIENT, then the usual
    build-tree spots relative to the working directory and to this
    package (tools/vcoma_sweep -> repo root)."""
    env = os.environ.get("VCOMA_CLIENT")
    if env:
        return env
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(os.path.dirname(here))
    for candidate in ("build/tools/vcoma_client",
                      "tools/vcoma_client",
                      os.path.join(repo, "build/tools/vcoma_client")):
        if os.path.exists(candidate):
            return candidate
    return "vcoma_client"   # hope for PATH


class Options:
    """Backend options (endpoint + farm resilience flags)."""

    def __init__(self, backend="direct", client=None, socket=None,
                 retries=None, request_timeout_ms=None, env=None):
        if backend not in BACKENDS:
            raise SubmitError(f"unknown backend {backend!r} "
                              f"(one of {', '.join(BACKENDS)})")
        self.backend = backend
        self.client = client or default_client()
        self.socket = socket
        self.retries = retries
        self.request_timeout_ms = request_timeout_ms
        self.env = env

    def command(self, invocation, jsonl_path):
        cmd = [self.client]
        if self.backend in ("service", "farm") and self.socket:
            cmd += ["--socket", self.socket]
        cmd += ["direct" if self.backend == "direct" else "sweep"]
        if self.backend == "farm":
            cmd += ["--farm"]
            if self.retries is not None:
                cmd += ["--retries", str(self.retries)]
            if self.request_timeout_ms is not None:
                cmd += ["--request-timeout-ms",
                        str(self.request_timeout_ms)]
        cmd += invocation.sweep_args()
        cmd += ["--jsonl", jsonl_path]
        return cmd


class SubmitResult:
    """What happened per config, for the collector's provenance."""

    def __init__(self):
        self.jsonl_path = None
        self.invocations = 0
        #: key -> True (cache hit) / False (simulated) / None (failed
        #: or the client predates the provenance lines).
        self.cached = {}
        #: key -> wall ms of the invocation that carried the config.
        self.wall_ms = {}


def _parse_provenance(stderr_text, result):
    """Pick the per-config `vcoma_client: KEY (cached|simulated)`
    lines out of the client's stderr."""
    for line in stderr_text.splitlines():
        if not line.startswith("vcoma_client: "):
            continue
        rest = line[len("vcoma_client: "):]
        for suffix, cached in ((" (cached)", True),
                               (" (simulated)", False)):
            if rest.endswith(suffix):
                result.cached[rest[:-len(suffix)]] = cached


def submit(configs, jsonl_path, options, log=None, strict=True):
    """Run every planned invocation in order, appending to
    @jsonl_path (which is removed first: the client appends).

    Returns a SubmitResult. With @strict, a client invocation that
    exits non-zero for anything but per-config simulation failures
    (exit 1 with placeholder lines already written) raises.
    """
    say = log or (lambda _msg: None)
    if os.path.exists(jsonl_path):
        os.remove(jsonl_path)
    os.makedirs(os.path.dirname(os.path.abspath(jsonl_path)),
                exist_ok=True)
    result = SubmitResult()
    result.jsonl_path = jsonl_path
    plan = plan_invocations(configs)
    for n, invocation in enumerate(plan, start=1):
        cmd = options.command(invocation, jsonl_path)
        say(f"[{n}/{len(plan)}] {len(invocation.configs)} config(s): "
            + " ".join(cmd))
        started = time.monotonic()
        proc = subprocess.run(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=options.env, text=True)
        wall = (time.monotonic() - started) * 1000.0
        _parse_provenance(proc.stderr, result)
        for cfg in invocation.configs:
            result.wall_ms[cfg.key()] = wall
        if proc.returncode not in (0, 1):
            raise SubmitError(
                f"client exited {proc.returncode} for "
                f"{' '.join(cmd)}:\n{proc.stderr.strip()}")
        if proc.returncode == 1:
            say(f"  some config(s) failed:\n{proc.stderr.strip()}")
            if strict:
                raise SubmitError(
                    "simulation failure(s) in "
                    f"{' '.join(cmd)}:\n{proc.stderr.strip()}")
        result.invocations += 1
    return result


def dry_run_lines(configs, options, jsonl_path="<out>/results.jsonl"):
    """The expanded config list plus the exact commands that would
    run -- `--dry-run`'s output."""
    lines = [f"{len(configs)} config(s):"]
    lines += [f"  {c.key()}" for c in configs]
    plan = plan_invocations(configs)
    lines.append(f"{len(plan)} client invocation(s):")
    lines += ["  " + " ".join(options.command(inv, jsonl_path))
              for inv in plan]
    return lines
