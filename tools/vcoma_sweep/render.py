"""Render: normalized result rows -> the paper's figures, as SVG.

Four figure types, matching the spec's `figures` declarations:

  * ``exec_breakdown`` -- stacked bars of the five cycle buckets
    (busy / sync / local stall / remote stall / translation stall),
    normalized to a baseline scheme's total per workload. The
    paper's execution-time-breakdown figure.
  * ``miss_rates``     -- grouped bars of translation-structure
    walks per 1k processor references per scheme x workload.
  * ``miss_curves``    -- lines of misses per node vs a swept knob
    (log2 x axis), one series per workload/scheme.
  * ``pressure``       -- the Fig. 11 memory-pressure profile across
    global page sets, one line per workload under one scheme.

Rows with an "error" field are skipped (rendered as a footnote
count), mirroring the ASCII tables' n/a* discipline.
"""

import math
import os

from . import svg as S
from .collect import sweep_rows

BREAKDOWN_SEGMENTS = (
    ("busy", "busy"),
    ("sync", "sync"),
    ("loc_stall", "local stall"),
    ("rem_stall", "remote stall"),
    ("xlat_stall", "translation"),
)


class RenderError(ValueError):
    """Figure declaration that cannot be satisfied by the rows."""


def _unique(seq):
    out = []
    for item in seq:
        if item not in out:
            out.append(item)
    return out


def _short(workload):
    """Group label: keep knobbed spellings readable."""
    base, sep, knobs = workload.partition(":")
    return base + ("·" + knobs if sep else "")


def _footnote(canvas, frame, skipped):
    if skipped:
        canvas.text(frame.x1, canvas.height - 6,
                    f"{skipped} config(s) n/a*", size=9, anchor="end",
                    fill="#a33")


def _need(rows, fig):
    if not rows:
        raise RenderError(
            f"figure {fig.file}: sweep {fig.sweep!r} produced no "
            "usable rows")


def render_exec_breakdown(fig, all_rows):
    rows, skipped = sweep_rows(all_rows, fig.sweep)
    _need(rows, fig)
    workloads = _unique(r["workload"] for r in rows)
    schemes = _unique(r["scheme"] for r in rows)
    baseline = fig.baseline or schemes[0]
    if baseline not in schemes:
        raise RenderError(f"figure {fig.file}: baseline {baseline!r} "
                          "not among the sweep's schemes")
    by = {(r["workload"], r["scheme"]): r for r in rows}

    canvas = S.Svg(max(560, 120 * len(workloads) + 140), 360)
    title = fig.title or ("Execution-time breakdown "
                          f"(normalized to {baseline})")
    frame = S.Frame(canvas, title, f"% of {baseline} time", bottom=72)

    bars = []   # (workload index, scheme, [segment values])
    ymax = 100.0
    for wi, w in enumerate(workloads):
        base_row = by.get((w, baseline))
        if base_row is None:
            continue
        base = sum(base_row[k] for k, _ in BREAKDOWN_SEGMENTS)
        if base <= 0:
            continue
        for s in schemes:
            row = by.get((w, s))
            if row is None:
                continue
            segs = [100.0 * row[k] / base for k, _ in BREAKDOWN_SEGMENTS]
            ymax = max(ymax, sum(segs))
            bars.append((wi, s, segs))
    frame.set_yrange(0.0, ymax * 1.05)
    frame.draw_y_axis()
    frame.legend([(label, S.BREAKDOWN_COLORS[i])
                  for i, (_k, label) in enumerate(BREAKDOWN_SEGMENTS)])

    centers, width = S.band_positions(frame.x0, frame.x1,
                                      len(workloads))
    bar_w = width / max(1, len(schemes))
    for wi, s, segs in bars:
        si = schemes.index(s)
        x = centers[wi] - width / 2 + si * bar_w
        y = frame.y1
        for i, v in enumerate(segs):
            h = frame.y(0.0) - frame.y(v)
            y -= h
            canvas.rect(x, y, bar_w * 0.92, h, S.BREAKDOWN_COLORS[i],
                        title=(f"{workloads[wi]} {s} "
                               f"{BREAKDOWN_SEGMENTS[i][1]}: "
                               f"{v:.1f}%"))
        canvas.text(x + bar_w * 0.46, frame.y1 + 10, s, size=8,
                    anchor="end", fill="#555", rotate=-45)
    for wi, w in enumerate(workloads):
        canvas.text(centers[wi], frame.y1 + 44, _short(w), size=10,
                    anchor="middle", bold=True)
    _footnote(canvas, frame, skipped)
    return canvas.to_string(desc=f"vcoma_sweep exec_breakdown "
                                 f"sweep={fig.sweep}")


def render_miss_rates(fig, all_rows):
    rows, skipped = sweep_rows(all_rows, fig.sweep)
    _need(rows, fig)
    workloads = _unique(r["workload"] for r in rows)
    schemes = _unique(r["scheme"] for r in rows)
    by = {(r["workload"], r["scheme"]): r for r in rows}

    canvas = S.Svg(max(560, 110 * len(workloads) + 140), 340)
    title = fig.title or "Translation walks per 1k references"
    frame = S.Frame(canvas, title, "walks / 1k refs", bottom=56)
    ymax = max((r["walks_per_1k_refs"] for r in rows), default=1.0)
    frame.set_yrange(0.0, max(ymax, 1e-9) * 1.1)
    frame.draw_y_axis()
    frame.legend([(s, S.PALETTE[i % len(S.PALETTE)])
                  for i, s in enumerate(schemes)])

    centers, width = S.band_positions(frame.x0, frame.x1,
                                      len(workloads))
    bar_w = width / max(1, len(schemes))
    for wi, w in enumerate(workloads):
        for si, s in enumerate(schemes):
            row = by.get((w, s))
            if row is None:
                continue
            v = row["walks_per_1k_refs"]
            x = centers[wi] - width / 2 + si * bar_w
            y = frame.y(v)
            canvas.rect(x, y, bar_w * 0.9, frame.y1 - y,
                        S.PALETTE[si % len(S.PALETTE)],
                        title=f"{w} {s}: {v:.3f} walks/1k refs")
        canvas.text(centers[wi], frame.y1 + 16, _short(w), size=10,
                    anchor="middle")
    _footnote(canvas, frame, skipped)
    return canvas.to_string(desc=f"vcoma_sweep miss_rates "
                                 f"sweep={fig.sweep}")


def render_miss_curves(fig, all_rows):
    rows, skipped = sweep_rows(all_rows, fig.sweep)
    _need(rows, fig)
    xknob = fig.x
    xs = sorted({r[xknob] for r in rows})
    if len(xs) < 2:
        raise RenderError(f"figure {fig.file}: knob {xknob!r} has "
                          f"{len(xs)} value(s); need an axis to plot")
    series_keys = _unique((r["workload"], r["scheme"]) for r in rows)
    by = {(r["workload"], r["scheme"], r[xknob]): r for r in rows}

    canvas = S.Svg(640, 400)
    title = fig.title or f"Translation misses per node vs {xknob}"
    frame = S.Frame(canvas, title, "misses / node", bottom=52)
    xpos = {v: math.log2(v) if v > 0 else 0.0 for v in xs}
    lo, hi = xpos[xs[0]], xpos[xs[-1]]
    span = (hi - lo) or 1.0

    def X(v):
        return frame.x0 + (xpos[v] - lo) / span * (frame.x1 - frame.x0)

    ymax = max((r["misses_per_node"] for r in rows), default=1.0)
    frame.set_yrange(0.0, max(ymax, 1e-9) * 1.08)
    frame.draw_y_axis()
    for v in xs:
        canvas.line(X(v), frame.y1, X(v), frame.y1 + 4, "#222222")
        canvas.text(X(v), frame.y1 + 16, S.tick_label(float(v)),
                    size=10, anchor="middle", fill="#444")
    canvas.text((frame.x0 + frame.x1) / 2, frame.y1 + 34, xknob,
                size=11, anchor="middle", fill="#444")

    legend = []
    for i, (w, s) in enumerate(series_keys):
        color = S.PALETTE[i % len(S.PALETTE)]
        pts = [(X(v), frame.y(by[(w, s, v)]["misses_per_node"]))
               for v in xs if (w, s, v) in by]
        if not pts:
            continue
        canvas.polyline(pts, color, width=1.8,
                        title=f"{w} {s}")
        for p in pts:
            canvas.circle(p[0], p[1], 2.4, color)
        legend.append((f"{_short(w)} {s}", color))
    frame.legend(legend)
    _footnote(canvas, frame, skipped)
    return canvas.to_string(desc=f"vcoma_sweep miss_curves "
                                 f"sweep={fig.sweep} x={xknob}")


def render_pressure(fig, all_rows):
    rows, skipped = sweep_rows(all_rows, fig.sweep)
    _need(rows, fig)
    scheme = fig.scheme or "V-COMA"
    rows = [r for r in rows if r["scheme"] == scheme]
    if not rows:
        raise RenderError(f"figure {fig.file}: no rows under scheme "
                          f"{scheme!r}")
    workloads = _unique(r["workload"] for r in rows)
    by = {r["workload"]: r for r in rows}

    canvas = S.Svg(640, 400)
    title = fig.title or f"Memory-pressure profile ({scheme})"
    frame = S.Frame(canvas, title, "relative pressure", bottom=52)
    ymax = 0.0
    for r in rows:
        profile = r.get("pressure_profile") or []
        if profile:
            ymax = max(ymax, max(profile))
    frame.set_yrange(0.0, max(ymax, 1e-9) * 1.08)
    frame.draw_y_axis()
    canvas.text((frame.x0 + frame.x1) / 2, frame.y1 + 30,
                "global page set (sorted rank)", size=11,
                anchor="middle", fill="#444")

    legend = []
    for i, w in enumerate(workloads):
        profile = by[w].get("pressure_profile") or []
        if not profile:
            continue
        color = S.PALETTE[i % len(S.PALETTE)]
        n = len(profile)
        pts = [(frame.x0 + (frame.x1 - frame.x0) * (j / max(1, n - 1)),
                frame.y(v))
               for j, v in enumerate(profile)]
        canvas.polyline(pts, color, width=1.5, title=_short(w))
        legend.append((_short(w), color))
    frame.legend(legend)
    _footnote(canvas, frame, skipped)
    return canvas.to_string(desc=f"vcoma_sweep pressure "
                                 f"sweep={fig.sweep} scheme={scheme}")


RENDERERS = {
    "exec_breakdown": render_exec_breakdown,
    "miss_rates": render_miss_rates,
    "miss_curves": render_miss_curves,
    "pressure": render_pressure,
}


def render_figure(fig, rows):
    """One figure declaration -> SVG text."""
    return RENDERERS[fig.type](fig, rows)


def render_figures(spec, rows, out_dir, log=None):
    """Render every declared figure into @out_dir; returns paths."""
    say = log or (lambda _msg: None)
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for fig in spec.figures:
        text = render_figure(fig, rows)
        path = os.path.join(out_dir, fig.file)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        say(f"wrote {path} ({len(text)} bytes)")
        paths.append(path)
    return paths
