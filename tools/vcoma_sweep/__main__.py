"""CLI: python3 -m vcoma_sweep <command> ...

Commands:

  run SPEC        expand -> submit -> collect -> render -> dashboard
  expand SPEC     print the expanded config list (pure dry run)
  collect SPEC    re-collect an existing JSONL into results.json
  render SPEC     re-render figures from an existing results.json
  dashboard       build the BENCH_*.json history dashboard alone
  check-stats     (vcoma_sweep.checks.stats -- ex check_stats_json.py)
  check-perf      (vcoma_sweep.checks.perf -- ex check_perf_trajectory.py)

`run` is the push-button paper pipeline:

  python3 -m vcoma_sweep run specs/paper_grid.json --backend direct
  python3 -m vcoma_sweep run specs/paper_grid.json --backend farm \\
      --socket tcp:127.0.0.1:7700

Spec paths resolve literally first, then against the stock specs
shipped in vcoma_sweep/specs/. Everything lands in --out-dir
(default sweep_out/<spec name>/): results.jsonl (byte-identical
across backends), results.json (the normalized table), the declared
fig*.svg files and dashboard.html.
"""

import argparse
import os
import sys

from . import collect as C
from . import dashboard as D
from . import render as R
from . import submit as B
from .checks import perf as check_perf
from .checks import stats as check_stats
from .spec import SpecError, load_spec


def say(msg):
    print(f"vcoma_sweep: {msg}", file=sys.stderr)


def die(msg):
    print(f"vcoma_sweep: error: {msg}", file=sys.stderr)
    sys.exit(1)


def add_backend_flags(ap):
    ap.add_argument("--backend", default="direct",
                    choices=list(B.BACKENDS),
                    help="how to run the simulations (default direct)")
    ap.add_argument("--socket", default=None,
                    help="daemon/farm endpoint (service/farm backends): "
                         "socket path or tcp:HOST:PORT")
    ap.add_argument("--client", default=None,
                    help="vcoma_client binary (default: $VCOMA_CLIENT "
                         "or the build tree)")
    ap.add_argument("--retries", type=int, default=None,
                    help="farm backend: per-config retry budget")
    ap.add_argument("--request-timeout-ms", type=int, default=None,
                    help="farm backend: per-request I/O deadline")


def out_dir_for(args, spec):
    return args.out_dir or os.path.join("sweep_out", spec.name)


def backend_options(args):
    if args.backend in ("service", "farm") and not args.socket:
        die(f"--backend {args.backend} needs --socket")
    return B.Options(backend=args.backend, client=args.client,
                     socket=args.socket, retries=args.retries,
                     request_timeout_ms=args.request_timeout_ms)


def cmd_expand(args):
    spec = load_spec(args.spec)
    configs = spec.expand()
    options = backend_options(args)
    for line in B.dry_run_lines(configs, options):
        print(line)
    say(f"spec {spec.name!r}: {len(configs)} config(s), "
        f"{len(spec.figures)} figure(s)")


def cmd_run(args):
    spec = load_spec(args.spec)
    configs = spec.expand()
    out_dir = out_dir_for(args, spec)
    options = backend_options(args)
    jsonl = os.path.join(out_dir, "results.jsonl")
    if args.dry_run:
        for line in B.dry_run_lines(configs, options, jsonl):
            print(line)
        return
    os.makedirs(out_dir, exist_ok=True)
    say(f"spec {spec.name!r}: {len(configs)} config(s) via "
        f"{args.backend}")
    result = B.submit(configs, jsonl, options, log=say,
                      strict=not args.keep_going)
    hits = sum(1 for v in result.cached.values() if v)
    say(f"{result.invocations} invocation(s), {hits} cache hit(s) "
        f"-> {jsonl}")
    rows = C.collect_jsonl(configs, jsonl, submit_result=result)
    results = os.path.join(out_dir, "results.json")
    C.write_results(rows, results, spec.name)
    say(f"collected {len(rows)} row(s) -> {results}")
    if not args.no_render and spec.figures:
        R.render_figures(spec, rows, out_dir, log=say)
    if not args.no_dashboard:
        bench_root = args.bench_root or "."
        _text, current, stale = D.build_dashboard(
            bench_root,
            baseline_path=args.baseline,
            out_path=os.path.join(out_dir, "dashboard.html"))
        say(f"dashboard: {current} bench report(s), {stale} stale "
            f"-> {os.path.join(out_dir, 'dashboard.html')}")


def cmd_collect(args):
    spec = load_spec(args.spec)
    configs = spec.expand()
    rows = C.collect_jsonl(configs, args.jsonl)
    C.write_results(rows, args.out, spec.name)
    say(f"collected {len(rows)} row(s) -> {args.out}")


def cmd_render(args):
    spec = load_spec(args.spec)
    doc = C.read_results(args.results)
    paths = R.render_figures(spec, doc["rows"], args.out_dir, log=say)
    say(f"{len(paths)} figure(s) -> {args.out_dir}")


def cmd_dashboard(args):
    _text, current, stale = D.build_dashboard(
        args.bench_root, baseline_path=args.baseline,
        out_path=args.out)
    say(f"dashboard: {current} bench report(s), {stale} stale "
        f"-> {args.out}")


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="vcoma_sweep",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="full pipeline: submit + collect "
                                   "+ render + dashboard")
    p.add_argument("spec")
    p.add_argument("--out-dir", default=None)
    p.add_argument("--dry-run", action="store_true",
                   help="print the expanded configs and the exact "
                        "client commands; submit nothing")
    p.add_argument("--keep-going", action="store_true",
                   help="tolerate per-config simulation failures "
                        "(rows become n/a*) instead of aborting")
    p.add_argument("--no-render", action="store_true")
    p.add_argument("--no-dashboard", action="store_true")
    p.add_argument("--bench-root", default=None,
                   help="tree to scan for BENCH_*.json (default .)")
    p.add_argument("--baseline", default=None,
                   help="perf baseline (default "
                        "<bench-root>/bench/perf_baseline.json)")
    add_backend_flags(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("expand", help="print the expanded config "
                                      "list and invocation plan")
    p.add_argument("spec")
    add_backend_flags(p)
    p.set_defaults(func=cmd_expand)

    p = sub.add_parser("collect", help="JSONL -> results.json")
    p.add_argument("spec")
    p.add_argument("--jsonl", required=True)
    p.add_argument("--out", default="results.json")
    p.set_defaults(func=cmd_collect)

    p = sub.add_parser("render", help="results.json -> fig*.svg")
    p.add_argument("spec")
    p.add_argument("--results", required=True)
    p.add_argument("--out-dir", default=".")
    p.set_defaults(func=cmd_render)

    p = sub.add_parser("dashboard", help="BENCH_*.json history -> "
                                         "dashboard.html")
    p.add_argument("--bench-root", default=".")
    p.add_argument("--baseline", default=None)
    p.add_argument("--out", default="dashboard.html")
    p.set_defaults(func=cmd_dashboard)

    # The folded-in CI validators keep their own argparse surfaces.
    known = {"run", "expand", "collect", "render", "dashboard"}
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "check-stats":
        return check_stats.main(argv[1:])
    if argv and argv[0] == "check-perf":
        return check_perf.main(argv[1:])
    if argv and argv[0] not in known and argv[0] not in (
            "-h", "--help"):
        die(f"unknown command {argv[0]!r} (run, expand, collect, "
            "render, dashboard, check-stats, check-perf)")

    args = ap.parse_args(argv)
    try:
        args.func(args)
    except (SpecError, C.CollectError, R.RenderError,
            B.SubmitError) as e:
        die(str(e))


if __name__ == "__main__":
    main()
