"""Collect: client JSONL (or sheet files) -> one normalized table.

The client's `--jsonl` output carries one record per submitted
config, in submission order; the spec expansion produced that same
order, so provenance is a positional join -- and each pairing is
cross-checked against the record's own workload/scheme echo, so a
reordered or truncated file fails loudly instead of mislabelling.

Each normalized row carries:

  * provenance: cache key, sweep id, workload, scheme, every knob,
    the cache-hit flag and the wall time of the invocation that
    carried it (when the submit layer observed them);
  * derived metrics: refs, exec time, the five cycle buckets,
    translation-structure accesses/misses, walks per 1k refs, miss
    percentage, misses per node, the xlat-over-stall share and the
    pressure profile (for Fig. 11).

Failed configs become rows with an "error" field and no metrics; the
renderers skip them (the same n/a* discipline the ASCII tables use).
"""

import json
import os

from .spec import SpecError


class CollectError(ValueError):
    """JSONL/sheets that do not line up with the spec expansion."""


def _reject_constant(token):
    raise ValueError(f"non-finite JSON constant {token!r} (RFC 8259 "
                     "forbids it)")


def _load_record(text, where):
    try:
        return json.loads(text, parse_constant=_reject_constant)
    except ValueError as e:
        raise CollectError(f"{where}: not strict JSON: {e}") from None


def _derive(row, rec, where):
    """Fill @row's metric columns from one stats record."""
    try:
        totals = rec["totals"]
        refs = totals["refs"]
        stall = totals["locStall"] + totals["remStall"]
        tlb = rec["tlb"]
        row.update({
            "num_nodes": rec["numNodes"],
            "exec_time": rec["execTime"],
            "refs": refs,
            "busy": totals["busy"],
            "sync": totals["sync"],
            "loc_stall": totals["locStall"],
            "rem_stall": totals["remStall"],
            "xlat_stall": totals["xlatStall"],
            "xlat_over_total_stall_pct": rec["xlatOverTotalStallPct"],
            "tlb_accesses": tlb["accesses"],
            "tlb_misses": tlb["misses"],
            "walks_per_1k_refs":
                1000.0 * tlb["misses"] / refs if refs else 0.0,
            "miss_pct":
                100.0 * tlb["misses"] / refs if refs else 0.0,
            "misses_per_node":
                tlb["misses"] / rec["numNodes"] if rec["numNodes"]
                else 0.0,
            "stall": stall,
            "pressure_profile": rec["pressureProfile"],
        })
    except (KeyError, TypeError) as e:
        raise CollectError(f"{where}: malformed stats record "
                           f"(missing {e})") from None


def _row_for(cfg, rec, where):
    row = cfg.provenance()
    if "error" in rec and "totals" not in rec:
        key = rec.get("key")
        if key is not None and key != cfg.key():
            raise CollectError(
                f"{where}: failed-config key {key!r} does not match "
                f"spec config {cfg.key()!r} -- the JSONL does not "
                "line up with the spec (stale file? reordered "
                "sweep?)")
        row["error"] = str(rec["error"])
        return row
    base = cfg.workload.partition(":")[0]
    echoed = rec.get("workload", "")
    if echoed.upper() not in (cfg.workload.upper(), base.upper()):
        raise CollectError(
            f"{where}: record workload {echoed!r} does not match spec "
            f"config {cfg.key()!r} -- the JSONL does not line up "
            "with the spec (stale file? reordered sweep?)")
    if rec.get("scheme") != cfg.scheme:
        raise CollectError(
            f"{where}: record scheme {rec.get('scheme')!r} != spec "
            f"scheme {cfg.scheme!r} for {cfg.key()}")
    _derive(row, rec, where)
    return row


def collect_jsonl(configs, jsonl_path, submit_result=None):
    """Join the JSONL file against the expanded configs."""
    try:
        with open(jsonl_path, "r", encoding="utf-8") as f:
            lines = [ln for ln in (raw.strip() for raw in f) if ln]
    except OSError as e:
        raise CollectError(f"cannot read {jsonl_path!r}: {e}") from None
    if len(lines) != len(configs):
        raise CollectError(
            f"{jsonl_path}: {len(lines)} record(s) for "
            f"{len(configs)} expanded config(s) -- remove stale "
            "output files and re-run the sweep")
    rows = []
    for i, (cfg, line) in enumerate(zip(configs, lines), start=1):
        where = f"{jsonl_path}:{i}"
        row = _row_for(cfg, _load_record(line, where), where)
        if submit_result is not None:
            row["cached"] = submit_result.cached.get(cfg.key())
            row["wall_ms"] = submit_result.wall_ms.get(cfg.key())
        rows.append(row)
    return rows


def collect_sheets(configs, sheet_dir):
    """Same table from a directory of per-config sheet files (the
    `--out-dir` interface, for sweeps run without `--jsonl`)."""
    rows = []
    for cfg in configs:
        path = os.path.join(sheet_dir, cfg.key() + ".json")
        if not os.path.exists(path):
            row = cfg.provenance()
            row["error"] = f"sheet {path} missing"
            rows.append(row)
            continue
        with open(path, "r", encoding="utf-8") as f:
            rows.append(_row_for(cfg, _load_record(f.read(), path),
                                 path))
    return rows


def write_results(rows, path, spec_name):
    """Persist the normalized table (results.json) -- the renderers'
    and any downstream analysis' single input."""
    doc = {"schema": 1, "spec": spec_name, "rows": rows}
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, sort_keys=True)
        f.write("\n")


def read_results(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = _load_record(f.read(), path)
    if doc.get("schema") != 1 or not isinstance(doc.get("rows"), list):
        raise CollectError(f"{path}: not a vcoma_sweep results table")
    return doc


def sweep_rows(rows, sweep_id):
    """The rows of one sweep, errors filtered out (and counted)."""
    mine = [r for r in rows if r.get("sweep") == sweep_id]
    good = [r for r in mine if "error" not in r]
    return good, len(mine) - len(good)


__all__ = ["CollectError", "SpecError", "collect_jsonl",
           "collect_sheets", "write_results", "read_results",
           "sweep_rows"]
