/**
 * @file
 * vcoma_served — the persistent simulation daemon.
 *
 * Listens on a Unix-domain socket, executes job requests through one
 * shared Runner (warm in-memory memo + disk cache across every
 * client), and sheds load explicitly when the bounded queue fills.
 *
 *   vcoma_served --socket /tmp/vcoma.sock
 *   vcoma_served --socket vcoma.sock --capacity 128 --workers 8
 *
 * Stops on a {"op":"shutdown"} request or SIGINT/SIGTERM; either way
 * queued jobs finish before exit (graceful drain).
 */

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "service/server.hh"

using namespace vcoma;

namespace
{

volatile std::sig_atomic_t signalled = 0;

void
onSignal(int)
{
    signalled = 1;
}

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: vcoma_served [options]\n"
        "  --socket PATH    Unix-domain socket path (default vcoma.sock)\n"
        "  --capacity N     job-queue capacity (default 64)\n"
        "  --workers N      executor threads (default $VCOMA_JOBS)\n"
        "  --cache-dir DIR  disk cache (default $VCOMA_CACHE_DIR or\n"
        "                   .vcoma_cache; honours $VCOMA_NO_CACHE and\n"
        "                   $VCOMA_CACHE_MAX_MB)\n"
        "  --help\n";
    std::exit(code);
}

} // namespace

int
main(int argc, char **argv)
try {
    ServiceConfig cfg;
    std::string cacheDir = Runner::defaultCacheDir();
    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            usage(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket")
            cfg.socketPath = value(i);
        else if (arg == "--capacity")
            cfg.queueCapacity = std::stoull(value(i));
        else if (arg == "--workers")
            cfg.workers = static_cast<unsigned>(std::stoul(value(i)));
        else if (arg == "--cache-dir")
            cacheDir = value(i);
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(2);
        }
    }

    Runner runner(cacheDir);
    ServiceServer server(runner, cfg);
    server.start();
    std::cout << "vcoma_served: listening on " << cfg.socketPath
              << " (capacity " << cfg.queueCapacity << ")"
              << std::endl;

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    // Signal handlers may only flip the flag; this poller turns it
    // into a graceful stop from a normal thread context.
    std::thread poller([&server] {
        while (!server.stopped()) {
            if (signalled) {
                server.requestStop();
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
    });

    server.waitUntilStopped();
    poller.join();
    std::cout << "vcoma_served: drained, exiting" << std::endl;
    return 0;
} catch (const std::exception &e) {
    std::cerr << e.what() << "\n";
    return 1;
}
