/**
 * @file
 * vcoma_served — the persistent simulation daemon, and (with --farm)
 * the fault-tolerant farm router in front of a fleet of them.
 *
 * Worker mode: listens on a Unix-domain socket or TCP endpoint,
 * executes job requests through one shared Runner (warm in-memory
 * memo + disk cache across every client), and sheds load explicitly
 * when the bounded queue fills. $VCOMA_CHAOS arms the chaos monkey
 * (drop/delay/SIGKILL) for failover testing — worker mode only; the
 * router is the recovery layer and stays sane.
 *
 *   vcoma_served --socket /tmp/vcoma.sock
 *   vcoma_served --listen tcp:127.0.0.1:7717 --capacity 128 --workers 8
 *
 * Farm mode: routes run/batch requests across worker endpoints by
 * config key on a consistent-hash ring, with heartbeat health checks
 * and failover (see service/farm.hh).
 *
 *   vcoma_served --listen tcp:127.0.0.1:7700 \
 *                --farm tcp:127.0.0.1:7701,tcp:127.0.0.1:7702
 *   VCOMA_FARM_WORKERS=a.sock,b.sock vcoma_served --farm env
 *
 * Stops on a {"op":"shutdown"} request or SIGINT/SIGTERM; either way
 * queued jobs finish before exit (graceful drain). A farm shutdown
 * also fans out to the workers.
 */

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "common/env.hh"
#include "service/farm.hh"
#include "service/server.hh"

using namespace vcoma;

namespace
{

volatile std::sig_atomic_t signalled = 0;

void
onSignal(int)
{
    signalled = 1;
}

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: vcoma_served [options]\n"
        "  --listen EP       endpoint: a Unix socket path or\n"
        "                    tcp:HOST:PORT (default vcoma.sock)\n"
        "  --socket EP       synonym for --listen\n"
        "  --farm EPS        route instead of simulate: comma-separated\n"
        "                    worker endpoints, or 'env' to read\n"
        "                    $VCOMA_FARM_WORKERS\n"
        "worker options:\n"
        "  --capacity N      job-queue capacity (default 64)\n"
        "  --workers N       executor threads (default $VCOMA_JOBS)\n"
        "  --cache-dir DIR   disk cache (default $VCOMA_CACHE_DIR or\n"
        "                    .vcoma_cache; honours $VCOMA_NO_CACHE and\n"
        "                    $VCOMA_CACHE_MAX_MB)\n"
        "  --preload         warm the in-memory memo from the disk\n"
        "                    cache at startup (or $VCOMA_PRELOAD=1)\n"
        "farm options:\n"
        "  --heartbeat-ms N  worker ping period (default 500, or\n"
        "                    $VCOMA_HEARTBEAT_MS)\n"
        "  --miss-threshold N  consecutive missed heartbeats before a\n"
        "                    worker is evicted (default 3)\n"
        "shared options:\n"
        "  --io-timeout-ms N per-connection I/O deadline (default\n"
        "                    30000; 0 = none)\n"
        "  --help\n";
    std::exit(code);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Park until a shutdown request or a signal stops @p server. */
void
serveUntilStopped(LineServer &server)
{
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    // Signal handlers may only flip the flag; this poller turns it
    // into a graceful stop from a normal thread context.
    std::thread poller([&server] {
        while (!server.stopped()) {
            if (signalled) {
                server.requestStop();
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
    });
    server.waitUntilStopped();
    poller.join();
}

} // namespace

int
main(int argc, char **argv)
try {
    ServiceConfig cfg;
    FarmConfig fcfg;
    std::string endpoint = cfg.endpoint;
    std::string farmWorkers;
    std::string cacheDir = Runner::defaultCacheDir();
    bool preload = envTruthy("VCOMA_PRELOAD");
    fcfg.heartbeatMs = [] {
        const char *s = std::getenv("VCOMA_HEARTBEAT_MS");
        return s && *s ? std::strtoull(s, nullptr, 10)
                       : FarmConfig{}.heartbeatMs;
    }();

    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            usage(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" || arg == "--listen")
            endpoint = value(i);
        else if (arg == "--farm")
            farmWorkers = value(i);
        else if (arg == "--capacity")
            cfg.queueCapacity = std::stoull(value(i));
        else if (arg == "--workers")
            cfg.workers = static_cast<unsigned>(std::stoul(value(i)));
        else if (arg == "--cache-dir")
            cacheDir = value(i);
        else if (arg == "--preload")
            preload = true;
        else if (arg == "--heartbeat-ms")
            fcfg.heartbeatMs = std::stoull(value(i));
        else if (arg == "--miss-threshold")
            fcfg.missThreshold =
                static_cast<unsigned>(std::stoul(value(i)));
        else if (arg == "--io-timeout-ms")
            cfg.ioTimeoutMs = fcfg.ioTimeoutMs = std::stoi(value(i));
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(2);
        }
    }

    if (!farmWorkers.empty()) {
        // Farm router: no Runner, no chaos — just routing.
        if (farmWorkers == "env") {
            const char *s = std::getenv("VCOMA_FARM_WORKERS");
            farmWorkers = s ? s : "";
        }
        fcfg.endpoint = endpoint;
        fcfg.workers = splitList(farmWorkers);
        if (fcfg.workers.empty()) {
            std::cerr << "--farm needs at least one worker endpoint "
                         "(or $VCOMA_FARM_WORKERS)\n";
            return 2;
        }
        FarmRouter router(fcfg);
        router.startFarm();
        std::cout << "vcoma_served: farm on " << router.boundEndpoint()
                  << " routing " << fcfg.workers.size()
                  << " worker(s), heartbeat " << fcfg.heartbeatMs
                  << " ms" << std::endl;
        serveUntilStopped(router);
        std::cout << "vcoma_served: farm drained, exiting"
                  << std::endl;
        return 0;
    }

    cfg.endpoint = endpoint;
    cfg.chaos = chaosSpecFromEnv();
    if (cfg.chaos.enabled)
        std::cout << "vcoma_served: CHAOS armed (" <<
            cfg.chaos.describe() << ")" << std::endl;

    Runner runner(cacheDir);
    if (preload) {
        const std::size_t warmed = runner.preloadCache();
        std::cout << "vcoma_served: preloaded " << warmed
                  << " cached result(s)" << std::endl;
    }
    ServiceServer server(runner, cfg);
    server.start();
    std::cout << "vcoma_served: listening on " << server.boundEndpoint()
              << " (capacity " << cfg.queueCapacity << ")"
              << std::endl;

    serveUntilStopped(server);
    std::cout << "vcoma_served: drained, exiting" << std::endl;
    return 0;
} catch (const std::exception &e) {
    std::cerr << e.what() << "\n";
    return 1;
}
