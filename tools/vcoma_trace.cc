/**
 * @file
 * vcoma_trace — inspect, validate and convert reference traces.
 *
 * The packed binary format (mmapped by ReplayWorkload and the
 * "TRACE:<path>" workload spelling) is write-once and checksummed;
 * this tool is the doorway for streams that were captured elsewhere
 * or written by hand in the text grammar of sim/trace.hh:
 *
 *   vcoma_trace inspect  trace.vctrace
 *   vcoma_trace validate trace.vctrace
 *   vcoma_trace convert  refs.txt trace.vctrace --name KVTRACE
 *   vcoma_trace dump     trace.vctrace > refs.txt
 *
 * validate exits 0 on a fully valid trace and 1 otherwise, so CI
 * jobs can gate on it. convert reads "-" as stdin.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "sim/memref_pack.hh"
#include "sim/trace_convert.hh"

using namespace vcoma;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: vcoma_trace <command> [args]\n"
        "  inspect  FILE              print header + per-thread counts\n"
        "  validate FILE              full validation; exit 0 iff valid\n"
        "  convert  IN OUT [options]  text trace -> packed trace\n"
        "     --name NAME             workload name stored in the header\n"
        "                             (default TRACE)\n"
        "     --key KEY               provenance key stored in the header\n"
        "                             (default external)\n"
        "     IN may be '-' for stdin\n"
        "  dump     FILE              packed trace -> text trace on stdout\n"
        "  --help\n";
    std::exit(code);
}

void
printSummary(const PackedTraceSummary &s)
{
    std::cout << "workload:     " << s.workloadName << "\n"
              << "parameters:   " << s.parameters << "\n"
              << "key:          " << s.key << "\n"
              << "threads:      " << s.threads << "\n"
              << "events:       " << s.totalEvents << "\n"
              << "shared bytes: " << s.sharedBytes << "\n";
}

int
cmdInspect(const std::string &path)
{
    const PackedTraceSummary s = summarizePackedTrace(path);
    printSummary(s);
    for (unsigned t = 0; t < s.threads; ++t) {
        std::cout << "  thread " << t << ": "
                  << s.perThreadEvents[t] << " events\n";
    }
    return 0;
}

int
cmdValidate(const std::string &path)
{
    const PackedTraceSummary s = summarizePackedTrace(path);
    printSummary(s);
    std::cout << "valid\n";
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    if (argc < 2)
        usage(2);
    const std::string inPath = argv[0];
    const std::string outPath = argv[1];
    std::string name = "TRACE";
    std::string key = "external";
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--name" && i + 1 < argc) {
            name = argv[++i];
        } else if (arg == "--key" && i + 1 < argc) {
            key = argv[++i];
        } else {
            std::cerr << "vcoma_trace: unknown convert option '" << arg
                      << "'\n";
            usage(2);
        }
    }
    std::uint64_t events = 0;
    if (inPath == "-") {
        events = convertTextTraceToPacked(std::cin, outPath, name, key);
    } else {
        std::ifstream in(inPath);
        if (!in) {
            std::cerr << "vcoma_trace: cannot open '" << inPath
                      << "'\n";
            return 1;
        }
        events = convertTextTraceToPacked(in, outPath, name, key);
    }
    std::cout << "wrote " << outPath << " (" << events
              << " events)\n";
    return 0;
}

int
cmdDump(const std::string &path)
{
    dumpPackedTraceAsText(path, std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0) {
        usage(argc < 2 ? 2 : 0);
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "inspect" && argc == 3)
            return cmdInspect(argv[2]);
        if (cmd == "validate" && argc == 3)
            return cmdValidate(argv[2]);
        if (cmd == "convert")
            return cmdConvert(argc - 2, argv + 2);
        if (cmd == "dump" && argc == 3)
            return cmdDump(argv[2]);
        usage(2);
    } catch (const std::exception &e) {
        std::cerr << "vcoma_trace: " << e.what() << "\n";
        return 1;
    }
}
