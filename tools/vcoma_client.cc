/**
 * @file
 * vcoma_client — command-line client of the vcoma_served daemon (or
 * the farm router; same protocol, either a socket path or
 * tcp:host:port).
 *
 *   vcoma_client ping
 *   vcoma_client run --workload FFT --scheme VCOMA --out fft.json
 *   vcoma_client sweep --workloads RADIX,FFT --schemes L0,VCOMA \
 *                      --scale 0.1 --out-dir sheets/
 *   vcoma_client sweep --farm --socket tcp:127.0.0.1:7700 \
 *                      --workloads RADIX,FFT --out-dir sheets/
 *   vcoma_client direct --workloads RADIX,FFT --schemes L0,VCOMA \
 *                      --scale 0.1 --out-dir direct/   # no daemon
 *   vcoma_client stats
 *   vcoma_client shutdown
 *
 * `direct` runs the same configs through a local Runner and writes
 * sheets with the same names and bytes the daemon would return, so a
 * served sweep can be byte-compared against ground truth (`diff -r`).
 * Sheets are the exact writeRunStatsJson() output plus one newline.
 *
 * `sweep --farm` submits configs one at a time through
 * runResilient() — bounded retries, exponential backoff with jitter,
 * reconnect on a lost connection — so the sweep rides out worker
 * deaths and router failovers and still produces the same bytes.
 *
 * `sweep`/`direct --jsonl FILE` additionally append one stats record
 * per config — the exact writeRunStatsJson() bytes, i.e. the same
 * schema $VCOMA_STATS_JSON produces — in submission order, so
 * machine consumers (tools/vcoma_sweep) read one stable JSONL
 * interface instead of scraping sheet files. A config that fails
 * appends a {"schema":1,"key":...,"error":...} placeholder line so
 * the file always lines up 1:1 with the submitted configs. The file
 * is appended to (like $VCOMA_STATS_JSON), never truncated; remove
 * it first for a fresh sweep.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "service/client.hh"
#include "service/wire.hh"
#include "sim/run_stats_json.hh"

using namespace vcoma;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: vcoma_client [--socket PATH] COMMAND [options]\n"
        "commands:\n"
        "  ping                       liveness probe\n"
        "  run [config] [--out FILE]  submit one job, print/write sheet\n"
        "  sweep [sweep] --out-dir D  submit a batch, one sheet per file\n"
        "  direct [sweep] --out-dir D same sheets via a local Runner\n"
        "  stats                      print the /stats reply\n"
        "  shutdown                   ask the daemon to drain and exit\n"
        "config options (run):\n"
        "  --workload NAME --scheme S --entries N --assoc N --nodes N\n"
        "  --scale X --seed N --untimed --no-wback-tlb --raytrace-v2\n"
        "  --am-assoc N --xlat-penalty N --inject-fault CLASS\n"
        "sweep options (sweep/direct): config options, plus\n"
        "  --workloads A,B,...        instead of --workload\n"
        "  --schemes S1,S2,...        instead of --scheme\n"
        "  --jsonl FILE               append one stats record per\n"
        "                             config (VCOMA_STATS_JSON schema,\n"
        "                             submission order); may replace\n"
        "                             --out-dir\n"
        "  --farm                     submit configs one at a time with\n"
        "                             retry/backoff (rides out worker\n"
        "                             deaths behind a farm router)\n"
        "shared options:\n"
        "  --socket EP                daemon endpoint: socket path or\n"
        "                             tcp:HOST:PORT (default vcoma.sock)\n"
        "  --priority N               larger runs first (default 0)\n"
        "  --deadline-ms N            shed if still queued after N ms\n"
        "  --timeout-ms N             connect timeout (default 10000)\n"
        "  --request-timeout-ms N     per-request I/O deadline; a hung\n"
        "                             server fails typed instead of\n"
        "                             hanging (default 300000, or\n"
        "                             $VCOMA_REQUEST_TIMEOUT_MS)\n"
        "  --retries N                extra attempts under --farm\n"
        "                             (default 4, or $VCOMA_RETRY_MAX)\n"
        "  --retry-base-ms N          backoff base (default 50)\n"
        "  --retry-cap-ms N           backoff cap (default 2000)\n";
    std::exit(code);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

struct Options
{
    std::string socket = "vcoma.sock";
    std::string command;
    std::string outFile;
    std::string outDir;
    std::string jsonlFile;
    std::vector<std::string> workloads{"RADIX"};
    std::vector<std::string> schemes{"VCOMA"};
    ExperimentConfig base;
    int priority = 0;
    std::uint64_t deadlineMs = 0;
    int timeoutMs = 10000;
    bool farm = false;
    ClientOptions client = ServiceClient::optionsFromEnv();
};

/** One connection configured from the command line + environment. */
ServiceClient
connectTo(const Options &opt)
{
    ClientOptions copts = opt.client;
    copts.connectTimeoutMs = opt.timeoutMs;
    return ServiceClient(opt.socket, copts);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            usage(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket")
            opt.socket = value(i);
        else if (arg == "--out")
            opt.outFile = value(i);
        else if (arg == "--out-dir")
            opt.outDir = value(i);
        else if (arg == "--jsonl")
            opt.jsonlFile = value(i);
        else if (arg == "--workload")
            opt.workloads = {value(i)};
        else if (arg == "--workloads")
            opt.workloads = splitList(value(i));
        else if (arg == "--scheme")
            opt.schemes = {value(i)};
        else if (arg == "--schemes")
            opt.schemes = splitList(value(i));
        else if (arg == "--entries")
            opt.base.tlbEntries =
                static_cast<unsigned>(std::stoul(value(i)));
        else if (arg == "--assoc")
            opt.base.tlbAssoc =
                static_cast<unsigned>(std::stoul(value(i)));
        else if (arg == "--nodes")
            opt.base.nodes =
                static_cast<unsigned>(std::stoul(value(i)));
        else if (arg == "--scale")
            opt.base.scale = std::stod(value(i));
        else if (arg == "--seed")
            opt.base.seed = std::stoull(value(i));
        else if (arg == "--untimed")
            opt.base.timedTranslation = false;
        else if (arg == "--timed")
            opt.base.timedTranslation = true;
        else if (arg == "--no-wback-tlb")
            opt.base.writebacksAccessTlb = false;
        else if (arg == "--raytrace-v2")
            opt.base.raytraceV2 = true;
        else if (arg == "--am-assoc")
            opt.base.amAssoc =
                static_cast<unsigned>(std::stoul(value(i)));
        else if (arg == "--xlat-penalty")
            opt.base.xlatPenalty = std::stoull(value(i));
        else if (arg == "--inject-fault")
            opt.base.injectFault = value(i);
        else if (arg == "--priority")
            opt.priority = std::stoi(value(i));
        else if (arg == "--deadline-ms")
            opt.deadlineMs = std::stoull(value(i));
        else if (arg == "--timeout-ms")
            opt.timeoutMs = std::stoi(value(i));
        else if (arg == "--request-timeout-ms")
            opt.client.requestTimeoutMs = std::stoi(value(i));
        else if (arg == "--retries")
            opt.client.maxRetries =
                static_cast<unsigned>(std::stoul(value(i)));
        else if (arg == "--retry-base-ms")
            opt.client.backoffBaseMs = std::stoull(value(i));
        else if (arg == "--retry-cap-ms")
            opt.client.backoffCapMs = std::stoull(value(i));
        else if (arg == "--farm")
            opt.farm = true;
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(2);
        } else if (opt.command.empty()) {
            opt.command = arg;
        } else {
            std::cerr << "unexpected argument '" << arg << "'\n";
            usage(2);
        }
    }
    if (opt.command.empty()) {
        std::cerr << "missing command\n";
        usage(2);
    }
    return opt;
}

std::vector<ExperimentConfig>
sweepConfigs(const Options &opt)
{
    std::vector<ExperimentConfig> cfgs;
    for (const std::string &w : opt.workloads) {
        for (const std::string &s : opt.schemes) {
            ExperimentConfig cfg = opt.base;
            cfg.workload = w;
            cfg.scheme = parseSchemeToken(s);
            cfgs.push_back(cfg);
        }
    }
    return cfgs;
}

void
writeSheet(const std::string &path, const std::string &statsJson)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write '" << path << "'\n";
        std::exit(1);
    }
    out << statsJson << "\n";
}

/**
 * Machine-readable sweep output: one JSONL line per submitted config,
 * in submission order, appended (never truncated) so several client
 * invocations can share one file. Successful configs append the
 * exact stats-sheet bytes; failures append a placeholder line so the
 * file always aligns 1:1 with the configs.
 */
class JsonlSink
{
  public:
    explicit JsonlSink(const std::string &path)
    {
        if (path.empty())
            return;
        out_.open(path, std::ios::app);
        if (!out_) {
            std::cerr << "cannot append to '" << path << "'\n";
            std::exit(1);
        }
    }

    void
    record(const std::string &statsJson)
    {
        if (out_.is_open())
            out_ << statsJson << "\n";
    }

    void
    failure(const std::string &key, const std::string &error)
    {
        if (out_.is_open())
            out_ << "{\"schema\":1,\"key\":\"" << jsonEscape(key)
                 << "\",\"error\":\"" << jsonEscape(error) << "\"}\n";
    }

  private:
    std::ofstream out_;
};

/** Per-config provenance line (stderr; stdout stays machine-clean). */
void
reportConfig(const std::string &key, bool cached)
{
    std::cerr << "vcoma_client: " << key
              << (cached ? " (cached)" : " (simulated)") << "\n";
}

int
runOne(Options &opt)
{
    ExperimentConfig cfg = opt.base;
    cfg.workload = opt.workloads.at(0);
    cfg.scheme = parseSchemeToken(opt.schemes.at(0));
    ServiceClient client = connectTo(opt);
    const ServiceClient::Outcome out =
        client.run(cfg, opt.priority, opt.deadlineMs);
    if (!out.ok) {
        std::cerr << "vcoma_client: "
                  << (out.shed      ? "shed: "
                      : out.timedOut ? "timed out: "
                                     : "failed: ")
                  << out.error << "\n";
        return out.shed ? 3 : 1;
    }
    if (!opt.outFile.empty())
        writeSheet(opt.outFile, out.statsJson);
    else
        std::cout << out.statsJson << "\n";
    std::cerr << "vcoma_client: " << cfg.key()
              << (out.cached ? " (cached)" : " (simulated)") << "\n";
    return 0;
}

int
runSweep(Options &opt)
{
    if (opt.outDir.empty() && opt.jsonlFile.empty()) {
        std::cerr << "sweep needs --out-dir and/or --jsonl\n";
        usage(2);
    }
    if (!opt.outDir.empty())
        std::filesystem::create_directories(opt.outDir);
    JsonlSink jsonl(opt.jsonlFile);
    const std::vector<ExperimentConfig> cfgs = sweepConfigs(opt);
    ServiceClient client = connectTo(opt);
    std::vector<ServiceClient::Outcome> outcomes;
    if (opt.farm) {
        // One resilient submission per config: a lost connection or
        // timeout retries with backoff, so a worker SIGKILLed
        // mid-sweep costs a resubmit, not the sweep.
        outcomes.reserve(cfgs.size());
        for (const ExperimentConfig &cfg : cfgs)
            outcomes.push_back(client.runResilient(
                cfg, opt.priority, opt.deadlineMs));
    } else {
        outcomes = client.batch(cfgs, opt.priority, opt.deadlineMs);
    }
    int rc = 0;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const auto &out = outcomes.at(i);
        if (!out.ok) {
            std::cerr << "vcoma_client: " << cfgs[i].key() << ": "
                      << (out.shed      ? "shed: "
                          : out.timedOut ? "timed out: "
                                         : "failed: ")
                      << out.error << "\n";
            jsonl.failure(cfgs[i].key(), out.error);
            rc = out.shed ? 3 : 1;
            continue;
        }
        reportConfig(cfgs[i].key(), out.cached);
        jsonl.record(out.statsJson);
        if (!opt.outDir.empty())
            writeSheet(opt.outDir + "/" + cfgs[i].key() + ".json",
                       out.statsJson);
    }
    std::cerr << "vcoma_client: " << cfgs.size() << " config(s) -> "
              << (opt.outDir.empty() ? opt.jsonlFile : opt.outDir)
              << "\n";
    return rc;
}

int
runDirect(Options &opt)
{
    if (opt.outDir.empty() && opt.jsonlFile.empty()) {
        std::cerr << "direct needs --out-dir and/or --jsonl\n";
        usage(2);
    }
    if (!opt.outDir.empty())
        std::filesystem::create_directories(opt.outDir);
    JsonlSink jsonl(opt.jsonlFile);
    Runner runner;
    int rc = 0;
    for (const ExperimentConfig &cfg : sweepConfigs(opt)) {
        bool fresh = false;
        const RunStats *stats = runner.tryRun(cfg, &fresh);
        if (!stats) {
            std::cerr << "vcoma_client: " << cfg.key() << ": failed: "
                      << runner.failureMessage(cfg.key()) << "\n";
            jsonl.failure(cfg.key(),
                          runner.failureMessage(cfg.key()));
            rc = 1;
            continue;
        }
        reportConfig(cfg.key(), !fresh);
        std::ostringstream sheet;
        writeRunStatsJson(sheet, *stats);
        jsonl.record(sheet.str());
        if (!opt.outDir.empty())
            writeSheet(opt.outDir + "/" + cfg.key() + ".json",
                       sheet.str());
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
try {
    Options opt = parse(argc, argv);

    if (opt.command == "ping") {
        ServiceClient client = connectTo(opt);
        if (!client.ping()) {
            std::cerr << "vcoma_client: no pong\n";
            return 1;
        }
        std::cout << "pong\n";
        return 0;
    }
    if (opt.command == "run")
        return runOne(opt);
    if (opt.command == "sweep")
        return runSweep(opt);
    if (opt.command == "direct")
        return runDirect(opt);
    if (opt.command == "stats") {
        ServiceClient client = connectTo(opt);
        std::cout << client.statsLine() << "\n";
        return 0;
    }
    if (opt.command == "shutdown") {
        ServiceClient client = connectTo(opt);
        if (!client.shutdown()) {
            std::cerr << "vcoma_client: shutdown not acknowledged\n";
            return 1;
        }
        std::cout << "draining\n";
        return 0;
    }
    std::cerr << "unknown command '" << opt.command << "'\n";
    usage(2);
} catch (const std::exception &e) {
    std::cerr << e.what() << "\n";
    return 1;
}
