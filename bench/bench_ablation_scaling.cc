/**
 * @file
 * Ablation: the DLB sharing effect vs machine size (Section 6's
 * scaling argument) — per-reference DLB miss rates should fall as
 * nodes are added, while private L3 TLBs do not improve.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("ablation_scaling");
    const double scale = vcoma_bench::banner("Ablation (scaling)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::dlbScalingConfigs(scale));
    sink(vcoma::dlbScaling(runner, scale));
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
