/**
 * @file
 * Reproduces Table 2: TLB/DLB miss rates per processor reference (%)
 * for sizes 8/32/128 under all five translation schemes.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    const double scale = vcoma_bench::banner("Table 2 (miss rates)");
    vcoma::Runner runner;
    sink(vcoma::table2MissRates(runner, scale));
    vcoma_bench::footer(runner);
    return 0;
}
