/**
 * @file
 * Reproduces Table 2: TLB/DLB miss rates per processor reference (%)
 * for sizes 8/32/128 under all five translation schemes.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("table2_miss_rates");
    const double scale = vcoma_bench::banner("Table 2 (miss rates)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::missStudySweepConfigs(scale));
    runner.runAll(vcoma::missStudySweepConfigs(
        scale, vcoma::datacenterBenchmarks()));
    sink(vcoma::table2MissRates(runner, scale));
    sink(vcoma::table2MissRates(runner, scale,
                                vcoma::datacenterBenchmarks(),
                                "datacenter"));
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
