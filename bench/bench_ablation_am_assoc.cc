/**
 * @file
 * Ablation: attraction-memory associativity — each global page set
 * holds P*K pages, so lower associativity stresses the injection
 * protocol and the page daemon (Section 6).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("ablation_am_assoc");
    const double scale = vcoma_bench::banner("Ablation (AM associativity)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::amAssociativityConfigs(scale));
    sink(vcoma::amAssociativity(runner, scale));
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
