/**
 * @file
 * Reproduces Figure 9: direct-mapped vs fully associative TLB/DLB
 * miss counts per node across the size sweep.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("fig9_direct_mapped");
    const double scale = vcoma_bench::banner("Figure 9 (direct mapped)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::missStudySweepConfigs(scale));
    for (const auto &table : vcoma::figure9DirectMapped(runner, scale))
        sink(table);
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
