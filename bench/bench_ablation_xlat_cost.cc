/**
 * @file
 * Ablation: translation-miss service-time sensitivity. L0-TLB pays
 * the penalty on the critical path of every miss; V-COMA's shared
 * DLB misses so rarely that execution time barely moves.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    const double scale = vcoma_bench::banner("Ablation (miss service time)");
    vcoma::Runner runner;
    sink(vcoma::translationCostSensitivity(runner, scale));
    vcoma_bench::footer(runner);
    return 0;
}
