/**
 * @file
 * Ablation: translation-miss service-time sensitivity. L0-TLB pays
 * the penalty on the critical path of every miss; V-COMA's shared
 * DLB misses so rarely that execution time barely moves.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("ablation_xlat_cost");
    const double scale = vcoma_bench::banner("Ablation (miss service time)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::xlatCostConfigs(scale));
    sink(vcoma::translationCostSensitivity(runner, scale));
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
