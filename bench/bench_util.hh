/**
 * @file
 * Shared scaffolding for the per-table/figure benchmark binaries:
 * a Runner wired to the environment ($VCOMA_SCALE problem scale,
 * $VCOMA_CACHE_DIR / $VCOMA_NO_CACHE result cache, $VCOMA_JOBS
 * parallel workers) and a banner.
 *
 * The banner deliberately never prints the effective job count:
 * bench output must stay byte-identical whatever VCOMA_JOBS is.
 */

#ifndef VCOMA_BENCH_BENCH_UTIL_HH
#define VCOMA_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "harness/experiments.hh"
#include "harness/runner.hh"

namespace vcoma_bench
{

/**
 * Build provenance stamped into every report (set by the build
 * system from `git describe --always --dirty`; "unknown" outside a
 * git checkout). The dashboard keys its staleness rule on schema +
 * this stamp, so a report from an old build can be flagged instead
 * of misplotted.
 */
#ifndef VCOMA_GIT_DESCRIBE
#define VCOMA_GIT_DESCRIBE "unknown"
#endif

/**
 * Machine-readable run report: every bench binary writes
 * BENCH_<name>.json next to its working directory so CI can collect
 * wall time and executed-simulation counts without scraping the
 * (human-oriented) table output. Writing a side file never perturbs
 * stdout, so the byte-identity guarantee on table output holds.
 *
 * Report format versions: schema 1 had no provenance; schema 2 adds
 * the format version discipline itself plus the `git` build stamp.
 * Bump the schema whenever a field changes meaning, so downstream
 * consumers (tools/vcoma_sweep's dashboard, CI validators) can
 * refuse stale files.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name)
        : name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {
    }

    /** Attach a named scalar to the report. */
    void
    metric(const std::string &key, double value)
    {
        metrics_.emplace_back(key, value);
    }

    /**
     * Write BENCH_<name>.json. Pass the Runner when the bench has one
     * so the report carries its executed/failure counts; pass nullptr
     * for benches without a Runner (the micro-benchmarks).
     */
    void
    finish(const vcoma::Runner *runner) const
    {
        const double wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start_)
                .count();
        std::ofstream out("BENCH_" + name_ + ".json");
        if (!out)
            return;  // reports are best-effort; never fail the bench
        out << "{\"bench\":\"" << vcoma::jsonEscape(name_)
            << "\",\"schema\":2,\"git\":\""
            << vcoma::jsonEscape(VCOMA_GIT_DESCRIBE)
            << "\",\"wall_ms\":" << wallMs
            << ",\"executed\":" << (runner ? runner->executed() : 0)
            << ",\"failures\":"
            << (runner ? runner->failures().size() : 0);
        if (!metrics_.empty()) {
            out << ",\"metrics\":{";
            bool first = true;
            for (const auto &[key, value] : metrics_) {
                // inf/nan are not JSON; null keeps the file parsable.
                out << (first ? "" : ",") << "\""
                    << vcoma::jsonEscape(key) << "\":";
                if (std::isfinite(value))
                    out << value;
                else
                    out << "null";
                first = false;
            }
            out << "}";
        }
        out << "}\n";
    }

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    std::vector<std::pair<std::string, double>> metrics_;
};

/** Print the standard banner and return the configured scale. */
inline double
banner(const char *what)
{
    const double scale = vcoma::Runner::envScale();
    std::cout << "V-COMA reproduction - " << what << "\n"
              << "(problem scale " << scale
              << "; set VCOMA_SCALE to change, VCOMA_SCALE=16 "
                 "approaches the paper's data sets; VCOMA_JOBS "
                 "bounds the parallel workers)\n\n";
    return scale;
}

/**
 * Output sink: renders tables as aligned text, or as CSV when the
 * binary is invoked with --csv.
 */
class TableSink
{
  public:
    TableSink(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            if (std::string_view(argv[i]) == "--csv")
                csv_ = true;
        }
    }

    void
    operator()(const vcoma::Table &table) const
    {
        if (csv_)
            table.printCsv(std::cout);
        else
            table.print(std::cout);
    }

    bool csv() const { return csv_; }

  private:
    bool csv_ = false;
};

inline void
footer(const vcoma::Runner &runner)
{
    // Only mention failures when there are any: with a clean sweep
    // the output must stay byte-identical to older builds.
    const auto failures = runner.failures();
    if (!failures.empty()) {
        std::cout << "[" << failures.size()
                  << " configuration(s) failed to simulate; their "
                     "table cells read n/a*. Set VCOMA_STRICT=1 to "
                     "fail fast instead.]\n";
        for (const auto &f : failures)
            std::cout << "  " << f.error << "\n";
    }
    std::cout << "[" << runner.executed()
              << " simulation(s) executed; the rest served from the "
                 "result cache]\n";
}

} // namespace vcoma_bench

#endif // VCOMA_BENCH_BENCH_UTIL_HH
