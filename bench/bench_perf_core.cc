/**
 * @file
 * Perf smoke test for the per-reference simulation core: one fixed,
 * FLC-hit-heavy configuration simulated three ways — hit fast path
 * off, fast path on, and packed-trace replay (record once, then mmap
 * the reference stream back instead of re-running the workload
 * coroutines) — reporting host refs/sec for all three and asserting
 * that every mode produces identical statistics (speed knobs, never
 * model knobs).
 *
 * The exit status reflects only output identity: a perf regression
 * shows up in BENCH_perf_core.json (refs_per_sec_* and speedup
 * metrics) without failing the binary, so CI archives the numbers but
 * gates merges only on correctness. The perf-trajectory workflow
 * separately compares the recorded ratios against the committed
 * baseline (bench/perf_baseline.json).
 */

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.hh"
#include "sim/machine.hh"
#include "sim/run_stats_json.hh"
#include "translation/system_builder.hh"
#include "workloads/replay.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

/**
 * The measurement workload: each thread re-sweeps a private buffer
 * that fits its FLC, so after the first iteration nearly every read
 * is an FLC hit and nearly every write a silent store (AM Exclusive,
 * SLC hit) — the two cases the fast path accelerates. Threads carry
 * widely different compute phases (work grows with the thread id), so
 * the event heap sees the asymmetric timing of real programs instead
 * of artificial lockstep — the regime the batching layer targets.
 */
class FlcResweepWorkload : public Workload
{
  public:
    FlcResweepWorkload(unsigned threads, unsigned iterations)
        : threads_(threads), iterations_(iterations)
    {
        bases_.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
            bases_.push_back(space_.alloc(
                "resweep.buf" + std::to_string(t), bufBytes,
                /*align=*/4096));
        }
    }

    std::string name() const override { return "FLC-RESWEEP"; }

    std::string
    parameters() const override
    {
        return std::to_string(iterations_) + " sweeps of " +
               std::to_string(bufBytes) + " B per thread";
    }

    unsigned numThreads() const override { return threads_; }
    const AddressSpace &space() const override { return space_; }
    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

  private:
    static constexpr unsigned bufBytes = 2048;

    Generator<MemRef>
    body(unsigned tid)
    {
        const VAddr base = bases_[tid];
        const std::uint32_t work = 2u << (2 * tid);
        for (unsigned it = 0; it < iterations_; ++it) {
            for (unsigned off = 0; off < bufBytes; off += 32) {
                co_yield MemRef::read(base + off, work);
                if (off % 256 == 0)
                    co_yield MemRef::write(base + off, work);
            }
        }
    }

    unsigned threads_;
    unsigned iterations_;
    AddressSpace space_;
    std::vector<VAddr> bases_;
};

/** The fixed machine: tiny geometry with an FLC the buffer fits. */
MachineConfig
perfConfig(bool fastPath)
{
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    cfg.flc.sizeBytes = 8 * 1024;  // covers the 2 KB per-thread buffer
    cfg.slc.sizeBytes = 32 * 1024;
    cfg.fastPath = fastPath;
    return cfg;
}

/**
 * Host refs/sec of one trial, with the trial duration clamped to a
 * floor: an otherwise sub-resolution trial would divide by ~0 and
 * yield an infinite rate, which BENCH_perf_core.json serialises as
 * null (the non-finite rule) — silently corrupting the perf
 * trajectory CI tracks. A trial of exactly zero measured length is a
 * broken clock or an empty run and fails the bench loudly instead.
 */
double
trialRate(std::uint64_t refs, double seconds)
{
    constexpr double minTrialSeconds = 1e-6;
    if (seconds <= 0.0 || refs == 0) {
        std::cerr << "FAIL: perf trial retired " << refs << " refs in "
                  << seconds
                  << " measured seconds; a zero-length trial cannot "
                     "produce a meaningful rate\n";
        std::exit(1);
    }
    return static_cast<double>(refs) / std::max(seconds, minTrialSeconds);
}

struct Measurement
{
    double refsPerSec = 0;
    std::string json;  ///< writeRunStatsJson() of the final RunStats
    std::string dump;  ///< full component stats hierarchy
};

/** Run @p workload @p reps times on @p cfg, keeping the best rate. */
Measurement
measureRuns(const MachineConfig &cfg, Workload &workload, unsigned reps)
{
    Measurement best;
    for (unsigned rep = 0; rep < reps; ++rep) {
        Machine machine(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        const RunStats stats = machine.run(workload);
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        const double rate = trialRate(stats.totalRefs(), dt.count());
        best.refsPerSec = std::max(best.refsPerSec, rate);
        if (rep == 0) {
            std::ostringstream json;
            writeRunStatsJson(json, stats);
            best.json = json.str();
            std::ostringstream dump;
            machine.dumpStats(dump);
            best.dump = dump.str();
        }
    }
    return best;
}

Measurement
measureLive(bool fastPath, unsigned iterations, unsigned reps)
{
    Measurement best;
    const MachineConfig cfg = perfConfig(fastPath);
    for (unsigned rep = 0; rep < reps; ++rep) {
        // A fresh workload per rep: the coroutines are one-shot.
        FlcResweepWorkload w(cfg.numNodes, iterations);
        const Measurement m = measureRuns(cfg, w, 1);
        best.refsPerSec = std::max(best.refsPerSec, m.refsPerSec);
        if (rep == 0) {
            best.json = m.json;
            best.dump = m.dump;
        }
    }
    return best;
}

/** Live KVLOOKUP, a fresh workload per rep (one-shot coroutines). */
Measurement
measureKvLive(const MachineConfig &cfg, const WorkloadParams &wp,
              unsigned reps)
{
    Measurement best;
    for (unsigned rep = 0; rep < reps; ++rep) {
        const auto w = makeWorkload("KVLOOKUP", wp);
        const Measurement m = measureRuns(cfg, *w, 1);
        best.refsPerSec = std::max(best.refsPerSec, m.refsPerSec);
        if (rep == 0) {
            best.json = m.json;
            best.dump = m.dump;
        }
    }
    return best;
}

} // namespace

int
main()
{
    // The config knob must control both runs even when the caller's
    // environment pins the fast path one way or the other.
    ::unsetenv("VCOMA_FASTPATH");

    vcoma_bench::BenchReport report("perf_core");
    std::cout << "V-COMA reproduction - perf smoke (per-reference "
                 "core)\n"
              << "(fixed FLC-hit-heavy config; host timing, so the "
                 "numbers vary run to run — only statistics identity "
                 "is pass/fail)\n\n";

    constexpr unsigned iterations = 1500;
    constexpr unsigned reps = 3;
    const Measurement slow = measureLive(false, iterations, reps);
    const Measurement fast = measureLive(true, iterations, reps);

    // Third mode: record the reference streams once, then replay the
    // packed trace — the mmapped array replaces both the workload
    // algorithm and the per-reference coroutine machinery.
    const std::string traceFile =
        (std::filesystem::temp_directory_path() /
         ("vcoma_perf_core." + std::to_string(::getpid()) + ".vctrace"))
            .string();
    Measurement replay;
    {
        const MachineConfig cfg = perfConfig(true);
        FlcResweepWorkload live(cfg.numNodes, iterations);
        RecordingWorkload recorder(live, traceFile, "perf_core");
        Machine machine(cfg);
        machine.run(recorder);
        if (!recorder.finalize()) {
            std::cerr << "FAIL: could not record the perf-core trace\n";
            return 1;
        }
        ReplayWorkload replayed(traceFile);
        replay = measureRuns(cfg, replayed, reps);
    }
    std::filesystem::remove(traceFile);

    // Fourth mode: the pointer-chasing regime. KVLOOKUP's dependent
    // hash-chain chases are the opposite of the FLC-resweep's
    // hit-heavy loop — mostly remote traffic the fast path cannot
    // filter — so its live-vs-replay ratio tracks the batch-drain
    // replay loop's worth on datacenter streams specifically.
    Measurement kvLive;
    Measurement kvReplay;
    {
        const MachineConfig cfg = perfConfig(true);
        WorkloadParams wp;
        wp.threads = cfg.numNodes;
        wp.scale = 0.5;
        kvLive = measureKvLive(cfg, wp, reps);
        const std::string kvTraceFile =
            (std::filesystem::temp_directory_path() /
             ("vcoma_perf_kv." + std::to_string(::getpid()) +
              ".vctrace"))
                .string();
        const auto live = makeWorkload("KVLOOKUP", wp);
        RecordingWorkload recorder(*live, kvTraceFile,
                                   "perf_core_kvlookup");
        Machine machine(cfg);
        machine.run(recorder);
        if (!recorder.finalize()) {
            std::cerr << "FAIL: could not record the KVLOOKUP trace\n";
            return 1;
        }
        ReplayWorkload replayed(kvTraceFile);
        kvReplay = measureRuns(cfg, replayed, reps);
        std::filesystem::remove(kvTraceFile);
    }

    std::cout << "fast path off: " << static_cast<std::uint64_t>(
                     slow.refsPerSec) << " refs/sec\n"
              << "fast path on:  " << static_cast<std::uint64_t>(
                     fast.refsPerSec) << " refs/sec\n"
              << "trace replay:  " << static_cast<std::uint64_t>(
                     replay.refsPerSec) << " refs/sec\n"
              << "speedup:       " << fast.refsPerSec / slow.refsPerSec
              << "x (fast/slow), "
              << replay.refsPerSec / fast.refsPerSec
              << "x (replay/fast)\n"
              << "kvlookup live:   " << static_cast<std::uint64_t>(
                     kvLive.refsPerSec) << " refs/sec\n"
              << "kvlookup replay: " << static_cast<std::uint64_t>(
                     kvReplay.refsPerSec) << " refs/sec ("
              << kvReplay.refsPerSec / kvLive.refsPerSec
              << "x)\n";

    report.metric("refs_per_sec_slow", slow.refsPerSec);
    report.metric("refs_per_sec_fast", fast.refsPerSec);
    report.metric("refs_per_sec_replay", replay.refsPerSec);
    report.metric("speedup", fast.refsPerSec / slow.refsPerSec);
    report.metric("replay_speedup",
                  replay.refsPerSec / fast.refsPerSec);
    report.metric("kvlookup_refs_per_sec_live", kvLive.refsPerSec);
    report.metric("kvlookup_refs_per_sec_replay", kvReplay.refsPerSec);
    report.metric("kvlookup_replay_speedup",
                  kvReplay.refsPerSec / kvLive.refsPerSec);
    report.finish(nullptr);

    bool ok = true;
    if (fast.json != slow.json || fast.dump != slow.dump) {
        std::cerr << "FAIL: fast-path run diverged from the slow-path "
                     "run\n";
        if (fast.json != slow.json)
            std::cerr << "RunStats JSON differs:\n  slow: " << slow.json
                      << "\n  fast: " << fast.json << "\n";
        ok = false;
    }
    if (replay.json != fast.json || replay.dump != fast.dump) {
        std::cerr << "FAIL: replay run diverged from the live run\n";
        if (replay.json != fast.json)
            std::cerr << "RunStats JSON differs:\n  live:   "
                      << fast.json << "\n  replay: " << replay.json
                      << "\n";
        ok = false;
    }
    if (kvReplay.json != kvLive.json || kvReplay.dump != kvLive.dump) {
        std::cerr << "FAIL: KVLOOKUP replay diverged from the live "
                     "run\n";
        if (kvReplay.json != kvLive.json)
            std::cerr << "RunStats JSON differs:\n  live:   "
                      << kvLive.json << "\n  replay: " << kvReplay.json
                      << "\n";
        ok = false;
    }
    if (!ok)
        return 1;
    std::cout << "\n[statistics identical across slow path, fast path "
                 "and trace replay, live and replayed KVLOOKUP]\n";
    return 0;
}
