/**
 * @file
 * Perf smoke test for the per-reference simulation core: one fixed,
 * FLC-hit-heavy configuration simulated twice — hit fast path off,
 * then on — reporting host refs/sec for both and asserting that the
 * two runs produce identical statistics (the fast path is a speed
 * knob, never a model knob).
 *
 * The exit status reflects only output identity: a perf regression
 * shows up in BENCH_perf_core.json (refs_per_sec_* and speedup
 * metrics) without failing the binary, so CI archives the numbers but
 * gates merges only on correctness.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.hh"
#include "sim/machine.hh"
#include "sim/run_stats_json.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

/**
 * The measurement workload: each thread re-sweeps a private buffer
 * that fits its FLC, so after the first iteration nearly every read
 * is an FLC hit and nearly every write a silent store (AM Exclusive,
 * SLC hit) — the two cases the fast path accelerates. Threads carry
 * widely different compute phases (work grows with the thread id), so
 * the event heap sees the asymmetric timing of real programs instead
 * of artificial lockstep — the regime the batching layer targets.
 */
class FlcResweepWorkload : public Workload
{
  public:
    FlcResweepWorkload(unsigned threads, unsigned iterations)
        : threads_(threads), iterations_(iterations)
    {
        bases_.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
            bases_.push_back(space_.alloc(
                "resweep.buf" + std::to_string(t), bufBytes,
                /*align=*/4096));
        }
    }

    std::string name() const override { return "FLC-RESWEEP"; }

    std::string
    parameters() const override
    {
        return std::to_string(iterations_) + " sweeps of " +
               std::to_string(bufBytes) + " B per thread";
    }

    unsigned numThreads() const override { return threads_; }
    const AddressSpace &space() const override { return space_; }
    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

  private:
    static constexpr unsigned bufBytes = 2048;

    Generator<MemRef>
    body(unsigned tid)
    {
        const VAddr base = bases_[tid];
        const std::uint32_t work = 2u << (2 * tid);
        for (unsigned it = 0; it < iterations_; ++it) {
            for (unsigned off = 0; off < bufBytes; off += 32) {
                co_yield MemRef::read(base + off, work);
                if (off % 256 == 0)
                    co_yield MemRef::write(base + off, work);
            }
        }
    }

    unsigned threads_;
    unsigned iterations_;
    AddressSpace space_;
    std::vector<VAddr> bases_;
};

/** The fixed machine: tiny geometry with an FLC the buffer fits. */
MachineConfig
perfConfig(bool fastPath)
{
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    cfg.flc.sizeBytes = 8 * 1024;  // covers the 2 KB per-thread buffer
    cfg.slc.sizeBytes = 32 * 1024;
    cfg.fastPath = fastPath;
    return cfg;
}

struct Measurement
{
    double refsPerSec = 0;
    std::string json;  ///< writeRunStatsJson() of the final RunStats
    std::string dump;  ///< full component stats hierarchy
};

Measurement
measure(bool fastPath, unsigned iterations, unsigned reps)
{
    Measurement best;
    for (unsigned rep = 0; rep < reps; ++rep) {
        Machine machine(perfConfig(fastPath));
        FlcResweepWorkload w(machine.numNodes(), iterations);
        const auto t0 = std::chrono::steady_clock::now();
        const RunStats stats = machine.run(w);
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        const double rate =
            static_cast<double>(stats.totalRefs()) / dt.count();
        if (rate > best.refsPerSec) {
            best.refsPerSec = rate;
        }
        if (rep == 0) {
            std::ostringstream json;
            writeRunStatsJson(json, stats);
            best.json = json.str();
            std::ostringstream dump;
            machine.dumpStats(dump);
            best.dump = dump.str();
        }
    }
    return best;
}

} // namespace

int
main()
{
    // The config knob must control both runs even when the caller's
    // environment pins the fast path one way or the other.
    ::unsetenv("VCOMA_FASTPATH");

    vcoma_bench::BenchReport report("perf_core");
    std::cout << "V-COMA reproduction - perf smoke (per-reference "
                 "core)\n"
              << "(fixed FLC-hit-heavy config; host timing, so the "
                 "numbers vary run to run — only statistics identity "
                 "is pass/fail)\n\n";

    constexpr unsigned iterations = 1500;
    constexpr unsigned reps = 3;
    const Measurement slow = measure(false, iterations, reps);
    const Measurement fast = measure(true, iterations, reps);

    std::cout << "fast path off: " << static_cast<std::uint64_t>(
                     slow.refsPerSec) << " refs/sec\n"
              << "fast path on:  " << static_cast<std::uint64_t>(
                     fast.refsPerSec) << " refs/sec\n"
              << "speedup:       " << fast.refsPerSec / slow.refsPerSec
              << "x\n";

    report.metric("refs_per_sec_slow", slow.refsPerSec);
    report.metric("refs_per_sec_fast", fast.refsPerSec);
    report.metric("speedup", fast.refsPerSec / slow.refsPerSec);
    report.finish(nullptr);

    if (fast.json != slow.json || fast.dump != slow.dump) {
        std::cerr << "FAIL: fast-path run diverged from the slow-path "
                     "run\n";
        if (fast.json != slow.json)
            std::cerr << "RunStats JSON differs:\n  slow: " << slow.json
                      << "\n  fast: " << fast.json << "\n";
        return 1;
    }
    std::cout << "\n[statistics identical with the fast path on and "
                 "off]\n";
    return 0;
}
