/**
 * @file
 * Ablation: Section 6's layout-pressure discussion — sequential
 * virtual layouts give uniform global-set pressure for free, while an
 * adversarial alignment concentrates pages on one colour and drives
 * the page daemon into swapping.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("ablation_layout");
    const double scale = vcoma_bench::banner("Ablation (layout pressure)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::layoutPressureConfigs(scale));
    sink(vcoma::layoutPressure(runner, scale));
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
