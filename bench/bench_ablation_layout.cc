/**
 * @file
 * Ablation: Section 6's layout-pressure discussion — sequential
 * virtual layouts give uniform global-set pressure for free, while an
 * adversarial alignment concentrates pages on one colour and drives
 * the page daemon into swapping.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    const double scale = vcoma_bench::banner("Ablation (layout pressure)");
    vcoma::Runner runner;
    sink(vcoma::layoutPressure(runner, scale));
    vcoma_bench::footer(runner);
    return 0;
}
