/**
 * @file
 * Google-benchmark micro-benchmarks of the simulator's hot
 * components: cache lookups, TLB lookups (FA hash vs DM array),
 * attraction-memory searches, the coherence fast path, and
 * end-to-end simulated-reference throughput. These bound the wall
 * clock of the paper-reproduction runs.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "common/rng.hh"
#include "mem/cache.hh"
#include "sim/machine.hh"
#include "tlb/tlb.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache("bm", CacheConfig{64 * 1024, 4, 64, false, true});
    Rng rng(1);
    std::vector<VAddr> addrs(4096);
    for (auto &a : addrs)
        a = rng.below(1 << 20);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & 4095], RefType::Read));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbLookupFullyAssociative(benchmark::State &state)
{
    Tlb tlb(static_cast<unsigned>(state.range(0)), 0, 1);
    Rng rng(2);
    std::vector<PageNum> vpns(4096);
    for (auto &v : vpns)
        v = rng.below(1024);
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.access(vpns[i++ & 4095]));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookupFullyAssociative)->Arg(8)->Arg(128)->Arg(512);

void
BM_TlbLookupDirectMapped(benchmark::State &state)
{
    Tlb tlb(static_cast<unsigned>(state.range(0)), 1, 1);
    Rng rng(2);
    std::vector<PageNum> vpns(4096);
    for (auto &v : vpns)
        v = rng.below(1024);
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.access(vpns[i++ & 4095]));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookupDirectMapped)->Arg(8)->Arg(128)->Arg(512);

void
BM_ShadowBankAccess(benchmark::State &state)
{
    ShadowBank bank(3);
    Rng rng(4);
    std::vector<PageNum> vpns(4096);
    for (auto &v : vpns)
        v = rng.below(2048);
    std::size_t i = 0;
    for (auto _ : state)
        bank.access(vpns[i++ & 4095]);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowBankAccess);

void
BM_LocalHitPath(benchmark::State &state)
{
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    cfg.checkLevel = 0;
    Machine machine(cfg);
    machine.access(0, RefType::Read, 0x40000, 0);
    Tick t = 1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            machine.access(0, RefType::Read, 0x40000, t));
        t += 10;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalHitPath);

void
BM_SimulatedRefThroughput(benchmark::State &state)
{
    // End-to-end references per second of a full UNIFORM run.
    for (auto _ : state) {
        MachineConfig cfg = tinyConfig(Scheme::VCOMA);
        cfg.checkLevel = 0;
        Machine machine(cfg);
        WorkloadParams wp;
        wp.threads = cfg.numNodes;
        wp.scale = 0.2;
        auto w = makeWorkload("UNIFORM", wp);
        const RunStats stats = machine.run(*w);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(
                                    stats.totalRefs()));
    }
}
BENCHMARK(BM_SimulatedRefThroughput)->Unit(benchmark::kMillisecond);

} // namespace

// Expanded BENCHMARK_MAIN() so the run also leaves a BENCH_*.json
// report like every other bench binary.
int
main(int argc, char **argv)
{
    vcoma_bench::BenchReport report("micro_components");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    report.finish(nullptr);
    return 0;
}
