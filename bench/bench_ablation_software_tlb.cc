/**
 * @file
 * Ablation: software-managed address translation (Jacob & Mudge),
 * modelled per Section 3.3 as an L2-TLB with zero entries that traps
 * on every SLC miss, compared against hardware L2-TLBs.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    const double scale = vcoma_bench::banner("Ablation (software TLB)");
    vcoma::Runner runner;
    sink(vcoma::softwareManagedTranslation(runner, scale));
    vcoma_bench::footer(runner);
    return 0;
}
