/**
 * @file
 * Ablation: software-managed address translation (Jacob & Mudge),
 * modelled per Section 3.3 as an L2-TLB with zero entries that traps
 * on every SLC miss, compared against hardware L2-TLBs.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("ablation_software_tlb");
    const double scale = vcoma_bench::banner("Ablation (software TLB)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::softwareTlbConfigs(scale));
    sink(vcoma::softwareManagedTranslation(runner, scale));
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
