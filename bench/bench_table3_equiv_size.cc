/**
 * @file
 * Reproduces Table 3: the TLB size each scheme needs to match an
 * 8-entry DLB (log-interpolated over the Figure 8 sweep).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("table3_equiv_size");
    const double scale = vcoma_bench::banner("Table 3 (equivalent sizes)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::missStudySweepConfigs(scale));
    runner.runAll(vcoma::missStudySweepConfigs(
        scale, vcoma::datacenterBenchmarks()));
    sink(vcoma::table3EquivalentSize(runner, scale));
    sink(vcoma::table3EquivalentSize(runner, scale,
                                     vcoma::datacenterBenchmarks(),
                                     "datacenter"));
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
