/**
 * @file
 * The datacenter sensitivity sweep: KVLOOKUP across Zipf skew x read
 * ratio and GRAPH across working-set multipliers, comparing the
 * paper's per-node L0-TLB against V-COMA's home-node DLB — the
 * filtering/sharing argument of Section 5 re-measured on
 * pointer-chasing, skewed-sharing traffic the paper never saw.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("datacenter_sweep");
    const double scale = vcoma_bench::banner("Datacenter sweep");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::datacenterSweepConfigs(scale));
    for (const auto &table : vcoma::datacenterSweeps(runner, scale))
        sink(table);
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
