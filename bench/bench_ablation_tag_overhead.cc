/**
 * @file
 * Section 6 discussion: the tag-memory overhead of virtual tags
 * (2-3 extra bytes per block) as a function of block size.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("ablation_tag_overhead");
    vcoma_bench::banner("Section 6 (virtual tag overhead)");
    sink(vcoma::tagOverheadTable());
    report.finish(nullptr);
    return 0;
}
