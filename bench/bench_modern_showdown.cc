/**
 * @file
 * The 1998-vs-modern showdown: the paper's L0-TLB and V-COMA poles
 * against the registry's modern schemes (VICTIMA, NMT) on the
 * Table 2-style walk rates and the Table 4-style stall share, over
 * both the SPLASH-2 suite and the datacenter suite.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("modern_showdown");
    const double scale = vcoma_bench::banner("1998 vs modern showdown");
    vcoma::Runner runner;
    // The whole grid up front: cache misses execute concurrently on
    // VCOMA_JOBS workers, and the table code renders from memo hits.
    runner.runAll(vcoma::showdownConfigs(scale));
    runner.runAll(vcoma::showdownConfigs(
        scale, vcoma::datacenterBenchmarks()));
    sink(vcoma::showdownMissRates(runner, scale));
    sink(vcoma::showdownStallShare(runner, scale));
    sink(vcoma::showdownMissRates(runner, scale,
                                  vcoma::datacenterBenchmarks(),
                                  "datacenter"));
    sink(vcoma::showdownStallShare(runner, scale,
                                   vcoma::datacenterBenchmarks(),
                                   "datacenter"));
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
