/**
 * @file
 * Reproduces Figure 8: translation misses per node as a function of
 * TLB/DLB size (8..512) for every benchmark and scheme, including the
 * L2-TLB/no_wback variant.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("fig8_miss_curves");
    const double scale = vcoma_bench::banner("Figure 8 (miss curves)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::missStudySweepConfigs(scale));
    for (const auto &table : vcoma::figure8MissCurves(runner, scale))
        sink(table);
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
