/**
 * @file
 * Ablation: measured behaviour of the Section 4.2 injection protocol
 * (home absorption, random-ring forwarding, emergency swaps) under
 * V-COMA for every benchmark.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("ablation_injection");
    const double scale = vcoma_bench::banner("Ablation (injection)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::missStudyVcomaConfigs(scale));
    sink(vcoma::injectionBehaviour(runner, scale));
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
