/**
 * @file
 * Reproduces Table 4: address-translation time as a fraction of
 * total memory stall time for L0-TLB vs the V-COMA DLB (sizes 8, 16).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("table4_stall_share");
    const double scale = vcoma_bench::banner("Table 4 (stall share)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::table4Configs(scale));
    runner.runAll(
        vcoma::table4Configs(scale, vcoma::datacenterBenchmarks()));
    sink(vcoma::table4StallShare(runner, scale));
    sink(vcoma::table4StallShare(runner, scale,
                                 vcoma::datacenterBenchmarks(),
                                 "datacenter"));
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
