/**
 * @file
 * Reproduces Figure 11: the memory-pressure profile across global
 * page sets under V-COMA (uniform without any tuning, Section 6).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("fig11_pressure");
    const double scale = vcoma_bench::banner("Figure 11 (pressure)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::missStudyVcomaConfigs(scale));
    runner.runAll(vcoma::missStudyVcomaConfigs(
        scale, vcoma::datacenterBenchmarks()));
    for (const auto &table : vcoma::figure11Pressure(runner, scale))
        sink(table);
    for (const auto &table : vcoma::figure11Pressure(
             runner, scale, vcoma::datacenterBenchmarks()))
        sink(table);
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
