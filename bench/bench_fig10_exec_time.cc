/**
 * @file
 * Reproduces Figure 10: execution-time breakdown (busy / sync /
 * loc-stall / rem-stall / translation) for TLB/8, TLB/8/DM, DLB/8,
 * DLB/8/DM and the RAYTRACE DLB/8/V2 layout variant, normalised to
 * the TLB/8 physical COMA.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("fig10_exec_time");
    const double scale = vcoma_bench::banner("Figure 10 (execution time)");
    vcoma::Runner runner;
    // The whole sweep, built up front: cache misses execute
    // concurrently on VCOMA_JOBS workers, and the table code
    // below renders from memo hits (byte-identical to serial).
    runner.runAll(vcoma::figure10Configs(scale));
    for (const auto &table : vcoma::figure10ExecTime(runner, scale))
        sink(table);
    vcoma_bench::footer(runner);
    report.finish(&runner);
    return 0;
}
