/**
 * @file
 * Reproduces Table 1: benchmark parameters and shared-memory
 * footprints of the six SPLASH-2-style kernels, plus the same
 * inventory for the synthetic datacenter suite.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    const vcoma_bench::TableSink sink(argc, argv);
    vcoma_bench::BenchReport report("table1_workloads");
    const double scale = vcoma_bench::banner("Table 1 (benchmarks)");
    sink(vcoma::table1Benchmarks(scale));
    sink(vcoma::table1Benchmarks(scale, vcoma::datacenterBenchmarks(),
                                 "datacenter"));
    report.finish(nullptr);
    return 0;
}
