/**
 * @file
 * Protocol tests: directed COMA-F transaction scenarios plus a
 * randomised fuzz test, both run under all five translation schemes
 * and checked against the whole-machine coherence invariants.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "checkers.hh"
#include "common/rng.hh"
#include "sim/machine.hh"
#include "translation/system_builder.hh"

using namespace vcoma;

namespace
{

MachineConfig
testConfig(Scheme scheme)
{
    MachineConfig cfg = tinyConfig(scheme);
    cfg.checkLevel = 2;  // verify versions on every reference
    return cfg;
}

/** Directory entry for a VA (page must be resident). */
DirectoryEntry &
entryFor(Machine &m, VAddr va)
{
    const PageNum vpn = m.layout().vpn(va);
    return m.directory().entryFor(vpn, m.layout().dirEntryIndex(va));
}

AmState
stateAt(Machine &m, NodeId n, VAddr va)
{
    const PageInfo *page = m.pageTable().find(m.layout().vpn(va));
    if (!page)
        return AmState::Invalid;
    return m.node(n).am.state(
        testAmKey(m, *page, m.layout().blockAlign(va)));
}

} // namespace

class ProtocolScheme : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(ProtocolScheme, PreloadPlacesPageAtHome)
{
    Machine m(testConfig(GetParam()));
    m.access(0, RefType::Read, 0x40000, 0);
    const PageInfo *page = m.pageTable().find(m.layout().vpn(0x40000));
    ASSERT_NE(page, nullptr);
    EXPECT_TRUE(page->resident);
    // Every block of the page is MasterShared somewhere; the home
    // holds the ones nobody fetched.
    DirectoryEntry &e = entryFor(m, 0x40000 + 512);
    EXPECT_EQ(e.owner, page->home);
    EXPECT_FALSE(e.exclusive);
    checkCoherenceInvariants(m);
}

TEST_P(ProtocolScheme, ReadMigratesASharedCopy)
{
    Machine m(testConfig(GetParam()));
    const VAddr va = 0x40000;
    m.access(0, RefType::Read, va, 0);
    const PageInfo *page = m.pageTable().find(m.layout().vpn(va));
    if (page->home != 0) {
        EXPECT_EQ(stateAt(m, 0, va), AmState::Shared);
        EXPECT_EQ(stateAt(m, page->home, va), AmState::MasterShared);
    } else {
        EXPECT_EQ(stateAt(m, 0, va), AmState::MasterShared);
    }
    DirectoryEntry &e = entryFor(m, va);
    EXPECT_TRUE(e.holds(0));
    checkCoherenceInvariants(m);
    checkInclusion(m);
}

TEST_P(ProtocolScheme, WriteTakesExclusiveAndInvalidates)
{
    Machine m(testConfig(GetParam()));
    const VAddr va = 0x40000;
    // Three readers...
    m.access(0, RefType::Read, va, 0);
    m.access(1, RefType::Read, va, 1000);
    m.access(2, RefType::Read, va, 2000);
    // ...then node 3 writes.
    m.access(3, RefType::Write, va, 3000);
    EXPECT_EQ(stateAt(m, 3, va), AmState::Exclusive);
    EXPECT_EQ(stateAt(m, 0, va), AmState::Invalid);
    EXPECT_EQ(stateAt(m, 1, va), AmState::Invalid);
    EXPECT_EQ(stateAt(m, 2, va), AmState::Invalid);
    DirectoryEntry &e = entryFor(m, va);
    EXPECT_EQ(e.owner, 3u);
    EXPECT_TRUE(e.exclusive);
    EXPECT_EQ(e.copies(), 1u);
    checkCoherenceInvariants(m);
    checkInclusion(m);
}

TEST_P(ProtocolScheme, UpgradeFromSharedKeepsData)
{
    Machine m(testConfig(GetParam()));
    const VAddr va = 0x42000;
    m.access(1, RefType::Read, va, 0);
    const std::uint64_t remoteWritesBefore =
        m.engine().remoteWrites.value();
    m.access(1, RefType::Write, va, 1000);
    EXPECT_EQ(stateAt(m, 1, va), AmState::Exclusive);
    // It was an upgrade, not a data-carrying read-exclusive...
    EXPECT_EQ(m.engine().remoteWrites.value(), remoteWritesBefore);
    EXPECT_GE(m.engine().upgrades.value(), 1u);
    checkCoherenceInvariants(m);
}

TEST_P(ProtocolScheme, SecondWriteIsSilent)
{
    Machine m(testConfig(GetParam()));
    const VAddr va = 0x42000;
    m.access(1, RefType::Write, va, 0);
    const auto upgradesBefore = m.engine().upgrades.value();
    const auto writesBefore = m.engine().remoteWrites.value();
    const AccessResult r = m.access(1, RefType::Write, va, 1000);
    EXPECT_EQ(m.engine().upgrades.value(), upgradesBefore);
    EXPECT_EQ(m.engine().remoteWrites.value(), writesBefore);
    EXPECT_EQ(r.remote, 0u);
    checkCoherenceInvariants(m);
}

TEST_P(ProtocolScheme, ReadAfterWriteDowngradesToMasterShared)
{
    Machine m(testConfig(GetParam()));
    const VAddr va = 0x43000;
    m.access(2, RefType::Write, va, 0);
    m.access(4 % 4, RefType::Read, va, 1000);  // node 0 reads
    EXPECT_EQ(stateAt(m, 2, va), AmState::MasterShared);
    EXPECT_EQ(stateAt(m, 0, va), AmState::Shared);
    DirectoryEntry &e = entryFor(m, va);
    EXPECT_EQ(e.owner, 2u);
    EXPECT_FALSE(e.exclusive);
    checkCoherenceInvariants(m);
}

TEST_P(ProtocolScheme, RemoteLatencyExceedsLocal)
{
    Machine m(testConfig(GetParam()));
    const VAddr va = 0x44000;
    const AccessResult miss = m.access(0, RefType::Read, va, 0);
    const AccessResult hit = m.access(0, RefType::Read, va, 10000);
    const PageInfo *page = m.pageTable().find(m.layout().vpn(va));
    if (page->home != 0) {
        EXPECT_GT(miss.remote, 0u);
        // At least request + block transfer.
        EXPECT_GE(miss.remote, 16u + 272u);
    }
    EXPECT_EQ(hit.remote, 0u);
    EXPECT_EQ(hit.done, 10000u);  // FLC hit: no latency charge
}

TEST_P(ProtocolScheme, FlcAndSlcFilterRepeatedAccesses)
{
    Machine m(testConfig(GetParam()));
    const VAddr va = 0x45000;
    m.access(0, RefType::Read, va, 0);
    const auto flcHitsBefore = m.node(0).flc.readHits.value();
    for (int i = 0; i < 10; ++i)
        m.access(0, RefType::Read, va, 1000 + i * 10);
    EXPECT_EQ(m.node(0).flc.readHits.value(), flcHitsBefore + 10);
}

TEST_P(ProtocolScheme, WritesPropagateThroughWriteThroughFlc)
{
    Machine m(testConfig(GetParam()));
    const VAddr va = 0x46000;
    m.access(0, RefType::Read, va, 0);
    m.access(0, RefType::Write, va, 1000);
    m.access(0, RefType::Write, va, 2000);
    // Every write reaches the SLC (write-through FLC).
    EXPECT_GE(m.node(0).slc.writeHits.value() +
                  m.node(0).slc.writeMisses.value(),
              2u);
}

TEST_P(ProtocolScheme, VersionsAdvanceWithWrites)
{
    Machine m(testConfig(GetParam()));
    const VAddr va = 0x47000;
    m.access(1, RefType::Write, va, 0);
    m.access(1, RefType::Write, va, 100);
    m.access(2, RefType::Write, va, 5000);
    DirectoryEntry &e = entryFor(m, va);
    EXPECT_EQ(e.version, 3u);
    m.access(3, RefType::Read, va, 9000);
    checkCoherenceInvariants(m);
}

TEST_P(ProtocolScheme, DistinctBlocksIndependent)
{
    Machine m(testConfig(GetParam()));
    const VAddr a = 0x48000;
    const VAddr b = 0x48080;  // next 128 B block, same page
    m.access(0, RefType::Write, a, 0);
    m.access(1, RefType::Write, b, 1000);
    EXPECT_EQ(stateAt(m, 0, a), AmState::Exclusive);
    EXPECT_EQ(stateAt(m, 1, b), AmState::Exclusive);
    checkCoherenceInvariants(m);
}

TEST_P(ProtocolScheme, ProtectionFaultOnForbiddenAccess)
{
    Machine m(testConfig(GetParam()));
    const VAddr va = 0x49000;
    m.access(0, RefType::Read, va, 0);
    PageInfo *page = m.pageTable().find(m.layout().vpn(va));
    page->protection = ProtRead;
    EXPECT_THROW(m.access(1, RefType::Write, va, 1000),
                 ProtectionFault);
    EXPECT_NO_THROW(m.access(1, RefType::Read, va, 2000));
    EXPECT_GE(m.engine().protectionFaults.value(), 1u);
}

/**
 * Capacity pressure: stream enough distinct owned blocks through one
 * node to force attraction-memory replacements and injections, then
 * verify nothing was lost.
 */
TEST_P(ProtocolScheme, InjectionPreservesOwnedBlocks)
{
    MachineConfig cfg = testConfig(GetParam());
    Machine m(cfg);
    // Node 0 writes one block in each of 12 pages per colour — three
    // times its AM associativity — so its sets overflow and owned
    // victims must be injected, regardless of placement policy.
    std::vector<VAddr> blocks;
    const unsigned pagesPerColour = 3 * cfg.am.assoc;
    const std::uint64_t numPages =
        pagesPerColour * m.layout().numColours();
    for (std::uint64_t i = 0; i < numPages; ++i)
        blocks.push_back(0x100000 + i * cfg.pageBytes);
    Tick t = 0;
    for (VAddr va : blocks) {
        m.access(0, RefType::Write, va, t);
        t += 10000;
    }
    EXPECT_GT(m.engine().injections.value(), 0u);
    checkCoherenceInvariants(m);
    // Every block still readable with its last version.
    for (VAddr va : blocks) {
        EXPECT_NO_THROW(m.access(1, RefType::Read, va, t));
        t += 10000;
    }
    checkCoherenceInvariants(m);
    checkInclusion(m);
}

/** Randomised fuzz: many cpus, reads/writes over a small region. */
TEST_P(ProtocolScheme, FuzzManyCpusSmallRegion)
{
    Machine m(testConfig(GetParam()));
    Rng rng(1234);
    Tick t = 0;
    for (int i = 0; i < 20000; ++i) {
        const CpuId cpu = static_cast<CpuId>(rng.below(4));
        const VAddr va = 0x80000 + rng.below(64) * 1024 +
                         rng.below(8) * 128;
        const RefType type =
            rng.below(3) == 0 ? RefType::Write : RefType::Read;
        m.access(cpu, type, va, t);
        t += rng.below(200);
    }
    checkCoherenceInvariants(m);
    checkInclusion(m);
}

/** Fuzz with high conflict pressure (same-colour pages). */
TEST_P(ProtocolScheme, FuzzConflictPressure)
{
    MachineConfig cfg = testConfig(GetParam());
    Machine m(cfg);
    Rng rng(77);
    const std::uint64_t colourStride =
        m.layout().numColours() * cfg.pageBytes;
    Tick t = 0;
    for (int i = 0; i < 8000; ++i) {
        const CpuId cpu = static_cast<CpuId>(rng.below(4));
        const VAddr va = 0x200000 + rng.below(12) * colourStride +
                         rng.below(4) * 128;
        const RefType type =
            rng.below(2) == 0 ? RefType::Write : RefType::Read;
        m.access(cpu, type, va, t);
        t += rng.below(500);
    }
    checkCoherenceInvariants(m);
    checkInclusion(m);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ProtocolScheme,
    ::testing::Values(Scheme::L0, Scheme::L1, Scheme::L2, Scheme::L3,
                      Scheme::VCOMA),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string name = schemeName(info.param);
        name.erase(std::remove(name.begin(), name.end(), '-'),
                   name.end());
        return name;
    });
