/** @file Tests for the Figure 6 virtual-address decomposition. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/vaddr_layout.hh"
#include "translation/system_builder.hh"

using namespace vcoma;

namespace
{

MachineConfig
paperConfig()
{
    return baselineConfig(Scheme::VCOMA);
}

} // namespace

TEST(VAddrLayout, PaperGeometry)
{
    const VAddrLayout layout(paperConfig());
    // 4 MB / 4-way / 128 B: S = 8192 sets, b = 7, s = 13.
    EXPECT_EQ(layout.blockBits(), 7u);
    EXPECT_EQ(layout.setBits(), 13u);
    EXPECT_EQ(layout.pageBits(), 12u);
    EXPECT_EQ(layout.nodeBits(), 5u);
    // colour bits = s + b - n = 8 -> 256 global page sets.
    EXPECT_EQ(layout.colourBits(), 8u);
    EXPECT_EQ(layout.numColours(), 256u);
    // 4 KB page / 128 B blocks -> 32 directory entries per page.
    EXPECT_EQ(layout.entriesPerDirPage(), 32u);
}

TEST(VAddrLayout, HomeNodeIsLowPageBits)
{
    const VAddrLayout layout(paperConfig());
    EXPECT_EQ(layout.homeNode(0x0000), 0u);
    EXPECT_EQ(layout.homeNode(0x1000), 1u);
    EXPECT_EQ(layout.homeNode(0x1F000), 31u);
    EXPECT_EQ(layout.homeNode(0x20000), 0u);  // wraps at P pages
    // Every byte of a page shares the home.
    EXPECT_EQ(layout.homeNode(0x1FFF), layout.homeNode(0x1000));
}

TEST(VAddrLayout, ColourIsLowPageNumberBits)
{
    const VAddrLayout layout(paperConfig());
    for (PageNum vpn : {0ull, 1ull, 255ull, 256ull, 511ull, 1000ull}) {
        EXPECT_EQ(layout.colourOfVpn(vpn), vpn % 256)
            << "vpn=" << vpn;
        EXPECT_EQ(layout.colour(vpn << 12), vpn % 256);
    }
}

TEST(VAddrLayout, HomeNodeConsistentWithColour)
{
    // The home bits are the low bits of the colour, so every page of
    // one global page set shares a home node.
    const VAddrLayout layout(paperConfig());
    for (PageNum vpn = 0; vpn < 2048; ++vpn) {
        EXPECT_EQ(layout.homeNodeOfVpn(vpn),
                  layout.colourOfVpn(vpn) % 32);
    }
}

TEST(VAddrLayout, DirEntryIndex)
{
    const VAddrLayout layout(paperConfig());
    EXPECT_EQ(layout.dirEntryIndex(0x1000), 0u);
    EXPECT_EQ(layout.dirEntryIndex(0x1080), 1u);
    EXPECT_EQ(layout.dirEntryIndex(0x1FFF), 31u);
    // Entry index is page-relative.
    EXPECT_EQ(layout.dirEntryIndex(0x5080), 1u);
}

TEST(VAddrLayout, BlockAndPageAlignment)
{
    const VAddrLayout layout(paperConfig());
    EXPECT_EQ(layout.blockAlign(0x1234), 0x1200u);
    EXPECT_EQ(layout.pageBase(0x1234), 0x1000u);
    EXPECT_EQ(layout.vpn(0x1234), 1u);
}

TEST(VAddrLayout, AmSetWithinColourStripe)
{
    const VAddrLayout layout(paperConfig());
    // Blocks of a page span 32 consecutive sets; the colour selects
    // which stripe of 32 sets.
    const VAddr page = 0x5000;  // colour 5
    const std::uint64_t firstSet = layout.amSet(page);
    EXPECT_EQ(firstSet, 5u * 32u);
    EXPECT_EQ(layout.amSet(page + 0xF80), firstSet + 31);
}

TEST(VAddrLayout, PageTableSetSkipsHomeBits)
{
    const VAddrLayout layout(paperConfig());
    // colourBits=8, nodeBits=5: 3 bits of page-table set.
    const VAddr va = static_cast<VAddr>(0xE5) << 12;  // colour 0xE5
    EXPECT_EQ(layout.pageTableSet(va), 0xE5u >> 5);
}

TEST(VAddrLayout, RejectsTooFewColoursForNodes)
{
    MachineConfig cfg = paperConfig();
    // Shrink AM so colour bits fall below node bits.
    cfg.am = CacheConfig{256 * 1024, 4, 128, false, true};
    // 512 sets * 128 B = 64 KB span; colourBits = 16+... compute:
    // sets=512 -> s=9, b=7, n=12 -> colour=4 < p=5.
    EXPECT_THROW(VAddrLayout{cfg}, FatalError);
}

TEST(VAddrLayout, RejectsAmSmallerThanPageStripe)
{
    MachineConfig cfg = paperConfig();
    cfg.pageBytes = 1 << 21;  // 2 MB pages > AM index span
    EXPECT_THROW(VAddrLayout{cfg}, FatalError);
}

/** Round trip: decompose-and-reassemble recovers the address. */
TEST(VAddrLayout, DecompositionPartitionsAddress)
{
    const VAddrLayout layout(paperConfig());
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const VAddr va = rng.below(std::uint64_t{1} << 40);
        const VAddr rebuilt =
            (layout.vpn(va) << layout.pageBits()) |
            (layout.dirEntryIndex(va) << layout.blockBits()) |
            (va & mask(layout.blockBits()));
        EXPECT_EQ(rebuilt, va);
    }
}
