/**
 * @file
 * Equivalence tests for the hit fast path: a simulation with the
 * fast path enabled must be indistinguishable — every RunStats field,
 * every component counter — from the same simulation with the fast
 * path disabled. The fast path is a speed knob, never a model knob.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <memory>
#include <sstream>
#include <string>

#include "sim/machine.hh"
#include "sim/run_stats_json.hh"
#include "sim/trace.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

struct RunResult
{
    RunStats stats;
    /** Full stats sheet (every component counter). */
    std::string dump;
    /** writeRunStatsJson() output (every RunStats field). */
    std::string json;
    bool fastPathActive = false;
};

RunResult
runOnce(Scheme scheme, const std::string &workload, bool fastPath)
{
    MachineConfig cfg = tinyConfig(scheme);
    cfg.fastPath = fastPath;
    Machine machine(cfg);
    WorkloadParams p;
    p.threads = cfg.numNodes;
    p.scale = 0.02;
    auto w = makeWorkload(workload, p);
    RunResult r;
    r.stats = machine.run(*w);
    std::ostringstream dump;
    machine.dumpStats(dump);
    r.dump = dump.str();
    std::ostringstream json;
    writeRunStatsJson(json, r.stats);
    r.json = json.str();
    r.fastPathActive = machine.fastPathActive();
    return r;
}

/** Field-by-field comparison with readable failure messages. */
void
expectSameStats(const RunStats &fast, const RunStats &slow)
{
    EXPECT_EQ(fast.workload, slow.workload);
    EXPECT_EQ(fast.parameters, slow.parameters);
    EXPECT_EQ(fast.scheme, slow.scheme);
    EXPECT_EQ(fast.numNodes, slow.numNodes);
    EXPECT_EQ(fast.sharedBytes, slow.sharedBytes);
    EXPECT_EQ(fast.execTime, slow.execTime);
    EXPECT_EQ(fast.tlbAccesses, slow.tlbAccesses);
    EXPECT_EQ(fast.tlbMisses, slow.tlbMisses);
    EXPECT_EQ(fast.flcAccesses, slow.flcAccesses);
    EXPECT_EQ(fast.flcMisses, slow.flcMisses);
    EXPECT_EQ(fast.slcAccesses, slow.slcAccesses);
    EXPECT_EQ(fast.slcMisses, slow.slcMisses);
    EXPECT_EQ(fast.amHits, slow.amHits);
    EXPECT_EQ(fast.amMisses, slow.amMisses);
    EXPECT_EQ(fast.remoteReads, slow.remoteReads);
    EXPECT_EQ(fast.remoteWrites, slow.remoteWrites);
    EXPECT_EQ(fast.upgrades, slow.upgrades);
    EXPECT_EQ(fast.invalidations, slow.invalidations);
    EXPECT_EQ(fast.pageFaults, slow.pageFaults);
    ASSERT_EQ(fast.cpus.size(), slow.cpus.size());
    for (std::size_t i = 0; i < fast.cpus.size(); ++i) {
        EXPECT_EQ(fast.cpus[i].reads, slow.cpus[i].reads) << "cpu " << i;
        EXPECT_EQ(fast.cpus[i].writes, slow.cpus[i].writes)
            << "cpu " << i;
        EXPECT_EQ(fast.cpus[i].finish, slow.cpus[i].finish)
            << "cpu " << i;
    }
}

} // namespace

using Case = std::tuple<Scheme, std::string>;

class FastPathEquivalence : public ::testing::TestWithParam<Case>
{
};

TEST_P(FastPathEquivalence, IdenticalStatsOnAndOff)
{
    const auto [scheme, workload] = GetParam();
    const RunResult fast = runOnce(scheme, workload, /*fastPath=*/true);
    const RunResult slow = runOnce(scheme, workload, /*fastPath=*/false);

    // The knob must actually gate the path (L0 is structurally
    // excluded: its per-reference TLB charge leaves no pure hit).
    EXPECT_FALSE(slow.fastPathActive);
    EXPECT_EQ(fast.fastPathActive, scheme != Scheme::L0);

    expectSameStats(fast.stats, slow.stats);
    // The JSON line carries every RunStats field (shadow sweep,
    // pressure profile, latency summaries): require exact identity,
    // which is also what $VCOMA_STATS_JSON consumers would diff.
    EXPECT_EQ(fast.json, slow.json);
    // And the full component hierarchy: per-node cache/AM/TLB/network
    // counters must match, not just the aggregated sheet.
    EXPECT_EQ(fast.dump, slow.dump);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllWorkloads, FastPathEquivalence,
    ::testing::Combine(::testing::Values(Scheme::L0, Scheme::L1,
                                         Scheme::L2, Scheme::L3,
                                         Scheme::VCOMA),
                       ::testing::Values("RADIX", "FFT", "FMM", "OCEAN",
                                         "RAYTRACE", "BARNES", "UNIFORM",
                                         "STRIDE", "HOTSPOT")),
    [](const ::testing::TestParamInfo<Case> &info) {
        std::string n = std::string(schemeName(std::get<0>(info.param))) +
                        "_" + std::get<1>(info.param);
        n.erase(std::remove_if(n.begin(), n.end(),
                               [](char c) {
                                   return !std::isalnum(
                                              static_cast<unsigned char>(
                                                  c)) &&
                                          c != '_';
                               }),
                n.end());
        return n;
    });

TEST(FastPathTrace, RecordReplayRoundTripIsIdentical)
{
    // Record a trace once, then replay it twice — fast path on and
    // off — and require identical stats sheets. The replay goes
    // through TraceWorkload's parser, so this also round-trips the
    // trace text format.
    WorkloadParams p;
    p.threads = 4;
    p.scale = 0.02;
    auto recorded = makeWorkload("HOTSPOT", p);
    std::ostringstream trace;
    const std::uint64_t events = recordTrace(*recorded, trace);
    ASSERT_GT(events, 0u);

    auto replayOnce = [&](bool fastPath) {
        MachineConfig cfg = tinyConfig(Scheme::VCOMA);
        cfg.fastPath = fastPath;
        Machine machine(cfg);
        std::istringstream is(trace.str());
        TraceWorkload w(is);
        RunResult r;
        r.stats = machine.run(w);
        std::ostringstream dump;
        machine.dumpStats(dump);
        r.dump = dump.str();
        std::ostringstream json;
        writeRunStatsJson(json, r.stats);
        r.json = json.str();
        return r;
    };
    const RunResult fast = replayOnce(true);
    const RunResult slow = replayOnce(false);
    expectSameStats(fast.stats, slow.stats);
    EXPECT_EQ(fast.json, slow.json);
    EXPECT_EQ(fast.dump, slow.dump);
}

TEST(FastPathEnv, EnvOverridesConfig)
{
    // $VCOMA_FASTPATH beats MachineConfig::fastPath in both
    // directions.
    setenv("VCOMA_FASTPATH", "0", 1);
    {
        MachineConfig cfg = tinyConfig(Scheme::VCOMA);
        cfg.fastPath = true;
        Machine machine(cfg);
        EXPECT_FALSE(machine.fastPathActive());
    }
    setenv("VCOMA_FASTPATH", "1", 1);
    {
        MachineConfig cfg = tinyConfig(Scheme::VCOMA);
        cfg.fastPath = false;
        Machine machine(cfg);
        EXPECT_TRUE(machine.fastPathActive());
    }
    unsetenv("VCOMA_FASTPATH");
}

TEST(FastPathCheckLevel, DeepCheckingDisablesFastPath)
{
    // checkLevel >= 2 runs checkVersion on FLC read hits; the fast
    // path must step aside rather than skip the check.
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    cfg.fastPath = true;
    cfg.checkLevel = 2;
    Machine machine(cfg);
    EXPECT_FALSE(machine.fastPathActive());
}
