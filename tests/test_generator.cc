/** @file Tests for the coroutine generator. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/generator.hh"

using namespace vcoma;

namespace
{

Generator<int>
countTo(int n)
{
    for (int i = 0; i < n; ++i)
        co_yield i;
}

Generator<int>
throwsMidway()
{
    co_yield 1;
    throw std::runtime_error("boom");
}

Generator<int>
empty()
{
    co_return;
}

/**
 * Yields forever while counting frame destructions through a local
 * probe: the probe lives in the coroutine frame, so its destructor
 * runs exactly when the frame is destroyed. Run under ASan (the
 * sanitize CI job) a double-destroy or leak of the handle shows up as
 * a hard error; the counters below catch the same bugs portably.
 */
Generator<int>
counted(int &frameDtors)
{
    struct Probe
    {
        int &count;
        ~Probe() { ++count; }
    } probe{frameDtors};
    for (int i = 0;; ++i)
        co_yield i;
}

} // namespace

TEST(Generator, YieldsAllValuesThenEnds)
{
    auto gen = countTo(5);
    for (int i = 0; i < 5; ++i) {
        auto v = gen.next();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(gen.next().has_value());
    EXPECT_FALSE(gen.next().has_value());  // stays exhausted
    EXPECT_FALSE(gen.alive());
}

TEST(Generator, EmptyGenerator)
{
    auto gen = empty();
    EXPECT_FALSE(gen.next().has_value());
}

TEST(Generator, LazyUntilFirstNext)
{
    bool started = false;
    auto make = [&]() -> Generator<int> {
        started = true;
        co_yield 7;
    };
    auto gen = make();
    EXPECT_FALSE(started);
    EXPECT_EQ(*gen.next(), 7);
    EXPECT_TRUE(started);
}

TEST(Generator, PropagatesExceptions)
{
    auto gen = throwsMidway();
    EXPECT_EQ(*gen.next(), 1);
    EXPECT_THROW(gen.next(), std::runtime_error);
}

TEST(Generator, MoveTransfersOwnership)
{
    auto a = countTo(3);
    EXPECT_EQ(*a.next(), 0);
    Generator<int> b = std::move(a);
    EXPECT_FALSE(a.alive());
    EXPECT_EQ(*b.next(), 1);
    Generator<int> c;
    c = std::move(b);
    EXPECT_EQ(*c.next(), 2);
    EXPECT_FALSE(c.next().has_value());
}

TEST(Generator, DefaultConstructedIsEmpty)
{
    Generator<int> gen;
    EXPECT_FALSE(gen.alive());
    EXPECT_FALSE(gen.next().has_value());
}

TEST(Generator, MoveAssignDestroysReplacedFrameExactlyOnce)
{
    // Move-assigning over a live generator must destroy the old
    // coroutine frame once — not zero times (leak) and not twice
    // (double-destroy when the assignee later goes out of scope).
    int a = 0;
    int b = 0;
    {
        auto g = counted(a);
        EXPECT_EQ(*g.next(), 0);  // start the frame: the probe exists
        auto h = counted(b);
        EXPECT_EQ(*h.next(), 0);
        g = std::move(h);
        EXPECT_EQ(a, 1) << "replaced frame must be destroyed";
        EXPECT_EQ(b, 0) << "adopted frame must stay alive";
        EXPECT_FALSE(h.alive());
        EXPECT_EQ(*g.next(), 1);  // and keep producing
    }
    EXPECT_EQ(a, 1) << "replaced frame destroyed again at scope exit";
    EXPECT_EQ(b, 1);
}

TEST(Generator, MoveAssignFromEmptyReleasesOldFrame)
{
    int d = 0;
    {
        auto g = counted(d);
        EXPECT_EQ(*g.next(), 0);
        g = Generator<int>{};
        EXPECT_EQ(d, 1);
        EXPECT_FALSE(g.alive());
        EXPECT_FALSE(g.next().has_value());
    }
    EXPECT_EQ(d, 1);
}

TEST(Generator, SelfMoveAssignKeepsFrameAlive)
{
    int d = 0;
    {
        auto g = counted(d);
        EXPECT_EQ(*g.next(), 0);
        // Through a reference so the self-move is not optimised away
        // (and not diagnosed) at compile time.
        Generator<int> &alias = g;
        g = std::move(alias);
        EXPECT_EQ(d, 0) << "self-move must not destroy the frame";
        EXPECT_TRUE(g.alive());
        EXPECT_EQ(*g.next(), 1);
    }
    EXPECT_EQ(d, 1) << "frame destroyed exactly once at scope exit";
}

TEST(Generator, MoveConstructedVectorGrowthDestroysEachFrameOnce)
{
    // vector reallocation move-constructs generators in bulk — the
    // pattern Machine::run and ReplayWorkload adoption rely on.
    int d = 0;
    {
        std::vector<Generator<int>> gens;
        for (int i = 0; i < 64; ++i) {
            gens.push_back(counted(d));
            EXPECT_EQ(*gens.back().next(), 0);
        }
        EXPECT_EQ(d, 0) << "reallocation must move frames, not "
                           "destroy them";
        for (auto &g : gens)
            EXPECT_EQ(*g.next(), 1);
    }
    EXPECT_EQ(d, 64);
}

TEST(Generator, ManyConcurrentGenerators)
{
    std::vector<Generator<int>> gens;
    for (int i = 0; i < 100; ++i)
        gens.push_back(countTo(10));
    // Interleave them round-robin.
    for (int round = 0; round < 10; ++round) {
        for (auto &g : gens) {
            auto v = g.next();
            ASSERT_TRUE(v.has_value());
            EXPECT_EQ(*v, round);
        }
    }
}
