/** @file Tests for the coroutine generator. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/generator.hh"

using namespace vcoma;

namespace
{

Generator<int>
countTo(int n)
{
    for (int i = 0; i < n; ++i)
        co_yield i;
}

Generator<int>
throwsMidway()
{
    co_yield 1;
    throw std::runtime_error("boom");
}

Generator<int>
empty()
{
    co_return;
}

} // namespace

TEST(Generator, YieldsAllValuesThenEnds)
{
    auto gen = countTo(5);
    for (int i = 0; i < 5; ++i) {
        auto v = gen.next();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(gen.next().has_value());
    EXPECT_FALSE(gen.next().has_value());  // stays exhausted
    EXPECT_FALSE(gen.alive());
}

TEST(Generator, EmptyGenerator)
{
    auto gen = empty();
    EXPECT_FALSE(gen.next().has_value());
}

TEST(Generator, LazyUntilFirstNext)
{
    bool started = false;
    auto make = [&]() -> Generator<int> {
        started = true;
        co_yield 7;
    };
    auto gen = make();
    EXPECT_FALSE(started);
    EXPECT_EQ(*gen.next(), 7);
    EXPECT_TRUE(started);
}

TEST(Generator, PropagatesExceptions)
{
    auto gen = throwsMidway();
    EXPECT_EQ(*gen.next(), 1);
    EXPECT_THROW(gen.next(), std::runtime_error);
}

TEST(Generator, MoveTransfersOwnership)
{
    auto a = countTo(3);
    EXPECT_EQ(*a.next(), 0);
    Generator<int> b = std::move(a);
    EXPECT_FALSE(a.alive());
    EXPECT_EQ(*b.next(), 1);
    Generator<int> c;
    c = std::move(b);
    EXPECT_EQ(*c.next(), 2);
    EXPECT_FALSE(c.next().has_value());
}

TEST(Generator, DefaultConstructedIsEmpty)
{
    Generator<int> gen;
    EXPECT_FALSE(gen.alive());
    EXPECT_FALSE(gen.next().has_value());
}

TEST(Generator, ManyConcurrentGenerators)
{
    std::vector<Generator<int>> gens;
    for (int i = 0; i < 100; ++i)
        gens.push_back(countTo(10));
    // Interleave them round-robin.
    for (int round = 0; round < 10; ++round) {
        for (auto &g : gens) {
            auto v = g.next();
            ASSERT_TRUE(v.has_value());
            EXPECT_EQ(*v, round);
        }
    }
}
