/** @file Tests for trace recording and replay. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/machine.hh"
#include "sim/trace.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

WorkloadParams
params4()
{
    WorkloadParams p;
    p.threads = 4;
    p.scale = 0.05;
    p.seed = 11;
    return p;
}

} // namespace

TEST(Trace, RecordProducesHeaderAndEvents)
{
    auto w = makeWorkload("STRIDE", params4());
    std::ostringstream os;
    const std::uint64_t events = recordTrace(*w, os);
    EXPECT_GT(events, 0u);
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("vcoma-trace-v1\nthreads 4\n", 0), 0u);
}

TEST(Trace, RoundTripPreservesPerThreadStreams)
{
    auto w1 = makeWorkload("STRIDE", params4());
    std::ostringstream os;
    recordTrace(*w1, os);
    std::istringstream is(os.str());
    TraceWorkload replay(is);

    ASSERT_EQ(replay.numThreads(), 4u);
    // Replay thread streams must equal the original workload's.
    auto w2 = makeWorkload("STRIDE", params4());
    for (unsigned t = 0; t < 4; ++t) {
        auto gen = w2->thread(t);
        std::size_t i = 0;
        while (auto ref = gen.next()) {
            ASSERT_LT(i, replay.events(t).size()) << "thread " << t;
            const MemRef &got = replay.events(t)[i++];
            EXPECT_EQ(got.kind, ref->kind);
            EXPECT_EQ(got.vaddr, ref->vaddr);
            EXPECT_EQ(got.type, ref->type);
            EXPECT_EQ(got.work, ref->work);
            EXPECT_EQ(got.syncId, ref->syncId);
        }
        EXPECT_EQ(i, replay.events(t).size());
    }
}

TEST(Trace, ReplayRunsIdenticallyToOriginal)
{
    // Barrier-phased, lock-free kernels replay with identical timing.
    RunStats original;
    {
        Machine m(tinyConfig(Scheme::VCOMA));
        auto w = makeWorkload("STRIDE", params4());
        original = m.run(*w);
    }
    std::ostringstream os;
    {
        auto w = makeWorkload("STRIDE", params4());
        recordTrace(*w, os);
    }
    std::istringstream is(os.str());
    TraceWorkload replay(is);
    Machine m(tinyConfig(Scheme::VCOMA));
    const RunStats replayed = m.run(replay);
    EXPECT_EQ(replayed.execTime, original.execTime);
    EXPECT_EQ(replayed.totalRefs(), original.totalRefs());
    EXPECT_EQ(replayed.remoteReads, original.remoteReads);
}

TEST(Trace, SyntheticSegmentCoversAddresses)
{
    auto w = makeWorkload("UNIFORM", params4());
    std::ostringstream os;
    recordTrace(*w, os);
    std::istringstream is(os.str());
    TraceWorkload replay(is);
    ASSERT_FALSE(replay.space().segments().empty());
    const Segment &seg = replay.space().segments().front();
    for (unsigned t = 0; t < replay.numThreads(); ++t) {
        for (const MemRef &ref : replay.events(t)) {
            if (ref.kind != MemRef::Kind::Mem)
                continue;
            EXPECT_GE(ref.vaddr, seg.base);
            EXPECT_LT(ref.vaddr, seg.end());
        }
    }
}

TEST(Trace, RejectsMalformedInput)
{
    {
        std::istringstream is("not-a-trace\n");
        EXPECT_THROW(TraceWorkload{is}, FatalError);
    }
    {
        std::istringstream is("vcoma-trace-v1\nthreads 0\n");
        EXPECT_THROW(TraceWorkload{is}, FatalError);
    }
    {
        std::istringstream is("vcoma-trace-v1\nthreads 2\n5 R 100 1\n");
        EXPECT_THROW(TraceWorkload{is}, FatalError);
    }
    {
        std::istringstream is("vcoma-trace-v1\nthreads 2\n0 X 1\n");
        EXPECT_THROW(TraceWorkload{is}, FatalError);
    }
}

TEST(Trace, DiagnosticsCarryLineNumbersAndDetail)
{
    auto messageOf = [](const std::string &text) {
        std::istringstream is(text);
        try {
            TraceWorkload w{is};
        } catch (const FatalError &e) {
            return std::string(e.what());
        }
        return std::string();
    };

    // Out-of-range thread ids name the line and the declared count.
    {
        const std::string msg =
            messageOf("vcoma-trace-v1\nthreads 2\n0 R 100 1\n5 R 100 1\n");
        EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
        EXPECT_NE(msg.find("declares 2 threads"), std::string::npos)
            << msg;
    }
    // A second 'threads' header is called out as such, not as a
    // generic malformed event.
    {
        const std::string msg = messageOf(
            "vcoma-trace-v1\nthreads 2\n0 R 100 1\nthreads 2\n");
        EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
        EXPECT_NE(msg.find("duplicate 'threads'"), std::string::npos)
            << msg;
    }
    // Trailing garbage after a well-formed event is an error, not a
    // silently ignored suffix.
    {
        const std::string msg = messageOf(
            "vcoma-trace-v1\nthreads 2\n0 R 100 1 junk\n");
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("trailing garbage 'junk'"),
                  std::string::npos)
            << msg;
    }
    {
        const std::string msg =
            messageOf("vcoma-trace-v1\nthreads 2 extra\n");
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("trailing garbage"), std::string::npos)
            << msg;
    }
    // Truncated events report the line and the event family.
    {
        const std::string msg =
            messageOf("vcoma-trace-v1\nthreads 2\n1 W 100\n");
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("truncated memory event"),
                  std::string::npos)
            << msg;
    }
    {
        const std::string msg =
            messageOf("vcoma-trace-v1\nthreads 2\n1 B\n");
        EXPECT_NE(msg.find("truncated barrier event"),
                  std::string::npos)
            << msg;
    }
    // Blank lines are still tolerated and do not shift the numbering.
    {
        std::istringstream is(
            "vcoma-trace-v1\nthreads 2\n\n0 R 100 1\n\n1 R 108 1\n");
        TraceWorkload w{is};
        EXPECT_EQ(w.events(0).size(), 1u);
        EXPECT_EQ(w.events(1).size(), 1u);
    }
}

TEST(Trace, LocksAndBarriersSurvive)
{
    auto w = makeWorkload("OCEAN", params4());
    std::ostringstream os;
    recordTrace(*w, os);
    std::istringstream is(os.str());
    TraceWorkload replay(is);
    unsigned locks = 0;
    unsigned barriers = 0;
    for (unsigned t = 0; t < replay.numThreads(); ++t) {
        for (const MemRef &ref : replay.events(t)) {
            if (ref.kind == MemRef::Kind::LockAcquire)
                ++locks;
            if (ref.kind == MemRef::Kind::Barrier)
                ++barriers;
        }
    }
    EXPECT_GT(locks, 0u);
    EXPECT_GT(barriers, 0u);
    // The replay still runs to completion on a machine.
    Machine m(tinyConfig(Scheme::L0));
    EXPECT_NO_THROW(m.run(replay));
}