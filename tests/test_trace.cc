/** @file Tests for trace recording and replay. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/machine.hh"
#include "sim/trace.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

WorkloadParams
params4()
{
    WorkloadParams p;
    p.threads = 4;
    p.scale = 0.05;
    p.seed = 11;
    return p;
}

} // namespace

TEST(Trace, RecordProducesHeaderAndEvents)
{
    auto w = makeWorkload("STRIDE", params4());
    std::ostringstream os;
    const std::uint64_t events = recordTrace(*w, os);
    EXPECT_GT(events, 0u);
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("vcoma-trace-v1\nthreads 4\n", 0), 0u);
}

TEST(Trace, RoundTripPreservesPerThreadStreams)
{
    auto w1 = makeWorkload("STRIDE", params4());
    std::ostringstream os;
    recordTrace(*w1, os);
    std::istringstream is(os.str());
    TraceWorkload replay(is);

    ASSERT_EQ(replay.numThreads(), 4u);
    // Replay thread streams must equal the original workload's.
    auto w2 = makeWorkload("STRIDE", params4());
    for (unsigned t = 0; t < 4; ++t) {
        auto gen = w2->thread(t);
        std::size_t i = 0;
        while (auto ref = gen.next()) {
            ASSERT_LT(i, replay.events(t).size()) << "thread " << t;
            const MemRef &got = replay.events(t)[i++];
            EXPECT_EQ(got.kind, ref->kind);
            EXPECT_EQ(got.vaddr, ref->vaddr);
            EXPECT_EQ(got.type, ref->type);
            EXPECT_EQ(got.work, ref->work);
            EXPECT_EQ(got.syncId, ref->syncId);
        }
        EXPECT_EQ(i, replay.events(t).size());
    }
}

TEST(Trace, ReplayRunsIdenticallyToOriginal)
{
    // Barrier-phased, lock-free kernels replay with identical timing.
    RunStats original;
    {
        Machine m(tinyConfig(Scheme::VCOMA));
        auto w = makeWorkload("STRIDE", params4());
        original = m.run(*w);
    }
    std::ostringstream os;
    {
        auto w = makeWorkload("STRIDE", params4());
        recordTrace(*w, os);
    }
    std::istringstream is(os.str());
    TraceWorkload replay(is);
    Machine m(tinyConfig(Scheme::VCOMA));
    const RunStats replayed = m.run(replay);
    EXPECT_EQ(replayed.execTime, original.execTime);
    EXPECT_EQ(replayed.totalRefs(), original.totalRefs());
    EXPECT_EQ(replayed.remoteReads, original.remoteReads);
}

TEST(Trace, SyntheticSegmentCoversAddresses)
{
    auto w = makeWorkload("UNIFORM", params4());
    std::ostringstream os;
    recordTrace(*w, os);
    std::istringstream is(os.str());
    TraceWorkload replay(is);
    ASSERT_FALSE(replay.space().segments().empty());
    const Segment &seg = replay.space().segments().front();
    for (unsigned t = 0; t < replay.numThreads(); ++t) {
        for (const MemRef &ref : replay.events(t)) {
            if (ref.kind != MemRef::Kind::Mem)
                continue;
            EXPECT_GE(ref.vaddr, seg.base);
            EXPECT_LT(ref.vaddr, seg.end());
        }
    }
}

TEST(Trace, RejectsMalformedInput)
{
    {
        std::istringstream is("not-a-trace\n");
        EXPECT_THROW(TraceWorkload{is}, FatalError);
    }
    {
        std::istringstream is("vcoma-trace-v1\nthreads 0\n");
        EXPECT_THROW(TraceWorkload{is}, FatalError);
    }
    {
        std::istringstream is("vcoma-trace-v1\nthreads 2\n5 R 100 1\n");
        EXPECT_THROW(TraceWorkload{is}, FatalError);
    }
    {
        std::istringstream is("vcoma-trace-v1\nthreads 2\n0 X 1\n");
        EXPECT_THROW(TraceWorkload{is}, FatalError);
    }
}

TEST(Trace, LocksAndBarriersSurvive)
{
    auto w = makeWorkload("OCEAN", params4());
    std::ostringstream os;
    recordTrace(*w, os);
    std::istringstream is(os.str());
    TraceWorkload replay(is);
    unsigned locks = 0;
    unsigned barriers = 0;
    for (unsigned t = 0; t < replay.numThreads(); ++t) {
        for (const MemRef &ref : replay.events(t)) {
            if (ref.kind == MemRef::Kind::LockAcquire)
                ++locks;
            if (ref.kind == MemRef::Kind::Barrier)
                ++barriers;
        }
    }
    EXPECT_GT(locks, 0u);
    EXPECT_GT(barriers, 0u);
    // The replay still runs to completion on a machine.
    Machine m(tinyConfig(Scheme::L0));
    EXPECT_NO_THROW(m.run(replay));
}