/**
 * @file
 * Byte-identity tests for packed-trace record/replay: a simulation
 * replayed from a recorded trace must be indistinguishable — every
 * RunStats field, every component counter, the stats JSON byte for
 * byte — from the live run that recorded it, with the fast path both
 * on and off. Replay is a speed knob, never a model knob.
 *
 * Also covers the Runner integration ($VCOMA_TRACE_DIR): the first
 * execution records, later executions replay, and an unusable trace
 * falls back to live generation and re-records instead of crashing or
 * silently replaying garbage.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>

#include "harness/runner.hh"
#include "sim/machine.hh"
#include "sim/memref_pack.hh"
#include "sim/run_stats_json.hh"
#include "translation/system_builder.hh"
#include "workloads/replay.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

struct TempDir
{
    TempDir()
    {
        // pid + per-process sequence: tests that hold several live
        // TempDirs at once (trace dir + two cache dirs) must not
        // collide.
        static int seq = 0;
        path = std::filesystem::temp_directory_path() /
               ("vcoma_test_replay_" + std::to_string(::getpid()) +
                "_" + std::to_string(seq++));
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::filesystem::path path;
};

/** Scoped setenv/unsetenv that restores the previous value. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            wasSet_ = false;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~EnvGuard()
    {
        if (wasSet_)
            ::setenv(name_, saved_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

    const char *name_;
    std::string saved_;
    bool wasSet_ = true;
};

struct RunResult
{
    RunStats stats;
    /** Full stats sheet (every component counter). */
    std::string dump;
    /** writeRunStatsJson() output (every RunStats field). */
    std::string json;
};

RunResult
runMachine(const MachineConfig &cfg, Workload &workload)
{
    Machine machine(cfg);
    RunResult r;
    r.stats = machine.run(workload);
    std::ostringstream dump;
    machine.dumpStats(dump);
    r.dump = dump.str();
    std::ostringstream json;
    writeRunStatsJson(json, r.stats);
    r.json = json.str();
    return r;
}

/** Live run of @p workload, recorded into @p tracePath. */
RunResult
runLiveRecording(const std::string &workload, bool fastPath,
                 const std::string &tracePath)
{
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    cfg.fastPath = fastPath;
    WorkloadParams p;
    p.threads = cfg.numNodes;
    p.scale = 0.02;
    auto live = makeWorkload(workload, p);
    RecordingWorkload recorder(*live, tracePath, "identity-test");
    RunResult r = runMachine(cfg, recorder);
    EXPECT_TRUE(recorder.finalize());
    return r;
}

RunResult
runReplay(bool fastPath, const std::string &tracePath)
{
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    cfg.fastPath = fastPath;
    ReplayWorkload replay(tracePath);
    return runMachine(cfg, replay);
}

} // namespace

using Case = std::tuple<std::string, bool>;

class ReplayIdentity : public ::testing::TestWithParam<Case>
{
};

TEST_P(ReplayIdentity, ReplayedRunIsByteIdenticalToLiveRun)
{
    const auto [workload, fastPath] = GetParam();
    // The config knob must decide the path, not the caller's
    // environment.
    EnvGuard env("VCOMA_FASTPATH", nullptr);

    TempDir dir;
    const std::string trace = (dir.path / "run.vctrace").string();
    const RunResult live = runLiveRecording(workload, fastPath, trace);
    ASSERT_TRUE(std::filesystem::exists(trace));
    const RunResult replayed = runReplay(fastPath, trace);

    // The JSON line carries every RunStats field and the dump the
    // full per-component counter hierarchy: exact string identity is
    // the strongest statement the stats layer can express.
    EXPECT_EQ(replayed.json, live.json);
    EXPECT_EQ(replayed.dump, live.dump);
}

INSTANTIATE_TEST_SUITE_P(
    SplashKernelsAndSynthetic, ReplayIdentity,
    ::testing::Combine(::testing::Values("RADIX", "FFT", "FMM", "OCEAN",
                                         "RAYTRACE", "BARNES",
                                         "UNIFORM", "KVLOOKUP", "GRAPH",
                                         "STREAMJOIN"),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<Case> &info) {
        std::string n = std::get<0>(info.param) +
                        (std::get<1>(info.param) ? "_fast" : "_slow");
        n.erase(std::remove_if(n.begin(), n.end(),
                               [](char c) {
                                   return !std::isalnum(
                                              static_cast<unsigned char>(
                                                  c)) &&
                                          c != '_';
                               }),
                n.end());
        return n;
    });

TEST(Replay, CarriesRecordedWorkloadIdentity)
{
    // name()/parameters()/sharedBytes() come from the trace header,
    // so a replayed run's stats sheet names the real workload.
    TempDir dir;
    const std::string trace = (dir.path / "meta.vctrace").string();
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    WorkloadParams p;
    p.threads = cfg.numNodes;
    p.scale = 0.02;
    auto live = makeWorkload("UNIFORM", p);
    RecordingWorkload recorder(*live, trace, "meta-key");
    Machine machine(cfg);
    machine.run(recorder);
    ASSERT_TRUE(recorder.finalize());

    ReplayWorkload replay(trace);
    EXPECT_EQ(replay.name(), live->name());
    EXPECT_EQ(replay.parameters(), live->parameters());
    EXPECT_EQ(replay.numThreads(), live->numThreads());
    EXPECT_EQ(replay.sharedBytes(), live->sharedBytes());
    EXPECT_EQ(replay.recordedKey(), "meta-key");
    EXPECT_GT(replay.totalEvents(), 0u);
    EXPECT_TRUE(replay.materialised());
}

TEST(Replay, CoroutineViewMatchesMaterialisedStreams)
{
    // thread(tid) and stream(tid) must expose the same events: tools
    // (recordTrace, the trace dumper) use the coroutine view while
    // Machine::run consumes the spans.
    TempDir dir;
    const std::string trace = (dir.path / "views.vctrace").string();
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    WorkloadParams p;
    p.threads = cfg.numNodes;
    p.scale = 0.02;
    auto live = makeWorkload("STRIDE", p);
    RecordingWorkload recorder(*live, trace, "k");
    Machine machine(cfg);
    machine.run(recorder);
    ASSERT_TRUE(recorder.finalize());

    ReplayWorkload replay(trace);
    for (unsigned tid = 0; tid < replay.numThreads(); ++tid) {
        const auto span = replay.stream(tid);
        Generator<MemRef> gen = replay.thread(tid);
        std::size_t i = 0;
        while (const MemRef *ref = gen.nextPtr()) {
            ASSERT_LT(i, span.size()) << "tid " << tid;
            EXPECT_EQ(ref->kind, span[i].kind);
            EXPECT_EQ(ref->vaddr, span[i].vaddr);
            EXPECT_EQ(ref->work, span[i].work);
            ++i;
        }
        EXPECT_EQ(i, span.size()) << "tid " << tid;
    }
}

namespace
{

ExperimentConfig
tinyExperiment()
{
    ExperimentConfig cfg;
    cfg.workload = "UNIFORM";
    cfg.scheme = Scheme::VCOMA;
    cfg.nodes = 32;
    cfg.scale = 0.02;
    return cfg;
}

std::string
statsJson(const RunStats &stats)
{
    std::ostringstream os;
    writeRunStatsJson(os, stats);
    return os.str();
}

} // namespace

TEST(RunnerReplay, FirstRunRecordsLaterRunsReplayIdentically)
{
    TempDir traces;
    EnvGuard traceDir("VCOMA_TRACE_DIR", traces.path.string().c_str());
    EnvGuard traceMax("VCOMA_TRACE_MAX_MB", nullptr);
    const ExperimentConfig cfg = tinyExperiment();
    const std::string tracePath =
        (traces.path / (cfg.key() + ".vctrace")).string();

    // No disk cache: each fresh Runner must actually simulate, which
    // is exactly what makes the second one replay.
    std::string first;
    {
        Runner runner("");
        first = statsJson(runner.run(cfg));
        EXPECT_EQ(runner.executed(), 1u);
    }
    EXPECT_TRUE(std::filesystem::exists(tracePath))
        << "first execution must record its trace";
    {
        Runner runner("");
        EXPECT_EQ(statsJson(runner.run(cfg)), first)
            << "replayed execution diverged from the live run";
        EXPECT_EQ(runner.executed(), 1u);
    }
}

TEST(RunnerReplay, ReplayedRunWritesByteIdenticalCacheEntries)
{
    // The disk-cache entry a replayed execution stores must be byte
    // for byte the file the live execution would have written: the
    // cache cannot tell (and must not care) which mode produced it.
    TempDir traces;
    TempDir liveCache;
    TempDir replayCache;
    EnvGuard traceDir("VCOMA_TRACE_DIR", traces.path.string().c_str());
    EnvGuard traceMax("VCOMA_TRACE_MAX_MB", nullptr);
    const ExperimentConfig cfg = tinyExperiment();

    {
        Runner runner(liveCache.path.string());
        runner.run(cfg);
        EXPECT_EQ(runner.executed(), 1u);
    }
    {
        Runner runner(replayCache.path.string());
        runner.run(cfg);
        EXPECT_EQ(runner.executed(), 1u) << "fresh cache must simulate";
    }
    const std::filesystem::path entry =
        std::filesystem::path(cfg.key() + ".txt");
    const auto readAll = [](const std::filesystem::path &p) {
        std::ifstream in(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    };
    const std::string live = readAll(liveCache.path / entry);
    const std::string replayed = readAll(replayCache.path / entry);
    ASSERT_FALSE(live.empty());
    EXPECT_EQ(replayed, live)
        << "replayed run's cache entry differs from the live run's";
}

TEST(RunnerReplay, CorruptTraceFallsBackAndReRecords)
{
    TempDir traces;
    EnvGuard traceDir("VCOMA_TRACE_DIR", traces.path.string().c_str());
    EnvGuard traceMax("VCOMA_TRACE_MAX_MB", nullptr);
    const ExperimentConfig cfg = tinyExperiment();
    const std::string tracePath =
        (traces.path / (cfg.key() + ".vctrace")).string();

    std::string first;
    {
        Runner runner("");
        first = statsJson(runner.run(cfg));
    }
    ASSERT_TRUE(std::filesystem::exists(tracePath));
    // Clobber the trace: the next run must not crash, must not
    // replay garbage, and must leave a valid re-recorded trace.
    std::ofstream(tracePath, std::ios::binary | std::ios::trunc)
        << "not a trace";
    {
        Runner runner("");
        EXPECT_EQ(statsJson(runner.run(cfg)), first)
            << "fallback run diverged from the original";
    }
    EXPECT_NO_THROW(PackedTrace{tracePath})
        << "fallback must re-record a valid trace";
}

TEST(RunnerReplay, TruncatedTraceFallsBack)
{
    TempDir traces;
    EnvGuard traceDir("VCOMA_TRACE_DIR", traces.path.string().c_str());
    EnvGuard traceMax("VCOMA_TRACE_MAX_MB", nullptr);
    const ExperimentConfig cfg = tinyExperiment();
    const std::string tracePath =
        (traces.path / (cfg.key() + ".vctrace")).string();

    std::string first;
    {
        Runner runner("");
        first = statsJson(runner.run(cfg));
    }
    ASSERT_TRUE(std::filesystem::exists(tracePath));
    std::filesystem::resize_file(
        tracePath, std::filesystem::file_size(tracePath) / 2);
    Runner runner("");
    EXPECT_EQ(statsJson(runner.run(cfg)), first);
}

TEST(RunnerReplay, TraceWorkloadSpellingMatchesTheRecordedRun)
{
    // An external trace promoted to a first-class workload
    // ("TRACE:<path>") must reproduce the recorded run's sheet byte
    // for byte: the trace header carries the original workload's
    // name/parameters, so even the labelling is identical.
    TempDir traces;
    std::string first;
    std::string tracePath;
    {
        EnvGuard traceDir("VCOMA_TRACE_DIR",
                          traces.path.string().c_str());
        EnvGuard traceMax("VCOMA_TRACE_MAX_MB", nullptr);
        Runner runner("");
        const ExperimentConfig cfg = tinyExperiment();
        first = statsJson(runner.run(cfg));
        tracePath = (traces.path / (cfg.key() + ".vctrace")).string();
    }
    ASSERT_TRUE(std::filesystem::exists(tracePath));

    // Replay through the TRACE: spelling, with no trace dir in play.
    ExperimentConfig replayCfg = tinyExperiment();
    replayCfg.workload = "TRACE:" + tracePath;
    Runner runner("");
    EXPECT_EQ(statsJson(runner.run(replayCfg)), first)
        << "TRACE: workload diverged from the run that recorded it";
    EXPECT_EQ(runner.executed(), 1u);
}

TEST(RunnerReplay, TraceWorkloadsBypassTheRecordReplayDir)
{
    // With VCOMA_TRACE_DIR set, a TRACE: workload must neither look
    // for a recorded trace under its own key nor re-record one —
    // recording a replay is circular and its key could never match.
    TempDir traces;
    std::string tracePath;
    std::string first;
    {
        EnvGuard traceDir("VCOMA_TRACE_DIR",
                          traces.path.string().c_str());
        EnvGuard traceMax("VCOMA_TRACE_MAX_MB", nullptr);
        const ExperimentConfig cfg = tinyExperiment();
        {
            Runner runner("");
            first = statsJson(runner.run(cfg));
        }
        tracePath = (traces.path / (cfg.key() + ".vctrace")).string();
        ASSERT_TRUE(std::filesystem::exists(tracePath));

        ExperimentConfig replayCfg = tinyExperiment();
        replayCfg.workload = "TRACE:" + tracePath;
        Runner runner("");
        EXPECT_EQ(statsJson(runner.run(replayCfg)), first);
    }
    unsigned traceFiles = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(traces.path)) {
        if (entry.path().extension() == ".vctrace")
            ++traceFiles;
    }
    EXPECT_EQ(traceFiles, 1u)
        << "the TRACE: run must not add traces to the record dir";
}

TEST(RunnerReplay, KeyMismatchedTraceIsRegenerated)
{
    // A trace recorded under some other config (say, after a rename
    // or a copied directory) must never be replayed for this one.
    TempDir traces;
    EnvGuard traceDir("VCOMA_TRACE_DIR", traces.path.string().c_str());
    EnvGuard traceMax("VCOMA_TRACE_MAX_MB", nullptr);
    const ExperimentConfig uniform = tinyExperiment();
    ExperimentConfig stride = tinyExperiment();
    stride.workload = "STRIDE";

    std::string strideJson;
    {
        Runner runner("");
        runner.run(uniform);
        strideJson = statsJson(runner.run(stride));
    }
    // Plant UNIFORM's trace at STRIDE's path.
    std::filesystem::copy_file(
        traces.path / (uniform.key() + ".vctrace"),
        traces.path / (stride.key() + ".vctrace"),
        std::filesystem::copy_options::overwrite_existing);
    Runner runner("");
    EXPECT_EQ(statsJson(runner.run(stride)), strideJson)
        << "a key-mismatched trace must be regenerated, not replayed";
}
