/**
 * @file
 * Tests for the fault-tolerant simulation farm: hash-ring stability
 * under membership change, TCP transport round-trips, bounded line
 * framing, the retry/backoff schedule, chaos-spec parsing and
 * determinism, heartbeat-driven eviction and re-admission, failover
 * routing, client timeout/reconnect behaviour, memo preloading from
 * the disk cache, and the headline scenario: a worker SIGKILLed in
 * the middle of a sweep with every sheet still byte-identical to a
 * direct local run.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "harness/runner.hh"
#include "service/chaos.hh"
#include "service/client.hh"
#include "service/farm.hh"
#include "service/server.hh"
#include "service/transport.hh"
#include "service/wire.hh"
#include "sim/run_stats_json.hh"

using namespace vcoma;

namespace
{

ExperimentConfig
tinyConfig(const char *workload = "UNIFORM")
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.scheme = Scheme::VCOMA;
    cfg.nodes = 32;
    cfg.scale = 0.05;
    return cfg;
}

ExperimentConfig
tinySeeded(std::uint64_t seed)
{
    ExperimentConfig cfg = tinyConfig();
    cfg.seed = seed;
    return cfg;
}

std::string
sheetOf(const RunStats &stats)
{
    std::ostringstream os;
    writeRunStatsJson(os, stats);
    return os.str();
}

/** Short socket path (sun_path is ~108 bytes; build dirs run long). */
std::string
shortSocketPath(const char *tag)
{
    return "/tmp/vcoma_farm_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".sock";
}

std::string
tempDir(const char *tag)
{
    const std::string dir = "/tmp/vcoma_farm_" + std::string(tag) +
                            "_" + std::to_string(::getpid());
    std::filesystem::create_directories(dir);
    return dir;
}

} // namespace

// ---------------------------------------------------------------------
// Consistent hashing.

TEST(HashRing, OwnerIsFirstCandidateAndEveryMemberListedOnce)
{
    const HashRing ring({"alpha", "beta", "gamma"}, 32);
    for (int i = 0; i < 50; ++i) {
        const std::string key = "key-" + std::to_string(i);
        const auto order = ring.candidates(key);
        ASSERT_EQ(order.size(), 3u) << key;
        EXPECT_EQ(order[0], ring.owner(key)) << key;
        std::vector<bool> seen(3, false);
        for (const std::size_t m : order) {
            ASSERT_LT(m, 3u);
            EXPECT_FALSE(seen[m]) << key;
            seen[m] = true;
        }
    }
}

TEST(HashRing, VnodesSpreadKeysAcrossEveryMember)
{
    const HashRing ring({"a", "b", "c"}, 64);
    std::map<std::size_t, unsigned> owned;
    for (int i = 0; i < 300; ++i)
        ++owned[ring.owner("cfg-" + std::to_string(i))];
    EXPECT_EQ(owned.size(), 3u);
    for (const auto &[member, count] : owned)
        EXPECT_GT(count, 0u) << member;
}

TEST(HashRing, MembershipChangeOnlyRemapsTheRemovedMembersKeys)
{
    // Remove "beta": keys owned by "alpha" or "gamma" must keep
    // their owner (by name) — the point of consistent hashing is
    // that a dead worker does not reshuffle the survivors' slices
    // (and their warm memo caches).
    const HashRing before({"alpha", "beta", "gamma"}, 64);
    const HashRing after({"alpha", "gamma"}, 64);
    unsigned kept = 0, moved = 0;
    for (int i = 0; i < 400; ++i) {
        const std::string key = "key-" + std::to_string(i);
        const std::string &was = before.member(before.owner(key));
        const std::string &now = after.member(after.owner(key));
        if (was == "beta") {
            ++moved;  // orphaned keys land somewhere
        } else {
            EXPECT_EQ(was, now) << key;
            ++kept;
        }
    }
    EXPECT_GT(kept, 0u);
    EXPECT_GT(moved, 0u);
}

// ---------------------------------------------------------------------
// Endpoint parsing and the TCP transport.

TEST(Transport, EndpointSpellingsParse)
{
    const Endpoint tcp = parseEndpoint("tcp:127.0.0.1:7717");
    EXPECT_EQ(tcp.kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(tcp.host, "127.0.0.1");
    EXPECT_EQ(tcp.port, 7717);
    EXPECT_EQ(tcp.str(), "tcp:127.0.0.1:7717");

    const Endpoint slashes = parseEndpoint("tcp://localhost:80");
    EXPECT_EQ(slashes.kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(slashes.host, "localhost");
    EXPECT_EQ(slashes.port, 80);

    const Endpoint prefixed = parseEndpoint("unix:/tmp/x.sock");
    EXPECT_EQ(prefixed.kind, Endpoint::Kind::Unix);
    EXPECT_EQ(prefixed.path, "/tmp/x.sock");

    const Endpoint plain = parseEndpoint("vcoma.sock");
    EXPECT_EQ(plain.kind, Endpoint::Kind::Unix);
    EXPECT_EQ(plain.path, "vcoma.sock");

    EXPECT_THROW(parseEndpoint("tcp:nohost"), FatalError);
    EXPECT_THROW(parseEndpoint("tcp::123"), FatalError);
    EXPECT_THROW(parseEndpoint("tcp:host:notaport"), FatalError);
    EXPECT_THROW(parseEndpoint("tcp:host:99999"), FatalError);
}

TEST(Transport, TcpRoundTripIsByteExact)
{
    Runner runner("");
    ServiceConfig scfg;
    scfg.endpoint = "tcp:127.0.0.1:0";  // kernel-assigned port
    scfg.queueCapacity = 8;
    scfg.workers = 2;
    ServiceServer server(runner, scfg);
    server.start();
    ASSERT_NE(server.boundEndpoint(), scfg.endpoint)
        << "port 0 must resolve to the kernel's choice";

    const ExperimentConfig cfg = tinyConfig();
    ServiceClient client(server.boundEndpoint());
    ASSERT_TRUE(client.ping());
    const auto out = client.run(cfg);
    ASSERT_TRUE(out.ok) << out.error;

    Runner direct("");
    EXPECT_EQ(out.statsJson, sheetOf(direct.run(cfg)));
    server.requestStop();
    server.waitUntilStopped();
}

TEST(Transport, LineBufferCapsFramesAndRecovers)
{
    LineBuffer buf(16);
    std::string line;

    // A frame over the cap: reported Overlong exactly once, then the
    // next (legal) frame still parses.
    const std::string big(40, 'x');
    buf.append(big.data(), big.size());
    EXPECT_EQ(buf.next(line), LineBuffer::Next::Need);
    EXPECT_TRUE(buf.midLine());
    buf.append("\nok\n", 4);
    EXPECT_EQ(buf.next(line), LineBuffer::Next::Overlong);
    EXPECT_EQ(buf.next(line), LineBuffer::Next::Line);
    EXPECT_EQ(line, "ok");
    EXPECT_EQ(buf.next(line), LineBuffer::Next::Need);
    EXPECT_FALSE(buf.midLine());

    // Split delivery of a legal frame.
    buf.append("ab", 2);
    EXPECT_EQ(buf.next(line), LineBuffer::Next::Need);
    buf.append("c\n", 2);
    EXPECT_EQ(buf.next(line), LineBuffer::Next::Line);
    EXPECT_EQ(line, "abc");
}

TEST(Transport, OversizedRequestGetsAProtocolErrorNotAHang)
{
    Runner runner("");
    ServiceConfig scfg;
    scfg.endpoint = shortSocketPath("overlong");
    scfg.queueCapacity = 4;
    scfg.workers = 1;
    scfg.maxLineBytes = 256;
    ServiceServer server(runner, scfg);
    server.start();

    ServiceClient client(scfg.endpoint);
    const std::string reply =
        client.request(std::string(1024, ' ') + "{\"op\":\"ping\"}");
    const JsonValue v = JsonValue::parse(reply);
    EXPECT_FALSE(v.at("ok").asBool());
    EXPECT_NE(v.at("error").asString().find("exceeds"),
              std::string::npos)
        << v.at("error").asString();

    // The connection survives; a legal request still works.
    EXPECT_TRUE(client.ping());
    server.requestStop();
    server.waitUntilStopped();
}

// ---------------------------------------------------------------------
// Retry/backoff schedule.

TEST(Backoff, DelayStaysWithinTheJitterWindow)
{
    Rng rng(7);
    for (unsigned attempt = 0; attempt < 12; ++attempt) {
        const std::uint64_t cap = 2000, base = 50;
        const std::uint64_t d =
            std::min(cap, attempt < 63 ? base << attempt : cap);
        for (int i = 0; i < 20; ++i) {
            const std::uint64_t got =
                ServiceClient::backoffDelayMs(attempt, base, cap, rng);
            EXPECT_GE(got, d / 2) << attempt;
            EXPECT_LE(got, d) << attempt;
        }
    }
}

TEST(Backoff, ZeroBaseMeansNoDelayAndSeedsAreDeterministic)
{
    Rng rng(1);
    EXPECT_EQ(ServiceClient::backoffDelayMs(5, 0, 1000, rng), 0u);

    Rng a(42), b(42);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(ServiceClient::backoffDelayMs(i, 50, 2000, a),
                  ServiceClient::backoffDelayMs(i, 50, 2000, b))
            << i;
}

// ---------------------------------------------------------------------
// Chaos specs.

TEST(Chaos, SpecGrammarParses)
{
    const ChaosSpec s = parseChaosSpec(
        "seed=42,drop=0.05,delay=0.2,delay-ms=10,kill=0.002");
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.seed, 42u);
    EXPECT_DOUBLE_EQ(s.dropP, 0.05);
    EXPECT_DOUBLE_EQ(s.delayP, 0.2);
    EXPECT_EQ(s.delayMs, 10u);
    EXPECT_DOUBLE_EQ(s.killP, 0.002);

    // Bare truthy value: mild connection chaos, never self-kill.
    const ChaosSpec mild = parseChaosSpec("1");
    EXPECT_TRUE(mild.enabled);
    EXPECT_GT(mild.dropP, 0.0);
    EXPECT_DOUBLE_EQ(mild.killP, 0.0);

    EXPECT_THROW(parseChaosSpec("drop=1.5"), FatalError);
    EXPECT_THROW(parseChaosSpec("frobnicate=1"), FatalError);
    EXPECT_THROW(parseChaosSpec("drop=abc"), FatalError);
}

TEST(Chaos, SameSeedSameVerdicts)
{
    ChaosSpec spec = parseChaosSpec("seed=9,drop=0.3,delay=0.3");
    ChaosMonkey a(spec), b(spec);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(a.dropConnection(), b.dropConnection()) << i;
        EXPECT_EQ(a.requestDelayMs(), b.requestDelayMs()) << i;
        EXPECT_FALSE(a.killNow());  // killP 0: never
    }
}

// ---------------------------------------------------------------------
// Client resilience without a farm.

TEST(ClientResilience, HungServerYieldsTypedTimeoutNotAHang)
{
    // A listener that never accepts: the connect completes (backlog),
    // the send lands in the kernel buffer, and no reply ever comes.
    const std::string path = shortSocketPath("hung");
    const int listenFd = listenEndpoint(parseEndpoint(path));
    ASSERT_GE(listenFd, 0);

    ClientOptions opts;
    opts.connectTimeoutMs = 2000;
    opts.requestTimeoutMs = 200;
    opts.maxRetries = 0;
    ServiceClient client(path, opts);
    const auto before = std::chrono::steady_clock::now();
    const auto out = client.run(tinyConfig());
    const auto waited = std::chrono::duration_cast<
        std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - before);
    EXPECT_FALSE(out.ok);
    EXPECT_TRUE(out.timedOut) << out.error;
    EXPECT_LT(waited.count(), 5000) << "deadline did not bound the wait";
    ::close(listenFd);
    std::filesystem::remove(path);
}

TEST(ClientResilience, ReconnectsAfterDaemonRestart)
{
    const std::string path = shortSocketPath("restart");
    Runner runner("");
    auto first = std::make_unique<ServiceServer>(runner, [&] {
        ServiceConfig c;
        c.endpoint = path;
        c.queueCapacity = 4;
        c.workers = 1;
        return c;
    }());
    first->start();

    ClientOptions opts;
    opts.connectTimeoutMs = 3000;
    opts.requestTimeoutMs = 30000;
    opts.maxRetries = 3;
    opts.backoffBaseMs = 10;
    opts.backoffCapMs = 50;
    ServiceClient client(path, opts);
    ASSERT_TRUE(client.run(tinyConfig()).ok);

    // Kill the daemon and bring up a fresh one on the same path: the
    // client's next resilient run must reconnect and succeed.
    first->requestStop();
    first->waitUntilStopped();
    first.reset();
    Runner runner2("");
    ServiceServer second(runner2, [&] {
        ServiceConfig c;
        c.endpoint = path;
        c.queueCapacity = 4;
        c.workers = 1;
        return c;
    }());
    second.start();

    const auto out = client.runResilient(tinySeeded(2));
    EXPECT_TRUE(out.ok) << out.error;
    second.requestStop();
    second.waitUntilStopped();
}

// ---------------------------------------------------------------------
// The farm router.

namespace
{

/** An in-process worker on its own socket, with its own Runner. */
struct LocalWorker
{
    explicit LocalWorker(const std::string &endpoint,
                         const std::string &cacheDir = "")
        : runner(cacheDir)
    {
        ServiceConfig c;
        c.endpoint = endpoint;
        c.queueCapacity = 16;
        c.workers = 2;
        server = std::make_unique<ServiceServer>(runner, c);
        server->start();
    }

    Runner runner;
    std::unique_ptr<ServiceServer> server;
};

FarmConfig
quickFarm(const std::string &endpoint,
          std::vector<std::string> workers)
{
    FarmConfig f;
    f.endpoint = endpoint;
    f.workers = std::move(workers);
    f.heartbeatMs = 50;
    f.missThreshold = 2;
    f.heartbeatTimeoutMs = 300;
    f.connectTimeoutMs = 500;
    f.forwardTimeoutMs = 60000;
    f.forwardRounds = 3;
    f.backoffBaseMs = 10;
    f.backoffCapMs = 100;
    return f;
}

} // namespace

TEST(Farm, RoutesRunsAndReportsItselfAsFarm)
{
    const std::string w1 = shortSocketPath("route_w1");
    const std::string w2 = shortSocketPath("route_w2");
    LocalWorker a(w1), b(w2);
    FarmRouter router(quickFarm(shortSocketPath("route_f"), {w1, w2}));
    router.startFarm();

    ServiceClient client(router.boundEndpoint());
    const JsonValue pong =
        JsonValue::parse(client.request("{\"op\":\"ping\"}"));
    ASSERT_TRUE(pong.at("ok").asBool());
    EXPECT_EQ(pong.at("role").asString(), "farm");
    EXPECT_EQ(pong.at("workers").asUint(), 2u);

    const ExperimentConfig cfg = tinyConfig();
    const auto out = client.run(cfg);
    ASSERT_TRUE(out.ok) << out.error;
    Runner direct("");
    EXPECT_EQ(out.statsJson, sheetOf(direct.run(cfg)));

    // Same key again: the owning worker's memo makes it a cache hit.
    const auto again = client.run(cfg);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_TRUE(again.cached);
    EXPECT_EQ(again.statsJson, out.statsJson);

    const JsonValue stats = JsonValue::parse(client.statsLine());
    ASSERT_TRUE(stats.at("ok").asBool());
    EXPECT_GE(stats.at("farmStats").at("routed").asUint(), 2u);
    EXPECT_EQ(stats.at("farmStats").at("unrouted").asUint(), 0u);

    // Exactly one worker simulated the config, exactly once.
    const unsigned executed =
        a.runner.executed() + b.runner.executed();
    EXPECT_EQ(executed, 1u);
}

TEST(Farm, BatchFansOutAndComesBackInOrder)
{
    const std::string w1 = shortSocketPath("batch_w1");
    const std::string w2 = shortSocketPath("batch_w2");
    LocalWorker a(w1), b(w2);
    FarmRouter router(quickFarm(shortSocketPath("batch_f"), {w1, w2}));
    router.startFarm();

    std::vector<ExperimentConfig> cfgs;
    for (std::uint64_t s = 1; s <= 5; ++s)
        cfgs.push_back(tinySeeded(s));
    ServiceClient client(router.boundEndpoint());
    const auto outcomes = client.batch(cfgs);
    ASSERT_EQ(outcomes.size(), cfgs.size());

    Runner direct("");
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok) << i << ": " << outcomes[i].error;
        EXPECT_EQ(outcomes[i].statsJson, sheetOf(direct.run(cfgs[i])))
            << i;
    }
}

TEST(Farm, HeartbeatEvictsDeadWorkerAndReadmitsOnRecovery)
{
    const std::string live = shortSocketPath("hb_live");
    const std::string dead = shortSocketPath("hb_dead");
    LocalWorker a(live);
    FarmRouter router(quickFarm(shortSocketPath("hb_f"), {live, dead}));
    router.startFarm();

    auto aliveFlags = [&] {
        std::map<std::string, bool> flags;
        for (const auto &w : router.workerStatus())
            flags[w.endpoint] = w.alive;
        return flags;
    };

    // Nothing listens on `dead`: within a few heartbeats it must be
    // evicted while the live worker stays in.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (aliveFlags()[dead] &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(aliveFlags()[dead]);
    EXPECT_TRUE(aliveFlags()[live]);

    // Every key still routes (to the survivor).
    ServiceClient client(router.boundEndpoint());
    for (std::uint64_t s = 1; s <= 4; ++s) {
        const auto out = client.run(tinySeeded(s));
        EXPECT_TRUE(out.ok) << out.error;
    }

    // Bring a worker up on the dead endpoint: heartbeats re-admit it.
    LocalWorker revived(dead);
    const auto deadline2 =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!aliveFlags()[dead] &&
           std::chrono::steady_clock::now() < deadline2)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(aliveFlags()[dead]);
}

// ---------------------------------------------------------------------
// Real worker processes: SIGKILL mid-sweep, byte-identical output.

namespace
{

pid_t
spawnWorker(const std::string &endpoint, const std::string &cacheDir)
{
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::execl(VCOMA_SERVED_BIN, "vcoma_served", "--socket",
                endpoint.c_str(), "--capacity", "16", "--workers", "2",
                "--cache-dir", cacheDir.c_str(),
                static_cast<char *>(nullptr));
        _exit(127);
    }
    return pid;
}

void
awaitWorker(const std::string &endpoint)
{
    ClientOptions opts;
    opts.connectTimeoutMs = 15000;
    opts.requestTimeoutMs = 5000;
    opts.maxRetries = 2;
    ServiceClient probe(endpoint, opts);
    ASSERT_TRUE(probe.ping()) << endpoint;
}

void
reap(pid_t pid)
{
    int status = 0;
    ::waitpid(pid, &status, 0);
}

} // namespace

TEST(FarmFailover, WorkerSigkilledMidSweepStillByteIdentical)
{
    const std::string dir = tempDir("kill");
    const std::string cache = dir + "/cache";
    std::filesystem::create_directories(cache);
    const std::string w1 = shortSocketPath("kill_w1");
    const std::string w2 = shortSocketPath("kill_w2");

    const pid_t pid1 = spawnWorker(w1, cache);
    const pid_t pid2 = spawnWorker(w2, cache);
    ASSERT_GT(pid1, 0);
    ASSERT_GT(pid2, 0);
    awaitWorker(w1);
    awaitWorker(w2);

    FarmRouter router(quickFarm(shortSocketPath("kill_f"), {w1, w2}));
    router.startFarm();

    std::vector<ExperimentConfig> cfgs;
    for (std::uint64_t s = 1; s <= 6; ++s)
        cfgs.push_back(tinySeeded(s));

    ClientOptions copts;
    copts.connectTimeoutMs = 5000;
    copts.requestTimeoutMs = 60000;
    copts.maxRetries = 5;
    copts.backoffBaseMs = 20;
    copts.backoffCapMs = 200;
    ServiceClient client(router.boundEndpoint(), copts);

    std::vector<std::string> sheets;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        if (i == 2) {
            // SIGKILL one worker mid-sweep: no drain, no goodbye.
            ::kill(pid1, SIGKILL);
            reap(pid1);
        }
        const auto out = client.runResilient(cfgs[i]);
        ASSERT_TRUE(out.ok) << i << ": " << out.error;
        sheets.push_back(out.statsJson);
    }

    // Byte-identical to a direct local Runner over the same configs.
    Runner direct("");
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        EXPECT_EQ(sheets[i], sheetOf(direct.run(cfgs[i]))) << i;

    // The farm noticed: the dead worker is evicted, and at least one
    // job needed the failover path (or was routed around the corpse).
    bool sawDead = false;
    for (const auto &w : router.workerStatus())
        if (w.endpoint == w1)
            sawDead = !w.alive;
    EXPECT_TRUE(sawDead);

    ServiceClient admin(router.boundEndpoint());
    EXPECT_TRUE(admin.shutdown());
    router.waitUntilStopped();
    reap(pid2);
    std::filesystem::remove_all(dir);
    std::filesystem::remove(w1);
    std::filesystem::remove(w2);
}

TEST(FarmFailover, RestartedWorkerRecoversWarmStateFromDiskCache)
{
    // The shared disk cache is the durable layer: a worker restarted
    // with --preload serves previously simulated configs as cache
    // hits without re-executing.
    const std::string dir = tempDir("preload");
    Runner first(dir);
    const ExperimentConfig cfg = tinySeeded(77);
    ASSERT_NE(first.tryRun(cfg), nullptr);
    EXPECT_EQ(first.executed(), 1u);

    Runner restarted(dir);
    EXPECT_GE(restarted.preloadCache(), 1u);
    bool fresh = true;
    ASSERT_NE(restarted.tryRun(cfg, &fresh), nullptr);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(restarted.executed(), 0u);
    std::filesystem::remove_all(dir);
}

TEST(FarmFailover, DuplicateSubmitsAcrossFailoverExecuteOnce)
{
    // Submit the same key before and after its owner dies: the
    // surviving worker (sharing the disk cache) serves the re-routed
    // duplicate from cache instead of re-simulating.
    const std::string dir = tempDir("dup");
    const std::string cache = dir + "/cache";
    std::filesystem::create_directories(cache);
    const std::string w1 = shortSocketPath("dup_w1");
    const std::string w2 = shortSocketPath("dup_w2");
    const pid_t pid1 = spawnWorker(w1, cache);
    const pid_t pid2 = spawnWorker(w2, cache);
    awaitWorker(w1);
    awaitWorker(w2);

    FarmRouter router(quickFarm(shortSocketPath("dup_f"), {w1, w2}));
    router.startFarm();

    ClientOptions copts;
    copts.connectTimeoutMs = 5000;
    copts.requestTimeoutMs = 60000;
    copts.maxRetries = 5;
    copts.backoffBaseMs = 20;
    copts.backoffCapMs = 200;
    ServiceClient client(router.boundEndpoint(), copts);

    const ExperimentConfig cfg = tinySeeded(123);
    const auto out1 = client.runResilient(cfg);
    ASSERT_TRUE(out1.ok) << out1.error;

    // Kill the worker that owns (served) the key; both candidates
    // share the cache directory, so kill the ring owner.
    const HashRing &ring = router.ring();
    const bool ownerIsW1 = ring.member(ring.owner(cfg.key())) == w1;
    ::kill(ownerIsW1 ? pid1 : pid2, SIGKILL);
    reap(ownerIsW1 ? pid1 : pid2);

    const auto out2 = client.runResilient(cfg);
    ASSERT_TRUE(out2.ok) << out2.error;
    EXPECT_EQ(out2.statsJson, out1.statsJson);
    // Served from the shared disk cache: no second simulation.
    EXPECT_TRUE(out2.cached);

    ServiceClient admin(router.boundEndpoint());
    EXPECT_TRUE(admin.shutdown());
    router.waitUntilStopped();
    reap(ownerIsW1 ? pid2 : pid1);
    std::filesystem::remove_all(dir);
    std::filesystem::remove(ownerIsW1 ? w2 : w1);
}
