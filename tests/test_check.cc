/**
 * @file
 * Tests for the robustness subsystem: the coherence sanitizer
 * (InvariantChecker) detects every FaultInjector class, the
 * forward-progress watchdog trips on a synthetic livelock with a
 * structured snapshot, and the deadlock report names the parked
 * waiters.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "check/fault_injector.hh"
#include "check/invariant_checker.hh"
#include "check/snapshot.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "sim/machine.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

/** Scoped setenv/unsetenv that restores the previous value. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            wasSet_ = false;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~EnvGuard()
    {
        if (wasSet_)
            ::setenv(name_, saved_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

    const char *name_;
    std::string saved_;
    bool wasSet_ = true;
};

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.threads = 4;
    p.scale = 0.05;
    p.seed = 3;
    return p;
}

/** Run UNIFORM to populate AM lines, directory entries and TLBs. */
void
populate(Machine &m)
{
    auto w = makeWorkload("UNIFORM", tinyParams());
    m.run(*w);
}

/** Endless lock ping-pong: time advances but no reference retires. */
class LivelockWorkload : public Workload
{
  public:
    explicit LivelockWorkload(unsigned threads) : threads_(threads) {}

    std::string name() const override { return "LIVELOCK"; }
    std::string parameters() const override { return "lock ping-pong"; }
    unsigned numThreads() const override { return threads_; }
    const AddressSpace &space() const override { return space_; }

    Generator<MemRef>
    thread(unsigned) override
    {
        for (;;) {
            co_yield MemRef::lock(0, 1);
            co_yield MemRef::unlock(0, 1);
        }
    }

  private:
    unsigned threads_;
    AddressSpace space_;
};

/** Thread 0 exits early; everyone else waits on a barrier forever. */
class DeadlockWorkload : public Workload
{
  public:
    explicit DeadlockWorkload(unsigned threads) : threads_(threads) {}

    std::string name() const override { return "DEADLOCK"; }
    std::string parameters() const override { return "missed barrier"; }
    unsigned numThreads() const override { return threads_; }
    const AddressSpace &space() const override { return space_; }

    Generator<MemRef>
    thread(unsigned tid) override
    {
        co_yield MemRef::read(0x1000 + tid * 64);
        if (tid != 0)
            co_yield MemRef::barrier(0);
    }

  private:
    unsigned threads_;
    AddressSpace space_;
};

} // namespace

TEST(EnvScaledFlag, ParsesOffOnAndScaledValues)
{
    {
        EnvGuard env("VCOMA_TEST_FLAG", nullptr);
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 0u);
    }
    {
        EnvGuard env("VCOMA_TEST_FLAG", "0");
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 0u);
    }
    {
        EnvGuard env("VCOMA_TEST_FLAG", "1");
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 4096u);
    }
    {
        EnvGuard env("VCOMA_TEST_FLAG", "250");
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 250u);
    }
    {
        EnvGuard env("VCOMA_TEST_FLAG", "yes");
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 4096u);
    }
}

TEST(InvariantChecker, CleanAfterHealthyRun)
{
    for (Scheme scheme : {Scheme::VCOMA, Scheme::L0, Scheme::L3}) {
        Machine m(tinyConfig(scheme));
        populate(m);
        InvariantChecker checker(m);
        const auto violations = checker.checkAll();
        EXPECT_TRUE(violations.empty())
            << schemeName(scheme) << ": " << violations.size()
            << " violation(s), first: "
            << (violations.empty() ? "" : violations[0].detail);
        EXPECT_NO_THROW(checker.enforce());
        EXPECT_EQ(checker.sweeps(), 2u);
    }
}

TEST(InvariantChecker, DetectsEveryFaultClass)
{
    for (FaultClass c : allFaultClasses()) {
        Machine m(tinyConfig(Scheme::VCOMA));
        populate(m);
        InvariantChecker checker(m);
        ASSERT_TRUE(checker.checkAll().empty())
            << faultClassName(c) << ": machine dirty before injection";

        FaultInjector injector(m, 42);
        const auto what = injector.inject(c);
        ASSERT_TRUE(what.has_value())
            << faultClassName(c) << ": no injectable target";
        EXPECT_EQ(injector.injected(), 1u);

        const auto violations = checker.checkAll();
        EXPECT_FALSE(violations.empty())
            << faultClassName(c) << " undetected after: " << *what;
        EXPECT_THROW(checker.enforce(), PanicError) << faultClassName(c);
    }
}

TEST(InvariantChecker, DetectsFaultsOnPhysicalScheme)
{
    // The physical-address schemes index their AMs by frame, so the
    // checker's reverse mapping differs; prove detection there too.
    for (FaultClass c : {FaultClass::CorruptAmState,
                         FaultClass::DropDirectoryEntry,
                         FaultClass::StaleTranslation}) {
        Machine m(tinyConfig(Scheme::L0));
        populate(m);
        InvariantChecker checker(m);
        ASSERT_TRUE(checker.checkAll().empty()) << faultClassName(c);

        FaultInjector injector(m, 7);
        const auto what = injector.inject(c);
        ASSERT_TRUE(what.has_value()) << faultClassName(c);
        EXPECT_FALSE(checker.checkAll().empty())
            << faultClassName(c) << " undetected after: " << *what;
    }
}

TEST(InvariantChecker, MachineSweepsDuringCheckedRun)
{
    EnvGuard env("VCOMA_CHECK", nullptr);
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    cfg.invariantCheckInterval = 64;
    Machine m(cfg);
    ASSERT_NE(m.checker(), nullptr);
    EXPECT_EQ(m.invariantCheckInterval(), 64u);
    populate(m);
    EXPECT_GT(m.checker()->sweeps(), 0u)
        << "a checked run must sweep at the configured interval";
}

TEST(InvariantChecker, EnvVariableEnablesChecking)
{
    {
        EnvGuard env("VCOMA_CHECK", nullptr);
        Machine m(tinyConfig(Scheme::VCOMA));
        EXPECT_EQ(m.checker(), nullptr);
        EXPECT_EQ(m.invariantCheckInterval(), 0u);
    }
    {
        EnvGuard env("VCOMA_CHECK", "1");
        Machine m(tinyConfig(Scheme::VCOMA));
        ASSERT_NE(m.checker(), nullptr);
        EXPECT_EQ(m.invariantCheckInterval(), 4096u);
    }
    {
        EnvGuard env("VCOMA_CHECK", "512");
        Machine m(tinyConfig(Scheme::VCOMA));
        ASSERT_NE(m.checker(), nullptr);
        EXPECT_EQ(m.invariantCheckInterval(), 512u);
    }
}

TEST(Watchdog, TripsOnLivelock)
{
    EnvGuard env("VCOMA_WATCHDOG", nullptr);
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    cfg.watchdogCycles = 10'000;
    Machine m(cfg);
    EXPECT_EQ(m.watchdogCycles(), 10'000u);

    LivelockWorkload w(cfg.numNodes);
    try {
        m.run(w);
        FAIL() << "livelock must trip the watchdog";
    } catch (const WatchdogError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
        EXPECT_NE(what.find("machine snapshot"), std::string::npos)
            << what;
        const MachineSnapshot &snap = e.snapshot();
        EXPECT_EQ(snap.cpus.size(), cfg.numNodes);
        EXPECT_GT(snap.now, snap.lastRetire + 10'000);
        EXPECT_EQ(snap.live, cfg.numNodes);
        // The lock ping-pong always has someone queued on lock 0.
        for (const auto &waiter : snap.waiters) {
            EXPECT_EQ(waiter.kind,
                      SyncManager::ParkedWaiter::Kind::Lock);
            EXPECT_EQ(waiter.id, 0u);
        }
    }
}

TEST(Watchdog, OffByDefault)
{
    EnvGuard env("VCOMA_WATCHDOG", nullptr);
    Machine m(tinyConfig(Scheme::VCOMA));
    EXPECT_EQ(m.watchdogCycles(), 0u);
}

TEST(Deadlock, ReportNamesParkedWaiters)
{
    Machine m(tinyConfig(Scheme::VCOMA));
    DeadlockWorkload w(m.numNodes());
    try {
        m.run(w);
        FAIL() << "a missed barrier must be reported as deadlock";
    } catch (const PanicError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
        EXPECT_NE(what.find("parked on barrier 0"), std::string::npos)
            << what;
        EXPECT_NE(what.find("machine snapshot"), std::string::npos)
            << what;
    }
}

TEST(Snapshot, DescribeBlockCoversResidentAndUnknown)
{
    Machine m(tinyConfig(Scheme::VCOMA));
    const VAddr va = 0x4000;
    m.access(0, RefType::Write, va, 0);

    const BlockDiagnostic hit = describeBlock(
        m.layout(), m.pageTable(), m.directory(), va);
    EXPECT_TRUE(hit.known);
    EXPECT_TRUE(hit.pageResident);
    EXPECT_LT(hit.home, m.numNodes());
    EXPECT_NE(hit.owner, invalidNode);
    EXPECT_NE(hit.copyset, 0u);

    const BlockDiagnostic miss = describeBlock(
        m.layout(), m.pageTable(), m.directory(), 0x40000000);
    EXPECT_FALSE(miss.known);
}

TEST(Snapshot, FormatListsEveryCpu)
{
    MachineSnapshot snap;
    snap.now = 123;
    snap.lastRetire = 45;
    snap.live = 1;
    snap.parked = 1;
    CpuDiagnostic running;
    running.cpu = 0;
    running.readyAt = 120;
    running.refs = 7;
    running.hasLastRef = true;
    running.lastRef = MemRef::write(0x1234);
    snap.cpus.push_back(running);
    CpuDiagnostic fresh;
    fresh.cpu = 1;
    snap.cpus.push_back(fresh);
    SyncManager::ParkedWaiter waiter;
    waiter.cpu = 1;
    waiter.kind = SyncManager::ParkedWaiter::Kind::Barrier;
    waiter.id = 3;
    waiter.since = 99;
    snap.waiters.push_back(waiter);

    const std::string text = snap.format();
    EXPECT_NE(text.find("machine snapshot at tick 123"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("cpu 0"), std::string::npos) << text;
    EXPECT_NE(text.find("cpu 1"), std::string::npos) << text;
    EXPECT_NE(text.find("parked on barrier 3"), std::string::npos)
        << text;
    EXPECT_NE(text.find("0x1234"), std::string::npos) << text;
}
